"""Timed WeaverUnit protocol, Table II ISA encodings, Table IV area."""

import numpy as np
import pytest

from repro.core import WeaverAreaModel, WeaverUnit
from repro.core.isa import (
    OPCODE_CUSTOM0,
    OPCODE_CUSTOM1,
    WEAVER_INSTRUCTIONS,
    decode_custom_type,
    decode_r_type,
    encode_custom_type,
    encode_r_type,
    encode_weaver,
    identify_weaver,
)
from repro.errors import ConfigError, WeaverError
from repro.sim import GPUConfig
from repro.sim.instructions import Op


def unit(table_latency=2):
    cfg = GPUConfig(
        num_sockets=1, cores_per_socket=1, warps_per_core=2,
        threads_per_warp=4, weaver_table_latency=table_latency,
    )
    return WeaverUnit(cfg), cfg


# ----------------------------------------------------------------------
# WeaverUnit protocol
# ----------------------------------------------------------------------
def test_register_then_decode_roundtrip():
    u, _ = unit()
    done, _ = u.handle(Op.WEAVER_REG, 0, 1,
                       [(0, 0, 2, 1), (1, 2, 10, 2), (2, 4, 30, 5)])
    assert done > 1
    _, res = u.handle(Op.WEAVER_DEC_ID, 1, done, None)
    assert res.vids.tolist() == [0, 2, 2, 4]
    _, eids = u.handle(Op.WEAVER_DEC_LOC, 1, done + 5, None)
    assert eids.tolist() == [2, 10, 11, 30]


def test_dec_loc_is_per_warp():
    u, _ = unit()
    u.handle(Op.WEAVER_REG, 0, 1, [(0, 0, 0, 8), (1, 1, 8, 8)])
    _, r0 = u.handle(Op.WEAVER_DEC_ID, 0, 10, None)
    _, r1 = u.handle(Op.WEAVER_DEC_ID, 1, 11, None)
    _, e0 = u.handle(Op.WEAVER_DEC_LOC, 0, 12, None)
    _, e1 = u.handle(Op.WEAVER_DEC_LOC, 1, 13, None)
    assert e0.tolist() == r0.eids.tolist()
    assert e1.tolist() == r1.eids.tolist()
    assert e0.tolist() != e1.tolist()  # dynamic distribution by arrival


def test_dec_loc_before_dec_id_rejected():
    u, _ = unit()
    u.handle(Op.WEAVER_REG, 0, 1, [(0, 0, 0, 1)])
    with pytest.raises(WeaverError):
        u.handle(Op.WEAVER_DEC_LOC, 0, 2, None)


def test_unit_serializes_requests():
    u, _ = unit()
    u.handle(Op.WEAVER_REG, 0, 1, [(0, 0, 0, 64)])
    done0, _ = u.handle(Op.WEAVER_DEC_ID, 0, 10, None)
    done1, _ = u.handle(Op.WEAVER_DEC_ID, 1, 10, None)
    assert done1 > done0  # second request queues behind the first


def test_distribution_drains_to_minus_one_for_all_warps():
    u, _ = unit()
    u.handle(Op.WEAVER_REG, 0, 1, [(0, 0, 0, 4)])
    _, r = u.handle(Op.WEAVER_DEC_ID, 0, 5, None)
    assert r.work_count == 4
    _, r0 = u.handle(Op.WEAVER_DEC_ID, 0, 6, None)
    _, r1 = u.handle(Op.WEAVER_DEC_ID, 1, 7, None)
    assert r0.exhausted and r1.exhausted


def test_new_registration_resets_epoch():
    u, _ = unit()
    u.handle(Op.WEAVER_REG, 0, 1, [(0, 7, 0, 1)])
    while True:
        _, r = u.handle(Op.WEAVER_DEC_ID, 0, 100, None)
        if r.exhausted:
            break
    u.handle(Op.WEAVER_REG, 0, 200, [(0, 9, 4, 1)])
    _, r = u.handle(Op.WEAVER_DEC_ID, 0, 300, None)
    assert r.vids[0] == 9


def test_register_during_distribution_rejected():
    u, _ = unit()
    u.handle(Op.WEAVER_REG, 0, 1, [(0, 0, 0, 8)])
    u.handle(Op.WEAVER_DEC_ID, 0, 5, None)
    with pytest.raises(WeaverError):
        u.handle(Op.WEAVER_REG, 1, 6, [(0, 1, 8, 1)])


def test_skip_suppresses_future_batches():
    u, _ = unit()
    u.handle(Op.WEAVER_REG, 0, 1, [(0, 5, 0, 100)])
    _, first = u.handle(Op.WEAVER_DEC_ID, 0, 5, None)
    assert first.work_count == 4
    done, _ = u.handle(Op.WEAVER_SKIP, 0, 6, 5)
    # Precomputed batches may still carry vid 5; the scan stops though,
    # so the stream ends after at most prefetch_depth more batches.
    batches = 0
    while True:
        _, r = u.handle(Op.WEAVER_DEC_ID, 0, done + 10 * batches, None)
        if r.exhausted:
            break
        batches += 1
        assert batches <= u.prefetch_depth + 1
    assert u.skips == 1


def test_table_latency_affects_decode_cost():
    fast, _ = unit(table_latency=1)
    slow, _ = unit(table_latency=40)
    for u in (fast, slow):
        u.handle(Op.WEAVER_REG, 0, 1, [(0, 0, 0, 4)])
    d_fast, _ = fast.handle(Op.WEAVER_DEC_ID, 0, 50, None)
    d_slow, _ = slow.handle(Op.WEAVER_DEC_ID, 0, 50, None)
    assert d_slow > d_fast


def test_lane_out_of_range_rejected():
    u, _ = unit()
    with pytest.raises(WeaverError):
        u.handle(Op.WEAVER_REG, 0, 1, [(9, 0, 0, 1)])


def test_unknown_op_rejected():
    u, _ = unit()
    with pytest.raises(WeaverError):
        u.handle(Op.EGHW_FETCH, 0, 1, None)


def test_capacity_respects_weaver_entries():
    cfg = GPUConfig(
        num_sockets=1, cores_per_socket=1, warps_per_core=2,
        threads_per_warp=4, weaver_entries=4,
    )
    u = WeaverUnit(cfg)
    assert u.st.capacity == 4


# ----------------------------------------------------------------------
# ISA (Table II)
# ----------------------------------------------------------------------
def test_table2_instruction_specs():
    assert WEAVER_INSTRUCTIONS["WEAVER_REG"].opcode == OPCODE_CUSTOM1
    assert WEAVER_INSTRUCTIONS["WEAVER_REG"].funct == 1
    assert WEAVER_INSTRUCTIONS["WEAVER_DEC_ID"].opcode == OPCODE_CUSTOM0
    assert WEAVER_INSTRUCTIONS["WEAVER_DEC_ID"].funct == 7
    assert WEAVER_INSTRUCTIONS["WEAVER_DEC_LOC"].funct == 8
    assert WEAVER_INSTRUCTIONS["WEAVER_SKIP"].funct == 2
    assert WEAVER_INSTRUCTIONS["WEAVER_SKIP"].itype == "C"


def test_r_type_roundtrip():
    word = encode_r_type(OPCODE_CUSTOM0, rd=3, funct3=7, rs1=11, rs2=12,
                         funct7=0)
    fields = decode_r_type(word)
    assert fields == {"opcode": OPCODE_CUSTOM0, "rd": 3, "funct3": 7,
                      "rs1": 11, "rs2": 12, "funct7": 0}


def test_custom_type_roundtrip():
    word = encode_custom_type(OPCODE_CUSTOM1, rd=0, funct3=1, rs1=5,
                              rs2=6, funct2=1, rs3=7)
    fields = decode_custom_type(word)
    assert fields["rs3"] == 7
    assert fields["funct2"] == 1


def test_encode_weaver_identify_roundtrip():
    for name in WEAVER_INSTRUCTIONS:
        word = encode_weaver(name, rd=1, rs1=2, rs2=3, rs3=4)
        assert identify_weaver(word) == name


def test_non_weaver_word_rejected():
    with pytest.raises(ConfigError):
        identify_weaver(0x00000033)  # plain RISC-V ADD


def test_encoding_field_validation():
    with pytest.raises(ConfigError):
        encode_r_type(OPCODE_CUSTOM0, rd=32, funct3=0, rs1=0, rs2=0, funct7=0)
    with pytest.raises(ConfigError):
        encode_r_type(200, 0, 0, 0, 0, 0)
    with pytest.raises(ConfigError):
        encode_custom_type(OPCODE_CUSTOM1, 0, 0, 0, 0, funct2=5, rs3=0)
    with pytest.raises(ConfigError):
        encode_weaver("WEAVER_NOPE")


# ----------------------------------------------------------------------
# Area model (Table IV)
# ----------------------------------------------------------------------
def test_default_reproduces_paper_1core_row():
    rep = WeaverAreaModel().report(1)
    assert rep.base_alms == 105_094
    assert rep.sparseweaver_alms == 108_203
    assert rep.registers_added == 678
    assert rep.register_pct_increase == pytest.approx(0.045, abs=1e-3)
    assert rep.alm_pct_increase == pytest.approx(2.96, abs=0.01)


def test_default_reproduces_paper_16core_row():
    rep = WeaverAreaModel().report(16)
    assert rep.base_alms == 580_332
    assert rep.sparseweaver_alms == 591_971
    assert rep.alm_pct_increase == pytest.approx(2.01, abs=0.01)


def test_no_block_memory_increase():
    rep = WeaverAreaModel().report(1)
    assert rep.block_memory_pct_increase == 0.0
    assert rep.ram_pct_increase == 0.0
    assert rep.dsp_pct_increase == 0.0


def test_registers_scale_with_id_bits():
    small = WeaverAreaModel(id_bits=16).registers_per_core()
    big = WeaverAreaModel(id_bits=64).registers_per_core()
    assert small < 678 < big


def test_alm_overhead_scales_with_lanes():
    narrow = WeaverAreaModel(lanes=8).alm_overhead(1)
    wide = WeaverAreaModel(lanes=64).alm_overhead(1)
    assert narrow < wide


def test_rtl_line_overhead_matches_section5f():
    assert WeaverAreaModel.rtl_line_overhead() == pytest.approx(0.136, abs=0.001)


def test_utilization_summary_mentions_counts():
    text = WeaverAreaModel().utilization_summary(1)
    assert "105094" in text and "108203" in text


def test_area_model_validation():
    with pytest.raises(ConfigError):
        WeaverAreaModel(lanes=0)
    with pytest.raises(ConfigError):
        WeaverAreaModel().report(0)
