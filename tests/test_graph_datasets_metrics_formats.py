"""Dataset analogs (Table III), degree metrics, storage-format interface."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (
    PAPER_DATASETS,
    dataset,
    dataset_names,
    degree_histogram,
    degree_skewness,
    edge_fraction_by_degree,
    from_edge_list,
    gini_coefficient,
)
from repro.graph.datasets import dataset_spec
from repro.graph.formats import (
    CSRFormatInterface,
    SplitVertexFormatInterface,
)
from repro.graph.metrics import average_degree, max_degree


# ----------------------------------------------------------------------
# Datasets
# ----------------------------------------------------------------------
def test_nine_datasets_like_table3():
    assert len(dataset_names()) == 9


def test_dataset_aliases():
    assert dataset("d_bh", scale=0.5).num_vertices == dataset(
        "bio-human", scale=0.5
    ).num_vertices


def test_unknown_dataset_rejected():
    with pytest.raises(GraphError):
        dataset("not-a-graph")
    with pytest.raises(GraphError):
        dataset_spec("nope")


def test_dataset_scale_must_be_positive():
    with pytest.raises(GraphError):
        dataset("bio-human", scale=0)


def test_dataset_specs_carry_paper_counts():
    spec = dataset_spec("hollywood")
    assert spec.paper_vertices == 2_180_653
    assert spec.paper_edges == 228_985_632


def test_bio_family_denser_than_road():
    bio = dataset("bio-human", scale=0.5)
    road = dataset("road-ca", scale=0.5)
    assert average_degree(bio) > 3 * average_degree(road)


def test_powerlaw_families_are_skewed():
    for key in ("graph500", "collab", "hollywood", "web-uk", "web-wiki"):
        g = dataset(key, scale=0.4)
        assert degree_skewness(g) > 0.5, key


def test_road_family_flat():
    g = dataset("road-central", scale=0.5)
    assert g.degrees.max() <= 4


def test_all_datasets_instantiate_deterministically():
    for key in dataset_names():
        a = PAPER_DATASETS[key].instantiate(0.3)
        b = PAPER_DATASETS[key].instantiate(0.3)
        assert a == b, key


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
def test_skewness_zero_for_regular(small_chain):
    from repro.graph import complete_graph

    assert degree_skewness(complete_graph(8)) == 0.0


def test_skewness_positive_for_star(small_star):
    assert degree_skewness(small_star) > 3.0


def test_gini_bounds(small_powerlaw, small_road):
    assert 0.0 <= gini_coefficient(small_road) < gini_coefficient(
        small_powerlaw
    ) <= 1.0


def test_degree_histogram_sums_to_vertices(small_powerlaw):
    values, counts = degree_histogram(small_powerlaw)
    assert counts.sum() == small_powerlaw.num_vertices


def test_edge_fraction_sums_to_one(small_powerlaw):
    _, fractions = edge_fraction_by_degree(small_powerlaw)
    assert np.isclose(fractions.sum(), 1.0)


def test_max_and_average_degree(diamond_graph):
    assert max_degree(diamond_graph) == 3
    assert average_degree(diamond_graph) == pytest.approx(5 / 4)


def test_empty_graph_metrics():
    g = from_edge_list([], num_vertices=0)
    assert degree_skewness(g) == 0.0
    assert gini_coefficient(g) == 0.0
    assert max_degree(g) == 0


# ----------------------------------------------------------------------
# Storage-format interface
# ----------------------------------------------------------------------
def test_csr_interface_get_neighbor(diamond_graph):
    fmt = CSRFormatInterface(diamond_graph)
    assert fmt.get_neighbor(0) == (0, 3)
    assert fmt.num_vertices == 4
    assert fmt.num_edges == 5


def test_csr_interface_get_edge(diamond_graph):
    fmt = CSRFormatInterface(diamond_graph)
    assert fmt.get_edge(0) == (0, 1, 1.0)
    assert fmt.get_edge(4) == (2, 3, 1.0)


def test_csr_interface_rejects_bad_eid(diamond_graph):
    with pytest.raises(GraphError):
        CSRFormatInterface(diamond_graph).get_edge(99)


def test_split_vertex_interface_bounds_degree(small_star):
    fmt = SplitVertexFormatInterface(small_star, max_degree=8)
    # hub (40 edges) split into ceil(40/8)=5 entries + 40 leaves
    assert fmt.num_vertices == 45
    for sid in range(fmt.num_vertices):
        start, end = fmt.get_neighbor(sid)
        assert end - start <= 8


def test_split_vertex_interface_covers_all_edges(small_star):
    fmt = SplitVertexFormatInterface(small_star, max_degree=8)
    covered = []
    for sid in range(fmt.num_vertices):
        start, end = fmt.get_neighbor(sid)
        covered.extend(range(start, end))
    assert sorted(covered) == list(range(small_star.num_edges))


def test_split_vertex_physical_mapping(small_star):
    fmt = SplitVertexFormatInterface(small_star, max_degree=8)
    owners = {fmt.physical_vertex(s) for s in range(5)}
    assert owners == {0}  # first five splits all belong to the hub


def test_split_vertex_rejects_bad_args(small_star):
    with pytest.raises(GraphError):
        SplitVertexFormatInterface(small_star, max_degree=0)
    fmt = SplitVertexFormatInterface(small_star, max_degree=8)
    with pytest.raises(GraphError):
        fmt.get_neighbor(999)
    with pytest.raises(GraphError):
        fmt.physical_vertex(-1)
