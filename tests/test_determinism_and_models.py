"""Simulator determinism and analytic-model agreement.

Two meta-properties the whole evaluation rests on: (1) identical inputs
give identical cycle counts (the benchmarks are replayable), and (2)
the closed-form warp-iteration model of Fig. 2a agrees with what the
simulator actually counts.
"""

import numpy as np
import pytest

from repro.algorithms import make_algorithm
from repro.autotune import AutoTuner
from repro.bench import run_single
from repro.frontend import GraphProcessor
from repro.graph import dataset, powerlaw_graph, star_graph
from repro.sched import analytic
from repro.sim import GPUConfig

CFG = GPUConfig.vortex_tiny()


@pytest.mark.parametrize("schedule", ["vertex_map", "warp_map",
                                      "sparseweaver", "eghw", "twc"])
def test_simulation_is_deterministic(schedule):
    g = powerlaw_graph(150, 700, seed=8).undirected()

    def run():
        return GraphProcessor(
            make_algorithm("pagerank", iterations=2), schedule=schedule,
            config=CFG,
        ).run(g)

    a, b = run(), run()
    assert a.stats.total_cycles == b.stats.total_cycles
    assert a.stats.instructions == b.stats.instructions
    np.testing.assert_array_equal(a.values, b.values)


def test_dataset_analogs_are_deterministic():
    a = dataset("graph500", scale=0.2)
    b = dataset("graph500", scale=0.2)
    assert a == b


@pytest.mark.parametrize("schedule", ["vertex_map", "warp_map"])
def test_measured_rounds_match_model_exactly(schedule):
    """For schemes without filters the counter must equal the model."""
    g = powerlaw_graph(120, 600, seed=14).undirected()
    predicted = analytic.expected_warp_iterations(g, schedule, CFG)
    run = run_single(
        make_algorithm("pagerank", iterations=1), g, schedule,
        config=CFG, time_init=False, time_apply=False,
    )
    assert run.stats.warp_iterations == predicted


def test_sparseweaver_rounds_close_to_block_model():
    """SW's dynamic batches include per-warp drain rounds (each warp's
    final -1 answer), so measured = model + O(warps)."""
    g = powerlaw_graph(120, 600, seed=14).undirected()
    predicted = analytic.expected_warp_iterations(g, "sparseweaver", CFG)
    run = run_single(
        make_algorithm("pagerank", iterations=1), g, "sparseweaver",
        config=CFG, time_init=False, time_apply=False,
    )
    block = CFG.threads_per_core
    epochs = -(-g.num_vertices // (CFG.num_cores * block))
    # one drain round (-1 answer) per warp per epoch
    slack = epochs * CFG.num_cores * CFG.warps_per_core
    assert predicted <= run.stats.warp_iterations <= predicted + slack


def test_model_ordering_predicts_measured_ordering():
    g = star_graph(200)
    order_model = sorted(
        ("vertex_map", "warp_map", "edge_map"),
        key=lambda s: analytic.expected_warp_iterations(g, s, CFG),
    )
    order_measured = sorted(
        ("vertex_map", "warp_map", "edge_map"),
        key=lambda s: run_single(
            make_algorithm("pagerank", iterations=1), g, s, config=CFG,
            time_init=False, time_apply=False,
        ).stats.warp_iterations,
    )
    assert order_model == order_measured


def test_autotuner_with_sparseweaver_option():
    """Section VII-B: with the hardware option enabled, the tuner picks
    SparseWeaver on skewed graphs."""
    g = powerlaw_graph(400, 2400, exponent=1.9, seed=2)
    tuner = AutoTuner(
        lambda: make_algorithm("pagerank", iterations=2),
        config=GPUConfig.vortex_bench(), include_sparseweaver=True,
    )
    report = tuner.tune(g)
    assert len(report.trials) == 5
    assert report.best_schedule == "sparseweaver"
