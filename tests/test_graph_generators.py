"""Synthetic generator families (workload shapes of Table III)."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (
    chain_graph,
    complete_graph,
    dense_community_graph,
    powerlaw_family,
    powerlaw_graph,
    random_graph,
    rmat_graph,
    road_grid_graph,
    star_graph,
)
from repro.graph.metrics import degree_skewness


def test_powerlaw_edge_budget():
    g = powerlaw_graph(100, 500, seed=1, symmetric=False)
    assert g.num_vertices == 100
    assert g.num_edges == 500


def test_powerlaw_symmetric_doubles_edges():
    g = powerlaw_graph(100, 500, seed=1, symmetric=True)
    assert g.num_edges == 1000


def test_powerlaw_deterministic():
    a = powerlaw_graph(80, 300, seed=9)
    b = powerlaw_graph(80, 300, seed=9)
    assert a == b


def test_powerlaw_is_skewed():
    g = powerlaw_graph(500, 3000, exponent=1.9, seed=2)
    assert degree_skewness(g) > 1.0


def test_powerlaw_no_self_loops():
    g = powerlaw_graph(50, 400, seed=3)
    assert np.all(g.edge_sources() != g.col_idx)


def test_powerlaw_rejects_bad_args():
    with pytest.raises(GraphError):
        powerlaw_graph(1, 10)
    with pytest.raises(GraphError):
        powerlaw_graph(10, 0)
    with pytest.raises(GraphError):
        powerlaw_graph(10, 10, exponent=0.5)


def test_powerlaw_family_grows_skewness():
    family = powerlaw_family([50, 100, 400], 1200, seed=5)
    skews = [degree_skewness(g) for g in family]
    assert all(g.num_edges == 2400 for g in family)
    assert skews[-1] > skews[0]


def test_rmat_counts():
    g = rmat_graph(6, edge_factor=4, seed=1, symmetric=False)
    assert g.num_vertices == 64
    assert 0 < g.num_edges <= 256


def test_rmat_skewed():
    g = rmat_graph(8, edge_factor=8, seed=2)
    assert degree_skewness(g) > 0.5


def test_rmat_rejects_bad_scale():
    with pytest.raises(GraphError):
        rmat_graph(0)
    with pytest.raises(GraphError):
        rmat_graph(30)


def test_road_grid_low_degree():
    g = road_grid_graph(10, seed=1)
    assert g.num_vertices == 100
    assert g.degrees.max() <= 4
    assert abs(degree_skewness(g)) < 2.0


def test_road_grid_symmetric():
    g = road_grid_graph(6, seed=1, drop_fraction=0.0)
    assert g.is_symmetric()


def test_dense_community_high_average_degree():
    g = dense_community_graph(100, 30, seed=4)
    assert g.num_vertices == 100
    assert g.degrees.mean() > 10


def test_star_graph_shape():
    g = star_graph(5)
    assert g.num_vertices == 6
    assert g.degree(0) == 5
    assert all(g.degree(v) == 1 for v in range(1, 6))


def test_chain_graph_degrees():
    g = chain_graph(5)
    assert g.degrees.tolist() == [1, 2, 2, 2, 1]


def test_complete_graph():
    g = complete_graph(4)
    assert g.num_edges == 12
    assert degree_skewness(g) == 0.0


def test_random_graph_counts():
    g = random_graph(50, 200, seed=6)
    assert g.num_vertices == 50
    assert 0 < g.num_edges <= 200  # dedupe may drop a few


def test_generators_validate():
    with pytest.raises(GraphError):
        road_grid_graph(1)
    with pytest.raises(GraphError):
        star_graph(0)
    with pytest.raises(GraphError):
        chain_graph(1)
    with pytest.raises(GraphError):
        complete_graph(1)
    with pytest.raises(GraphError):
        dense_community_graph(1, 1)


def test_community_graph_structure():
    from repro.graph import community_graph

    g = community_graph(4, 25, 60, 20, seed=2)
    assert g.num_vertices == 100
    assert g.is_symmetric()


def test_community_graph_labels_are_local():
    from repro.graph import community_graph
    from repro.graph.reorder import locality_score, random_order, \
        apply_permutation

    g = community_graph(10, 30, 80, 30, seed=3)
    shuffled = apply_permutation(g, random_order(g, seed=1))
    assert locality_score(g) < locality_score(shuffled)


def test_community_graph_validation():
    from repro.graph import community_graph

    with pytest.raises(GraphError):
        community_graph(0, 10, 5, 5)
    with pytest.raises(GraphError):
        community_graph(2, 1, 5, 5)
    with pytest.raises(GraphError):
        community_graph(2, 10, 0, 5)
