"""Fault injection: every engine/cache/telemetry recovery path,
provoked deterministically.

Pool-path tests ship real fault directives to real worker processes
(``crash`` genuinely kills a worker, ``hang`` genuinely sleeps), so
the ``BrokenProcessPool`` retry and per-job timeout machinery is
exercised end to end — no monkeypatching of the executor.
"""

import pytest

from repro.errors import (ConfigError, FatalError, ReproError,
                          TransientError)
from repro.graph import powerlaw_graph
from repro.runtime import (AlgorithmSpec, BatchEngine, FaultPlan,
                           GraphSpec, JobSpec, ResultCache, RunJournal,
                           Telemetry, get_active_plan)
from repro.runtime.faults import apply_serial_fault, apply_worker_fault
from repro.sim import GPUConfig

SCHEDULES = ["vertex_map", "edge_map", "warp_map", "sparseweaver"]


def tiny_specs(n=4):
    algorithm = AlgorithmSpec.of("pagerank", iterations=1)
    graph = GraphSpec.inline(powerlaw_graph(100, 400, seed=1), name="pl")
    return [
        JobSpec(algorithm=algorithm, graph=graph, schedule=sched,
                config=GPUConfig.vortex_tiny(), max_iterations=1)
        for sched in SCHEDULES[:n]
    ]


# ------------------------------------------------------------- parsing
def test_plan_parse_round_trip():
    text = "crash@1,hang@2:30,transient@0+3x2,slow_io~0.5,seed=7"
    plan = FaultPlan.parse(text)
    assert plan.seed == 7
    assert plan.spec() == text
    kinds = [r.kind for r in plan.rules]
    assert kinds == ["crash", "hang", "transient", "slow_io"]
    assert plan.rules[1].param == 30.0
    assert plan.rules[2].indices == (0, 3)
    assert plan.rules[2].max_attempts == 2
    assert plan.rules[3].rate == 0.5


@pytest.mark.parametrize("bad", [
    "explode@1",          # unknown kind
    "crash@",             # dangling index list
    "crash@1~0.5",        # indices and rate mixed
    "crash~1.5",          # rate out of range
    "seed=7",             # no fault rules at all
    "crash@one",          # non-integer index
    "",                   # empty plan
])
def test_plan_parse_rejects_malformed(bad):
    with pytest.raises(ConfigError):
        FaultPlan.parse(bad)


def test_rate_rules_are_seed_deterministic():
    a = FaultPlan.parse("transient~0.5,seed=3")
    b = FaultPlan.parse("transient~0.5,seed=3")
    fires_a = [a.worker_fault(i) is not None for i in range(64)]
    fires_b = [b.worker_fault(i) is not None for i in range(64)]
    assert fires_a == fires_b
    assert any(fires_a) and not all(fires_a)
    always = FaultPlan.parse("transient~1.0")
    assert all(always.worker_fault(i) for i in range(8))


def test_worker_fault_respects_attempts_and_counts():
    plan = FaultPlan.parse("crash@2")
    assert plan.worker_fault(0) is None
    assert plan.worker_fault(2) == ("crash", None)
    assert plan.worker_fault(2, attempt=2) is None  # retry succeeds
    assert plan.count("crash") == 1


def test_cache_and_io_sites_are_separate():
    plan = FaultPlan.parse("corrupt@0,slow_io@1:0.01")
    assert plan.worker_fault(0) is None  # cache kinds never hit workers
    assert plan.cache_fault(0) == "corrupt"
    assert plan.cache_fault(1) is None
    assert plan.io_fault(0) is None
    assert plan.io_fault(1) == 0.01


# ----------------------------------------------------- zero overhead
def test_no_env_plan_means_no_hooks(monkeypatch, tmp_path):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    assert get_active_plan() is None
    assert BatchEngine(jobs=1).faults is None
    assert ResultCache(tmp_path)._faults is None
    assert Telemetry()._faults is None


def test_env_plan_is_picked_up_and_memoized(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "transient@0")
    plan = get_active_plan()
    assert plan is not None and plan.rules[0].kind == "transient"
    assert get_active_plan() is plan  # same raw string, same object
    monkeypatch.setenv("REPRO_FAULTS", "crash@1,seed=2")
    assert get_active_plan().rules[0].kind == "crash"


def test_malformed_env_plan_raises_config_error(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "explode@1")
    with pytest.raises(ConfigError):
        get_active_plan()


# ------------------------------------------------------- apply helpers
def test_apply_worker_fault_exception_kinds():
    with pytest.raises(TransientError):
        apply_worker_fault(("transient", None))
    with pytest.raises(FatalError):
        apply_worker_fault(("fatal", None))
    apply_worker_fault(None)  # no-op


def test_apply_serial_fault_degrades_crash_and_hang():
    with pytest.raises(TransientError):
        apply_serial_fault(("crash", None))
    with pytest.raises(TransientError):
        apply_serial_fault(("hang", 5.0))
    with pytest.raises(FatalError):
        apply_serial_fault(("fatal", None))


# ------------------------------------------------------- serial engine
def test_serial_transient_is_retried_with_backoff():
    plan = FaultPlan.parse("transient@0")
    telemetry = Telemetry()
    engine = BatchEngine(jobs=1, telemetry=telemetry, faults=plan,
                         backoff_base=0.001)
    outcomes = engine.run(tiny_specs(2))
    assert [o.status for o in outcomes] == ["ok", "ok"]
    assert outcomes[0].attempts == 2
    assert outcomes[1].attempts == 1
    assert telemetry.count("retried") == 1
    assert telemetry.count("backoff") == 1
    assert plan.count("transient") == 1


def test_serial_retry_exhaustion_fails_structurally():
    plan = FaultPlan.parse("transient@0x99")  # fires on every attempt
    telemetry = Telemetry()
    engine = BatchEngine(jobs=1, telemetry=telemetry, faults=plan,
                         retries=2, backoff_base=0.001)
    outcomes = engine.run(tiny_specs(1))
    assert outcomes[0].status == "failed"
    assert outcomes[0].attempts == 3  # 1 + 2 retries
    assert "injected transient" in outcomes[0].error
    assert telemetry.count("retried") == 2


def test_serial_fatal_fails_without_retry():
    plan = FaultPlan.parse("fatal@0")
    telemetry = Telemetry()
    outcomes = BatchEngine(jobs=1, telemetry=telemetry,
                           faults=plan).run(tiny_specs(2))
    assert outcomes[0].status == "failed"
    assert outcomes[0].attempts == 1
    assert telemetry.count("retried") == 0
    assert outcomes[1].status == "ok"  # keep_going default


def test_retry_budget_bounds_total_retries():
    plan = FaultPlan.parse("transient@0x99,transient@1x99")
    engine = BatchEngine(jobs=1, faults=plan, retries=5,
                         retry_budget=1, backoff_base=0.0)
    outcomes = engine.run(tiny_specs(2))
    # One retry granted batch-wide: job 0 burns it, job 1 gets none.
    assert [o.status for o in outcomes] == ["failed", "failed"]
    assert outcomes[0].attempts == 2
    assert outcomes[1].attempts == 1


def test_serial_fail_fast_skips_the_rest():
    plan = FaultPlan.parse("fatal@0")
    telemetry = Telemetry()
    engine = BatchEngine(jobs=1, telemetry=telemetry, faults=plan,
                         fail_fast=True)
    outcomes = engine.run(tiny_specs(3))
    assert [o.status for o in outcomes] == ["failed", "skipped",
                                            "skipped"]
    assert telemetry.count("skipped") == 2
    assert not outcomes[1].ok and "fail_fast" in outcomes[1].error


# --------------------------------------------------------- pool engine
def test_pool_crash_breaks_pool_then_retries():
    plan = FaultPlan.parse("crash@0")
    telemetry = Telemetry()
    engine = BatchEngine(jobs=2, telemetry=telemetry, faults=plan,
                         backoff_base=0.001)
    outcomes = engine.run(tiny_specs(2))
    assert [o.status for o in outcomes] == ["ok", "ok"]
    assert outcomes[0].attempts >= 2  # pool siblings may also requeue
    assert telemetry.count("retried") >= 1
    assert plan.count("crash") == 1


def test_pool_hang_trips_the_job_timeout():
    plan = FaultPlan.parse("hang@0:5")
    telemetry = Telemetry()
    engine = BatchEngine(jobs=2, timeout=0.5, telemetry=telemetry,
                         faults=plan)
    outcomes = engine.run(tiny_specs(2))
    assert outcomes[0].status == "failed"
    assert "timed out" in outcomes[0].error
    assert outcomes[1].status == "ok"
    assert plan.count("hang") == 1


def test_pool_transient_is_retried():
    plan = FaultPlan.parse("transient@0")
    telemetry = Telemetry()
    engine = BatchEngine(jobs=2, telemetry=telemetry, faults=plan,
                         backoff_base=0.001)
    outcomes = engine.run(tiny_specs(2))
    assert [o.status for o in outcomes] == ["ok", "ok"]
    assert outcomes[0].attempts == 2
    assert telemetry.count("retried") == 1


def test_pool_fatal_fails_without_retry():
    plan = FaultPlan.parse("fatal@0")
    telemetry = Telemetry()
    outcomes = BatchEngine(jobs=2, telemetry=telemetry,
                           faults=plan).run(tiny_specs(2))
    assert outcomes[0].status == "failed"
    assert "injected fatal" in outcomes[0].error
    assert telemetry.count("retried") == 0
    assert outcomes[1].status == "ok"


def test_pool_fail_fast_skips_unfinished_jobs():
    plan = FaultPlan.parse("fatal@0")
    engine = BatchEngine(jobs=2, faults=plan, fail_fast=True)
    outcomes = engine.run(tiny_specs(4))
    assert outcomes[0].status == "failed"
    assert all(o.status in ("ok", "skipped") for o in outcomes[1:])
    assert any(o.status == "skipped" for o in outcomes[1:])


# ------------------------------------------------- cache sabotage
def test_torn_cache_write_quarantined_as_miss(tmp_path):
    plan = FaultPlan.parse("torn@0")
    cache = ResultCache(tmp_path, faults=plan)
    spec = tiny_specs(1)[0]
    outcomes = BatchEngine(jobs=1, cache=cache).run([spec])
    assert outcomes[0].status == "ok"
    assert plan.count("torn") == 1
    # The torn entry is a miss on the next lookup, never a crash.
    assert cache.get(spec) is None
    assert cache.quarantined == 1
    assert cache.quarantined_entries() == 1
    assert cache.entries() == 0


def test_corrupt_cache_write_quarantined_as_miss(tmp_path):
    plan = FaultPlan.parse("corrupt@0")
    cache = ResultCache(tmp_path, faults=plan)
    spec = tiny_specs(1)[0]
    cache.put(spec, BatchEngine(jobs=1).run([spec])[0].summary)
    assert cache.get(spec) is None
    assert cache.quarantined == 1
    assert cache.stats()["quarantined"] == 1


def test_sabotaged_store_does_not_break_a_batch(tmp_path):
    """A corrupt cache write degrades to a re-simulation, bit-identical
    to the fault-free run."""
    specs = tiny_specs(3)
    baseline = BatchEngine(jobs=1).run(specs)

    plan = FaultPlan.parse("torn@0,corrupt@1")
    cache = ResultCache(tmp_path, faults=plan)
    first = BatchEngine(jobs=1, cache=cache).run(specs)
    assert [o.status for o in first] == ["ok"] * 3

    # Second pass: two sabotaged entries re-simulate, one hits.
    cache2 = ResultCache(tmp_path)
    telemetry = Telemetry()
    second = BatchEngine(jobs=1, cache=cache2,
                         telemetry=telemetry).run(specs)
    assert [o.status for o in second].count("cached") == 1
    assert cache2.quarantined == 2
    assert ([o.summary.total_cycles for o in second]
            == [o.summary.total_cycles for o in baseline])


# --------------------------------------------------- telemetry slow io
def test_slow_io_delays_but_preserves_the_sink(tmp_path):
    plan = FaultPlan.parse("slow_io@0:0.01")
    telemetry = Telemetry(tmp_path / "events.jsonl", faults=plan)
    BatchEngine(jobs=1, telemetry=telemetry).run(tiny_specs(1))
    assert plan.count("slow_io") == 1
    lines = (tmp_path / "events.jsonl").read_text().splitlines()
    assert len(lines) == len(telemetry.events)


# ------------------------------------------------- chaos + resume
def test_chaos_run_then_resume_is_bit_identical(tmp_path):
    """The CI chaos scenario in miniature: a faulty, partially-failed
    run resumes to completion with zero re-simulation of finished
    work and cycle counts identical to a fault-free run."""
    specs = tiny_specs(4)
    baseline = BatchEngine(jobs=1).run(specs)

    plan = FaultPlan.parse("fatal@2,torn@0")
    cache = ResultCache(tmp_path / "cache", faults=plan)
    journal = RunJournal(tmp_path / "run.jsonl")
    chaos_tel = Telemetry()
    chaos = BatchEngine(jobs=1, cache=cache, telemetry=chaos_tel,
                        faults=plan, journal=journal).run(specs)
    statuses = [o.status for o in chaos]
    assert statuses.count("ok") == 3 and statuses.count("failed") == 1
    assert len(journal) == 3  # completed work journaled despite faults

    # Resume: fresh process state, same journal file, no faults.
    resumed_journal = RunJournal(tmp_path / "run.jsonl")
    assert resumed_journal.load() == 3
    resume_tel = Telemetry()
    resumed = BatchEngine(jobs=1, telemetry=resume_tel,
                          journal=resumed_journal).run(specs)
    assert [o.status for o in resumed].count("resumed") == 3
    assert resume_tel.count("started") == 1  # only the failed job
    assert ([o.summary.total_cycles for o in resumed]
            == [o.summary.total_cycles for o in baseline])


def test_fault_metrics_reach_registry(tmp_path):
    from repro.obs.metrics import get_registry

    registry = get_registry()
    was_enabled, registry.enabled = registry.enabled, True
    registry.clear()
    try:
        plan = FaultPlan.parse("transient@0,torn@0")
        cache = ResultCache(tmp_path, faults=plan)
        BatchEngine(jobs=1, cache=cache, faults=plan,
                    backoff_base=0.001).run(tiny_specs(1))
        injections = registry.get("fault_injections_total")
        assert injections.value(kind="transient") == 1
        assert injections.value(kind="torn") == 1
        retries = registry.get("engine_retries_total")
        assert retries.value(reason="transient") == 1
    finally:
        registry.clear()
        registry.enabled = was_enabled
