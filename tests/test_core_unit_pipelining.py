"""WeaverUnit pipelining details: prefetch, bypass, capacity epochs."""

import numpy as np
import pytest

from repro.algorithms import make_algorithm
from repro.core.unit import WeaverUnit
from repro.frontend import GraphProcessor, reference
from repro.graph import powerlaw_graph
from repro.sched import SparseWeaverSchedule
from repro.sim import GPUConfig
from repro.sim.instructions import Op


def unit(**cfg_kw):
    cfg = GPUConfig(
        num_sockets=1, cores_per_socket=1, warps_per_core=4,
        threads_per_warp=4, **cfg_kw,
    )
    return WeaverUnit(cfg), cfg


def test_prefetch_hides_scan_latency():
    """A late second request finds its batch precomputed: latency is
    near-constant instead of paying the scan again."""
    u, _ = unit(weaver_table_latency=20)
    u.handle(Op.WEAVER_REG, 0, 1, [(0, 0, 0, 64)])
    done1, _ = u.handle(Op.WEAVER_DEC_ID, 0, 10, None)
    # Ask much later: the background scan has long finished.
    done2, r2 = u.handle(Op.WEAVER_DEC_ID, 1, done1 + 500, None)
    assert r2.work_count == 4
    assert done2 - (done1 + 500) <= 2  # pop + handshake only


def test_backpressure_when_gpu_outruns_scan():
    """Requests arriving faster than the scan produces batches wait."""
    u, _ = unit(weaver_table_latency=50)
    # Many 1-degree entries: each batch needs 4 entry fetches.
    u.handle(Op.WEAVER_REG, 0, 1, [(i, i, i, 1) for i in range(4)])
    u.handle(Op.WEAVER_REG, 1, 2, [(i, 4 + i, 4 + i, 1) for i in range(4)])
    u.handle(Op.WEAVER_REG, 2, 3, [(i, 8 + i, 8 + i, 1) for i in range(4)])
    t = 10
    waits = []
    for warp in range(3):
        done, r = u.handle(Op.WEAVER_DEC_ID, warp, t, None)
        waits.append(done - t)
        t += 1  # immediately re-request
    assert r.work_count == 4
    # first request pays pipeline fill; the queue then drains ahead
    assert waits[0] > 0


def test_dt_bypass_caps_dec_loc():
    u, cfg = unit(weaver_table_latency=100)
    u.handle(Op.WEAVER_REG, 0, 1, [(0, 0, 0, 4)])
    done, _ = u.handle(Op.WEAVER_DEC_ID, 0, 10, None)
    loc_done, _ = u.handle(Op.WEAVER_DEC_LOC, 0, done, None)
    assert loc_done - done == WeaverUnit.DT_BYPASS_LATENCY


def test_dec_loc_does_not_occupy_unit():
    """A DEC_LOC from one warp must not delay another warp's DEC_ID."""
    u, _ = unit(weaver_table_latency=100)
    u.handle(Op.WEAVER_REG, 0, 1, [(0, 0, 0, 64)])
    done0, _ = u.handle(Op.WEAVER_DEC_ID, 0, 10, None)
    u.handle(Op.WEAVER_DEC_LOC, 0, done0, None)
    done1, _ = u.handle(Op.WEAVER_DEC_ID, 1, done0, None)
    assert done1 - done0 <= 3


def test_prefetch_depth_bounds_ready_queue():
    u, _ = unit()
    u.prefetch_depth = 2
    u.handle(Op.WEAVER_REG, 0, 1, [(0, 0, 0, 100)])
    u.handle(Op.WEAVER_DEC_ID, 0, 10, None)
    assert len(u._ready) <= 2


@pytest.mark.parametrize("entries", [32, 64, 96])
def test_small_table_capacity_still_correct(entries):
    """ST smaller than the resident thread count forces chunked
    registration epochs; results must not change."""
    g = powerlaw_graph(300, 1200, seed=17).undirected()
    cfg = GPUConfig(
        num_sockets=1, cores_per_socket=2, warps_per_core=4,
        weaver_entries=entries,
    )
    ref = reference.pagerank(g, iterations=2)
    res = GraphProcessor(
        make_algorithm("pagerank", iterations=2),
        schedule="sparseweaver", config=cfg,
    ).run(g)
    np.testing.assert_allclose(res.values, ref, atol=1e-9)


def test_small_capacity_costs_cycles():
    g = powerlaw_graph(300, 1200, seed=17).undirected()

    def cycles(entries):
        cfg = GPUConfig(
            num_sockets=1, cores_per_socket=2, warps_per_core=4,
            weaver_entries=entries,
        )
        return GraphProcessor(
            make_algorithm("pagerank", iterations=2),
            schedule="sparseweaver", config=cfg,
        ).run(g).stats.total_cycles

    assert cycles(32) > cycles(256)


def test_schedule_knobs_reach_the_unit():
    sched = SparseWeaverSchedule(prefetch_depth=7, zero_skip_width=8,
                                 dt_bypass=False)
    cfg = GPUConfig.vortex_tiny()

    class _Env:
        config = cfg

    build = sched.unit_factory(_Env())
    u = build(0)
    assert u.prefetch_depth == 7
    assert u.fsm.zero_skip_width == 8
    assert u.DT_BYPASS_LATENCY == cfg.weaver_table_latency
