"""Coordinator/worker fleet: parity, leases, failure recovery.

Workers run as threads against a coordinator on an ephemeral local
port — the real TCP protocol end to end, no mocks.  Crash faults
(``os._exit``) are exercised only through raw-socket disconnects here;
full process-kill coverage lives in the CLI tests and CI's chaos-fleet
step.
"""

import socket
import threading
import time

import pytest

from repro.dist import Coordinator, Worker, protocol
from repro.dist.protocol import MessageStream
from repro.errors import ConfigError, ReproError
from repro.graph import powerlaw_graph
from repro.runtime import (AlgorithmSpec, BatchEngine, GraphSpec,
                           JobSpec, ResultCache, RunJournal, Telemetry)
from repro.sim import SIMULATOR_VERSION


def fleet_specs(n=4, iterations=1):
    """JSON-rebuildable specs (generator graphs) for fleet batches."""
    return [
        JobSpec(
            algorithm=AlgorithmSpec.of("pagerank",
                                       iterations=iterations),
            graph=GraphSpec.from_generator(
                "powerlaw_graph", num_vertices=60, num_edges=240,
                seed=seed),
            schedule="vertex_map",
            max_iterations=iterations,
        )
        for seed in range(n)
    ]


def _run_quietly(worker):
    """Thread target: a coordinator teardown mid-lease surfaces as a
    connection error in the worker; that is expected in tests that
    abandon hung workers."""
    try:
        worker.run()
    except (ReproError, OSError):
        pass


def start_workers(address, count=2, **kwargs):
    """Thread-backed workers; returns (workers, threads)."""
    workers = [Worker(address, worker_id=f"w{i}", **kwargs)
               for i in range(count)]
    threads = [threading.Thread(target=_run_quietly, args=(w,),
                                daemon=True)
               for w in workers]
    for thread in threads:
        thread.start()
    return workers, threads


def join_all(threads, timeout=10.0):
    for thread in threads:
        thread.join(timeout=timeout)
        assert not thread.is_alive(), "worker thread did not drain"


# ----------------------------------------------------------------------
# happy path: parity with the in-process engine
# ----------------------------------------------------------------------
def test_fleet_outcomes_match_serial_engine(tmp_path):
    specs = fleet_specs(4)
    telemetry = Telemetry()
    journal = RunJournal(tmp_path / "journal.jsonl")
    with Coordinator("127.0.0.1:0", lease_seconds=10.0,
                     telemetry=telemetry, journal=journal) as coord:
        _workers, threads = start_workers(coord.address, 2)
        outcomes = coord.run(specs)
    join_all(threads)

    baseline = BatchEngine(jobs=1).run(specs)
    assert [o.status for o in outcomes] == ["ok"] * 4
    for fleet_out, serial_out in zip(outcomes, baseline):
        assert (fleet_out.summary.total_cycles
                == serial_out.summary.total_cycles)
        assert (fleet_out.summary.values_digest
                == serial_out.summary.values_digest)

    # Fleet telemetry: every lifecycle kind showed up.
    kinds = {event.kind for event in telemetry.events}
    assert {"worker_joined", "worker_left", "started",
            "lease_result", "finished"} <= kinds
    # Every started event names the worker that took the lease.
    for event in telemetry.events:
        if event.kind == "started":
            assert event.payload["worker"] in ("w0", "w1")

    stats = coord.fleet_stats()
    assert stats["workers_alive"] == 0
    assert sum(w["jobs_ok"] for w in stats["workers"].values()) == 4


def test_fleet_journal_resumes_without_resimulation(tmp_path):
    specs = fleet_specs(3)
    path = tmp_path / "journal.jsonl"
    journal = RunJournal(path)
    with Coordinator("127.0.0.1:0", journal=journal) as coord:
        _workers, threads = start_workers(coord.address, 2)
        first = coord.run(specs)
    join_all(threads)
    assert [o.status for o in first] == ["ok"] * 3

    # A fresh coordinator over the same journal restores everything
    # without a single worker connected.
    reloaded = RunJournal(path)
    assert reloaded.load() == 3
    assert reloaded.active_leases() == {}
    telemetry = Telemetry()
    with Coordinator("127.0.0.1:0", journal=reloaded,
                     telemetry=telemetry) as coord:
        second = coord.run(specs)
    assert [o.status for o in second] == ["resumed"] * 3
    assert telemetry.count("started") == 0
    for a, b in zip(first, second):
        assert a.summary.total_cycles == b.summary.total_cycles


def test_fleet_merges_worker_results_into_cache(tmp_path):
    specs = fleet_specs(2)
    cache = ResultCache(tmp_path / "cache")
    with Coordinator("127.0.0.1:0", cache=cache) as coord:
        _workers, threads = start_workers(coord.address, 1)
        outcomes = coord.run(specs)
    join_all(threads)
    assert [o.status for o in outcomes] == ["ok", "ok"]
    # The cache was fed by the coordinator: a local engine now hits.
    warm = BatchEngine(jobs=1, cache=cache).run(specs)
    assert [o.status for o in warm] == ["cached", "cached"]


def test_coordinator_rejects_inline_specs():
    spec = JobSpec(
        algorithm=AlgorithmSpec.of("pagerank", iterations=1),
        graph=GraphSpec.inline(powerlaw_graph(50, 200, seed=1)),
        schedule="vertex_map",
    )
    coord = Coordinator("127.0.0.1:0")
    try:
        with pytest.raises(ConfigError, match="inline"):
            coord.run([spec])
    finally:
        coord.close()


# ----------------------------------------------------------------------
# failure recovery
# ----------------------------------------------------------------------
def _raw_client(coord, worker_id):
    """Handshake a protocol-level client into the fleet."""
    sock = socket.create_connection((coord.host, coord.port),
                                    timeout=5.0)
    stream = MessageStream(sock)
    stream.send(protocol.hello(worker_id, SIMULATOR_VERSION, 1))
    assert stream.recv()["type"] == "welcome"
    return stream


def _claim_lease(stream, worker_id, tries=200):
    """Poll ``request`` until the coordinator grants a lease (the
    batch may not have started when the first request lands)."""
    for _ in range(tries):
        stream.send(protocol.request(worker_id))
        reply = stream.recv()
        assert reply is not None
        if reply["type"] == "lease":
            return reply
        assert reply["type"] == "wait"
        time.sleep(0.02)
    raise AssertionError("coordinator never granted a lease")


def test_disconnected_worker_lease_is_reclaimed_and_retried(tmp_path):
    """A worker that takes a lease and vanishes loses it; the job is
    reclaimed through the retry machinery and completes elsewhere."""
    specs = fleet_specs(2)
    telemetry = Telemetry()
    journal = RunJournal(tmp_path / "journal.jsonl")
    with Coordinator("127.0.0.1:0", lease_seconds=10.0,
                     telemetry=telemetry, journal=journal,
                     retries=1) as coord:
        runner = {}

        def run():
            runner["outcomes"] = coord.run(specs)

        batch = threading.Thread(target=run, daemon=True)
        batch.start()

        # A raw client takes one lease, then drops the connection.
        stream = _raw_client(coord, "deserter")
        _claim_lease(stream, "deserter")
        stream.close()  # abandon the lease

        # A real worker finishes the whole batch, retry included.
        _workers, threads = start_workers(coord.address, 1)
        batch.join(timeout=30.0)
        assert not batch.is_alive()
    join_all(threads)

    outcomes = runner["outcomes"]
    assert [o.status for o in outcomes] == ["ok", "ok"]
    assert telemetry.count("lease_reclaimed") == 1
    assert telemetry.count("retried") == 1
    reclaims = [e for e in telemetry.events
                if e.kind == "lease_reclaimed"]
    assert reclaims[0].payload["worker"] == "deserter"
    assert reclaims[0].payload["reason"] == "disconnect"
    assert journal.stats()["reclaim_lines"] == 1


def test_expired_lease_is_reclaimed_and_retried():
    """A worker that stops heartbeating forfeits its lease."""
    specs = fleet_specs(1)
    telemetry = Telemetry()
    with Coordinator("127.0.0.1:0", lease_seconds=0.2,
                     poll_seconds=0.02, telemetry=telemetry,
                     retries=1) as coord:
        runner = {}

        def run():
            runner["outcomes"] = coord.run(specs)

        batch = threading.Thread(target=run, daemon=True)
        batch.start()

        # The silent client holds the lease (and its socket) open but
        # never heartbeats, so only expiry can free the job.
        stream = _raw_client(coord, "silent")
        _claim_lease(stream, "silent")

        time.sleep(0.4)  # let the lease expire while no one else asks
        _workers, wthreads = start_workers(coord.address, 1)
        batch.join(timeout=30.0)
        assert not batch.is_alive()
        stream.close()
    join_all(wthreads)

    assert [o.status for o in runner["outcomes"]] == ["ok"]
    assert telemetry.count("lease_expired") == 1
    assert telemetry.count("retried") == 1


def test_transient_worker_failure_requeues_through_retry_budget():
    """A transient fault directive shipped in the lease retries; the
    second attempt (fault exhausted) succeeds."""
    from repro.runtime import FaultPlan

    specs = fleet_specs(2)
    telemetry = Telemetry()
    faults = FaultPlan.parse("transient@1")
    with Coordinator("127.0.0.1:0", telemetry=telemetry,
                     faults=faults, retries=1) as coord:
        _workers, threads = start_workers(coord.address, 1)
        outcomes = coord.run(specs)
    join_all(threads)
    assert [o.status for o in outcomes] == ["ok", "ok"]
    assert telemetry.count("retried") == 1
    assert faults.count("transient") == 1
    retried = [e for e in telemetry.events if e.kind == "retried"]
    assert retried[0].payload["reason"] == "transient"


def test_fatal_worker_failure_fails_without_retry():
    from repro.runtime import FaultPlan

    specs = fleet_specs(2)
    telemetry = Telemetry()
    faults = FaultPlan.parse("fatal@0x9")
    with Coordinator("127.0.0.1:0", telemetry=telemetry,
                     faults=faults, retries=3) as coord:
        _workers, threads = start_workers(coord.address, 1)
        outcomes = coord.run(specs)
    join_all(threads)
    assert outcomes[0].status == "failed"
    assert "FatalError" in outcomes[0].error
    assert outcomes[1].status == "ok"
    assert telemetry.count("retried") == 0


def test_hard_timeout_fails_job_despite_heartbeats():
    """The engine timeout is a hard deadline heartbeats cannot extend."""
    from repro.runtime import FaultPlan

    specs = fleet_specs(1)
    telemetry = Telemetry()
    faults = FaultPlan.parse("hang@0:2")
    with Coordinator("127.0.0.1:0", lease_seconds=0.5,
                     poll_seconds=0.02, timeout=0.4,
                     telemetry=telemetry, faults=faults,
                     retries=3) as coord:
        _workers, threads = start_workers(coord.address, 1)
        outcomes = coord.run(specs)
        # The hung worker thread never drains; close tears it down.
    assert outcomes[0].status == "failed"
    assert "timed out" in outcomes[0].error
    assert telemetry.count("retried") == 0


# ----------------------------------------------------------------------
# admission control
# ----------------------------------------------------------------------
def _handshake(coord, worker_id, sim=SIMULATOR_VERSION,
               proto=protocol.PROTOCOL_VERSION):
    sock = socket.create_connection((coord.host, coord.port),
                                    timeout=5.0)
    stream = MessageStream(sock)
    stream.send({"type": "hello", "protocol": proto, "sim": sim,
                 "worker": worker_id, "pid": 1})
    return stream, stream.recv()


def test_coordinator_rejects_version_mismatches():
    with Coordinator("127.0.0.1:0") as coord:
        stream, reply = _handshake(coord, "old", proto=-1)
        assert reply["type"] == "reject"
        assert "protocol" in reply["reason"]
        stream.close()

        stream, reply = _handshake(coord, "drift", sim="bogus-sim")
        assert reply["type"] == "reject"
        assert "bit-identical" in reply["reason"]
        stream.close()


def test_coordinator_rejects_duplicate_worker_ids():
    with Coordinator("127.0.0.1:0") as coord:
        first, reply = _handshake(coord, "twin")
        assert reply["type"] == "welcome"
        second, rejected = _handshake(coord, "twin")
        assert rejected["type"] == "reject"
        assert "already connected" in rejected["reason"]
        second.close()
        first.close()


def test_worker_run_raises_on_rejection():
    with Coordinator("127.0.0.1:0") as coord:
        blocker, reply = _handshake(coord, "dup")
        assert reply["type"] == "welcome"
        worker = Worker(coord.address, worker_id="dup",
                        connect_timeout=2.0)
        with pytest.raises(ReproError, match="rejected"):
            worker.run()
        blocker.close()


def test_worker_connect_timeout_is_bounded():
    # Nothing listens on this port (bound but not accepting beyond
    # backlog is racy; a closed listener refuses immediately).
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    worker = Worker(f"127.0.0.1:{port}", connect_timeout=0.3)
    start = time.monotonic()
    with pytest.raises(ReproError, match="could not reach"):
        worker.run()
    assert time.monotonic() - start < 5.0


def test_worker_verifies_spec_hash_before_running():
    """A tampered spec (hash mismatch) is refused, job fails clean."""
    specs = fleet_specs(1)
    real_hash = specs[0].content_hash()
    tampered = dict(specs[0].to_dict())
    tampered["schedule"] = "sparseweaver"  # changes the hash
    lease = protocol.lease(real_hash, tampered, 0, 1, 30.0)

    # Drive the worker's lease handler directly over a socket pair —
    # no coordinator needed to exercise the verification path.
    sock_a, sock_b = socket.socketpair()
    server, client = MessageStream(sock_a), MessageStream(sock_b)
    worker = Worker("127.0.0.1:1", worker_id="paranoid")

    done = {}

    def respond():
        done["result"] = server.recv()
        server.send(protocol.ack())

    thread = threading.Thread(target=respond, daemon=True)
    thread.start()
    worker._run_lease(client, lease)
    thread.join(timeout=5.0)
    server.close()
    client.close()

    result = done["result"]
    assert result["status"] == "failed"
    assert "hash mismatch" in result["error"]
    assert not result.get("transient")
    assert worker.jobs_failed == 1


def test_max_jobs_worker_signs_off_early():
    specs = fleet_specs(3)
    with Coordinator("127.0.0.1:0") as coord:
        limited = Worker(coord.address, worker_id="limited",
                         max_jobs=1)
        rest = Worker(coord.address, worker_id="rest")
        threads = [threading.Thread(target=w.run, daemon=True)
                   for w in (limited, rest)]
        for thread in threads:
            thread.start()
        outcomes = coord.run(specs)
    join_all(threads)
    assert [o.status for o in outcomes] == ["ok"] * 3
    assert limited.jobs_done == 1
    assert limited.jobs_done + rest.jobs_done == 3


def test_fleet_metrics_ship_home(tmp_path):
    """Worker-side registry snapshots merge into the coordinator's."""
    from repro.obs.metrics import get_registry, enable_metrics

    registry = get_registry()
    was_enabled = registry.enabled
    enable_metrics()
    registry.clear()
    try:
        specs = fleet_specs(2)
        with Coordinator("127.0.0.1:0") as coord:
            _workers, threads = start_workers(coord.address, 1)
            outcomes = coord.run(specs)
        join_all(threads)
        assert [o.status for o in outcomes] == ["ok", "ok"]
        snapshot = registry.snapshot()["metrics"]
        assert "dist_leases_total" in snapshot
        assert "dist_jobs_completed_total" in snapshot
        granted = sum(
            s["value"]
            for s in snapshot["dist_leases_total"]["series"]
            if s["labels"].get("event") == "granted")
        assert granted == 2
    finally:
        registry.clear()
        registry.enabled = was_enabled


def test_fleet_profile_snapshots_ship_home(tmp_path):
    """Worker host-profiles ride the result messages and merge back."""
    from repro.obs.profile import (disable_profiling, enable_profiling,
                                   profiling_enabled)

    was_enabled = profiling_enabled()
    profiler = enable_profiling()
    profiler.clear()
    try:
        sink = tmp_path / "events.jsonl"
        specs = fleet_specs(2)
        with Coordinator("127.0.0.1:0",
                         telemetry=Telemetry(sink)) as coord:
            _workers, threads = start_workers(coord.address, 1)
            outcomes = coord.run(specs)
        join_all(threads)
        assert [o.status for o in outcomes] == ["ok", "ok"]
        # Workers snapshot-and-clear per job; the coordinator's merge
        # is the only place totals accumulate.
        assert profiler.kernels >= 2
        assert "execute" in profiler.phases
        assert profiler.coverage() > 0
        import json

        leases = [json.loads(line) for line in
                  sink.read_text().splitlines()
                  if json.loads(line)["kind"] == "lease_result"]
        assert leases and all(r.get("cycles", 0) > 0 for r in leases
                              if r["status"] == "ok")
    finally:
        profiler.clear()
        if not was_enabled:
            disable_profiling()
