"""GPU hash table + SparseWeaver lookup (Section VII-A, Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import GPUHashTable, run_hash_lookup
from repro.errors import ReproError
from repro.sim import GPUConfig

CFG = GPUConfig.vortex_tiny()


@pytest.fixture
def small_table():
    keys = np.arange(0, 64, dtype=np.int64) * 3 + 1
    values = keys.astype(np.float64) * 10
    return GPUHashTable(keys, values, num_buckets=16)


# ----------------------------------------------------------------------
# Table structure
# ----------------------------------------------------------------------
def test_table_layout_is_csr_like(small_table):
    t = small_table
    assert t.offsets[0] == 0
    assert t.offsets[-1] == t.size
    assert np.all(np.diff(t.offsets) >= 0)
    assert int(t.chain_lengths.sum()) == t.size


def test_bucket_range_contains_hashed_keys(small_table):
    t = small_table
    for bucket in range(t.num_buckets):
        start, end = t.bucket_range(bucket)
        assert np.all(t.hash(t.keys[start:end]) == bucket)


def test_modulo_hash_clusters():
    """Clustered keys + modulo hash -> overloaded chains (the skewed
    regime the Weaver targets)."""
    keys = np.arange(100, dtype=np.int64) * 16  # all multiples of 16
    t = GPUHashTable(keys, keys.astype(float), num_buckets=16,
                     multiplicative=False)
    assert t.max_chain() == 100  # everything lands in bucket 0
    t2 = GPUHashTable(keys, keys.astype(float), num_buckets=16,
                      multiplicative=True)
    assert t2.max_chain() < 40


def test_table_validation():
    with pytest.raises(ReproError):
        GPUHashTable(np.array([1, 1]), np.array([1.0, 2.0]))
    with pytest.raises(ReproError):
        GPUHashTable(np.array([1]), np.array([1.0, 2.0]))
    with pytest.raises(ReproError):
        GPUHashTable(np.array([1]), np.array([1.0]), num_buckets=0)
    t = GPUHashTable(np.array([1]), np.array([1.0]), num_buckets=2)
    with pytest.raises(ReproError):
        t.bucket_range(5)


def test_reference_lookup(small_table):
    queries = np.array([1, 4, 7, 999])
    ref = small_table.lookup_reference(queries)
    assert ref[0] == 10.0
    assert ref[1] == 40.0
    assert np.isnan(ref[3])


# ----------------------------------------------------------------------
# Lookup kernels
# ----------------------------------------------------------------------
@pytest.mark.parametrize("strategy", ["thread_per_query", "sparseweaver"])
def test_lookup_matches_reference(small_table, strategy):
    rng = np.random.default_rng(5)
    queries = rng.choice(small_table.keys, size=40)
    queries = np.concatenate([queries, np.array([100_000, -7])])
    ref = small_table.lookup_reference(queries)
    res = run_hash_lookup(small_table, queries, strategy=strategy,
                          config=CFG)
    np.testing.assert_array_equal(np.isnan(res.values), np.isnan(ref))
    np.testing.assert_allclose(res.values[~np.isnan(ref)],
                               ref[~np.isnan(ref)])
    assert res.hit_rate == pytest.approx(40 / 42)


@pytest.mark.parametrize("strategy", ["thread_per_query", "sparseweaver"])
def test_duplicate_queries(small_table, strategy):
    queries = np.array([1, 1, 1, 4, 4])
    res = run_hash_lookup(small_table, queries, strategy=strategy,
                          config=CFG)
    np.testing.assert_allclose(res.values, [10, 10, 10, 40, 40])


@pytest.mark.parametrize("strategy", ["thread_per_query", "sparseweaver"])
def test_all_misses(small_table, strategy):
    queries = np.array([2, 5, 8])  # not multiples-of-3-plus-1
    res = run_hash_lookup(small_table, queries, strategy=strategy,
                          config=CFG)
    assert np.all(np.isnan(res.values))
    assert res.hit_rate == 0.0


def test_unknown_strategy_rejected(small_table):
    with pytest.raises(ReproError):
        run_hash_lookup(small_table, np.array([1]), strategy="quantum")


def test_sparseweaver_wins_on_overloaded_chains():
    """The skew shape: clustered keys overload chains, thread-per-query
    serializes on them, the Weaver spreads them across lanes."""
    keys = np.arange(256, dtype=np.int64) * 16
    table = GPUHashTable(keys, keys.astype(float), num_buckets=64,
                         multiplicative=False)
    assert table.max_chain() >= 64
    rng = np.random.default_rng(3)
    queries = rng.choice(keys, size=96)
    cfg = GPUConfig.vortex_bench()
    naive = run_hash_lookup(table, queries, "thread_per_query", cfg)
    weaver = run_hash_lookup(table, queries, "sparseweaver", cfg)
    np.testing.assert_allclose(naive.values, weaver.values)
    assert weaver.stats.total_cycles < naive.stats.total_cycles


def test_balanced_table_near_parity():
    """Uniform hashing -> short, even chains -> little to weave."""
    keys = np.arange(256, dtype=np.int64)
    table = GPUHashTable(keys, keys.astype(float), num_buckets=128,
                         multiplicative=True)
    rng = np.random.default_rng(4)
    queries = rng.choice(keys, size=96)
    cfg = GPUConfig.vortex_bench()
    naive = run_hash_lookup(table, queries, "thread_per_query", cfg)
    weaver = run_hash_lookup(table, queries, "sparseweaver", cfg)
    assert weaver.stats.total_cycles < 4 * naive.stats.total_cycles


@given(st.lists(st.integers(min_value=-1000, max_value=1000),
                min_size=1, max_size=30, unique=True),
       st.lists(st.integers(min_value=-1000, max_value=1000),
                min_size=1, max_size=20))
@settings(max_examples=25, deadline=None)
def test_property_lookup_matches_reference(table_keys, query_keys):
    keys = np.asarray(table_keys, dtype=np.int64)
    table = GPUHashTable(keys, keys.astype(float) * 2.0, num_buckets=8)
    queries = np.asarray(query_keys, dtype=np.int64)
    ref = table.lookup_reference(queries)
    for strategy in ("thread_per_query", "sparseweaver"):
        res = run_hash_lookup(table, queries, strategy=strategy,
                              config=CFG)
        np.testing.assert_array_equal(np.isnan(res.values), np.isnan(ref))
        np.testing.assert_allclose(res.values[~np.isnan(ref)],
                                   ref[~np.isnan(ref)])


# ----------------------------------------------------------------------
# Aggregate (multimap) probes — Algorithm 1's full-chain loop
# ----------------------------------------------------------------------
def _orders_table():
    rng = np.random.default_rng(7)
    whales = (np.arange(10) + 1) * 6_400
    regulars = rng.choice(np.arange(20, 5_000), size=400,
                          replace=False) * 64 + 32
    cust = np.concatenate([np.repeat(whales, 60), np.repeat(regulars, 2)])
    amounts = rng.uniform(1, 100, cust.size)
    table = GPUHashTable(cust, amounts, num_buckets=256,
                         allow_duplicates=True)
    probe = np.concatenate([rng.choice(regulars, 100),
                            rng.choice(whales, 20)])
    return table, probe


@pytest.mark.parametrize("strategy", ["thread_per_query", "sparseweaver"])
def test_aggregate_matches_reference(strategy):
    table, probe = _orders_table()
    ref = table.aggregate_reference(probe)
    res = run_hash_lookup(table, probe, strategy=strategy, config=CFG,
                          mode="aggregate")
    np.testing.assert_allclose(res.values, ref)


def test_aggregate_miss_is_zero(small_table):
    res = run_hash_lookup(small_table, np.array([999_999]),
                          strategy="sparseweaver", config=CFG,
                          mode="aggregate")
    assert res.values.tolist() == [0.0]
    assert not res.found[0]


def test_sparseweaver_wins_aggregate_probe():
    """Full-chain scans cannot early-exit; whale chains serialize the
    naive mapping while the Weaver packs them densely."""
    table, probe = _orders_table()
    cfg = GPUConfig.vortex_bench()
    naive = run_hash_lookup(table, probe, "thread_per_query", cfg,
                            mode="aggregate")
    weaver = run_hash_lookup(table, probe, "sparseweaver", cfg,
                             mode="aggregate")
    assert weaver.stats.total_cycles < naive.stats.total_cycles
    assert weaver.stats.warp_iterations < naive.stats.warp_iterations / 2


def test_duplicate_keys_require_multimap_flag():
    with pytest.raises(ReproError):
        GPUHashTable(np.array([1, 1]), np.array([1.0, 2.0]))
    t = GPUHashTable(np.array([1, 1]), np.array([1.0, 2.0]),
                     allow_duplicates=True)
    assert t.aggregate_reference(np.array([1]))[0] == 3.0


def test_bad_mode_rejected(small_table):
    with pytest.raises(ReproError):
        run_hash_lookup(small_table, np.array([1]), mode="sum")
