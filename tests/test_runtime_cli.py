"""CLI smoke tests for the ``batch`` and ``cache`` subcommands."""

import json

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


def test_batch_grid_cold_then_warm(capsys, tmp_path):
    argv = ["batch", "--algorithm", "pagerank", "--datasets",
            "bio-human", "--schedules", "vertex_map", "sparseweaver",
            "--scale", "0.2", "--iterations", "1", "--jobs", "1",
            "--cache-dir", str(tmp_path / "cache"),
            "--telemetry", str(tmp_path / "events.jsonl")]
    code, out = run_cli(capsys, *argv)
    assert code == 0
    assert "vertex_map" in out and "sparseweaver" in out
    assert "2 submitted, 2 simulated, 0 cached" in out

    code, out = run_cli(capsys, *argv)
    assert code == 0
    assert "2 submitted, 0 simulated, 2 cached" in out

    events = [json.loads(line) for line in
              (tmp_path / "events.jsonl").read_text().splitlines()]
    kinds = [e["kind"] for e in events]
    assert kinds.count("finished") == 2
    assert kinds.count("cached") == 2
    assert kinds.count("batch_summary") == 2


def test_batch_no_cache(capsys, tmp_path):
    code, out = run_cli(
        capsys, "batch", "--datasets", "bio-human", "--schedules",
        "vertex_map", "--scale", "0.2", "--iterations", "1",
        "--no-cache")
    assert code == 0
    assert "1 submitted, 1 simulated" in out
    assert "cache:" not in out


def test_batch_spec_file(capsys, tmp_path):
    spec_file = tmp_path / "grid.json"
    spec_file.write_text(json.dumps({"jobs": [
        {"algorithm": "pagerank", "params": {"iterations": 1},
         "dataset": "bio-human", "scale": 0.2,
         "schedule": "vertex_map", "max_iterations": 1},
        {"algorithm": "bfs", "params": {"source": 0},
         "dataset": "road-ca", "scale": 0.2,
         "schedule": "sparseweaver"},
    ]}))
    code, out = run_cli(
        capsys, "batch", "--spec-file", str(spec_file),
        "--cache-dir", str(tmp_path / "cache"))
    assert code == 0
    assert "bfs" in out and "road-ca" in out
    assert "2 submitted, 2 simulated" in out


def test_cache_stats_and_clear(capsys, tmp_path):
    cache_dir = tmp_path / "cache"
    code, _ = run_cli(
        capsys, "batch", "--datasets", "bio-human", "--schedules",
        "vertex_map", "--scale", "0.2", "--iterations", "1",
        "--cache-dir", str(cache_dir))
    assert code == 0

    code, out = run_cli(capsys, "cache", "stats", "--cache-dir",
                        str(cache_dir))
    assert code == 0
    assert "entries: 1" in out

    code, out = run_cli(capsys, "cache", "clear", "--cache-dir",
                        str(cache_dir))
    assert code == 0
    assert "removed 1" in out

    code, out = run_cli(capsys, "cache", "stats", "--cache-dir",
                        str(cache_dir))
    assert code == 0
    assert "entries: 0" in out
