"""CLI smoke tests for the ``batch`` and ``cache`` subcommands."""

import json

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


def test_batch_grid_cold_then_warm(capsys, tmp_path):
    argv = ["batch", "--algorithm", "pagerank", "--datasets",
            "bio-human", "--schedules", "vertex_map", "sparseweaver",
            "--scale", "0.2", "--iterations", "1", "--jobs", "1",
            "--cache-dir", str(tmp_path / "cache"),
            "--telemetry", str(tmp_path / "events.jsonl")]
    code, out = run_cli(capsys, *argv)
    assert code == 0
    assert "vertex_map" in out and "sparseweaver" in out
    assert "2 submitted, 2 simulated, 0 cached" in out

    code, out = run_cli(capsys, *argv)
    assert code == 0
    assert "2 submitted, 0 simulated, 2 cached" in out

    events = [json.loads(line) for line in
              (tmp_path / "events.jsonl").read_text().splitlines()]
    kinds = [e["kind"] for e in events]
    assert kinds.count("finished") == 2
    assert kinds.count("cached") == 2
    assert kinds.count("batch_summary") == 2


def test_batch_no_cache(capsys, tmp_path):
    code, out = run_cli(
        capsys, "batch", "--datasets", "bio-human", "--schedules",
        "vertex_map", "--scale", "0.2", "--iterations", "1",
        "--no-cache")
    assert code == 0
    assert "1 submitted, 1 simulated" in out
    assert "cache:" not in out


def test_batch_spec_file(capsys, tmp_path):
    spec_file = tmp_path / "grid.json"
    spec_file.write_text(json.dumps({"jobs": [
        {"algorithm": "pagerank", "params": {"iterations": 1},
         "dataset": "bio-human", "scale": 0.2,
         "schedule": "vertex_map", "max_iterations": 1},
        {"algorithm": "bfs", "params": {"source": 0},
         "dataset": "road-ca", "scale": 0.2,
         "schedule": "sparseweaver"},
    ]}))
    code, out = run_cli(
        capsys, "batch", "--spec-file", str(spec_file),
        "--cache-dir", str(tmp_path / "cache"))
    assert code == 0
    assert "bfs" in out and "road-ca" in out
    assert "2 submitted, 2 simulated" in out


def test_cache_stats_and_clear(capsys, tmp_path):
    cache_dir = tmp_path / "cache"
    code, _ = run_cli(
        capsys, "batch", "--datasets", "bio-human", "--schedules",
        "vertex_map", "--scale", "0.2", "--iterations", "1",
        "--cache-dir", str(cache_dir))
    assert code == 0

    code, out = run_cli(capsys, "cache", "stats", "--cache-dir",
                        str(cache_dir))
    assert code == 0
    assert "entries: 1" in out

    code, out = run_cli(capsys, "cache", "clear", "--cache-dir",
                        str(cache_dir))
    assert code == 0
    assert "removed 1" in out

    code, out = run_cli(capsys, "cache", "stats", "--cache-dir",
                        str(cache_dir))
    assert code == 0
    assert "entries: 0" in out


# ------------------------------------------------ robustness flags
def test_batch_failure_exits_nonzero_with_stderr_table(capsys,
                                                       tmp_path):
    code = main(["batch", "--datasets", "bio-human", "--schedules",
                 "vertex_map", "sparseweaver", "--scale", "0.2",
                 "--iterations", "1", "--no-cache",
                 "--faults", "fatal@0"])
    captured = capsys.readouterr()
    assert code == 1
    assert "did not complete" in captured.err
    assert "injected fatal" in captured.err
    assert "1 failed" in captured.out  # summary still printed


def test_batch_fail_fast_skips_and_reports(capsys, tmp_path):
    code = main(["batch", "--datasets", "bio-human", "--schedules",
                 "vertex_map", "sparseweaver", "--scale", "0.2",
                 "--iterations", "1", "--no-cache", "--fail-fast",
                 "--faults", "fatal@0"])
    captured = capsys.readouterr()
    assert code == 1
    assert "skipped" in captured.err
    assert "2 of 2 job(s) did not complete" in captured.err


def test_batch_transient_fault_retries_to_success(capsys, tmp_path):
    code = main(["batch", "--datasets", "bio-human", "--schedules",
                 "vertex_map", "--scale", "0.2", "--iterations", "1",
                 "--no-cache", "--faults", "transient@0"])
    captured = capsys.readouterr()
    assert code == 0
    assert "1 retried" in captured.out


def test_batch_journal_resume_round_trip(capsys, tmp_path):
    journal = tmp_path / "run.jsonl"
    argv = ["batch", "--datasets", "bio-human", "--schedules",
            "vertex_map", "sparseweaver", "--scale", "0.2",
            "--iterations", "1", "--no-cache",
            "--journal", str(journal)]
    code, out = run_cli(capsys, *argv)
    assert code == 0
    assert "2 submitted, 2 simulated" in out
    assert journal.exists()

    code, out = run_cli(capsys, *argv, "--resume")
    assert code == 0
    assert "resume: 2 completed job(s) restored" in out
    assert "2 submitted, 0 simulated" in out
    assert "2 resumed" in out


def test_batch_journal_without_resume_starts_fresh(capsys, tmp_path):
    journal = tmp_path / "run.jsonl"
    argv = ["batch", "--datasets", "bio-human", "--schedules",
            "vertex_map", "--scale", "0.2", "--iterations", "1",
            "--no-cache", "--journal", str(journal)]
    code, out = run_cli(capsys, *argv)
    assert code == 0
    code, out = run_cli(capsys, *argv)  # no --resume: fresh run
    assert code == 0
    assert "1 simulated" in out


def test_resume_without_journal_is_a_config_error(capsys, tmp_path):
    code = main(["batch", "--datasets", "bio-human", "--schedules",
                 "vertex_map", "--scale", "0.2", "--no-cache",
                 "--resume"])
    captured = capsys.readouterr()
    assert code == 2
    assert "--resume requires --journal" in captured.err


def test_malformed_faults_plan_is_a_config_error(capsys):
    code = main(["batch", "--datasets", "bio-human", "--schedules",
                 "vertex_map", "--scale", "0.2", "--no-cache",
                 "--faults", "explode@0"])
    captured = capsys.readouterr()
    assert code == 2
    assert "unknown fault kind" in captured.err


def test_bench_keep_going_emits_surviving_figures(capsys, tmp_path):
    code = main(["bench", "--smoke", "--figures", "table1,fig13",
                 "--jobs", "1", "--no-cache", "--keep-going",
                 "--out", str(tmp_path / "results"),
                 "--faults", "fatal~1.0"])
    captured = capsys.readouterr()
    assert code == 1
    assert "did not complete" in captured.err
    assert "figures skipped" in captured.err


def test_bench_journal_resume(capsys, tmp_path):
    journal = tmp_path / "run.jsonl"
    argv = ["bench", "--smoke", "--figures", "fig13", "--jobs", "1",
            "--no-cache", "--out", str(tmp_path / "results"),
            "--journal", str(journal),
            "--telemetry", str(tmp_path / "events.jsonl")]
    code, out = run_cli(capsys, *argv)
    assert code == 0
    assert journal.exists() and journal.stat().st_size > 0

    code, out = run_cli(capsys, *argv, "--resume")
    assert code == 0
    assert "resume:" in out
    events = [json.loads(line) for line in
              (tmp_path / "events.jsonl").read_text().splitlines()]
    kinds = [e["kind"] for e in events]
    assert kinds.count("resumed") > 0
    # The resumed pass never started a worker.
    first_summary = kinds.index("batch_summary")
    assert "started" not in kinds[first_summary:]
