"""Span tracer and Chrome trace export: round-trip, clocks, stalls."""

import json

import pytest

from repro.algorithms import make_algorithm
from repro.bench import run_single
from repro.graph import powerlaw_graph
from repro.obs.tracing import (NULL_TRACER, Tracer, execution_trace_events)
from repro.sim import GPUConfig
from repro.sim.trace import ExecutionTracer


def test_span_context_manager_records():
    tracer = Tracer()
    with tracer.span("work", cat="phase", iteration=1) as sp:
        sp.args["cycles"] = 42
    assert len(tracer.spans) == 1
    span = tracer.spans[0]
    assert span.name == "work"
    assert span.args == {"iteration": 1, "cycles": 42}
    assert span.dur_us >= 0


def test_span_recorded_even_when_body_raises():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("boom"):
            raise RuntimeError("x")
    assert [s.name for s in tracer.spans] == ["boom"]


def test_null_tracer_collects_nothing():
    with NULL_TRACER.span("work") as sp:
        sp.args["cycles"] = 1  # accepted, discarded
    NULL_TRACER.add_span("x", "c", 0, 1)
    NULL_TRACER.instant("mark")
    assert len(NULL_TRACER) == 0


def test_chrome_trace_round_trip(tmp_path):
    tracer = Tracer(pid=7)
    with tracer.span("init", cat="kernel"):
        pass
    with tracer.span("gather", cat="kernel", tid="other"):
        pass
    tracer.instant("iteration-done")
    path = tracer.save(tmp_path / "trace.json")

    doc = json.loads(path.read_text())  # valid JSON by construction
    events = doc["traceEvents"]
    assert all(e["ph"] in ("X", "M", "i") for e in events)
    # Named tracks: one process metadata record plus one thread_name
    # per distinct tid string.
    thread_names = {e["args"]["name"] for e in events
                    if e["ph"] == "M" and e["name"] == "thread_name"}
    assert {"main", "other"} <= thread_names
    # Timestamps are monotonic within each (pid, tid) track.
    per_track = {}
    for e in events:
        if e["ph"] in ("X", "i"):
            per_track.setdefault((e["pid"], e["tid"]), []).append(e["ts"])
    for track, stamps in per_track.items():
        assert stamps == sorted(stamps), track


def run_traced_kernel():
    tracer = ExecutionTracer()
    run_single(make_algorithm("pagerank", iterations=1),
               powerlaw_graph(60, 240, seed=5), "warp_map",
               config=GPUConfig.vortex_tiny(), max_iterations=1,
               exec_tracer=tracer)
    return tracer


def test_execution_trace_events_shape():
    exec_tracer = run_traced_kernel()
    assert exec_tracer.events and exec_tracer.stalls
    events = execution_trace_events(exec_tracer, pid_base=2000)

    spans = [e for e in events if e["ph"] == "X"]
    assert all(e["pid"] >= 2000 for e in spans)
    assert all(e["dur"] >= 1 for e in spans)
    stall_spans = [e for e in spans if e["cat"] == "stall"]
    assert stall_spans and all(e["tid"] >= 100 for e in stall_spans)
    # The stall rows carry exactly the attributed cycles.
    assert (sum(e["args"]["cycles"] for e in stall_spans)
            == sum(exec_tracer.stall_summary().values()))
    # Each simulated core became a named Perfetto process.
    process_pids = {e["pid"] for e in events
                    if e["ph"] == "M" and e["name"] == "process_name"}
    assert process_pids == {2000 + e.core for e in exec_tracer.events}


def test_combined_trace_serializes(tmp_path):
    exec_tracer = run_traced_kernel()
    tracer = Tracer()
    with tracer.span("kernel", cat="kernel"):
        pass
    path = tracer.save(tmp_path / "combined.json",
                       execution_trace_events(exec_tracer))
    doc = json.loads(path.read_text())
    cats = {e.get("cat") for e in doc["traceEvents"] if e["ph"] == "X"}
    assert "kernel" in cats and "stall" in cats


def test_record_stall_duck_typing():
    """Objects with only ``record`` still work as kernel tracers."""

    class LegacyTracer:
        def __init__(self):
            self.calls = 0

        def record(self, *a):
            self.calls += 1

    legacy = LegacyTracer()
    run_single(make_algorithm("pagerank", iterations=1),
               powerlaw_graph(60, 240, seed=5), "vertex_map",
               config=GPUConfig.vortex_tiny(), max_iterations=1,
               exec_tracer=legacy)
    assert legacy.calls > 0
