"""UDF spec validation, reference oracles, GraphProcessor driver."""

import numpy as np
import pytest

from repro.errors import AlgorithmError, ScheduleError
from repro.frontend import Algorithm, Direction, GraphProcessor, reference
from repro.algorithms import make_algorithm, algorithm_names
from repro.graph import chain_graph, from_edge_list, star_graph
from repro.sim import GPUConfig
from repro.sim.stats import KernelStats

CFG = GPUConfig.vortex_tiny()


# ----------------------------------------------------------------------
# Reference implementations
# ----------------------------------------------------------------------
def test_pagerank_sums_to_at_most_one(small_powerlaw):
    pr = reference.pagerank(small_powerlaw, iterations=30)
    assert 0.0 < pr.sum() <= 1.0 + 1e-9
    assert np.all(pr > 0)


def test_pagerank_uniform_on_cycle():
    g = from_edge_list([(0, 1), (1, 2), (2, 0)], num_vertices=3)
    pr = reference.pagerank(g, iterations=50)
    np.testing.assert_allclose(pr, [1 / 3] * 3, atol=1e-6)


def test_pagerank_tol_early_stop():
    g = from_edge_list([(0, 1), (1, 0)], num_vertices=2)
    a = reference.pagerank(g, iterations=500, tol=1e-12)
    b = reference.pagerank(g, iterations=500)
    np.testing.assert_allclose(a, b, atol=1e-9)


def test_bfs_levels_on_chain():
    g = chain_graph(5)
    assert reference.bfs_levels(g, 0).tolist() == [0, 1, 2, 3, 4]


def test_bfs_source_validation():
    with pytest.raises(AlgorithmError):
        reference.bfs_levels(chain_graph(3), 99)


def test_sssp_matches_bfs_on_unit_weights():
    g = chain_graph(6)
    dist = reference.sssp(g, 0)
    levels = reference.bfs_levels(g, 0)
    np.testing.assert_allclose(dist, levels)


def test_sssp_rejects_negative_weights():
    g = from_edge_list([(0, 1, -1.0)], num_vertices=2)
    with pytest.raises(AlgorithmError):
        reference.sssp(g, 0)


def test_cc_on_two_components():
    g = from_edge_list([(0, 1), (1, 0), (2, 3), (3, 2)], num_vertices=4)
    assert reference.connected_components(g).tolist() == [0, 0, 2, 2]


def test_gcn_layer_shapes(small_powerlaw):
    n = small_powerlaw.num_vertices
    x = np.ones((n, 3))
    w = np.eye(3)
    out = reference.gcn_layer(small_powerlaw, x, w)
    assert out.shape == (n, 3)


def test_gcn_layer_validation(small_powerlaw):
    with pytest.raises(AlgorithmError):
        reference.gcn_layer(small_powerlaw, np.ones((3, 2)), np.eye(2))
    n = small_powerlaw.num_vertices
    with pytest.raises(AlgorithmError):
        reference.gcn_layer(small_powerlaw, np.ones((n, 2)), np.eye(3))


# ----------------------------------------------------------------------
# Algorithm spec
# ----------------------------------------------------------------------
def test_algorithm_names():
    assert algorithm_names() == ["pagerank", "bfs", "sssp", "cc"]


def test_make_algorithm_aliases():
    assert make_algorithm("pr").name == "pagerank"
    assert make_algorithm("connected_components").name == "cc"


def test_make_algorithm_unknown():
    with pytest.raises(AlgorithmError):
        make_algorithm("dijkstra")


def test_algorithm_factory_validation():
    with pytest.raises(AlgorithmError):
        make_algorithm("pagerank", damping=1.5)
    with pytest.raises(AlgorithmError):
        make_algorithm("pagerank", iterations=0)
    with pytest.raises(AlgorithmError):
        make_algorithm("bfs", source=-1)
    with pytest.raises(AlgorithmError):
        make_algorithm("sssp", max_rounds=0)
    with pytest.raises(AlgorithmError):
        make_algorithm("cc", max_rounds=0)


def test_make_state_checks_declared_arrays(small_star):
    alg = make_algorithm("pagerank")
    state = alg.make_state(small_star)
    assert set(state) >= {"rank", "contrib", "acc"}


def test_make_state_missing_array_raises(small_star):
    alg = Algorithm(
        name="broken",
        direction=Direction.PULL,
        init_state=lambda g: {"x": np.zeros(g.num_vertices)},
        edge_update=lambda *a: None,
        apply_update=lambda *a: 0,
        converged=lambda *a: True,
        result_array="missing",
        acc_array="x",
    )
    with pytest.raises(AlgorithmError):
        alg.make_state(small_star)


def test_filtered_degrees_zeroes_filtered(small_star):
    # top-down: only the frontier (the source, at depth 0) expands
    alg = make_algorithm("bfs", source=0)
    state = alg.make_state(small_star)
    vids = np.array([0, 1, 2])
    degs = np.array([5, 5, 5])
    out = alg.filtered_degrees(state, vids, degs)
    assert out.tolist() == [5, 0, 0]
    assert degs.tolist() == [5, 5, 5]  # input untouched

    # bottom-up: visited vertices (the source) stop gathering
    alg_bu = make_algorithm("bfs", source=0, variant="bottom_up")
    state_bu = alg_bu.make_state(small_star)
    out_bu = alg_bu.filtered_degrees(state_bu, vids, degs)
    assert out_bu.tolist() == [0, 5, 5]


def test_bfs_source_out_of_range_at_init(small_star):
    alg = make_algorithm("bfs", source=10_000)
    with pytest.raises(AlgorithmError):
        alg.make_state(small_star)


# ----------------------------------------------------------------------
# GraphProcessor
# ----------------------------------------------------------------------
def test_unknown_schedule_rejected():
    with pytest.raises(ScheduleError):
        GraphProcessor(make_algorithm("pagerank"), schedule="quantum")


def test_weaver_penalty_applied_only_to_sparseweaver():
    pr = make_algorithm("pagerank")
    sw = GraphProcessor(pr, schedule="sparseweaver", config=CFG)
    vm = GraphProcessor(pr, schedule="vertex_map", config=CFG)
    assert sw.config.l1.size_bytes == CFG.l1.size_bytes // 2
    assert vm.config.l1.size_bytes == CFG.l1.size_bytes


def test_weaver_penalty_can_be_disabled():
    proc = GraphProcessor(
        make_algorithm("pagerank"), schedule="sparseweaver", config=CFG,
        apply_weaver_penalty=False,
    )
    assert proc.config.l1.size_bytes == CFG.l1.size_bytes


def test_run_result_fields(small_star):
    proc = GraphProcessor(
        make_algorithm("pagerank", iterations=2), schedule="vertex_map",
        config=CFG,
    )
    res = proc.run(small_star)
    assert res.iterations == 2
    assert res.values.shape == (small_star.num_vertices,)
    assert res.total_cycles > 0
    assert isinstance(res.stats, KernelStats)


def test_per_iteration_stats(small_star):
    proc = GraphProcessor(
        make_algorithm("pagerank", iterations=3), schedule="vertex_map",
        config=CFG,
    )
    res = proc.run(small_star, collect_per_iteration=True)
    assert len(res.per_iteration) == 3
    assert sum(s.total_cycles for s in res.per_iteration) <= res.total_cycles


def test_max_iterations_caps_run(small_star):
    proc = GraphProcessor(
        make_algorithm("pagerank", iterations=50), schedule="vertex_map",
        config=CFG,
    )
    res = proc.run(small_star, max_iterations=2)
    assert res.iterations == 2


def test_symmetrize_option():
    g = from_edge_list([(0, 1), (1, 2)], num_vertices=3)  # directed path
    proc = GraphProcessor(make_algorithm("cc"), schedule="vertex_map",
                          config=CFG, symmetrize=True)
    res = proc.run(g)
    assert res.values.astype(int).tolist() == [0, 0, 0]


def test_time_flags_skip_init_apply_kernels(small_star):
    from repro.sim.instructions import Phase

    timed = GraphProcessor(
        make_algorithm("pagerank", iterations=2), schedule="vertex_map",
        config=CFG,
    ).run(small_star)
    untimed = GraphProcessor(
        make_algorithm("pagerank", iterations=2), schedule="vertex_map",
        config=CFG, time_init=False, time_apply=False,
    ).run(small_star)
    assert untimed.stats.instructions < timed.stats.instructions
    assert untimed.stats.phase_cycles.get(Phase.INIT, 0) == 0
    assert untimed.stats.phase_cycles.get(Phase.APPLY, 0) == 0
    assert timed.stats.phase_cycles[Phase.APPLY] > 0
    np.testing.assert_allclose(untimed.values, timed.values)


def test_values_are_copies(small_star):
    proc = GraphProcessor(
        make_algorithm("pagerank", iterations=1), schedule="vertex_map",
        config=CFG,
    )
    res = proc.run(small_star)
    res.values[:] = -1
    assert not np.array_equal(res.values, res.state["rank"])
