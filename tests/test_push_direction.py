"""Push-direction kernels (Fig. 17's other half)."""

import numpy as np
import pytest

from repro.algorithms import make_algorithm
from repro.errors import AlgorithmError
from repro.frontend import GraphProcessor, reference
from repro.graph import powerlaw_graph, road_grid_graph
from repro.sched import ALL_SCHEDULES
from repro.sim import GPUConfig
from repro.sim.instructions import Op, Phase

CFG = GPUConfig.vortex_tiny()
GRAPH = powerlaw_graph(200, 900, seed=23)  # symmetric by construction


@pytest.mark.parametrize("schedule", ALL_SCHEDULES)
def test_push_pagerank_matches_reference(schedule):
    ref = reference.pagerank(GRAPH, iterations=3)
    res = GraphProcessor(
        make_algorithm("pagerank", iterations=3, direction="push"),
        schedule=schedule, config=CFG,
    ).run(GRAPH)
    np.testing.assert_allclose(res.values, ref, atol=1e-9)


def test_push_equals_pull_functionally():
    pull = GraphProcessor(
        make_algorithm("pagerank", iterations=4, direction="pull"),
        schedule="sparseweaver", config=CFG,
    ).run(GRAPH)
    push = GraphProcessor(
        make_algorithm("pagerank", iterations=4, direction="push"),
        schedule="sparseweaver", config=CFG,
    ).run(GRAPH)
    np.testing.assert_allclose(pull.values, push.values, atol=1e-9)


def test_push_vertex_map_needs_atomics():
    """Scatter accumulation removes vm's no-atomic advantage."""
    pull = GraphProcessor(
        make_algorithm("pagerank", iterations=1), schedule="vertex_map",
        config=CFG, time_init=False, time_apply=False,
    ).run(GRAPH)
    push = GraphProcessor(
        make_algorithm("pagerank", iterations=1, direction="push"),
        schedule="vertex_map", config=CFG,
        time_init=False, time_apply=False,
    ).run(GRAPH)
    assert pull.stats.op_counts.get(Op.ATOMIC, 0) == 0
    assert push.stats.op_counts.get(Op.ATOMIC, 0) > 0
    assert pull.stats.op_counts.get(Op.STORE, 0) > 0


def test_push_registration_phase_present():
    res = GraphProcessor(
        make_algorithm("pagerank", iterations=1, direction="push"),
        schedule="sparseweaver", config=CFG,
    ).run(GRAPH)
    assert res.stats.phase_cycles.get(Phase.REGISTRATION, 0) > 0


def test_bad_direction_rejected():
    with pytest.raises(AlgorithmError):
        make_algorithm("pagerank", direction="sideways")


def test_top_down_bfs_is_push():
    from repro.frontend.udf import Direction

    alg = make_algorithm("bfs", source=0)
    assert alg.direction is Direction.PUSH
    assert alg.accumulate_target == "other"


def test_push_pull_similar_on_symmetric_road():
    """On a symmetric near-regular graph the directions cost alike."""
    g = road_grid_graph(10, seed=3, drop_fraction=0.0)
    cycles = {}
    for direction in ("pull", "push"):
        cycles[direction] = GraphProcessor(
            make_algorithm("pagerank", iterations=2, direction=direction),
            schedule="sparseweaver", config=CFG,
        ).run(g).stats.total_cycles
    ratio = cycles["push"] / cycles["pull"]
    assert 0.5 < ratio < 2.0
