"""Metrics registry: instruments, no-op path, snapshot/merge, workers."""

import json

import pytest

from repro.graph import powerlaw_graph
from repro.obs.metrics import (DEFAULT_BUCKETS, MetricsRegistry,
                               disable_metrics, enable_metrics,
                               get_registry, metrics_enabled)
from repro.runtime import AlgorithmSpec, BatchEngine, GraphSpec, JobSpec
from repro.sim import GPUConfig


@pytest.fixture
def registry():
    return MetricsRegistry(enabled=True)


@pytest.fixture
def global_metrics():
    """Enable the process-global registry for one test, then restore."""
    was_enabled = metrics_enabled()
    registry = enable_metrics()
    registry.clear()
    yield registry
    registry.clear()
    if not was_enabled:
        disable_metrics()


# ----------------------------------------------------------------------
def test_counter_inc_and_labels(registry):
    c = registry.counter("jobs_total", "help text")
    c.inc()
    c.inc(2, status="ok")
    c.inc(status="failed")
    assert c.value() == 1
    assert c.value(status="ok") == 2
    assert c.value(status="failed") == 1
    assert c.total() == 4


def test_counter_rejects_decrease(registry):
    c = registry.counter("n")
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_set_and_inc(registry):
    g = registry.gauge("in_flight")
    g.set(3)
    g.inc(-1)
    assert g.value() == 2
    g.set(7, pool="a")
    assert g.value(pool="a") == 7


def test_histogram_buckets_and_overflow(registry):
    h = registry.histogram("wall", buckets=(0.1, 1.0))
    for v in (0.05, 0.5, 0.5, 5.0):
        h.observe(v)
    assert h.count() == 4
    assert h.sum() == pytest.approx(6.05)
    series = h.values[()]
    assert series["counts"] == [1, 2, 1]  # <=0.1, <=1.0, overflow


def test_same_name_different_kind_rejected(registry):
    registry.counter("x")
    with pytest.raises(ValueError):
        registry.gauge("x")


def test_disabled_registry_is_noop():
    registry = MetricsRegistry(enabled=False)
    c = registry.counter("a")
    c.inc(5)
    registry.gauge("b").set(1)
    registry.histogram("c").observe(1)
    assert registry.snapshot() == {"metrics": {}}


def test_snapshot_round_trips_through_json(registry):
    registry.counter("c").inc(3, k="v")
    registry.gauge("g").set(1.5)
    registry.histogram("h").observe(0.01)
    snap = json.loads(json.dumps(registry.snapshot()))
    other = MetricsRegistry(enabled=True)
    other.merge_snapshot(snap)
    assert other.get("c").value(k="v") == 3
    assert other.get("g").value() == 1.5
    assert other.get("h").count() == 1


def test_merge_adds_counters_histograms_overwrites_gauges(registry):
    registry.counter("c").inc(2)
    registry.gauge("g").set(1)
    registry.histogram("h").observe(0.5)
    snap = registry.snapshot()
    registry.merge_snapshot(snap)  # merge onto itself => doubled
    assert registry.get("c").value() == 4
    assert registry.get("g").value() == 1  # last write wins, not summed
    assert registry.get("h").count() == 2
    assert registry.get("h").sum() == pytest.approx(1.0)


def test_merge_bucket_mismatch_rejected(registry):
    registry.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
    other = MetricsRegistry(enabled=True)
    other.histogram("h", buckets=DEFAULT_BUCKETS).observe(0.5)
    with pytest.raises(ValueError):
        other.merge_snapshot(registry.snapshot())


def test_format_lists_every_series(registry):
    registry.counter("c").inc(2, status="ok")
    registry.histogram("h").observe(0.2)
    text = registry.format()
    assert "c{status=ok} 2" in text
    assert "h count=1" in text


def test_save_writes_snapshot(tmp_path, registry):
    registry.counter("c").inc()
    path = registry.save(tmp_path / "metrics.json")
    doc = json.loads(path.read_text())
    assert doc["metrics"]["c"]["series"] == [{"labels": {}, "value": 1.0}]


# ----------------------------------------------------------------------
def _two_specs():
    algorithm = AlgorithmSpec.of("pagerank", iterations=1)
    graph = GraphSpec.inline(powerlaw_graph(100, 400, seed=3), name="pl")
    return [
        JobSpec(algorithm=algorithm, graph=graph, schedule=sched,
                config=GPUConfig.vortex_tiny(), max_iterations=1)
        for sched in ("vertex_map", "warp_map")
    ]


def test_engine_publishes_job_counters_serial(global_metrics):
    outcomes = BatchEngine(jobs=1).run(_two_specs())
    assert all(o.ok for o in outcomes)
    snap = global_metrics.snapshot()["metrics"]
    assert global_metrics.get("engine_jobs_total").value(status="ok") == 2
    assert global_metrics.get("engine_jobs_in_flight").value() == 0
    # The simulator publishes through the same registry on the serial
    # path, so kernel counters land here too.
    assert global_metrics.get("sim_kernels_total").total() > 0
    assert "sim_cycles_total" in snap
    total = sum(o.summary.total_cycles for o in outcomes)
    assert global_metrics.get("sim_cycles_total").total() == total


def test_worker_metrics_merge_into_parent(global_metrics):
    """ProcessPool workers ship snapshots that fold into the parent."""
    specs = _two_specs()
    outcomes = BatchEngine(jobs=2).run(specs)
    assert all(o.status == "ok" for o in outcomes)
    total = sum(o.summary.total_cycles for o in outcomes)
    assert global_metrics.get("sim_cycles_total").total() == total
    assert global_metrics.get("sim_kernels_total").total() > 0
    stalls = global_metrics.get("sim_stall_cycles_total")
    assert stalls is not None and stalls.total() > 0
    assert global_metrics.get("engine_jobs_total").value(status="ok") == 2
    assert global_metrics.get("engine_jobs_in_flight").value() == 0


def test_parallel_metrics_match_serial(global_metrics):
    specs = _two_specs()
    BatchEngine(jobs=1).run(specs)
    serial = {
        name: entry for name, entry in
        global_metrics.snapshot()["metrics"].items()
        if name.startswith("sim_")
    }
    global_metrics.clear()
    BatchEngine(jobs=2).run(specs)
    parallel = {
        name: entry for name, entry in
        global_metrics.snapshot()["metrics"].items()
        if name.startswith("sim_")
    }
    assert serial == parallel


def test_kernel_stats_publish_via_global(global_metrics):
    from repro.bench import run_single
    from repro.algorithms import make_algorithm

    run = run_single(make_algorithm("pagerank", iterations=1),
                     powerlaw_graph(80, 300, seed=1), "vertex_map",
                     config=GPUConfig.vortex_tiny(), max_iterations=1)
    assert get_registry() is global_metrics
    assert global_metrics.get("sim_cycles_total").total() == (
        run.stats.total_cycles)
    phases = global_metrics.get("sim_phase_cycles_total")
    assert phases.total() == sum(run.stats.phase_cycles.values())


# ----------------------------------------------------------------------
# Percentile estimation over bucketed histograms
# ----------------------------------------------------------------------
def test_percentile_from_counts_basic():
    from repro.obs.metrics import percentile_from_counts

    bounds = (1.0, 2.0, 4.0)
    counts = [5, 3, 1, 1]  # <=1, <=2, <=4, overflow
    assert percentile_from_counts(bounds, counts, 50) == 1.0
    assert percentile_from_counts(bounds, counts, 80) == 2.0
    assert percentile_from_counts(bounds, counts, 90) == 4.0
    # The overflow bucket has no upper bound; report the last finite.
    assert percentile_from_counts(bounds, counts, 100) == 4.0


def test_percentile_from_counts_edges():
    from repro.obs.metrics import percentile_from_counts

    assert percentile_from_counts((1.0, 2.0), [0, 0, 0], 50) == 0.0
    # q=0 lands in the first non-empty bucket.
    assert percentile_from_counts((1.0, 2.0), [0, 3, 0], 0) == 2.0
    with pytest.raises(ValueError):
        percentile_from_counts((1.0,), [1, 0], 101)
    with pytest.raises(ValueError):
        percentile_from_counts((1.0,), [1, 0], -1)


def test_histogram_percentile_method(registry):
    h = registry.histogram("wall", buckets=(0.1, 1.0, 10.0))
    for v in (0.05, 0.05, 0.5, 0.5, 0.5, 5.0):
        h.observe(v)
    assert h.percentile(50) == 1.0
    assert h.percentile(99) == 10.0
    h.observe(0.01, pool="a")
    assert h.percentile(50, pool="a") == 0.1
    assert h.percentile(50, pool="missing") == 0.0


def test_merge_snapshot_tolerates_dead_worker_payloads(registry):
    """Regression: a worker that died before recording anything ships
    None, a non-dict, or a snapshot with 'metrics' None/empty —
    merging any of those must be a silent no-op, never a raise."""
    registry.counter("jobs_total", "jobs").inc()
    for snap in (None, "garbage", 3.5, {}, {"metrics": None},
                 {"metrics": {}}):
        registry.merge_snapshot(snap)
    snap = registry.snapshot()
    assert snap["metrics"]["jobs_total"]["series"][0]["value"] == 1
