"""KernelStats accounting and instruction helper coverage."""

import numpy as np
import pytest

from repro.sim.instructions import (
    Instr,
    Op,
    Phase,
    PHASE_LABELS,
    alu,
    as_index_array,
    atomic,
    counter,
    eghw_fetch,
    eghw_push,
    load,
    nop,
    shmem_load,
    shmem_store,
    store,
    sync,
    weaver_dec_id,
    weaver_dec_loc,
    weaver_reg,
    weaver_skip,
)
from repro.sim.stats import (
    CacheStats,
    KernelStats,
    StallCat,
    STALL_LABELS,
    stall_category,
)


# ----------------------------------------------------------------------
# Instruction helpers
# ----------------------------------------------------------------------
def test_factory_helpers_set_ops():
    assert alu(Phase.GATHER).op == Op.ALU
    assert load(Phase.GATHER, None, [1]).op == Op.LOAD
    assert store(Phase.GATHER, None, [1]).op == Op.STORE
    assert shmem_load(Phase.SCHEDULE).op == Op.SHMEM_LOAD
    assert shmem_store(Phase.SCHEDULE).op == Op.SHMEM_STORE
    assert atomic(Phase.GATHER, None, [1]).op == Op.ATOMIC
    assert sync(Phase.OTHER).op == Op.SYNC
    assert weaver_reg(Phase.REGISTRATION, []).op == Op.WEAVER_REG
    assert weaver_dec_id(Phase.SCHEDULE).op == Op.WEAVER_DEC_ID
    assert weaver_dec_loc(Phase.SCHEDULE).op == Op.WEAVER_DEC_LOC
    assert weaver_skip(Phase.GATHER, 3).payload == 3
    assert eghw_push(Phase.REGISTRATION, [1]).op == Op.EGHW_PUSH
    assert eghw_fetch(Phase.SCHEDULE).op == Op.EGHW_FETCH
    assert counter("x", 2).payload == ("x", 2)
    assert nop().op == Op.NOP


def test_alu_count_carried():
    assert alu(Phase.GATHER, 7).count == 7


def test_as_index_array_normalizes():
    assert as_index_array(5).tolist() == [5]
    assert as_index_array([1, 2]).dtype == np.int64
    assert as_index_array(np.array([3])).tolist() == [3]


def test_every_phase_has_label():
    for phase in Phase:
        assert phase in PHASE_LABELS


def test_instr_repr():
    text = repr(Instr(Op.ALU, Phase.GATHER, count=3))
    assert "ALU" in text and "count=3" in text


# ----------------------------------------------------------------------
# Stall taxonomy
# ----------------------------------------------------------------------
def test_stall_categories_cover_ops():
    assert stall_category(Op.LOAD) == StallCat.MEMORY
    assert stall_category(Op.SHMEM_LOAD) == StallCat.SHARED
    assert stall_category(Op.SYNC) == StallCat.SYNC
    assert stall_category(Op.WEAVER_DEC_ID) == StallCat.WEAVER
    assert stall_category(Op.EGHW_FETCH) == StallCat.EGHW
    assert stall_category(Op.ALU) == StallCat.EXEC_DEP


def test_every_stall_has_label():
    for cat in StallCat:
        assert cat in STALL_LABELS


# ----------------------------------------------------------------------
# KernelStats
# ----------------------------------------------------------------------
def test_merge_accumulates_everything():
    a = KernelStats(total_cycles=100, instructions=10, warps_launched=2)
    a.phase_cycles[Phase.GATHER] = 50
    a.stall_cycles[StallCat.MEMORY] = 30
    a.op_counts[Op.LOAD] = 5
    a.counters["warp_iterations"] = 7
    a.cache["L1"] = CacheStats(hits=3, misses=1)
    b = KernelStats(total_cycles=40, instructions=4, warps_launched=2)
    b.phase_cycles[Phase.GATHER] = 20
    b.stall_cycles[StallCat.MEMORY] = 10
    b.op_counts[Op.LOAD] = 2
    b.counters["warp_iterations"] = 3
    b.cache["L1"] = CacheStats(hits=1, misses=1)
    a.merge(b)
    assert a.total_cycles == 140
    assert a.instructions == 14
    assert a.phase_cycles[Phase.GATHER] == 70
    assert a.stall_cycles[StallCat.MEMORY] == 40
    assert a.op_counts[Op.LOAD] == 7
    assert a.warp_iterations == 10
    assert a.cache["L1"].hits == 4


def test_issue_cycles():
    s = KernelStats(total_cycles=100)
    s.stall_cycles[StallCat.MEMORY] = 60
    assert s.issue_cycles == 40


def test_breakdowns_use_labels():
    s = KernelStats()
    s.phase_cycles[Phase.SCHEDULE] = 5
    s.stall_cycles[StallCat.WEAVER] = 3
    assert s.phase_breakdown() == {"Work ID calc": 5}
    assert s.stall_breakdown() == {"Weaver unit": 3}


def test_summary_mentions_counts():
    s = KernelStats(total_cycles=9, instructions=2, warps_launched=1)
    s.cache["L1"] = CacheStats(hits=1, misses=1)
    text = s.summary()
    assert "cycles=9" in text
    assert "L1 1/2 hits" in text


def test_cache_stats_properties():
    cs = CacheStats(hits=3, misses=1)
    assert cs.accesses == 4
    assert cs.hit_rate == pytest.approx(0.75)
    assert CacheStats().hit_rate == 0.0


def test_to_dict_is_json_serializable():
    import json

    s = KernelStats(total_cycles=10, instructions=3, warps_launched=1)
    s.phase_cycles[Phase.GATHER] = 7
    s.stall_cycles[StallCat.MEMORY] = 2
    s.op_counts[Op.LOAD] = 3
    s.counters["warp_iterations"] = 4
    s.cache["L1"] = CacheStats(hits=2, misses=1)
    s.dram_accesses = 1
    blob = json.dumps(s.to_dict())
    data = json.loads(blob)
    assert data["total_cycles"] == 10
    assert data["phases"]["Gather & Sum"] == 7
    assert data["stalls"]["Memory (long scoreboard)"] == 2
    assert data["ops"]["LOAD"] == 3
    assert data["cache"]["L1"]["hits"] == 2
