"""Vertex reordering utilities: permutation algebra + locality."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.frontend import reference
from repro.graph import chain_graph, from_edge_list, powerlaw_graph
from repro.graph.reorder import (
    apply_permutation,
    bfs_order,
    degree_order,
    locality_score,
    random_order,
)


@pytest.fixture
def g():
    return powerlaw_graph(80, 400, seed=11).undirected()


def test_apply_identity(g):
    perm = np.arange(g.num_vertices)
    assert apply_permutation(g, perm) == g


def test_apply_permutation_preserves_structure(g):
    perm = random_order(g, seed=3)
    rg = apply_permutation(g, perm)
    assert rg.num_edges == g.num_edges
    # degree multiset preserved
    assert sorted(rg.degrees.tolist()) == sorted(g.degrees.tolist())
    # specific vertex keeps its degree under the relabeling
    v = 5
    assert rg.degree(int(perm[v])) == g.degree(v)


def test_apply_permutation_preserves_pagerank(g):
    perm = random_order(g, seed=7)
    rg = apply_permutation(g, perm)
    pr = reference.pagerank(g, iterations=20)
    pr_r = reference.pagerank(rg, iterations=20)
    np.testing.assert_allclose(pr_r[perm], pr, atol=1e-9)


def test_permutation_validation(g):
    with pytest.raises(GraphError):
        apply_permutation(g, np.zeros(3))
    with pytest.raises(GraphError):
        apply_permutation(g, np.zeros(g.num_vertices, dtype=int))


def test_degree_order_places_hubs_first(g):
    perm = degree_order(g)
    rg = apply_permutation(g, perm)
    degs = rg.degrees
    assert degs[0] == g.degrees.max()
    assert np.all(np.diff(degs) <= 0)  # non-increasing


def test_degree_order_ascending(g):
    rg = apply_permutation(g, degree_order(g, descending=False))
    assert np.all(np.diff(rg.degrees) >= 0)


def test_bfs_order_on_chain_is_near_identity():
    g = chain_graph(12)
    perm = bfs_order(g, source=0)
    assert perm.tolist() == list(range(12))


def test_bfs_order_covers_components():
    g = from_edge_list([(0, 1), (1, 0), (3, 4), (4, 3)], num_vertices=5)
    perm = bfs_order(g, source=0)
    assert sorted(perm.tolist()) == list(range(5))


def test_bfs_order_validation():
    with pytest.raises(GraphError):
        bfs_order(chain_graph(3), source=9)


def test_bfs_order_improves_locality_over_random(g):
    shuffled = apply_permutation(g, random_order(g, seed=1))
    ordered = apply_permutation(shuffled, bfs_order(shuffled))
    assert locality_score(ordered) < locality_score(shuffled)


def test_locality_score_bounds():
    g = chain_graph(10)
    assert 0.0 < locality_score(g) < 1.0
    assert locality_score(from_edge_list([], num_vertices=3)) == 0.0
