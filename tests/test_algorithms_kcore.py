"""k-core decomposition: oracle sanity and simulated peeling."""

import numpy as np
import pytest

from repro.algorithms.kcore import KCoreResult, kcore_reference, run_kcore
from repro.errors import AlgorithmError
from repro.graph import (
    chain_graph,
    complete_graph,
    from_edge_list,
    powerlaw_graph,
    star_graph,
)
from repro.sched import ALL_SCHEDULES
from repro.sim import GPUConfig

CFG = GPUConfig.vortex_tiny()


# ----------------------------------------------------------------------
# Reference oracle
# ----------------------------------------------------------------------
def test_reference_chain_is_1core():
    assert kcore_reference(chain_graph(6)).tolist() == [1] * 6


def test_reference_complete_graph():
    g = complete_graph(5)
    assert kcore_reference(g).tolist() == [4] * 5


def test_reference_star_leaves_are_1core():
    core = kcore_reference(star_graph(6))
    assert core[0] == 1          # hub falls with its leaves
    assert all(core[1:] == 1)


def test_reference_triangle_with_tail():
    # triangle 0-1-2 (2-core) with a pendant 3 (1-core)
    g = from_edge_list(
        [(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0), (2, 3), (3, 2)],
        num_vertices=4,
    )
    assert kcore_reference(g).tolist() == [2, 2, 2, 1]


# ----------------------------------------------------------------------
# Simulated peeling
# ----------------------------------------------------------------------
@pytest.mark.parametrize("schedule", ALL_SCHEDULES)
def test_kcore_matches_reference(schedule):
    g = powerlaw_graph(100, 400, exponent=2.0, seed=19)
    ref = kcore_reference(g)
    res = run_kcore(g, schedule=schedule, config=CFG)
    assert res.core_numbers.tolist() == ref.tolist()


def test_kcore_result_fields():
    g = powerlaw_graph(80, 320, seed=5)
    res = run_kcore(g, schedule="sparseweaver", config=CFG)
    assert isinstance(res, KCoreResult)
    assert res.total_cycles > 0
    assert res.rounds > 0
    assert res.degeneracy == kcore_reference(g).max()


def test_kcore_disconnected():
    g = from_edge_list([(0, 1), (1, 0), (2, 3), (3, 2)], num_vertices=5)
    res = run_kcore(g, schedule="vertex_map", config=CFG)
    assert res.core_numbers.tolist() == [1, 1, 1, 1, 0]


def test_kcore_validation():
    with pytest.raises(AlgorithmError):
        run_kcore(chain_graph(4), max_k=0, config=CFG)


def test_kcore_sparseweaver_competitive_on_skew():
    g = powerlaw_graph(400, 2400, exponent=1.9, seed=12)
    cfg = GPUConfig.vortex_bench()
    vm = run_kcore(g, schedule="vertex_map", config=cfg)
    sw = run_kcore(g, schedule="sparseweaver", config=cfg)
    assert sw.core_numbers.tolist() == vm.core_numbers.tolist()
    assert sw.total_cycles < vm.total_cycles
