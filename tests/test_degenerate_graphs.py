"""Degenerate inputs through the full pipeline: no schedule may crash
or disagree on empty graphs, isolated vertices, or self-contained
pairs."""

import numpy as np
import pytest

from repro.algorithms import make_algorithm
from repro.frontend import GraphProcessor, reference
from repro.graph import from_edge_list
from repro.sched import EXTENDED_SCHEDULES
from repro.sim import GPUConfig

CFG = GPUConfig.vortex_tiny()

CASES = {
    "single_vertex": from_edge_list([], num_vertices=1),
    "one_edge_pair": from_edge_list([(0, 1), (1, 0)], num_vertices=2),
    "isolated_tail": from_edge_list([(0, 1), (1, 0)], num_vertices=6),
    "self_loop_free_triangle": from_edge_list(
        [(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0)], num_vertices=3
    ),
}


@pytest.mark.parametrize("schedule", EXTENDED_SCHEDULES)
@pytest.mark.parametrize("case", list(CASES))
def test_pagerank_degenerate(schedule, case):
    g = CASES[case]
    ref = reference.pagerank(g, iterations=2)
    res = GraphProcessor(
        make_algorithm("pagerank", iterations=2), schedule=schedule,
        config=CFG,
    ).run(g)
    np.testing.assert_allclose(res.values, ref, atol=1e-12)


@pytest.mark.parametrize("schedule", ["vertex_map", "sparseweaver",
                                      "eghw"])
def test_empty_graph(schedule):
    g = from_edge_list([], num_vertices=0)
    res = GraphProcessor(
        make_algorithm("pagerank", iterations=1), schedule=schedule,
        config=CFG,
    ).run(g)
    assert res.values.shape == (0,)


@pytest.mark.parametrize("schedule", ["vertex_map", "sparseweaver"])
def test_edgeless_graph(schedule):
    g = from_edge_list([], num_vertices=5)
    res = GraphProcessor(
        make_algorithm("pagerank", iterations=2), schedule=schedule,
        config=CFG,
    ).run(g)
    # no mass moves: every vertex holds the teleport share
    np.testing.assert_allclose(res.values, (1 - 0.85) / 5)


@pytest.mark.parametrize("schedule", ["vertex_map", "sparseweaver"])
def test_bfs_from_isolated_source(schedule):
    g = from_edge_list([(1, 2), (2, 1)], num_vertices=3)
    res = GraphProcessor(
        make_algorithm("bfs", source=0), schedule=schedule, config=CFG,
    ).run(g)
    assert res.values.tolist() == [0, -1, -1]


def test_single_vertex_cc():
    g = CASES["single_vertex"]
    res = GraphProcessor(make_algorithm("cc"), schedule="sparseweaver",
                         config=CFG).run(g)
    assert res.values.astype(int).tolist() == [0]
