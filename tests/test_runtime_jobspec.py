"""JobSpec content addressing: determinism and sensitivity."""

import dataclasses

import pytest

from repro.errors import ConfigError, ReproError
from repro.graph import powerlaw_graph
from repro.runtime import AlgorithmSpec, GraphSpec, JobSpec, graph_digest
from repro.sim import GPUConfig


def make_spec(**overrides):
    base = dict(
        algorithm=AlgorithmSpec.of("pagerank", iterations=2),
        graph=GraphSpec.from_dataset("bio-human", scale=0.2),
        schedule="vertex_map",
        config=GPUConfig.vortex_tiny(),
        max_iterations=2,
    )
    base.update(overrides)
    return JobSpec(**base)


def test_same_spec_same_hash():
    assert make_spec().content_hash() == make_spec().content_hash()


def test_hash_is_hex_sha256():
    h = make_spec().content_hash()
    assert len(h) == 64
    int(h, 16)  # parses as hex


@pytest.mark.parametrize("overrides", [
    {"schedule": "edge_map"},
    {"max_iterations": 3},
    {"symmetrize": True},
    {"seed": 7},
    {"algorithm": AlgorithmSpec.of("pagerank", iterations=3)},
    {"algorithm": AlgorithmSpec.of("bfs", source=0)},
    {"graph": GraphSpec.from_dataset("bio-human", scale=0.3)},
    {"graph": GraphSpec.from_dataset("road-ca", scale=0.2)},
    {"config": GPUConfig.vortex_bench()},
    {"config": dataclasses.replace(GPUConfig.vortex_tiny(),
                                   dram_latency=101)},
])
def test_any_field_change_changes_hash(overrides):
    assert make_spec().content_hash() != make_spec(
        **overrides).content_hash()


def test_default_config_normalizes_to_bench_preset():
    explicit = make_spec(config=GPUConfig.vortex_bench())
    implicit = make_spec(config=None)
    assert explicit.content_hash() == implicit.content_hash()


def test_dict_round_trip_preserves_hash():
    spec = make_spec()
    again = JobSpec.from_dict(spec.to_dict())
    assert again == spec
    assert again.content_hash() == spec.content_hash()


def test_inline_graph_digest_tracks_content():
    g1 = powerlaw_graph(100, 400, seed=1)
    g2 = powerlaw_graph(100, 400, seed=1)
    g3 = powerlaw_graph(100, 400, seed=2)
    assert graph_digest(g1) == graph_digest(g2)
    assert graph_digest(g1) != graph_digest(g3)
    s1 = make_spec(graph=GraphSpec.inline(g1))
    s2 = make_spec(graph=GraphSpec.inline(g2))
    s3 = make_spec(graph=GraphSpec.inline(g3))
    assert s1.content_hash() == s2.content_hash()
    assert s1.content_hash() != s3.content_hash()


def test_inline_digest_ignores_lazy_unit_weights():
    g = powerlaw_graph(60, 200, seed=4)
    before = graph_digest(g)
    g.weights  # materializes lazy unit weights
    assert graph_digest(g) == before


def test_algorithm_spec_is_a_factory():
    spec = AlgorithmSpec.of("pagerank", iterations=2)
    alg = spec()
    assert alg.name == "pagerank"
    # Fresh instance per call — trials must not share state.
    assert spec() is not alg


def test_algorithm_spec_rejects_non_scalar_params():
    with pytest.raises(ConfigError):
        AlgorithmSpec.of("pagerank", weights=[1, 2, 3])


def test_graph_spec_builds_dataset_and_generator():
    d = GraphSpec.from_dataset("road-ca", scale=0.2).build()
    assert d.num_vertices > 0
    g = GraphSpec.from_generator("powerlaw_graph", num_vertices=80,
                                 num_edges=200, seed=9).build()
    assert g.num_vertices == 80


def test_inline_spec_refuses_json_round_trip():
    spec = GraphSpec.inline(powerlaw_graph(50, 120, seed=2))
    with pytest.raises(ReproError):
        GraphSpec.from_dict(spec.to_dict())


def test_execute_matches_direct_run():
    from repro.bench import run_single

    g = powerlaw_graph(100, 400, seed=1)
    spec = make_spec(graph=GraphSpec.inline(g))
    direct = run_single(spec.algorithm.build(), g, spec.schedule,
                        config=spec.config,
                        max_iterations=spec.max_iterations)
    assert spec.execute().stats.total_cycles == direct.stats.total_cycles
