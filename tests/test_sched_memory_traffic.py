"""Validate Table I's edge-memory formulas against simulated traffic.

The engine counts elements loaded per named region; one PR gather
iteration must read exactly the traffic Table I attributes to each
scheme: ``2|V| + |E|`` for vertex/warp/cta mapping and SparseWeaver
(two row_ptr entries per vertex + one col entry per edge), ``2|E|``
for edge mapping (both endpoints per edge, no topology reads).
"""

import pytest

from repro.algorithms import make_algorithm
from repro.bench import run_single
from repro.graph import powerlaw_graph
from repro.sim import GPUConfig

CFG = GPUConfig.vortex_tiny()
GRAPH = powerlaw_graph(100, 400, exponent=2.0, seed=33).undirected()


def traffic(schedule, algorithm=None):
    alg = algorithm or make_algorithm("pagerank", iterations=1)
    run = run_single(alg, GRAPH, schedule, config=CFG,
                     time_init=False, time_apply=False)
    return {
        k.split(":", 1)[1]: v
        for k, v in run.stats.counters.items()
        if k.startswith("elements_loaded:")
    }


V = GRAPH.num_vertices
E = GRAPH.num_edges


@pytest.mark.parametrize("schedule",
                         ["vertex_map", "warp_map", "cta_map",
                          "sparseweaver"])
def test_topology_schemes_read_2v_plus_e(schedule):
    t = traffic(schedule)
    assert t["row_ptr"] == 2 * V
    assert t["col_idx"] == E
    assert "edge_src" not in t  # no second-endpoint reads


def test_edge_map_reads_2e():
    t = traffic("edge_map")
    assert t["edge_src"] == E   # the extra |E| endpoint reads
    assert t["col_idx"] == E
    assert "row_ptr" not in t   # no topology reads at all


def test_every_scheme_reads_each_property_once_per_edge():
    for schedule in ("vertex_map", "edge_map", "warp_map", "cta_map",
                     "sparseweaver"):
        t = traffic(schedule)
        assert t["state:contrib"] == E, schedule


def test_eghw_gpu_side_reads_no_topology_or_edges():
    """EGHW's GPU kernel only reads vertex properties; topology and
    edge info flow through the unit (charged on its timeline)."""
    t = traffic("eghw")
    assert "row_ptr" not in t
    assert "col_idx" not in t
    assert t["state:contrib"] == E


def test_weighted_algorithm_adds_weight_traffic():
    alg = make_algorithm("sssp", source=0)
    run = run_single(alg, GRAPH, "sparseweaver", config=CFG,
                     time_init=False, time_apply=False,
                     max_iterations=1)
    t = {
        k.split(":", 1)[1]: v
        for k, v in run.stats.counters.items()
        if k.startswith("elements_loaded:")
    }
    assert t["weights"] == E  # first round touches every edge weight


def test_bfs_frontier_rounds_read_less():
    """Top-down BFS reads far fewer edges than |E| per early round."""
    alg = make_algorithm("bfs", source=0)
    run = run_single(alg, GRAPH, "sparseweaver", config=CFG,
                     time_init=False, time_apply=False,
                     max_iterations=1)
    t = {
        k.split(":", 1)[1]: v
        for k, v in run.stats.counters.items()
        if k.startswith("elements_loaded:")
    }
    # Round 1: only the source's neighbor run is distributed.
    assert t.get("col_idx", 0) == GRAPH.degree(0)
