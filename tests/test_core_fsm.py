"""The Weaver FSM against the paper's Fig. 6 worked example and edge
cases (skips, zero degrees, supernodes, post-end requests)."""

import numpy as np
import pytest

from repro.core import SparseWorkloadTable, WeaverFSM, WeaverState
from repro.errors import WeaverError


def fig6_table():
    """ST of the paper's example: (0,2,1), (2,10,2), (4,30,5)."""
    st = SparseWorkloadTable(16)
    st.register(0, 0, 2, 1)
    st.register(1, 2, 10, 2)
    st.register(2, 4, 30, 5)
    return st


def test_fig6_first_decode_matches_paper():
    fsm = WeaverFSM(fig6_table(), lanes=4)
    r = fsm.decode()
    assert r.vids.tolist() == [0, 2, 2, 4]
    assert r.eids.tolist() == [2, 10, 11, 30]
    assert r.mask.all()


def test_fig6_state_walk():
    fsm = WeaverFSM(fig6_table(), lanes=4)
    r = fsm.decode()
    names = [s.value for s in r.states]
    # S1 load-first, then decode/fetch/update alternation, then S5 -> S6.
    assert names[0] == "S1"
    assert names[-2:] == ["S5", "S6"]
    assert names.count("S3") == 2  # two additional ST fetches
    assert r.st_reads == 3


def test_fig6_high_degree_entry_fills_second_od():
    fsm = WeaverFSM(fig6_table(), lanes=4)
    fsm.decode()
    r2 = fsm.decode()
    assert r2.vids.tolist() == [4, 4, 4, 4]
    assert r2.eids.tolist() == [31, 32, 33, 34]


def test_fig6_third_decode_ends():
    fsm = WeaverFSM(fig6_table(), lanes=4)
    fsm.decode()
    fsm.decode()
    r3 = fsm.decode()
    assert r3.exhausted
    assert r3.vids.tolist() == [-1, -1, -1, -1]
    assert fsm.state == WeaverState.END


def test_partial_last_batch():
    st = SparseWorkloadTable(4)
    st.register(0, 7, 100, 6)
    fsm = WeaverFSM(st, lanes=4)
    r1 = fsm.decode()
    assert r1.work_count == 4
    r2 = fsm.decode()
    assert r2.work_count == 2
    assert r2.vids.tolist() == [7, 7, -1, -1]
    assert fsm.exhausted


def test_work_items_cover_every_edge_exactly_once():
    st = SparseWorkloadTable(8)
    degrees = [3, 0, 5, 1, 2]
    loc = 0
    for i, d in enumerate(degrees):
        st.register(i, vid=i, loc=loc, degree=d)
        loc += d
    fsm = WeaverFSM(st, lanes=4)
    seen = []
    while True:
        r = fsm.decode()
        if r.exhausted:
            break
        seen.extend(r.eids[r.mask].tolist())
    assert sorted(seen) == list(range(sum(degrees)))


def test_zero_degree_entries_emit_nothing():
    st = SparseWorkloadTable(4)
    st.register(0, 0, 0, 0)
    st.register(1, 1, 0, 0)
    fsm = WeaverFSM(st, lanes=4)
    r = fsm.decode()
    assert r.exhausted
    assert fsm.exhausted


def test_empty_table_ends_immediately():
    fsm = WeaverFSM(SparseWorkloadTable(4), lanes=4)
    r = fsm.decode()
    assert r.exhausted
    assert fsm.state == WeaverState.END


def test_skip_before_entry_reached():
    st = fig6_table()
    fsm = WeaverFSM(st, lanes=4)
    fsm.skip(4)  # supernode skipped before decode starts
    r = fsm.decode()
    # vertex 4's five edges vanish; only vid 0 and 2 work remains
    assert r.vids[r.mask].tolist() == [0, 2, 2]
    assert fsm.decode().exhausted


def test_skip_mid_decode_stops_supernode():
    st = SparseWorkloadTable(4)
    st.register(0, 9, 0, 12)
    fsm = WeaverFSM(st, lanes=4)
    r1 = fsm.decode()
    assert r1.work_count == 4
    fsm.skip(9)
    r2 = fsm.decode()
    assert r2.exhausted


def test_post_end_requests_cost_one_cycle():
    fsm = WeaverFSM(SparseWorkloadTable(2), lanes=2)
    fsm.decode()
    r = fsm.decode()
    assert r.exhausted
    assert r.fsm_cycles == 1
    assert r.st_reads == 0


def test_reset_restarts_scan():
    st = fig6_table()
    fsm = WeaverFSM(st, lanes=4)
    fsm.decode()
    fsm.reset()
    assert fsm.state == WeaverState.INIT
    r = fsm.decode()
    assert r.vids.tolist() == [0, 2, 2, 4]


def test_reset_clears_skips():
    st = fig6_table()
    fsm = WeaverFSM(st, lanes=4)
    fsm.skip(4)
    fsm.reset()
    r = fsm.decode()
    assert 4 in r.vids.tolist()


def test_lane_width_one():
    st = SparseWorkloadTable(2)
    st.register(0, 3, 5, 2)
    fsm = WeaverFSM(st, lanes=1)
    assert fsm.decode().eids.tolist() == [5]
    assert fsm.decode().eids.tolist() == [6]
    assert fsm.decode().exhausted


def test_rejects_zero_lanes():
    with pytest.raises(WeaverError):
        WeaverFSM(SparseWorkloadTable(2), lanes=0)


def test_cycle_accounting_accumulates():
    fsm = WeaverFSM(fig6_table(), lanes=4)
    fsm.decode()
    fsm.decode()
    assert fsm.total_fsm_cycles > 0
    assert fsm.total_st_reads == 3


def test_ordered_scan_by_index_means_ordered_vids():
    """Out-of-order registration still yields VID-ordered work when
    entries are indexed by software thread id (Section III-C)."""
    st = SparseWorkloadTable(8)
    # warp 1 registers before warp 0 (out-of-order execution) but uses
    # higher indices, so the scan is still vid-ordered.
    st.register(4, vid=4, loc=40, degree=1)
    st.register(5, vid=5, loc=50, degree=1)
    st.register(0, vid=0, loc=0, degree=1)
    st.register(1, vid=1, loc=10, degree=1)
    fsm = WeaverFSM(st, lanes=4)
    r = fsm.decode()
    assert r.vids.tolist() == [0, 1, 4, 5]
