"""GPUConfig / CacheConfig validation and presets."""

import pytest

from repro.errors import ConfigError
from repro.sim import CacheConfig, GPUConfig
from repro.sim.config import KB, MB


def test_paper_config_matches_section5():
    cfg = GPUConfig.vortex_paper()
    assert cfg.num_sockets == 2
    assert cfg.cores_per_socket == 3
    assert cfg.warps_per_core == 32
    assert cfg.threads_per_warp == 32
    assert cfg.l1.size_bytes == 64 * KB
    assert cfg.l2.size_bytes == 1 * MB


def test_derived_counts():
    cfg = GPUConfig.vortex_paper()
    assert cfg.num_cores == 6
    assert cfg.threads_per_core == 1024
    assert cfg.total_threads == 6144


def test_weaver_penalty_halves_l1():
    cfg = GPUConfig.vortex_paper()
    assert cfg.with_weaver_penalty().l1.size_bytes == 32 * KB


def test_weaver_penalty_floors_at_minimum():
    cfg = GPUConfig(l1=CacheConfig(4 * KB, ways=4))
    pen = cfg.with_weaver_penalty()
    assert pen.l1.size_bytes >= pen.l1.line_bytes * pen.l1.ways


def test_mem_freq_ratio_scales_dram_latency():
    cfg = GPUConfig(mem_freq_ratio=3, dram_latency=100)
    assert cfg.dram_latency_cycles == 300


def test_cache_config_num_sets():
    c = CacheConfig(8 * KB, line_bytes=64, ways=4)
    assert c.num_sets == 32
    assert c.num_lines == 128


def test_cache_config_validation():
    with pytest.raises(ConfigError):
        CacheConfig(0)
    with pytest.raises(ConfigError):
        CacheConfig(8 * KB, line_bytes=48)
    with pytest.raises(ConfigError):
        CacheConfig(8 * KB, ways=0)
    with pytest.raises(ConfigError):
        CacheConfig(100, line_bytes=64, ways=8)
    with pytest.raises(ConfigError):
        CacheConfig(8 * KB, hit_latency=0)


def test_gpu_config_validation():
    with pytest.raises(ConfigError):
        GPUConfig(num_sockets=0)
    with pytest.raises(ConfigError):
        GPUConfig(mem_freq_ratio=0)
    with pytest.raises(ConfigError):
        GPUConfig(weaver_entries=0)


def test_presets_construct():
    for preset in (GPUConfig.vortex_bench, GPUConfig.vortex_tiny,
                   GPUConfig.ampere_like, GPUConfig.ada_like):
        cfg = preset()
        assert cfg.num_cores >= 1


def test_config_is_frozen():
    cfg = GPUConfig.vortex_tiny()
    with pytest.raises(Exception):
        cfg.dram_latency = 5
