"""Closed-form warp-iteration model (Fig. 2a) and Table I data."""

import pytest

from repro.errors import ScheduleError
from repro.graph import from_edge_list, star_graph
from repro.sched import analytic
from repro.sim import GPUConfig

CFG = GPUConfig(num_sockets=1, cores_per_socket=1, warps_per_core=2,
                threads_per_warp=4)


def test_vertex_map_rounds_are_chunk_maxima():
    # degrees: [3, 1, 0, 0 | 2, 2, 2, 2] with 4-lane warps
    g = from_edge_list(
        [(0, 1), (0, 2), (0, 3), (1, 0)]
        + [(v, (v + 1) % 8) for v in range(4, 8) for _ in (0, 1)],
        num_vertices=8,
    )
    assert analytic.expected_warp_iterations(g, "vertex_map", CFG) == 3 + 2


def test_edge_map_rounds_are_edge_count_over_lanes():
    g = star_graph(10)
    assert analytic.expected_warp_iterations(g, "edge_map", CFG) == 5  # 20/4


def test_warp_map_rounds_are_per_warp_ceil():
    g = star_graph(7)  # degrees [7, 1*7]: warp0 sum=10, warp1 sum=4
    assert analytic.expected_warp_iterations(g, "warp_map", CFG) == 3 + 1


def test_block_level_schemes_pool_across_warps():
    g = star_graph(7)
    cm = analytic.expected_warp_iterations(g, "cta_map", CFG)
    sw = analytic.expected_warp_iterations(g, "sparseweaver", CFG)
    assert cm == sw == 4  # ceil(14/4) over one 8-vertex block


def test_ordering_vm_ge_wm_ge_blocked():
    from repro.graph import powerlaw_graph

    g = powerlaw_graph(300, 1500, exponent=1.9, seed=4)
    vm = analytic.expected_warp_iterations(g, "vertex_map", CFG)
    wm = analytic.expected_warp_iterations(g, "warp_map", CFG)
    sw = analytic.expected_warp_iterations(g, "sparseweaver", CFG)
    em = analytic.expected_warp_iterations(g, "edge_map", CFG)
    assert vm >= wm >= sw >= em


def test_balanced_graph_has_no_vm_penalty():
    from repro.graph import complete_graph

    g = complete_graph(8)
    vm = analytic.expected_warp_iterations(g, "vertex_map", CFG)
    em = analytic.expected_warp_iterations(g, "edge_map", CFG)
    assert vm == em


def test_imbalance_factor_on_star():
    g = star_graph(64)
    assert analytic.imbalance_factor(g, CFG) > 1.5


def test_paper_aliases_accepted():
    g = star_graph(8)
    assert analytic.expected_warp_iterations(
        g, "s_vm", CFG
    ) == analytic.expected_warp_iterations(g, "vertex_map", CFG)


def test_unknown_schedule_rejected():
    with pytest.raises(ScheduleError):
        analytic.expected_warp_iterations(star_graph(4), "nope", CFG)


def test_empty_graph_zero_rounds():
    g = from_edge_list([], num_vertices=0)
    assert analytic.expected_warp_iterations(g, "vertex_map", CFG) == 0


# ----------------------------------------------------------------------
# Table I
# ----------------------------------------------------------------------
def test_table1_has_eight_schemes():
    rows = analytic.scheme_characteristics(star_graph(8), CFG)
    assert [r.name for r in rows] == [
        "S_vm", "S_em", "S_wm", "S_cm", "S_twc", "S_twce", "S_strict",
        "SparseWeaver",
    ]


def test_table1_memory_formulas():
    g = star_graph(8)  # V=9, E=16
    rows = {r.name: r for r in analytic.scheme_characteristics(g, CFG)}
    assert rows["S_vm"].edge_mem_access == 2 * 9 + 16
    assert rows["S_em"].edge_mem_access == 2 * 16
    assert rows["SparseWeaver"].edge_mem_access == 2 * 9 + 16


def test_table1_shared_memory_formulas():
    g = star_graph(8)
    b = CFG.warps_per_core * CFG.threads_per_warp
    rows = {r.name: r for r in analytic.scheme_characteristics(g, CFG)}
    assert rows["S_vm"].shared_mem == 0
    assert rows["S_wm"].shared_mem == 3 * b
    assert rows["SparseWeaver"].shared_mem == 4 * b
    assert rows["S_twce"].shared_mem == 6 * b


def test_table1_sparseweaver_is_low_complexity_block_sharing():
    g = star_graph(8)
    rows = {r.name: r for r in analytic.scheme_characteristics(g, CFG)}
    sw = rows["SparseWeaver"]
    assert sw.sharing_granularity == "Block"
    assert sw.imbalance == "low"
    assert sw.registration_complexity == "low"
    assert sw.distribution_complexity == "low"
    assert sw.registration_costs == "1, 0, 0, 0"
    assert sw.distribution_costs == "0, 0, 0"


def test_table1_render():
    text = analytic.characteristics_table(star_graph(8), CFG)
    assert "SparseWeaver" in text
    assert "S_twce" in text
    assert len(text.splitlines()) == 10  # header + rule + 8 schemes


def test_memory_access_counts_helper():
    g = star_graph(8)
    counts = analytic.memory_access_counts(g)
    assert counts["edge_map"] == 2 * g.num_edges
    assert counts["sparseweaver"] == 2 * g.num_vertices + g.num_edges


def test_split_vertex_model_bounded_by_width():
    g = star_graph(64)
    rounds = analytic.expected_warp_iterations(
        g, "split_vertex_map", CFG, split_degree=8)
    vm = analytic.expected_warp_iterations(g, "vertex_map", CFG)
    assert rounds < vm
    # every chunk max is <= the split width
    assert rounds <= 8 * (-(-(64 // 8 + 64) // CFG.threads_per_warp) + 1)


def test_split_vertex_model_validation():
    with pytest.raises(ScheduleError):
        analytic.expected_warp_iterations(
            star_graph(4), "split_vertex_map", CFG, split_degree=0)


def test_strict_model_equals_edge_map():
    g = star_graph(20)
    assert analytic.expected_warp_iterations(
        g, "strict", CFG
    ) == analytic.expected_warp_iterations(g, "edge_map", CFG)
