"""The public API surface: everything exported resolves and imports
have no cycles."""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.graph", "repro.sim", "repro.core", "repro.sched",
    "repro.frontend", "repro.algorithms", "repro.autotune",
    "repro.bench", "repro.apps", "repro.cli", "repro.runtime",
    "repro.obs", "repro.figures", "repro.dist",
]


def test_version():
    assert repro.__version__ == "1.0.0"


def test_top_level_all_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name), name


@pytest.mark.parametrize("module", SUBPACKAGES)
def test_subpackage_all_resolves(module):
    mod = importlib.import_module(module)
    for name in getattr(mod, "__all__", []):
        assert hasattr(mod, name), f"{module}.{name}"


@pytest.mark.parametrize("module", SUBPACKAGES)
def test_subpackages_import_standalone(module):
    """Each subpackage imports on its own (no hidden cycles)."""
    assert importlib.import_module(module) is not None


def test_every_public_symbol_has_docstring():
    import inspect

    missing = []
    for name in repro.__all__:
        obj = getattr(repro, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ or "").strip():
                missing.append(name)
    assert not missing, f"undocumented public symbols: {missing}"


def test_schedule_registry_consistent():
    from repro.sched import (ALL_SCHEDULES, EXTENDED_SCHEDULES,
                             SOFTWARE_SCHEDULES, make_schedule,
                             schedule_names)

    assert set(SOFTWARE_SCHEDULES) < set(ALL_SCHEDULES)
    assert set(ALL_SCHEDULES) < set(EXTENDED_SCHEDULES)
    assert set(EXTENDED_SCHEDULES) <= set(schedule_names())
    for name in schedule_names():
        sched = make_schedule(name)
        assert sched.name == name
        assert sched.label


def test_algorithm_registry_consistent():
    from repro.algorithms import algorithm_names, make_algorithm

    for name in algorithm_names():
        alg = make_algorithm(name)
        assert alg.name
        assert alg.result_array


def test_figure_facade_stable():
    """The five names the README promises stay importable from repro."""
    from repro import (BatchEngine, ResultCache, list_figures,
                       run_figure, run_schedule_comparison)

    assert callable(run_figure)
    assert callable(run_schedule_comparison)
    assert callable(BatchEngine)
    assert callable(ResultCache)
    figs = list_figures()
    assert figs, "figure registry is empty"
    for name in ("list_figures", "run_figure", "run_figures",
                 "figure_names", "Figure", "FigureContext",
                 "FigureOutput", "run_schedule_comparison",
                 "run_single", "BatchEngine", "ResultCache"):
        assert name in repro.__all__, name


def test_figure_registry_names_unique_and_sorted():
    from repro.figures import figure_names, get_figure, list_figures

    names = figure_names()
    assert names == sorted(names)
    assert len(names) == len(set(names))
    assert [f.name for f in list_figures()] == names
    for name in names:
        assert get_figure(name).name == name


def test_run_schedule_comparison_keyword_only_tail():
    """The legacy positional (config, max_iterations, symmetrize) tail
    still works but warns; keywords are the supported spelling."""
    import warnings

    from repro.bench import runner
    from repro.graph import powerlaw_graph
    from repro.runtime import AlgorithmSpec
    from repro.sim import GPUConfig

    graph = powerlaw_graph(64, 256, seed=3)
    cfg = GPUConfig.vortex_bench()
    alg = AlgorithmSpec.of("pagerank", iterations=1)

    kw = runner.run_schedule_comparison(
        alg, {"g": graph}, ["vertex_map"], config=cfg,
        max_iterations=1)

    runner._POSITIONAL_TAIL_WARNED = False
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        legacy = runner.run_schedule_comparison(
            alg, {"g": graph}, ["vertex_map"], cfg, 1)
    assert any(issubclass(w.category, DeprecationWarning)
               for w in caught)
    assert legacy.cycles == kw.cycles

    with pytest.raises(TypeError):
        runner.run_schedule_comparison(
            alg, {"g": graph}, ["vertex_map"], cfg, config=cfg)
    with pytest.raises(TypeError):
        runner.run_schedule_comparison(
            alg, {"g": graph}, ["vertex_map"], cfg, 1, False, "extra")


def test_dist_facade_stable():
    """The distributed-fleet surface stays importable from repro."""
    from repro import Coordinator, Worker
    from repro.dist import (PROTOCOL_VERSION, ProtocolError,
                            format_address, parse_address)

    assert callable(Coordinator)
    assert callable(Worker)
    assert isinstance(PROTOCOL_VERSION, int)
    assert issubclass(ProtocolError, Exception)
    assert parse_address("example.org:7000") == ("example.org", 7000)
    assert format_address(("example.org", 7000)) == "example.org:7000"
    for name in ("Coordinator", "Worker"):
        assert name in __import__("repro").__all__, name


def test_robustness_facade_stable():
    """The fault-tolerance surface stays importable from repro."""
    from repro import (FailureReport, FatalError, FaultPlan, RunJournal,
                      TransientError, run_figures_report)
    from repro.runtime import append_jsonl, get_active_plan

    assert callable(run_figures_report)
    assert callable(append_jsonl)
    assert callable(get_active_plan)
    assert issubclass(TransientError, Exception)
    assert issubclass(FatalError, Exception)
    for name in ("FaultPlan", "RunJournal", "FailureReport",
                 "TransientError", "FatalError", "run_figures_report"):
        assert name in repro.__all__, name
