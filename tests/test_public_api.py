"""The public API surface: everything exported resolves and imports
have no cycles."""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.graph", "repro.sim", "repro.core", "repro.sched",
    "repro.frontend", "repro.algorithms", "repro.autotune",
    "repro.bench", "repro.apps", "repro.cli", "repro.runtime",
    "repro.obs",
]


def test_version():
    assert repro.__version__ == "1.0.0"


def test_top_level_all_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name), name


@pytest.mark.parametrize("module", SUBPACKAGES)
def test_subpackage_all_resolves(module):
    mod = importlib.import_module(module)
    for name in getattr(mod, "__all__", []):
        assert hasattr(mod, name), f"{module}.{name}"


@pytest.mark.parametrize("module", SUBPACKAGES)
def test_subpackages_import_standalone(module):
    """Each subpackage imports on its own (no hidden cycles)."""
    assert importlib.import_module(module) is not None


def test_every_public_symbol_has_docstring():
    import inspect

    missing = []
    for name in repro.__all__:
        obj = getattr(repro, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ or "").strip():
                missing.append(name)
    assert not missing, f"undocumented public symbols: {missing}"


def test_schedule_registry_consistent():
    from repro.sched import (ALL_SCHEDULES, EXTENDED_SCHEDULES,
                             SOFTWARE_SCHEDULES, make_schedule,
                             schedule_names)

    assert set(SOFTWARE_SCHEDULES) < set(ALL_SCHEDULES)
    assert set(ALL_SCHEDULES) < set(EXTENDED_SCHEDULES)
    assert set(EXTENDED_SCHEDULES) <= set(schedule_names())
    for name in schedule_names():
        sched = make_schedule(name)
        assert sched.name == name
        assert sched.label


def test_algorithm_registry_consistent():
    from repro.algorithms import algorithm_names, make_algorithm

    for name in algorithm_names():
        alg = make_algorithm(name)
        assert alg.name
        assert alg.result_array
