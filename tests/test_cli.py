"""CLI smoke tests (in-process, capturing stdout)."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_run_command(capsys):
    code, out = run_cli(capsys, "run", "--dataset", "bio-human",
                        "--scale", "0.2", "--iterations", "1")
    assert code == 0
    assert "cycles:" in out
    assert "sparseweaver" in out


def test_run_with_schedule_and_algorithm(capsys):
    code, out = run_cli(capsys, "run", "--algorithm", "bfs",
                        "--dataset", "road-ca", "--schedule",
                        "vertex_map", "--scale", "0.2")
    assert code == 0
    assert "bfs on road-ca" in out


def test_compare_command(capsys):
    code, out = run_cli(capsys, "compare", "--dataset", "bio-human",
                        "--scale", "0.2", "--iterations", "1")
    assert code == 0
    for sched in ("vertex_map", "edge_map", "sparseweaver", "eghw"):
        assert sched in out
    assert "speedup over S_vm" in out


def test_datasets_command(capsys):
    code, out = run_cli(capsys, "datasets")
    assert code == 0
    assert "hollywood" in out
    assert "228985632" in out  # paper-scale edge count


def test_area_command(capsys):
    code, out = run_cli(capsys, "area", "--cores", "1")
    assert code == 0
    assert "105094" in out and "108203" in out


def test_weaver_command(capsys):
    code, out = run_cli(capsys, "weaver")
    assert code == 0
    assert "[0, 2, 2, 4]" in out
    assert "[2, 10, 11, 30]" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_bad_choice_rejected():
    with pytest.raises(SystemExit):
        main(["run", "--schedule", "quantum"])


def test_compare_extended(capsys):
    code, out = run_cli(capsys, "compare", "--dataset", "bio-human",
                        "--scale", "0.2", "--iterations", "1",
                        "--extended")
    assert code == 0
    for sched in ("twc", "twce", "strict", "split_vertex_map",
                  "hybrid_ell"):
        assert sched in out


def test_reproduce_lists_available_on_miss(capsys):
    code, out = run_cli(capsys, "reproduce", "nonexistent-xyz")
    assert code == 1
    assert "available:" in out
    assert "fig10_main_comparison" in out


def test_reproduce_runs_matching_bench():
    import subprocess
    import sys

    proc = subprocess.run(
        [sys.executable, "-m", "repro", "reproduce", "table4"],
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0
    assert "Table IV" in proc.stdout


# ----------------------------------------------------------------------
# --profile and the perf trajectory command
# ----------------------------------------------------------------------
def test_run_profile_writes_artifacts(capsys, tmp_path):
    from repro.obs.profile import (disable_profiling, get_profiler,
                                   profiling_enabled)

    assert not profiling_enabled()
    try:
        code, out = run_cli(
            capsys, "run", "--dataset", "bio-human", "--scale", "0.2",
            "--iterations", "1",
            "--profile", str(tmp_path / "prof"),
            "--trace", str(tmp_path / "trace.json"))
    finally:
        get_profiler().clear()
        disable_profiling()
    assert code == 0
    assert "host profile:" in out
    assert "% phase coverage" in out
    assert (tmp_path / "prof" / "profile.json").exists()
    assert (tmp_path / "prof" / "flamegraph.collapsed").exists()
    import json

    doc = json.loads((tmp_path / "trace.json").read_text())
    cats = {e.get("cat") for e in doc["traceEvents"]}
    # Simulated-cycle rows and host-sampler rows share the file.
    assert "stall" in cats


def test_batch_profile_folds_worker_snapshots(capsys, tmp_path):
    from repro.obs.profile import (disable_profiling, get_profiler,
                                   profiling_enabled)

    assert not profiling_enabled()
    try:
        code, out = run_cli(
            capsys, "batch", "--datasets", "bio-human",
            "--schedules", "vertex_map", "--scale", "0.2",
            "--iterations", "1", "--jobs", "2", "--no-cache",
            "--profile", str(tmp_path / "prof"))
    finally:
        get_profiler().clear()
        disable_profiling()
    assert code == 0
    assert "host profile:" in out
    assert "execute" in out
    assert (tmp_path / "prof" / "profile.json").exists()


def test_perf_empty_history(capsys, tmp_path):
    code, out = run_cli(capsys, "perf", "--history",
                        str(tmp_path / "none.jsonl"))
    assert code == 0
    assert "no perf history" in out


def test_perf_table_check_and_json(capsys, tmp_path):
    import json

    from repro.obs.profile import PerfHistory

    history = PerfHistory(tmp_path / "hist.jsonl")
    base = {"schema": 2, "git_commit": "c" * 40, "time": 1.0,
            "simulator_version": 1}
    for rate in (100.0, 95.0, 20.0):
        history.append({**base,
                        "metrics": {"jobs_per_second": rate,
                                    "simulated_cycles_per_second": 1.0,
                                    "peak_rss_bytes": 2 ** 20}})
    code, out = run_cli(capsys, "perf", "--history", str(history.path))
    assert code == 0
    assert "REGRESSION" in out and "cccccccccccc" in out

    code, _out = run_cli(capsys, "perf", "--history",
                         str(history.path), "--check")
    assert code == 1

    # A permissive gate clears the check.
    code, _out = run_cli(capsys, "perf", "--history",
                         str(history.path), "--check",
                         "--max-regress", "0.9")
    assert code == 0

    code, out = run_cli(capsys, "perf", "--history",
                        str(history.path), "--json", "--limit", "1")
    assert code == 0
    doc = json.loads(out)
    assert len(doc["entries"]) == 1
    assert doc["entries"][0]["verdict"] == "REGRESSION"


def test_perf_json_stamps_commit_and_verdicts(capsys, tmp_path):
    """--json carries the same stamps as the table: the reporting
    commit, the gate applied, and a per-entry verdict."""
    import json

    from repro.obs.profile import PerfHistory

    history = PerfHistory(tmp_path / "hist.jsonl")
    base = {"schema": 2, "git_commit": "d" * 40, "time": 1.0,
            "simulator_version": 1}
    for rate in (50.0, 49.0, 10.0):
        history.append({**base,
                        "metrics": {"jobs_per_second": rate,
                                    "simulated_cycles_per_second": 1.0,
                                    "peak_rss_bytes": 2 ** 20}})
    code, out = run_cli(capsys, "perf", "--history",
                        str(history.path), "--json")
    assert code == 0
    doc = json.loads(out)
    assert doc["history"] == str(history.path)
    assert doc["max_regress"] == 0.25
    # The stamping commit is live (rev-parse or "unknown"), never empty.
    assert isinstance(doc["git_commit"], str) and doc["git_commit"]
    verdicts = [e["verdict"] for e in doc["entries"]]
    assert verdicts == ["-", "ok", "REGRESSION"]
    assert all(e["git_commit"] == "d" * 12 for e in doc["entries"])

    # The gate flag flows into the stamp.
    code, out = run_cli(capsys, "perf", "--history", str(history.path),
                        "--json", "--max-regress", "0.9")
    assert code == 0
    doc = json.loads(out)
    assert doc["max_regress"] == 0.9
    assert [e["verdict"] for e in doc["entries"]] == ["-", "ok", "ok"]


# ----------------------------------------------------------------------
# repro diff — provenance divergence localization
# ----------------------------------------------------------------------
def _diff_journal(path, label, ledger):
    """One completion record carrying a digest ledger, as the engine
    journals it (loader is schema-tolerant, so only the shape matters)."""
    import json

    with open(path, "a") as handle:
        handle.write(json.dumps({
            "hash": "ab" * 32, "label": label,
            "summary": {"total_cycles": 10, "iterations": 1,
                        "stats": {}, "values_digest": "d",
                        "digest_ledger": ledger},
        }) + "\n")


def test_diff_journals_clean_and_divergent(capsys, tmp_path):
    base = [[0, 0, 0, 0, "aaaa", 3], [0, -1, -1, -1, "bbbb", 5]]
    other = [[0, 0, 0, 0, "XXXX", 3], [0, -1, -1, -1, "YYYY", 5]]
    a, b, c = (tmp_path / n for n in ("a.jsonl", "b.jsonl", "c.jsonl"))
    _diff_journal(a, "job-1", base)
    _diff_journal(b, "job-1", base)
    _diff_journal(c, "job-1", other)

    code, out = run_cli(capsys, "diff", "--a", str(a), "--b", str(b))
    assert code == 0
    assert "ledgers identical" in out and "no divergences" in out

    code, out = run_cli(capsys, "diff", "--a", str(a), "--b", str(c))
    assert code == 1
    assert "FIRST DIVERGENCE: job-1 at kernel 0 interval 0 core 0 warp 0" in out
    assert "2 diverging record(s)" in out


def test_diff_json_output(capsys, tmp_path):
    import json

    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    _diff_journal(a, "job-1", [[0, 0, 0, 0, "aaaa", 3]])
    _diff_journal(b, "job-1", [[0, 0, 0, 0, "XXXX", 3]])
    code, out = run_cli(capsys, "diff", "--a", str(a), "--b", str(b),
                        "--json")
    assert code == 1
    doc = json.loads(out)
    assert doc["divergent"] == 1 and doc["compared"] == 1
    job = doc["jobs"][0]
    assert job["label"] == "job-1"
    assert job["first"]["coord"] == [0, 0, 0, 0]
    assert job["first"]["where"] == "kernel 0 interval 0 core 0 warp 0"
    assert job["first"]["a"] == "aaaa" and job["first"]["b"] == "XXXX"


def test_diff_error_exits(capsys, tmp_path):
    import json

    # Neither a file, a directory, nor key=value options.
    code, _out = run_cli(capsys, "diff", "--a", "nope-such-source",
                         "--b", "nope-such-source")
    assert code == 2

    # Engines must come from the registry.
    code, _out = run_cli(capsys, "diff", "--a", "engine=warp9",
                         "--b", "engine=reference")
    assert code == 2

    # Unknown live option names are rejected, not silently dropped.
    code, _out = run_cli(capsys, "diff", "--a", "alu_latncy=3",
                         "--b", "engine=reference")
    assert code == 2

    # No common labels between the two sides.
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    _diff_journal(a, "job-1", [[0, 0, 0, 0, "aaaa", 1]])
    _diff_journal(b, "job-2", [[0, 0, 0, 0, "aaaa", 1]])
    assert run_cli(capsys, "diff", "--a", str(a), "--b", str(b))[0] == 2

    # Common labels but no ledgers on either side (REPRO_DIGEST off).
    c, d = tmp_path / "c.jsonl", tmp_path / "d.jsonl"
    for path in (c, d):
        with open(path, "a") as handle:
            handle.write(json.dumps({
                "hash": "cd" * 32, "label": "job-1",
                "summary": {"total_cycles": 10, "iterations": 1,
                            "stats": {}, "values_digest": "d"},
            }) + "\n")
    assert run_cli(capsys, "diff", "--a", str(c), "--b", str(d))[0] == 2


def test_diff_live_perturbation_localizes_and_replays(capsys, tmp_path):
    """The acceptance walkthrough end-to-end: an identical live pair
    diffs clean; a perturbed opcode latency produces a first-divergence
    coordinate and --replay writes the side-by-side Chrome trace."""
    import json

    from repro.obs.provenance import digests_enabled, disable_digests

    live = ("algorithm=pagerank,dataset=bio-human,schedule=sparseweaver,"
            "scale=0.2,iterations=1")
    assert not digests_enabled()
    try:
        code, out = run_cli(capsys, "diff", "--a", live, "--b", live,
                            "--interval", "512")
        assert code == 0
        assert "no divergences" in out

        trace = tmp_path / "replay.json"
        code, out = run_cli(capsys, "diff", "--a", live,
                            "--b", live + ",alu_latency=3",
                            "--interval", "512",
                            "--replay", str(trace))
    finally:
        disable_digests(clear=True)
    assert code == 1
    assert "FIRST DIVERGENCE" in out
    assert "kernel 0 interval 0" in out
    doc = json.loads(trace.read_text())
    names = {e["args"]["name"] for e in doc["traceEvents"]
             if e.get("name") == "process_name"}
    # Both sides' kernels land in one trace, labeled A: and B:.
    assert any(n.startswith("A:") for n in names)
    assert any(n.startswith("B:") for n in names)
