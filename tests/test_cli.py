"""CLI smoke tests (in-process, capturing stdout)."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_run_command(capsys):
    code, out = run_cli(capsys, "run", "--dataset", "bio-human",
                        "--scale", "0.2", "--iterations", "1")
    assert code == 0
    assert "cycles:" in out
    assert "sparseweaver" in out


def test_run_with_schedule_and_algorithm(capsys):
    code, out = run_cli(capsys, "run", "--algorithm", "bfs",
                        "--dataset", "road-ca", "--schedule",
                        "vertex_map", "--scale", "0.2")
    assert code == 0
    assert "bfs on road-ca" in out


def test_compare_command(capsys):
    code, out = run_cli(capsys, "compare", "--dataset", "bio-human",
                        "--scale", "0.2", "--iterations", "1")
    assert code == 0
    for sched in ("vertex_map", "edge_map", "sparseweaver", "eghw"):
        assert sched in out
    assert "speedup over S_vm" in out


def test_datasets_command(capsys):
    code, out = run_cli(capsys, "datasets")
    assert code == 0
    assert "hollywood" in out
    assert "228985632" in out  # paper-scale edge count


def test_area_command(capsys):
    code, out = run_cli(capsys, "area", "--cores", "1")
    assert code == 0
    assert "105094" in out and "108203" in out


def test_weaver_command(capsys):
    code, out = run_cli(capsys, "weaver")
    assert code == 0
    assert "[0, 2, 2, 4]" in out
    assert "[2, 10, 11, 30]" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_bad_choice_rejected():
    with pytest.raises(SystemExit):
        main(["run", "--schedule", "quantum"])


def test_compare_extended(capsys):
    code, out = run_cli(capsys, "compare", "--dataset", "bio-human",
                        "--scale", "0.2", "--iterations", "1",
                        "--extended")
    assert code == 0
    for sched in ("twc", "twce", "strict", "split_vertex_map",
                  "hybrid_ell"):
        assert sched in out


def test_reproduce_lists_available_on_miss(capsys):
    code, out = run_cli(capsys, "reproduce", "nonexistent-xyz")
    assert code == 1
    assert "available:" in out
    assert "fig10_main_comparison" in out


def test_reproduce_runs_matching_bench():
    import subprocess
    import sys

    proc = subprocess.run(
        [sys.executable, "-m", "repro", "reproduce", "table4"],
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0
    assert "Table IV" in proc.stdout
