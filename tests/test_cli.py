"""CLI smoke tests (in-process, capturing stdout)."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_run_command(capsys):
    code, out = run_cli(capsys, "run", "--dataset", "bio-human",
                        "--scale", "0.2", "--iterations", "1")
    assert code == 0
    assert "cycles:" in out
    assert "sparseweaver" in out


def test_run_with_schedule_and_algorithm(capsys):
    code, out = run_cli(capsys, "run", "--algorithm", "bfs",
                        "--dataset", "road-ca", "--schedule",
                        "vertex_map", "--scale", "0.2")
    assert code == 0
    assert "bfs on road-ca" in out


def test_compare_command(capsys):
    code, out = run_cli(capsys, "compare", "--dataset", "bio-human",
                        "--scale", "0.2", "--iterations", "1")
    assert code == 0
    for sched in ("vertex_map", "edge_map", "sparseweaver", "eghw"):
        assert sched in out
    assert "speedup over S_vm" in out


def test_datasets_command(capsys):
    code, out = run_cli(capsys, "datasets")
    assert code == 0
    assert "hollywood" in out
    assert "228985632" in out  # paper-scale edge count


def test_area_command(capsys):
    code, out = run_cli(capsys, "area", "--cores", "1")
    assert code == 0
    assert "105094" in out and "108203" in out


def test_weaver_command(capsys):
    code, out = run_cli(capsys, "weaver")
    assert code == 0
    assert "[0, 2, 2, 4]" in out
    assert "[2, 10, 11, 30]" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_bad_choice_rejected():
    with pytest.raises(SystemExit):
        main(["run", "--schedule", "quantum"])


def test_compare_extended(capsys):
    code, out = run_cli(capsys, "compare", "--dataset", "bio-human",
                        "--scale", "0.2", "--iterations", "1",
                        "--extended")
    assert code == 0
    for sched in ("twc", "twce", "strict", "split_vertex_map",
                  "hybrid_ell"):
        assert sched in out


def test_reproduce_lists_available_on_miss(capsys):
    code, out = run_cli(capsys, "reproduce", "nonexistent-xyz")
    assert code == 1
    assert "available:" in out
    assert "fig10_main_comparison" in out


def test_reproduce_runs_matching_bench():
    import subprocess
    import sys

    proc = subprocess.run(
        [sys.executable, "-m", "repro", "reproduce", "table4"],
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0
    assert "Table IV" in proc.stdout


# ----------------------------------------------------------------------
# --profile and the perf trajectory command
# ----------------------------------------------------------------------
def test_run_profile_writes_artifacts(capsys, tmp_path):
    from repro.obs.profile import (disable_profiling, get_profiler,
                                   profiling_enabled)

    assert not profiling_enabled()
    try:
        code, out = run_cli(
            capsys, "run", "--dataset", "bio-human", "--scale", "0.2",
            "--iterations", "1",
            "--profile", str(tmp_path / "prof"),
            "--trace", str(tmp_path / "trace.json"))
    finally:
        get_profiler().clear()
        disable_profiling()
    assert code == 0
    assert "host profile:" in out
    assert "% phase coverage" in out
    assert (tmp_path / "prof" / "profile.json").exists()
    assert (tmp_path / "prof" / "flamegraph.collapsed").exists()
    import json

    doc = json.loads((tmp_path / "trace.json").read_text())
    cats = {e.get("cat") for e in doc["traceEvents"]}
    # Simulated-cycle rows and host-sampler rows share the file.
    assert "stall" in cats


def test_batch_profile_folds_worker_snapshots(capsys, tmp_path):
    from repro.obs.profile import (disable_profiling, get_profiler,
                                   profiling_enabled)

    assert not profiling_enabled()
    try:
        code, out = run_cli(
            capsys, "batch", "--datasets", "bio-human",
            "--schedules", "vertex_map", "--scale", "0.2",
            "--iterations", "1", "--jobs", "2", "--no-cache",
            "--profile", str(tmp_path / "prof"))
    finally:
        get_profiler().clear()
        disable_profiling()
    assert code == 0
    assert "host profile:" in out
    assert "execute" in out
    assert (tmp_path / "prof" / "profile.json").exists()


def test_perf_empty_history(capsys, tmp_path):
    code, out = run_cli(capsys, "perf", "--history",
                        str(tmp_path / "none.jsonl"))
    assert code == 0
    assert "no perf history" in out


def test_perf_table_check_and_json(capsys, tmp_path):
    import json

    from repro.obs.profile import PerfHistory

    history = PerfHistory(tmp_path / "hist.jsonl")
    base = {"schema": 2, "git_commit": "c" * 40, "time": 1.0,
            "simulator_version": 1}
    for rate in (100.0, 95.0, 20.0):
        history.append({**base,
                        "metrics": {"jobs_per_second": rate,
                                    "simulated_cycles_per_second": 1.0,
                                    "peak_rss_bytes": 2 ** 20}})
    code, out = run_cli(capsys, "perf", "--history", str(history.path))
    assert code == 0
    assert "REGRESSION" in out and "cccccccccccc" in out

    code, _out = run_cli(capsys, "perf", "--history",
                         str(history.path), "--check")
    assert code == 1

    # A permissive gate clears the check.
    code, _out = run_cli(capsys, "perf", "--history",
                         str(history.path), "--check",
                         "--max-regress", "0.9")
    assert code == 0

    code, out = run_cli(capsys, "perf", "--history",
                        str(history.path), "--json", "--limit", "1")
    assert code == 0
    rows = json.loads(out)
    assert len(rows) == 1 and rows[0]["verdict"] == "REGRESSION"
