"""Smoke tests: every example script runs to completion.

Run as subprocesses so import-time and ``__main__`` paths are covered;
marked slow-ish examples get generous timeouts but all finish in well
under a minute each.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py")
)


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 7


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(path):
    proc = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip()  # every example narrates its result
