"""CSRGraph structure, validation, and derived graphs."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import CSRGraph, from_edge_list


def test_basic_counts(diamond_graph):
    assert diamond_graph.num_vertices == 4
    assert diamond_graph.num_edges == 5


def test_degrees(diamond_graph):
    assert diamond_graph.degrees.tolist() == [3, 1, 1, 0]
    assert diamond_graph.degree(0) == 3
    assert diamond_graph.degree(3) == 0


def test_neighbor_range_matches_weaver_registration_triple(diamond_graph):
    start, end = diamond_graph.neighbor_range(0)
    assert (start, end) == (0, 3)
    assert diamond_graph.neighbors(0).tolist() == [1, 2, 3]


def test_neighbors_sorted_within_vertex():
    g = from_edge_list([(0, 3), (0, 1), (0, 2)], num_vertices=4)
    assert g.neighbors(0).tolist() == [1, 2, 3]


def test_weights_default_unit(diamond_graph):
    assert not diamond_graph.has_weights
    assert np.all(diamond_graph.weights == 1.0)


def test_explicit_weights_roundtrip():
    g = from_edge_list([(0, 1, 2.5), (1, 0, 0.5)], num_vertices=2)
    assert g.has_weights
    assert g.edge_weights(0).tolist() == [2.5]


def test_edge_sources(diamond_graph):
    assert diamond_graph.edge_sources().tolist() == [0, 0, 0, 1, 2]


def test_reverse_transposes(diamond_graph):
    rev = diamond_graph.reverse()
    assert rev.num_edges == diamond_graph.num_edges
    assert rev.neighbors(3).tolist() == [0, 1, 2]
    assert rev.neighbors(0).tolist() == []


def test_reverse_is_cached_and_involutive(diamond_graph):
    rev = diamond_graph.reverse()
    assert rev.reverse() is diamond_graph
    assert diamond_graph.reverse() is rev


def test_reverse_preserves_weights():
    g = from_edge_list([(0, 1, 3.0), (2, 1, 7.0)], num_vertices=3)
    rev = g.reverse()
    assert sorted(rev.edge_weights(1).tolist()) == [3.0, 7.0]


def test_reverse_orders_incoming_by_source():
    g = from_edge_list([(2, 0), (1, 0), (3, 0)], num_vertices=4)
    assert g.reverse().neighbors(0).tolist() == [1, 2, 3]


def test_undirected_symmetrizes(diamond_graph):
    und = diamond_graph.undirected()
    assert und.is_symmetric()
    assert und.num_edges == 10


def test_is_symmetric_detects_asymmetry(diamond_graph):
    assert not diamond_graph.is_symmetric()


def test_edges_iteration(diamond_graph):
    edges = list(diamond_graph.edges())
    assert edges[0] == (0, 1, 1.0)
    assert len(edges) == 5


def test_equality():
    a = from_edge_list([(0, 1)], num_vertices=2)
    b = from_edge_list([(0, 1)], num_vertices=2)
    c = from_edge_list([(1, 0)], num_vertices=2)
    assert a == b
    assert a != c


def test_empty_graph():
    g = from_edge_list([], num_vertices=3)
    assert g.num_vertices == 3
    assert g.num_edges == 0
    assert g.degrees.tolist() == [0, 0, 0]


# ----------------------------------------------------------------------
# Validation errors
# ----------------------------------------------------------------------
def test_rejects_bad_row_ptr_start():
    with pytest.raises(GraphError):
        CSRGraph(np.array([1, 2]), np.array([0, 1]))


def test_rejects_row_ptr_edge_mismatch():
    with pytest.raises(GraphError):
        CSRGraph(np.array([0, 3]), np.array([0]))


def test_rejects_decreasing_row_ptr():
    with pytest.raises(GraphError):
        CSRGraph(np.array([0, 2, 1, 3]), np.array([0, 1, 2]))


def test_rejects_out_of_range_col():
    with pytest.raises(GraphError):
        CSRGraph(np.array([0, 1]), np.array([5]))


def test_rejects_weight_shape_mismatch():
    with pytest.raises(GraphError):
        CSRGraph(np.array([0, 1]), np.array([0]), np.array([1.0, 2.0]))


def test_rejects_vertex_out_of_range(diamond_graph):
    with pytest.raises(GraphError):
        diamond_graph.degree(4)
    with pytest.raises(GraphError):
        diamond_graph.neighbors(-1)
