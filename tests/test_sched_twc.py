"""S_twc (thread/warp/CTA bucketing) correctness and shape."""

import numpy as np
import pytest

from repro.algorithms import make_algorithm
from repro.errors import ScheduleError
from repro.frontend import GraphProcessor, reference
from repro.graph import powerlaw_graph, star_graph
from repro.sched import TWCSchedule, make_schedule
from repro.sim import GPUConfig
from repro.sim.instructions import Op
from repro.sim.stats import StallCat

CFG = GPUConfig.vortex_tiny()
GRAPH = powerlaw_graph(180, 800, exponent=2.0, seed=41).undirected()


def test_registered_under_aliases():
    assert make_schedule("s_twc").name == "twc"
    assert make_schedule("twc").label == "S_twc"


def test_invalid_thresholds():
    with pytest.raises(ScheduleError):
        TWCSchedule(small_max=0)


@pytest.mark.parametrize("alg_name,kwargs,ref_fn", [
    ("pagerank", {"iterations": 3},
     lambda g: reference.pagerank(g, iterations=3)),
    ("bfs", {"source": 0}, lambda g: reference.bfs_levels(g, 0)),
    ("sssp", {"source": 0}, lambda g: reference.sssp(g, 0)),
    ("cc", {}, lambda g: reference.connected_components(g)),
])
def test_twc_correct(alg_name, kwargs, ref_fn):
    res = GraphProcessor(
        make_algorithm(alg_name, **kwargs), schedule="twc", config=CFG,
    ).run(GRAPH)
    ref = np.asarray(ref_fn(GRAPH), dtype=float)
    np.testing.assert_allclose(res.values.astype(float), ref, atol=1e-9)


@pytest.mark.parametrize("small_max,medium_max", [(1, 8), (4, 32),
                                                  (16, 64)])
def test_twc_thresholds_all_correct(small_max, medium_max):
    res = GraphProcessor(
        make_algorithm("pagerank", iterations=2),
        schedule=TWCSchedule(small_max=small_max, medium_max=medium_max),
        config=CFG,
    ).run(GRAPH)
    ref = reference.pagerank(GRAPH, iterations=2)
    np.testing.assert_allclose(res.values, ref, atol=1e-9)


def test_twc_handles_supernode_at_block_level():
    """A star hub lands in the large bucket and is striped across the
    whole block, beating plain vertex mapping."""
    star = star_graph(300)
    cfg = GPUConfig.vortex_bench()

    def cycles(schedule):
        return GraphProcessor(
            make_algorithm("pagerank", iterations=2), schedule=schedule,
            config=cfg,
        ).run(star).stats.total_cycles

    assert cycles("twc") < cycles("vertex_map")


def test_twc_sits_between_vm_and_sw_on_skew():
    g = powerlaw_graph(800, 4800, exponent=1.9, seed=3)
    cfg = GPUConfig.vortex_bench()

    def cycles(schedule):
        return GraphProcessor(
            make_algorithm("pagerank", iterations=2), schedule=schedule,
            config=cfg,
        ).run(g).stats.total_cycles

    vm, twc, sw = cycles("vertex_map"), cycles("twc"), cycles(
        "sparseweaver")
    assert sw < twc < vm


def test_twc_pays_bucket_atomics_and_syncs():
    run = GraphProcessor(
        make_algorithm("pagerank", iterations=1), schedule="twc",
        config=CFG, time_init=False, time_apply=False,
    ).run(GRAPH)
    assert run.stats.op_counts.get(Op.ATOMIC, 0) > 0
    assert run.stats.op_counts.get(Op.SYNC, 0) > 0


def test_twc_bucket_traffic_counted():
    run = GraphProcessor(
        make_algorithm("pagerank", iterations=1), schedule="twc",
        config=CFG, time_init=False, time_apply=False,
    ).run(GRAPH)
    bucket_loads = sum(
        v for k, v in run.stats.counters.items()
        if k == "elements_loaded:twc_buckets"
    )
    # medium-bucket entries are re-read during distribution
    assert bucket_loads >= 0  # present in the accounting namespace
