"""Graph persistence and the execution tracer."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import from_edge_list, powerlaw_graph
from repro.graph.io import (
    load_edge_list,
    load_npz,
    save_edge_list,
    save_npz,
)
from repro.sim import GPU, GPUConfig, MemoryMap
from repro.sim.instructions import Op, Phase, alu, load
from repro.sim.trace import ExecutionTracer


# ----------------------------------------------------------------------
# NPZ round trip
# ----------------------------------------------------------------------
def test_npz_roundtrip(tmp_path, small_powerlaw):
    path = tmp_path / "g.npz"
    save_npz(small_powerlaw, path)
    loaded = load_npz(path)
    assert loaded == small_powerlaw


def test_npz_roundtrip_weighted(tmp_path):
    g = from_edge_list([(0, 1, 2.5), (1, 2, 0.5)], num_vertices=3)
    path = tmp_path / "w.npz"
    save_npz(g, path)
    loaded = load_npz(path)
    assert loaded.has_weights
    assert loaded.weights.tolist() == [2.5, 0.5]


def test_npz_unweighted_stays_unweighted(tmp_path, small_chain):
    path = tmp_path / "c.npz"
    save_npz(small_chain, path)
    assert not load_npz(path).has_weights


def test_npz_missing_file(tmp_path):
    with pytest.raises(GraphError):
        load_npz(tmp_path / "nope.npz")


def test_npz_missing_arrays(tmp_path):
    path = tmp_path / "bad.npz"
    np.savez(path, row_ptr=np.array([0, 0]))
    with pytest.raises(GraphError):
        load_npz(path)


# ----------------------------------------------------------------------
# Edge-list text
# ----------------------------------------------------------------------
def test_edge_list_roundtrip(tmp_path):
    g = powerlaw_graph(40, 150, seed=3)
    path = tmp_path / "g.txt"
    save_edge_list(g, path)
    loaded = load_edge_list(path)
    assert loaded == g  # header preserves the vertex count


def test_edge_list_weighted_roundtrip(tmp_path):
    g = from_edge_list([(0, 1, 1.5), (2, 0, 3.0)], num_vertices=3)
    path = tmp_path / "w.txt"
    save_edge_list(g, path)
    loaded = load_edge_list(path)
    assert loaded.weights.tolist() == [1.5, 3.0]


def test_edge_list_comments_and_blanks(tmp_path):
    path = tmp_path / "c.txt"
    path.write_text("# a comment\n\n0 1\n1 2\n")
    g = load_edge_list(path)
    assert g.num_edges == 2
    assert g.num_vertices == 3


def test_edge_list_explicit_vertex_count(tmp_path):
    path = tmp_path / "v.txt"
    path.write_text("0 1\n")
    assert load_edge_list(path, num_vertices=10).num_vertices == 10


def test_edge_list_malformed_rejected(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("0 1 2 3\n")
    with pytest.raises(GraphError):
        load_edge_list(path)
    path.write_text("zero one\n")
    with pytest.raises(GraphError):
        load_edge_list(path)


# ----------------------------------------------------------------------
# Execution tracer
# ----------------------------------------------------------------------
def run_traced(tracer):
    cfg = GPUConfig.vortex_tiny()
    gpu = GPU(cfg)
    mm = MemoryMap()
    region = mm.alloc("r", 64, 8)

    def factory(ctx):
        def k():
            yield alu(Phase.INIT, 2)
            yield load(Phase.GATHER, region, np.array([0]))
        return k()

    return gpu.run_kernel(factory, tracer=tracer)


def test_tracer_records_issues():
    tracer = ExecutionTracer()
    stats = run_traced(tracer)
    assert len(tracer) == stats.instructions
    ops = {e.op for e in tracer.events}
    assert ops == {Op.ALU, Op.LOAD}


def test_tracer_latency_and_filter():
    tracer = ExecutionTracer()
    run_traced(tracer)
    loads = tracer.filter(op=Op.LOAD)
    # the first load is a cold DRAM miss; later warps may hit L1
    assert loads and any(e.latency >= 100 for e in loads)
    assert tracer.filter(core=0)
    assert tracer.filter(warp=99) == []


def test_tracer_bound_drops():
    tracer = ExecutionTracer(max_events=1)
    with pytest.warns(RuntimeWarning, match="bound of 1 events reached"):
        run_traced(tracer)
    assert len(tracer) == 1
    assert tracer.dropped > 0


def test_tracer_warns_once_and_surfaces_truncation():
    tracer = ExecutionTracer(max_events=1)
    with pytest.warns(RuntimeWarning) as caught:
        run_traced(tracer)
        run_traced(tracer)  # a second overrun stays silent
    assert len(caught) == 1

    summary = tracer.summary()
    assert summary["events"] == 1
    assert summary["max_events"] == 1
    assert summary["dropped"] == tracer.dropped > 0
    assert "dropped_stalls" in summary
    assert "TRUNCATED" in repr(tracer)
    assert f"dropped={tracer.dropped}" in repr(tracer)


def test_tracer_untruncated_summary_is_clean():
    tracer = ExecutionTracer()
    run_traced(tracer)
    summary = tracer.summary()
    assert summary["dropped"] == 0 and summary["dropped_stalls"] == 0
    assert "TRUNCATED" not in repr(tracer)


def test_tracer_records_stalls():
    tracer = ExecutionTracer()
    stats = run_traced(tracer)
    recorded = tracer.stall_summary()
    # Every attributed stall cycle the simulator counted shows up in
    # the tracer's stream (same source, same numbers).
    assert recorded == {cat: c for cat, c in stats.stall_cycles.items()
                        if c}
    assert tracer.summary()["stalls"] == len(tracer.stalls)


def test_tracer_timeline_text():
    tracer = ExecutionTracer()
    run_traced(tracer)
    text = tracer.timeline(core=0)
    assert "ALU" in text and "LOAD" in text


def test_occupancy_chart():
    tracer = ExecutionTracer()
    run_traced(tracer)
    chart = tracer.occupancy_chart(core=0, buckets=20)
    lines = chart.splitlines()
    assert lines[0].startswith("issue density")
    assert any(line.startswith("w0") for line in lines)
    # rows are uniform width
    widths = {len(line) for line in lines[1:]}
    assert len(widths) == 1


def test_occupancy_chart_empty():
    assert ExecutionTracer().occupancy_chart() == "(no events)"
