"""Run journal: durable completions, torn tails, resume semantics.

The SIGINT round-trip at the bottom drives the real CLI in a
subprocess, interrupts it mid-batch, and proves the resumed run
re-simulates nothing the interrupted run already finished.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from hypothesis import given, settings, strategies as st

from repro.graph import powerlaw_graph
from repro.runtime import (AlgorithmSpec, BatchEngine, GraphSpec, JobSpec,
                           RunJournal, Telemetry, append_jsonl)
from repro.runtime.journal import JOURNAL_SCHEMA
from repro.sim import SIMULATOR_VERSION, GPUConfig

SCHEDULES = ["vertex_map", "edge_map", "warp_map", "sparseweaver"]


def tiny_specs(n=4):
    algorithm = AlgorithmSpec.of("pagerank", iterations=1)
    graph = GraphSpec.inline(powerlaw_graph(100, 400, seed=1), name="pl")
    return [
        JobSpec(algorithm=algorithm, graph=graph, schedule=sched,
                config=GPUConfig.vortex_tiny(), max_iterations=1)
        for sched in SCHEDULES[:n]
    ]


# ------------------------------------------------------------- basics
def test_record_load_round_trip(tmp_path):
    specs = tiny_specs(2)
    outcomes = BatchEngine(jobs=1).run(specs)
    journal = RunJournal(tmp_path / "run.jsonl")
    for spec, outcome in zip(specs, outcomes):
        journal.record(spec, outcome.summary)
    assert len(journal) == 2
    assert specs[0] in journal

    again = RunJournal(tmp_path / "run.jsonl")
    assert again.load() == 2
    restored = again.summary_for(specs[0])
    assert restored is not None
    assert restored.from_cache
    assert restored.total_cycles == outcomes[0].summary.total_cycles
    assert again.hashes() == {s.content_hash() for s in specs}


def test_record_is_idempotent_per_hash(tmp_path):
    spec = tiny_specs(1)[0]
    summary = BatchEngine(jobs=1).run([spec])[0].summary
    journal = RunJournal(tmp_path / "run.jsonl")
    journal.record(spec, summary)
    journal.record(spec, summary)
    lines = (tmp_path / "run.jsonl").read_text().splitlines()
    assert len(lines) == 1


def test_torn_tail_line_is_skipped(tmp_path):
    spec = tiny_specs(1)[0]
    summary = BatchEngine(jobs=1).run([spec])[0].summary
    path = tmp_path / "run.jsonl"
    journal = RunJournal(path)
    journal.record(spec, summary)
    # Simulate a pre-atomic writer dying mid-append.
    with path.open("a") as handle:
        handle.write('{"schema": 1, "hash": "dead')
    again = RunJournal(path)
    assert again.load() == 1
    assert again.bad_lines == 1
    assert spec in again


def test_stale_simulator_version_lines_are_ignored(tmp_path):
    path = tmp_path / "run.jsonl"
    append_jsonl(path, {"schema": JOURNAL_SCHEMA, "sim": -1,
                        "hash": "abc", "summary": {}})
    journal = RunJournal(path)
    assert journal.load() == 0
    assert journal.stale_lines == 1


def test_rotate_compacts_duplicates_atomically(tmp_path):
    spec = tiny_specs(1)[0]
    summary = BatchEngine(jobs=1).run([spec])[0].summary
    path = tmp_path / "run.jsonl"
    journal = RunJournal(path)
    journal.record(spec, summary)
    # Duplicate + torn garbage, as repeated interrupt cycles leave.
    line = path.read_text()
    path.write_text(line + line + "{torn")
    journal = RunJournal(path)
    assert journal.load() == 1
    assert journal.rotate() == 1
    assert len(path.read_text().splitlines()) == 1
    assert RunJournal(path).load() == 1


def test_reset_truncates(tmp_path):
    spec = tiny_specs(1)[0]
    summary = BatchEngine(jobs=1).run([spec])[0].summary
    journal = RunJournal(tmp_path / "run.jsonl")
    journal.record(spec, summary)
    journal.reset()
    assert len(journal) == 0
    assert not (tmp_path / "run.jsonl").exists()
    stats = journal.stats()
    assert stats["entries"] == 0


def test_append_jsonl_is_single_complete_lines(tmp_path):
    path = tmp_path / "events.jsonl"
    for i in range(20):
        append_jsonl(path, {"i": i})
    text = path.read_text()
    assert text.endswith("\n")
    assert [json.loads(l)["i"] for l in text.splitlines()] == list(
        range(20))


# ----------------------------------------------------- engine resume
def test_engine_journals_and_resumes(tmp_path):
    specs = tiny_specs(3)
    journal = RunJournal(tmp_path / "run.jsonl")
    first_tel = Telemetry()
    first = BatchEngine(jobs=1, telemetry=first_tel,
                        journal=journal).run(specs)
    assert [o.status for o in first] == ["ok"] * 3
    assert first_tel.count("started") == 3

    resumed_journal = RunJournal(tmp_path / "run.jsonl")
    resumed_journal.load()
    second_tel = Telemetry()
    second = BatchEngine(jobs=1, telemetry=second_tel,
                         journal=resumed_journal).run(specs)
    assert [o.status for o in second] == ["resumed"] * 3
    assert second_tel.count("started") == 0  # zero re-simulation
    assert second_tel.count("resumed") == 3
    assert ([o.summary.total_cycles for o in second]
            == [o.summary.total_cycles for o in first])


def test_cached_hits_are_journaled_too(tmp_path):
    from repro.runtime import ResultCache

    specs = tiny_specs(2)
    cache = ResultCache(tmp_path / "cache")
    BatchEngine(jobs=1, cache=cache).run(specs)

    journal = RunJournal(tmp_path / "run.jsonl")
    outcomes = BatchEngine(jobs=1, cache=cache, journal=journal).run(specs)
    assert [o.status for o in outcomes] == ["cached"] * 2
    # A later resume needs no cache at all.
    resumed_journal = RunJournal(tmp_path / "run.jsonl")
    assert resumed_journal.load() == 2
    resumed = BatchEngine(jobs=1, journal=resumed_journal).run(specs)
    assert [o.status for o in resumed] == ["resumed"] * 2


# ------------------------------------------------- SIGINT round trip
def test_sigint_then_resume_resimulates_nothing(tmp_path):
    """Interrupt a real CLI batch mid-run; the --resume rerun restores
    every journaled job and simulates only the remainder."""
    journal_path = tmp_path / "run.jsonl"
    telemetry_path = tmp_path / "resume-events.jsonl"
    repo_root = Path(__file__).resolve().parents[1]
    env = dict(os.environ,
               PYTHONPATH=str(repo_root / "src"),
               REPRO_JOBS="1")
    env.pop("REPRO_FAULTS", None)
    argv = [sys.executable, "-m", "repro", "batch",
            "--algorithm", "pagerank", "--datasets", "bio-human",
            "--scale", "0.3", "--iterations", "2", "--no-cache",
            "--journal", str(journal_path)]

    proc = subprocess.Popen(argv, env=env, cwd=repo_root,
                            stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE)
    # Interrupt as soon as at least one completion is journaled.
    deadline = time.time() + 120
    while time.time() < deadline and proc.poll() is None:
        if journal_path.exists() and journal_path.stat().st_size > 0:
            break
        time.sleep(0.05)
    interrupted_hashes = set()
    if proc.poll() is None:
        time.sleep(0.2)  # let it get partway into the next job
        proc.send_signal(signal.SIGINT)
    proc.wait(timeout=120)
    assert proc.returncode in (0, 130)
    if journal_path.exists():
        for line in journal_path.read_text().splitlines():
            try:
                interrupted_hashes.add(json.loads(line)["hash"])
            except (ValueError, KeyError):
                pass
    assert interrupted_hashes, "nothing was journaled before SIGINT"

    resume = subprocess.run(
        argv + ["--resume", "--telemetry", str(telemetry_path)],
        env=env, cwd=repo_root, capture_output=True, text=True,
        timeout=300)
    assert resume.returncode == 0, resume.stderr
    assert "resume:" in resume.stdout
    events = [json.loads(line) for line in
              telemetry_path.read_text().splitlines()]
    resumed = {e["job"] for e in events if e["kind"] == "resumed"}
    started = {e["job"] for e in events if e["kind"] == "started"}
    # Everything journaled before the interrupt was restored, and no
    # restored job was simulated again.
    from repro.sched import ALL_SCHEDULES

    assert resumed == {h[:12] for h in interrupted_hashes}
    assert not (resumed & started)
    assert len(resumed) + len(started) == len(ALL_SCHEDULES)

    # A second resume restores everything: zero simulations.
    again_tel = tmp_path / "again-events.jsonl"
    again = subprocess.run(
        argv + ["--resume", "--telemetry", str(again_tel)],
        env=env, cwd=repo_root, capture_output=True, text=True,
        timeout=300)
    assert again.returncode == 0, again.stderr
    events = [json.loads(line) for line in
              again_tel.read_text().splitlines()]
    kinds = [e["kind"] for e in events]
    assert kinds.count("resumed") == len(ALL_SCHEDULES)
    assert kinds.count("started") == 0


# ------------------------------------------------ lease ledger properties
def _complete_line(path, job_hash):
    """A completion record as the engine would append it."""
    append_jsonl(path, {
        "schema": JOURNAL_SCHEMA,
        "sim": SIMULATOR_VERSION,
        "hash": job_hash,
        "time": 0.0,
        "summary": {"total_cycles": 1, "iterations": 1,
                    "stats": {}, "values_digest": "d"},
    })


_HASHES = [format(i, "02d") * 32 for i in range(4)]
_WORKERS = ["w0", "w1", "w2"]

_LEASE_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("lease"), st.sampled_from(_HASHES),
                  st.sampled_from(_WORKERS)),
        st.tuples(st.just("reclaim"), st.sampled_from(_HASHES),
                  st.sampled_from(_WORKERS)),
        st.tuples(st.just("complete"), st.sampled_from(_HASHES),
                  st.just("")),
    ),
    max_size=40,
)


@given(ops=_LEASE_OPS, writers=st.integers(min_value=1, max_value=3))
@settings(max_examples=60, deadline=None)
def test_interleaved_lease_ledger_matches_model(ops, writers):
    """Any interleaving of lease/complete/reclaim records — appended
    through several independent journal handles, as a coordinator and
    concurrent CLI tools would — loads to the ledger a sequential fold
    of the same operations predicts."""
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "run.jsonl"
        handles = [RunJournal(path) for _ in range(writers)]
        completed, model = set(), {}
        for i, (kind, job_hash, worker) in enumerate(ops):
            journal = handles[i % writers]  # round-robin the writers
            if kind == "lease":
                journal.record_lease(job_hash, worker, 30.0,
                                     attempt=1)
                model[job_hash] = worker
            elif kind == "reclaim":
                journal.record_reclaim(job_hash, worker, "expired")
                model.pop(job_hash, None)
            else:
                _complete_line(path, job_hash)
                completed.add(job_hash)
                model.pop(job_hash, None)

        loaded = RunJournal(path)
        loaded.load()
        active = loaded.active_leases()
        expected = {h: w for h, w in model.items()
                    if h not in completed}
        assert {h: r["worker"] for h, r in active.items()} == expected
        assert loaded.bad_lines == 0
        assert loaded.hashes() == completed
        for job_hash, worker in expected.items():
            assert loaded.lease_holder(job_hash) == worker


@given(ops=_LEASE_OPS)
@settings(max_examples=30, deadline=None)
def test_lease_ledger_survives_torn_line_mid_lease(ops):
    """A writer killed mid-lease-append corrupts at most the records
    physically adjacent to the tear; every other record still folds.

    Regression: the torn prefix has no newline, so the next appended
    line concatenates onto it — the loader must count one bad line
    and keep going, never buffer forever or drop the rest."""
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "run.jsonl"
        journal = RunJournal(path)
        journal.record_lease(_HASHES[0], "w0", 30.0)
        # The tear: a lease append that died after the first bytes.
        with path.open("a") as handle:
            handle.write('{"schema": 1, "type": "lease", "hash": "de')
        completed, model = set(), {_HASHES[0]: "w0"}
        for i, (kind, job_hash, worker) in enumerate(ops):
            if kind == "lease":
                journal.record_lease(job_hash, worker, 30.0)
            elif kind == "reclaim":
                journal.record_reclaim(job_hash, worker, "expired")
            else:
                _complete_line(path, job_hash)
            if i == 0:
                continue  # glued onto the torn prefix, lost with it
            if kind == "lease":
                model[job_hash] = worker
            elif kind == "reclaim":
                model.pop(job_hash, None)
            else:
                completed.add(job_hash)
                model.pop(job_hash, None)

        loaded = RunJournal(path)
        loaded.load()
        assert loaded.bad_lines == 1
        expected = {h: w for h, w in model.items()
                    if h not in completed}
        active = loaded.active_leases()
        assert {h: r["worker"] for h, r in active.items()} == expected
        assert loaded.hashes() == completed


# ------------------------------------------- forward-compatible kinds
def test_unknown_record_kinds_are_counted_not_corruption(tmp_path):
    """A journal shared with a newer build may interleave record kinds
    this reader has never heard of; they must be skipped and counted —
    distinctly from torn lines — with every known record still loading."""
    path = tmp_path / "run.jsonl"
    spec_a, spec_b = tiny_specs(2)
    summaries = [o.summary for o in BatchEngine(jobs=1).run(
        [spec_a, spec_b])]

    journal = RunJournal(path)
    journal.record(spec_a, summaries[0])
    # A future build's record kind, interleaved mid-file.
    append_jsonl(path, {"schema": JOURNAL_SCHEMA,
                        "sim": SIMULATOR_VERSION,
                        "type": "digest-checkpoint",
                        "hash": "ab" * 32, "payload": [1, 2, 3]})
    journal.record_lease(spec_b, "w0", 30.0)
    append_jsonl(path, {"schema": JOURNAL_SCHEMA,
                        "sim": SIMULATOR_VERSION,
                        "type": "telemetry-index", "offset": 9})
    journal.record(spec_b, summaries[1])
    # And a torn tail from a writer killed mid-append.
    with path.open("a") as handle:
        handle.write('{"schema": 1, "type": "digest-che')

    loaded = RunJournal(path)
    assert loaded.load() == 2
    assert loaded.unknown_lines == 2
    assert loaded.bad_lines == 1
    assert loaded.stale_lines == 0
    assert loaded.hashes() == {spec_a.content_hash(),
                               spec_b.content_hash()}
    assert loaded.active_leases() == {}  # completion shadows the lease
    stats = loaded.stats()
    assert stats["unknown_lines"] == 2
    assert stats["bad_lines"] == 1


def test_unknown_kind_without_hash_is_not_bad(tmp_path):
    """Unknown kinds are skipped *before* any field access — a future
    record needs no 'hash'/'summary' fields to pass through safely."""
    path = tmp_path / "run.jsonl"
    append_jsonl(path, {"schema": JOURNAL_SCHEMA,
                        "sim": SIMULATOR_VERSION,
                        "type": "annotation", "note": "hello"})
    journal = RunJournal(path)
    assert journal.load() == 0
    assert journal.unknown_lines == 1
    assert journal.bad_lines == 0


# ------------------------------------------------- skipped (shed) records
def test_skipped_records_round_trip(tmp_path):
    """A shed job is journaled as a deferral: visible after reload,
    cleared by a later completion, never blocking resume."""
    path = tmp_path / "run.jsonl"
    journal = RunJournal(path)
    journal.record_skipped(_HASHES[0], "deadline")
    journal.record_skipped(_HASHES[1], "sigterm", label="pr-job")

    loaded = RunJournal(path)
    loaded.load()
    assert loaded.skipped() == {_HASHES[0]: "deadline",
                                _HASHES[1]: "sigterm"}
    assert loaded.stats()["skipped"] == 2
    assert loaded.stats()["skipped_lines"] == 2
    # A skip is not a completion: nothing resumes from it.
    assert loaded.hashes() == set()

    # The deferred job later completes (a --resume run): the skip is
    # superseded in both orders of load.
    _complete_line(path, _HASHES[0])
    again = RunJournal(path)
    again.load()
    assert again.skipped() == {_HASHES[1]: "sigterm"}
    assert _HASHES[0] in again.hashes()


def test_rotate_drops_skipped_records(tmp_path):
    """Rotation keeps completions only; stale deferral lines (already
    superseded or still pending) do not survive compaction."""
    path = tmp_path / "run.jsonl"
    journal = RunJournal(path)
    journal.record_skipped(_HASHES[0], "deadline")
    _complete_line(path, _HASHES[1])
    journal.load()
    journal.rotate()
    compacted = RunJournal(path)
    compacted.load()
    assert compacted.skipped() == {}
    assert compacted.hashes() == {_HASHES[1]}


_RESILIENT_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("lease"), st.sampled_from(_HASHES),
                  st.sampled_from(_WORKERS)),
        st.tuples(st.just("reclaim"), st.sampled_from(_HASHES),
                  st.sampled_from(_WORKERS)),
        st.tuples(st.just("reconnect"), st.sampled_from(_HASHES),
                  st.sampled_from(_WORKERS)),
        st.tuples(st.just("skip"), st.sampled_from(_HASHES),
                  st.just("")),
        st.tuples(st.just("complete"), st.sampled_from(_HASHES),
                  st.just("")),
    ),
    max_size=50,
)


@given(ops=_RESILIENT_OPS, writers=st.integers(min_value=1, max_value=3))
@settings(max_examples=60, deadline=None)
def test_resilient_ledger_with_reconnects_matches_model(ops, writers):
    """The lease ledger property extended with the resilience record
    kinds: reconnect-reason reclaims (a superseded zombie connection)
    and skipped deferrals.  Any interleaving across several writer
    handles folds to what a sequential model predicts — no lost and no
    duplicated state."""
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "run.jsonl"
        handles = [RunJournal(path) for _ in range(writers)]
        completed, leases, skips = set(), {}, {}
        for i, (kind, job_hash, worker) in enumerate(ops):
            journal = handles[i % writers]
            if kind == "lease":
                journal.record_lease(job_hash, worker, 30.0, attempt=1)
                leases[job_hash] = worker
            elif kind == "reclaim":
                journal.record_reclaim(job_hash, worker, "expired")
                leases.pop(job_hash, None)
            elif kind == "reconnect":
                # The supersede path: same records, distinct reason.
                journal.record_reclaim(job_hash, worker, "reconnect")
                leases.pop(job_hash, None)
            elif kind == "skip":
                journal.record_skipped(job_hash, "deadline")
                skips[job_hash] = "deadline"
            else:
                _complete_line(path, job_hash)
                completed.add(job_hash)
                leases.pop(job_hash, None)

        loaded = RunJournal(path)
        loaded.load()
        assert loaded.bad_lines == 0
        assert loaded.hashes() == completed
        active = loaded.active_leases()
        assert ({h: r["worker"] for h, r in active.items()}
                == {h: w for h, w in leases.items()
                    if h not in completed})
        assert loaded.skipped() == {h: r for h, r in skips.items()
                                    if h not in completed}
