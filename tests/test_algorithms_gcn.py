"""GCN operators (Case Study 2): correctness and strategy behavior."""

import numpy as np
import pytest

from repro.algorithms.gcn import (
    GCNResult,
    _normalization,
    gcn_reference,
    run_gcn_operator,
)
from repro.errors import AlgorithmError
from repro.graph import chain_graph, powerlaw_graph, star_graph
from repro.sim import GPUConfig

CFG = GPUConfig.vortex_tiny()


@pytest.fixture
def gcn_inputs():
    g = powerlaw_graph(60, 240, seed=3)
    rng = np.random.default_rng(7)
    feats = rng.normal(size=(g.num_vertices, 4))
    weight = rng.normal(size=(4, 3))
    return g, feats, weight


def test_reference_matches_manual_star():
    g = star_graph(3)  # hub 0 <-> leaves 1..3
    feats = np.eye(4)[:, :2]
    weight = np.eye(2)
    out = gcn_reference(g, feats, weight)
    norm = _normalization(g)
    # hub row aggregates the three leaves with coefficient 1/sqrt(3*1)
    expected_hub = sum(
        feats[leaf] * norm[i] for i, leaf in enumerate([1, 2, 3])
    )
    np.testing.assert_allclose(out[0], expected_hub)


def test_normalization_uses_both_degrees():
    g = star_graph(4)
    norm = _normalization(g)
    assert norm.shape == (g.num_edges,)
    # hub out-degree 4, leaf in-degree 1 -> 1/2 on hub->leaf edges
    np.testing.assert_allclose(norm[:4], 0.5)


@pytest.mark.parametrize("strategy", ["vertex_map", "sparseweaver"])
def test_strategies_match_reference(gcn_inputs, strategy):
    g, feats, weight = gcn_inputs
    ref = gcn_reference(g, feats, weight)
    res = run_gcn_operator(g, feats, weight, strategy=strategy, config=CFG)
    np.testing.assert_allclose(res.features, ref, atol=1e-9)


def test_three_kernels_reported(gcn_inputs):
    g, feats, weight = gcn_inputs
    res = run_gcn_operator(g, feats, weight, strategy="vertex_map",
                           config=CFG)
    assert set(res.kernel_stats) == {"init", "spmm", "graphsum"}
    assert isinstance(res, GCNResult)
    assert res.stats.total_cycles == sum(
        s.total_cycles for s in res.kernel_stats.values()
    )


def test_spmm_cost_identical_across_strategies(gcn_inputs):
    g, feats, weight = gcn_inputs
    vm = run_gcn_operator(g, feats, weight, strategy="vertex_map",
                          config=CFG)
    sw = run_gcn_operator(g, feats, weight, strategy="sparseweaver",
                          config=CFG)
    assert vm.kernel_stats["spmm"].instructions == \
        sw.kernel_stats["spmm"].instructions


def test_sparseweaver_wins_graphsum_on_skewed_low_dims():
    g = powerlaw_graph(120, 900, exponent=1.8, seed=11)
    rng = np.random.default_rng(5)
    feats = rng.normal(size=(g.num_vertices, 4))
    weight = rng.normal(size=(4, 2))
    vm = run_gcn_operator(g, feats, weight, strategy="vertex_map",
                          config=CFG)
    sw = run_gcn_operator(g, feats, weight, strategy="sparseweaver",
                          config=CFG)
    assert sw.kernel_stats["graphsum"].total_cycles < \
        vm.kernel_stats["graphsum"].total_cycles


def test_weight_dims_scale_cost(gcn_inputs):
    g, feats, _ = gcn_inputs
    rng = np.random.default_rng(2)
    small = run_gcn_operator(g, feats, rng.normal(size=(4, 1)),
                             strategy="sparseweaver", config=CFG)
    large = run_gcn_operator(g, feats, rng.normal(size=(4, 8)),
                             strategy="sparseweaver", config=CFG)
    assert large.stats.total_cycles > small.stats.total_cycles


def test_chain_graph_gcn():
    g = chain_graph(10)
    feats = np.ones((10, 2))
    weight = np.eye(2)
    ref = gcn_reference(g, feats, weight)
    res = run_gcn_operator(g, feats, weight, strategy="sparseweaver",
                           config=CFG)
    np.testing.assert_allclose(res.features, ref, atol=1e-9)


def test_gcn_validation(gcn_inputs):
    g, feats, weight = gcn_inputs
    with pytest.raises(AlgorithmError):
        run_gcn_operator(g, feats, weight, strategy="magic", config=CFG)
    with pytest.raises(AlgorithmError):
        run_gcn_operator(g, feats[:5], weight, config=CFG)
    with pytest.raises(AlgorithmError):
        run_gcn_operator(g, feats, np.ones((9, 2)), config=CFG)


# ----------------------------------------------------------------------
# GCNModel (multi-layer forward)
# ----------------------------------------------------------------------
def test_gcn_model_matches_reference(gcn_inputs):
    from repro.algorithms.gcn import GCNModel

    g, feats, w1 = gcn_inputs
    rng = np.random.default_rng(3)
    w2 = rng.normal(size=(w1.shape[1], 2))
    for strategy in ("vertex_map", "sparseweaver"):
        model = GCNModel([w1, w2], strategy=strategy)
        out = model.forward(g, feats, config=CFG)
        np.testing.assert_allclose(out.features,
                                   model.reference(g, feats), atol=1e-9)


def test_gcn_model_stats_merge_layers(gcn_inputs):
    from repro.algorithms.gcn import GCNModel

    g, feats, w1 = gcn_inputs
    rng = np.random.default_rng(4)
    w2 = rng.normal(size=(w1.shape[1], 2))
    model = GCNModel([w1, w2], strategy="sparseweaver")
    out = model.forward(g, feats, config=CFG)
    assert set(out.kernel_stats) == {
        "layer0/init", "layer0/spmm", "layer0/graphsum",
        "layer1/init", "layer1/spmm", "layer1/graphsum",
    }
    assert out.stats.total_cycles == sum(
        s.total_cycles for s in out.kernel_stats.values())


def test_gcn_model_relu_between_layers(gcn_inputs):
    from repro.algorithms.gcn import GCNModel

    g, feats, w1 = gcn_inputs
    model = GCNModel([w1], strategy="vertex_map")
    single = model.forward(g, feats, config=CFG)
    # single-layer: no ReLU applied at the end
    assert (single.features < 0).any()


def test_gcn_model_validation(gcn_inputs):
    from repro.algorithms.gcn import GCNModel

    _, _, w1 = gcn_inputs
    with pytest.raises(AlgorithmError):
        GCNModel([])
    with pytest.raises(AlgorithmError):
        GCNModel([w1, np.ones((w1.shape[1] + 1, 2))])
