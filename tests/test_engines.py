"""The simulator engine registry and the ``engine=`` API surface.

Covers the registry contract (lookup, listing, registration,
resolution precedence), bit-exact parity between the fast and
reference engines, the auto engine's per-run selection, clean fallback
for uncovered kernels (with the ``sim_engine_fallback_total`` metric),
the deprecation shim for the legacy ``gpu=`` spelling, engine-blind
job identity, and divergence bisection against a deliberately broken
engine.
"""

import json

import pytest

from repro.errors import ConfigError
from repro.frontend import GraphProcessor
from repro.graph import dataset
from repro.sim import GPUConfig
from repro.sim.engines import (DEFAULT_ENGINE, ENGINE_ENV,
                               SimulatorEngine, available_engines,
                               build_gpu, get_engine, register_engine,
                               resolve_engine_name)
from repro.sim.fast import FastGPU
from repro.sim.gpu import GPU


# ----------------------------------------------------------------- registry

def test_builtin_engines_registered():
    names = available_engines()
    assert "reference" in names
    assert "fast" in names
    assert "auto" in names
    assert names == sorted(names)


def test_get_engine_builds_expected_gpu_types():
    cfg = GPUConfig.vortex_bench()
    ref = get_engine("reference").build_gpu(cfg)
    fast = get_engine("fast").build_gpu(cfg)
    assert type(ref) is GPU
    assert isinstance(fast, FastGPU)
    assert isinstance(get_engine("reference"), SimulatorEngine)


def test_get_engine_unknown_name_errors():
    with pytest.raises(ConfigError, match="unknown simulator engine"):
        get_engine("warp9")


def test_register_engine_validates_shape():
    class NoBuild:
        name = "nobuild"

    with pytest.raises(ConfigError):
        register_engine(NoBuild())

    class NoName:
        def build_gpu(self, config, schedule=None):
            return GPU(config)

    with pytest.raises(ConfigError):
        register_engine(NoName())


def test_resolution_precedence(monkeypatch):
    monkeypatch.delenv(ENGINE_ENV, raising=False)
    assert resolve_engine_name(None) == DEFAULT_ENGINE
    monkeypatch.setenv(ENGINE_ENV, "fast")
    assert resolve_engine_name(None) == "fast"
    # An explicit argument beats the environment.
    assert resolve_engine_name("reference") == "reference"


def test_build_gpu_routes_through_registry():
    cfg = GPUConfig.vortex_bench()
    assert type(build_gpu(cfg)) is GPU
    assert isinstance(build_gpu(cfg, engine="fast"), FastGPU)


def test_auto_engine_selects_by_schedule():
    from repro.sched.registry import make_schedule

    cfg = GPUConfig.vortex_bench()
    auto = get_engine("auto")
    assert isinstance(
        auto.build_gpu(cfg, schedule=make_schedule("vertex_map")),
        FastGPU)
    weaver_gpu = auto.build_gpu(
        cfg, schedule=make_schedule("sparseweaver"))
    assert type(weaver_gpu) is GPU


def test_facade_reexports():
    import repro

    assert repro.get_engine is get_engine
    assert repro.SimulatorEngine is SimulatorEngine


# ------------------------------------------------------------------- parity

@pytest.mark.parametrize("schedule", ["vertex_map", "edge_map",
                                      "warp_map", "cta_map",
                                      "sparseweaver"])
def test_fast_engine_bit_identical(schedule):
    """Cycles, stall cells and summary dicts match the reference
    engine exactly — the tentpole guarantee."""
    from repro.runtime import AlgorithmSpec

    graph = dataset("bio-human", scale=0.1)
    results = {}
    for engine in ("reference", "fast"):
        proc = GraphProcessor(
            AlgorithmSpec.of("pagerank", iterations=2).build(),
            schedule=schedule, config=GPUConfig.vortex_bench(),
            engine=engine)
        results[engine] = proc.run(graph, max_iterations=2)
    ref, fast = results["reference"], results["fast"]
    assert fast.total_cycles == ref.total_cycles
    assert fast.iterations == ref.iterations
    assert fast.stats.to_summary_dict() == ref.stats.to_summary_dict()
    assert dict(fast.stats.stall_cells) == dict(ref.stats.stall_cells)
    assert (fast.values == ref.values).all()


# ----------------------------------------------------------------- fallback

def test_fast_unsupported_kernel_falls_back_cleanly():
    """A hardware-unit schedule under engine=fast falls back to the
    reference loop per kernel, increments the fallback metric, and
    still produces reference-identical results."""
    from repro.obs.metrics import (disable_metrics, enable_metrics,
                                   metrics_enabled)
    from repro.runtime import AlgorithmSpec

    graph = dataset("bio-human", scale=0.1)
    was_enabled = metrics_enabled()
    registry = enable_metrics()
    registry.clear()
    try:
        proc = GraphProcessor(
            AlgorithmSpec.of("pagerank", iterations=2).build(),
            schedule="sparseweaver", config=GPUConfig.vortex_bench(),
            engine="fast")
        fast = proc.run(graph, max_iterations=2)
        counter = registry.counter("sim_engine_fallback_total")
        assert counter.value(reason="unit") > 0
    finally:
        registry.clear()
        if not was_enabled:
            disable_metrics()

    ref = GraphProcessor(
        AlgorithmSpec.of("pagerank", iterations=2).build(),
        schedule="sparseweaver", config=GPUConfig.vortex_bench(),
        engine="reference").run(graph, max_iterations=2)
    assert fast.total_cycles == ref.total_cycles
    assert fast.stats.to_summary_dict() == ref.stats.to_summary_dict()


# -------------------------------------------------------------- deprecation

def test_gpu_kwarg_deprecation_shim():
    """The legacy ``gpu=`` spelling still works but warns once and is
    overridden by an explicit ``engine=``."""
    import repro.frontend.framework as framework
    from repro.runtime import AlgorithmSpec

    alg = AlgorithmSpec.of("pagerank", iterations=1).build()
    framework._GPU_KWARG_WARNED = False
    try:
        with pytest.warns(DeprecationWarning, match="engine="):
            proc = GraphProcessor(alg, schedule="vertex_map", gpu="fast")
        assert proc.engine_name == "fast"
        # Second use is silent (warn-once), and engine= wins over gpu=.
        proc = GraphProcessor(alg, schedule="vertex_map",
                              gpu="fast", engine="reference")
        assert proc.engine_name == "reference"
    finally:
        framework._GPU_KWARG_WARNED = False


# ----------------------------------------------------------- job identity

def test_engine_excluded_from_spec_identity():
    """Engine-stamped specs keep the engine-less content hash, dict
    form and equality — same cycles means same cache address."""
    import dataclasses

    from repro.runtime import AlgorithmSpec, GraphSpec, JobSpec

    spec = JobSpec(
        algorithm=AlgorithmSpec.of("pagerank", iterations=1),
        graph=GraphSpec.from_dataset("bio-human", scale=0.1),
        schedule="vertex_map")
    stamped = dataclasses.replace(spec, engine="fast")
    assert stamped.engine == "fast"
    assert stamped == spec
    assert stamped.content_hash() == spec.content_hash()
    assert "engine" not in stamped.to_dict()
    # from_dict honors a stray engine key without round-tripping it.
    carried = JobSpec.from_dict({**spec.to_dict(), "engine": "fast"})
    assert carried.engine == "fast"
    assert carried.content_hash() == spec.content_hash()


# ------------------------------------------------------- divergence bisect

class _BrokenGPU(GPU):
    """Reference loop that silently adds one cycle of latency to every
    instruction from its third kernel launch onward — kernels 0 and 1
    stay bit-identical, kernel 2 diverges from its first record."""

    def __init__(self, config):
        super().__init__(config)
        self._launches = 0
        self._broken_now = False

    def run_kernel(self, *args, **kwargs):
        self._broken_now = self._launches >= 2
        self._launches += 1
        return super().run_kernel(*args, **kwargs)

    def _execute(self, instr, core_id, warp, now, unit, stats):
        cost, done = super()._execute(instr, core_id, warp, now, unit,
                                      stats)
        if self._broken_now:
            done += 1
        return cost, done


class _BrokenEngine:
    name = "broken-for-test"

    def build_gpu(self, config, schedule=None):
        return _BrokenGPU(config)


def test_diff_bisects_broken_engine_to_first_bad_kernel(capsys):
    """``repro diff --a engine=reference --b engine=<broken>`` names
    the first diverging (kernel, interval, core, warp) coordinate —
    and it is the kernel the broken engine actually perturbs."""
    from repro.cli import main
    from repro.obs.provenance import digests_enabled, disable_digests
    from repro.sim import engines as engines_mod

    register_engine(_BrokenEngine())
    live = ("algorithm=pagerank,dataset=bio-human,schedule=vertex_map,"
            "scale=0.2,iterations=2")
    assert not digests_enabled()
    try:
        code = main(["diff", "--a", f"engine=reference,{live}",
                     "--b", f"engine=broken-for-test,{live}",
                     "--interval", "256", "--json"])
        out = capsys.readouterr().out
    finally:
        disable_digests(clear=True)
        engines_mod._ENGINES.pop("broken-for-test", None)
    assert code == 1
    doc = json.loads(out)
    assert doc["divergent"] == 1
    first = doc["jobs"][0]["first"]
    # Kernels 0 (init) and 1 (first gather) replay clean; the first
    # divergence is the perturbed third launch.
    assert first["coord"][0] == 2
    assert first["where"].startswith("kernel 2")


def test_diff_between_real_engines_is_clean(capsys):
    """The ledger-level acceptance check: reference vs fast diffs to
    zero divergences with digests enabled."""
    from repro.cli import main
    from repro.obs.provenance import digests_enabled, disable_digests

    live = ("algorithm=pagerank,dataset=bio-human,schedule=warp_map,"
            "scale=0.2,iterations=2")
    assert not digests_enabled()
    try:
        code = main(["diff", "--a", f"engine=reference,{live}",
                     "--b", f"engine=fast,{live}",
                     "--interval", "256", "--json"])
        out = capsys.readouterr().out
    finally:
        disable_digests(clear=True)
    assert code == 0
    doc = json.loads(out)
    assert doc["divergent"] == 0 and doc["compared"] == 1
