"""Result cache: memoization, versioning, eviction, stats round-trip."""

import json
import os
import time

import pytest

import repro.runtime.cache as cache_mod
from repro.graph import powerlaw_graph
from repro.runtime import (AlgorithmSpec, GraphSpec, JobSpec, ResultCache,
                           RunSummary)
from repro.sim import GPUConfig
from repro.sim.stats import KernelStats


@pytest.fixture
def spec():
    return JobSpec(
        algorithm=AlgorithmSpec.of("pagerank", iterations=1),
        graph=GraphSpec.inline(powerlaw_graph(80, 300, seed=1)),
        schedule="vertex_map",
        config=GPUConfig.vortex_tiny(),
        max_iterations=1,
    )


@pytest.fixture
def summary(spec):
    return RunSummary.from_run_result(spec.execute())


def test_kernel_stats_summary_round_trip(summary):
    stats = summary.stats
    rebuilt = KernelStats.from_summary_dict(stats.to_summary_dict())
    assert rebuilt.total_cycles == stats.total_cycles
    assert rebuilt.instructions == stats.instructions
    assert rebuilt.warps_launched == stats.warps_launched
    assert rebuilt.phase_breakdown() == stats.phase_breakdown()
    assert rebuilt.stall_breakdown() == stats.stall_breakdown()
    assert rebuilt.to_dict() == stats.to_dict()
    # The summary dict itself is JSON-safe.
    json.dumps(stats.to_summary_dict())


def test_run_summary_round_trip(summary):
    again = RunSummary.from_dict(json.loads(
        json.dumps(summary.to_dict())))
    assert again.total_cycles == summary.total_cycles
    assert again.iterations == summary.iterations
    assert again.values_digest == summary.values_digest
    assert again.stats.to_dict() == summary.stats.to_dict()


def test_miss_then_hit(tmp_path, spec, summary):
    cache = ResultCache(tmp_path)
    assert cache.get(spec) is None
    cache.put(spec, summary)
    hit = cache.get(spec)
    assert hit is not None
    assert hit.from_cache
    assert hit.total_cycles == summary.total_cycles
    assert hit.values_digest == summary.values_digest
    stats = cache.stats()
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["stores"] == 1
    assert stats["entries"] == 1


def test_simulator_version_bump_invalidates(tmp_path, spec, summary,
                                            monkeypatch):
    cache = ResultCache(tmp_path)
    cache.put(spec, summary)
    assert cache.get(spec) is not None
    monkeypatch.setattr(cache_mod, "SIMULATOR_VERSION", 999)
    bumped = ResultCache(tmp_path)
    assert bumped.get(spec) is None
    assert bumped.stats()["misses"] == 1


def test_corrupt_entry_is_a_miss(tmp_path, spec, summary):
    cache = ResultCache(tmp_path)
    cache.put(spec, summary)
    path = cache._path(cache.key(spec))
    path.write_text("{ not json")
    assert cache.get(spec) is None
    assert not path.exists()  # dropped, not left to rot


def test_clear_removes_entries(tmp_path, spec, summary):
    cache = ResultCache(tmp_path)
    cache.put(spec, summary)
    assert cache.clear() == 1
    assert cache.entries() == 0
    assert cache.get(spec) is None


def test_eviction_bounds_entries(tmp_path, summary):
    import dataclasses

    cache = ResultCache(tmp_path, max_entries=2)
    base = JobSpec(
        algorithm=AlgorithmSpec.of("pagerank", iterations=1),
        graph=GraphSpec.from_dataset("bio-human", scale=0.2),
        schedule="vertex_map",
        config=GPUConfig.vortex_tiny(),
    )
    for i in range(4):
        cache.put(dataclasses.replace(base, seed=i), summary)
    assert cache.entries() <= 2
    assert cache.evictions == 2
    assert cache.evictions_by_reason["capacity"] == 2


def _seeded_specs(n):
    import dataclasses

    base = JobSpec(
        algorithm=AlgorithmSpec.of("pagerank", iterations=1),
        graph=GraphSpec.from_dataset("bio-human", scale=0.2),
        schedule="vertex_map",
        config=GPUConfig.vortex_tiny(),
    )
    return [dataclasses.replace(base, seed=i) for i in range(n)]


def test_byte_budget_evicts_oldest(tmp_path, summary):
    probe = ResultCache(tmp_path / "probe")
    specs = _seeded_specs(4)
    probe.put(specs[0], summary)
    entry_size = probe.bytes_used()

    cache = ResultCache(tmp_path / "real", max_bytes=2 * entry_size)
    for i, spec in enumerate(specs):
        cache.put(spec, summary)
        os.utime(cache._path(cache.key(spec)), (i, i))  # force mtime order
    assert cache.bytes_used() <= 2 * entry_size
    assert cache.evictions_by_reason["bytes"] == 2
    # The newest entries survived; the oldest were evicted.
    assert cache.get(specs[0]) is None
    assert cache.get(specs[3]) is not None
    stats = cache.stats()
    assert stats["max_bytes"] == 2 * entry_size
    assert stats["evictions_by_reason"]["bytes"] == 2


def test_ttl_evicts_on_lookup_and_sweep(tmp_path, spec, summary):
    cache = ResultCache(tmp_path, ttl_seconds=60)
    cache.put(spec, summary)
    assert cache.get(spec) is not None  # fresh entry hits

    stale = time.time() - 120
    os.utime(cache._path(cache.key(spec)), (stale, stale))
    assert cache.get(spec) is None  # lookup notices the expiry
    assert cache.evictions_by_reason["ttl"] == 1
    assert cache.entries() == 0

    # The store-time sweep also reaps other stale entries.
    specs = _seeded_specs(2)
    cache.put(specs[0], summary)
    os.utime(cache._path(cache.key(specs[0])), (stale, stale))
    cache.put(specs[1], summary)
    assert cache.evictions_by_reason["ttl"] == 2
    assert cache.get(specs[1]) is not None


def test_eviction_reasons_reach_registry(tmp_path, spec, summary):
    from repro.obs.metrics import MetricsRegistry, get_registry

    registry = get_registry()
    was_enabled, registry.enabled = registry.enabled, True
    registry.clear()
    try:
        cache = ResultCache(tmp_path, ttl_seconds=60)
        cache.get(spec)  # miss
        cache.put(spec, summary)  # store
        cache.get(spec)  # hit
        stale = time.time() - 120
        os.utime(cache._path(cache.key(spec)), (stale, stale))
        cache.get(spec)  # ttl eviction + miss
        events = registry.get("result_cache_events_total")
        assert events.value(event="miss") == 2
        assert events.value(event="hit") == 1
        assert events.value(event="store") == 1
        evictions = registry.get("result_cache_evictions_total")
        assert evictions.value(reason="ttl") == 1
    finally:
        registry.clear()
        registry.enabled = was_enabled


def test_stall_cells_survive_cache_round_trip(tmp_path, spec, summary):
    """Per-core/warp stall attribution crosses the cache boundary."""
    assert summary.stats.stall_cells  # the run actually attributed
    cache = ResultCache(tmp_path)
    cache.put(spec, summary)
    hit = cache.get(spec)
    assert dict(hit.stats.stall_cells) == dict(summary.stats.stall_cells)
    assert hit.stats.stall_cells_total() == (
        summary.stats.stall_cells_total())


# --------------------------------------------------------- self-healing
def test_truncated_entry_is_quarantined_not_fatal(tmp_path, spec,
                                                  summary):
    cache = ResultCache(tmp_path)
    cache.put(spec, summary)
    path = cache._path(cache.key(spec))
    path.write_text(path.read_text()[:40])  # torn mid-write
    assert cache.get(spec) is None
    assert cache.quarantined == 1
    assert cache.quarantined_entries() == 1
    assert not path.exists()
    stats = cache.stats()
    assert stats["quarantined"] == 1
    assert stats["quarantined_entries"] == 1


def test_checksum_mismatch_is_quarantined(tmp_path, spec, summary):
    cache = ResultCache(tmp_path)
    cache.put(spec, summary)
    path = cache._path(cache.key(spec))
    entry = json.loads(path.read_text())
    entry["summary"]["total_cycles"] += 1  # silent bit-flip
    path.write_text(json.dumps(entry))
    assert cache.get(spec) is None  # checksum catches the tamper
    assert cache.quarantined == 1
    assert cache.quarantined_entries() == 1


def test_structurally_wrong_entry_is_quarantined(tmp_path, spec,
                                                 summary):
    cache = ResultCache(tmp_path)
    cache.put(spec, summary)
    path = cache._path(cache.key(spec))
    path.write_text(json.dumps([1, 2, 3]))  # valid JSON, wrong shape
    assert cache.get(spec) is None
    assert cache.quarantined == 1


def test_quarantine_warns_once_then_goes_quiet(tmp_path, summary,
                                               caplog):
    import logging

    cache = ResultCache(tmp_path)
    specs = _seeded_specs(3)
    for s in specs:
        cache.put(s, summary)
        cache._path(cache.key(s)).write_text("{ not json")
    with caplog.at_level(logging.WARNING, logger="repro.runtime.cache"):
        for s in specs:
            assert cache.get(s) is None
    warnings = [r for r in caplog.records
                if r.levelno == logging.WARNING]
    assert len(warnings) == 1  # one warning, not one per lookup
    assert cache.quarantined == 3


def test_quarantine_counts_reach_registry(tmp_path, spec, summary):
    from repro.obs.metrics import get_registry

    registry = get_registry()
    was_enabled, registry.enabled = registry.enabled, True
    registry.clear()
    try:
        cache = ResultCache(tmp_path)
        cache.put(spec, summary)
        cache._path(cache.key(spec)).write_text("garbage")
        cache.get(spec)
        counter = registry.get("result_cache_quarantined_total")
        assert counter.value(reason="undecodable") == 1
    finally:
        registry.clear()
        registry.enabled = was_enabled


def test_clear_also_removes_quarantine(tmp_path, spec, summary):
    cache = ResultCache(tmp_path)
    cache.put(spec, summary)
    cache._path(cache.key(spec)).write_text("garbage")
    assert cache.get(spec) is None
    assert cache.quarantined_entries() == 1
    assert cache.clear() == 1  # the quarantined file
    assert cache.quarantined_entries() == 0
