"""CLI surface of the distributed fleet: serve, work, bench --dist.

The round trip drives real ``repro serve`` / ``repro work``
subprocesses over localhost TCP — the same path CI's chaos-fleet step
exercises with a kill in the middle.
"""

import json
import os
import re
import subprocess
import sys
from pathlib import Path

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return env


def test_serve_and_work_round_trip(tmp_path):
    journal = tmp_path / "journal.jsonl"
    serve = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--algorithm", "pagerank", "--datasets", "bio-human",
         "--schedules", "vertex_map", "warp_map",
         "--scale", "0.2", "--iterations", "1",
         "--no-cache", "--journal", str(journal),
         "--bind", "127.0.0.1:0", "--json"],
        env=_env(), cwd=REPO_ROOT, stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, text=True)
    banner = serve.stdout.readline()
    match = re.search(r"at (\S+);", banner)
    assert match, f"no address in serve banner: {banner!r}"
    address = match.group(1)

    workers = [
        subprocess.Popen(
            [sys.executable, "-m", "repro", "work", address,
             "--id", f"cli-w{i}", "--connect-timeout", "60"],
            env=_env(), cwd=REPO_ROOT, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True)
        for i in range(2)
    ]
    out, err = serve.communicate(timeout=300)
    assert serve.returncode == 0, err

    payload = json.loads(out.strip().splitlines()[-1])
    assert [o["status"] for o in payload["outcomes"]] == ["ok", "ok"]
    assert all(o["cycles"] for o in payload["outcomes"])
    assert payload["fleet"]["batches_done"] == 1
    jobs_by_worker = {w: info["jobs_ok"]
                      for w, info in payload["fleet"]["workers"].items()}
    assert sum(jobs_by_worker.values()) == 2

    for proc in workers:
        wout, werr = proc.communicate(timeout=60)
        assert proc.returncode == 0, werr
        assert "drained" in wout
    # The journal holds both completions for a later --resume.
    lines = [json.loads(l) for l in journal.read_text().splitlines()]
    assert sum(1 for l in lines if "summary" in l) == 2


def test_bench_rejects_dist_with_jobs(capsys):
    code = main(["bench", "--smoke", "--figures", "fig10_pagerank",
                 "--dist", "127.0.0.1:1", "--jobs", "2"])
    captured = capsys.readouterr()
    assert code == 2
    assert "--jobs does not apply with --dist" in captured.err


def test_work_unreachable_coordinator_exits_2(capsys):
    code = main(["work", "127.0.0.1:1", "--connect-timeout", "0.2"])
    captured = capsys.readouterr()
    assert code == 2
    assert "could not reach coordinator" in captured.err


def test_cache_stats_json(capsys, tmp_path):
    code = main(["cache", "stats", "--cache-dir", str(tmp_path),
                 "--json"])
    captured = capsys.readouterr()
    assert code == 0
    stats = json.loads(captured.out)
    assert stats["entries"] == 0
    assert {"hits", "misses", "stores"} <= set(stats)


def test_serve_max_runtime_sheds_then_resume_completes(tmp_path):
    journal = tmp_path / "journal.jsonl"
    base = [sys.executable, "-m", "repro", "serve",
            "--algorithm", "pagerank", "--datasets", "bio-human",
            "--schedules", "vertex_map", "warp_map",
            "--scale", "0.2", "--iterations", "1",
            "--no-cache", "--journal", str(journal),
            "--bind", "127.0.0.1:0", "--json"]
    # An exhausted runtime budget sheds every job as a journaled skip
    # (exit 1: the batch did not fully resolve) without needing any
    # worker at all.
    shed = subprocess.run(base + ["--max-runtime", "0"], env=_env(),
                          cwd=REPO_ROOT, capture_output=True,
                          text=True, timeout=120)
    assert shed.returncode == 1, shed.stderr
    payload = json.loads(shed.stdout.strip().splitlines()[-1])
    statuses = [o["status"] for o in payload["outcomes"]]
    assert statuses == ["skipped", "skipped"]
    assert all("deadline" in o["error"] for o in payload["outcomes"])
    assert payload["fleet"]["jobs_shed"] == 2
    lines = [json.loads(l) for l in journal.read_text().splitlines()]
    assert sum(1 for l in lines if l.get("type") == "skipped") == 2

    # The shed work was deferred, not lost: --resume + a worker
    # completes the remainder under a fresh budget.
    serve = subprocess.Popen(base + ["--resume"], env=_env(),
                             cwd=REPO_ROOT, stdout=subprocess.PIPE,
                             stderr=subprocess.PIPE, text=True)
    match = None
    for _ in range(5):  # the resume banner precedes the address line
        banner = serve.stdout.readline()
        match = re.search(r"at (\S+);", banner)
        if match:
            break
    assert match, f"no address in serve banner: {banner!r}"
    worker = subprocess.Popen(
        [sys.executable, "-m", "repro", "work", match.group(1),
         "--id", "cli-resume-w0", "--connect-timeout", "60"],
        env=_env(), cwd=REPO_ROOT, stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, text=True)
    out, err = serve.communicate(timeout=300)
    assert serve.returncode == 0, err
    worker.communicate(timeout=60)
    payload = json.loads(out.strip().splitlines()[-1])
    assert [o["status"] for o in payload["outcomes"]] == ["ok", "ok"]


def test_serve_sigterm_journals_outstanding_leases(tmp_path):
    import signal as signal_mod
    import socket
    import time

    from repro.dist import protocol
    from repro.dist.protocol import MessageStream
    from repro.sim import SIMULATOR_VERSION

    journal = tmp_path / "journal.jsonl"
    serve = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--algorithm", "pagerank", "--datasets", "bio-human",
         "--schedules", "vertex_map", "warp_map",
         "--scale", "0.2", "--iterations", "1",
         "--no-cache", "--journal", str(journal),
         "--lease-seconds", "60", "--bind", "127.0.0.1:0", "--json"],
        env=_env(), cwd=REPO_ROOT, stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, text=True)
    banner = serve.stdout.readline()
    match = re.search(r"at ([0-9.]+):(\d+);", banner)
    assert match, f"no address in serve banner: {banner!r}"
    host, port = match.group(1), int(match.group(2))

    # Hold one lease (never finishing it) so SIGTERM has an
    # *outstanding* lease to journal, not just queued work.
    sock = socket.create_connection((host, port), timeout=10.0)
    stream = MessageStream(sock)
    stream.send(protocol.hello("cli-holder", SIMULATOR_VERSION, 1))
    assert stream.recv()["type"] == "welcome"
    lease = None
    for _ in range(200):
        stream.send(protocol.request("cli-holder"))
        reply = stream.recv()
        if reply["type"] == "lease":
            lease = reply
            break
        time.sleep(0.02)
    assert lease is not None, "never got a lease to hold"

    serve.send_signal(signal_mod.SIGTERM)
    out, err = serve.communicate(timeout=120)
    stream.close()
    # Graceful degradation: the batch resolves (as skips), the process
    # exits through the normal reporting path, nothing is lost.
    assert serve.returncode == 1, err
    payload = json.loads(out.strip().splitlines()[-1])
    assert [o["status"] for o in payload["outcomes"]] == [
        "skipped", "skipped"]
    assert payload["fleet"]["shutdown"] == "sigterm"
    lines = [json.loads(l) for l in journal.read_text().splitlines()]
    skipped = [l for l in lines if l.get("type") == "skipped"]
    reclaims = [l for l in lines if l.get("type") == "reclaim"]
    assert len(skipped) == 2
    assert {l["reason"] for l in skipped} == {"sigterm"}
    # The held lease was reclaimed in the ledger before the exit.
    assert any(r["hash"] == lease["hash"] for r in reclaims)
