"""Edge-coverage validation and failure injection.

``GraphProcessor(validate=True)`` arms a check that every gather
launch hands each edge to ``edge_update`` at most once (exactly once
without filters). The injection tests plant deliberately broken
schedules and assert the check catches them — a misbehaving schedule
must fail loudly, not produce subtly wrong floats.
"""

import numpy as np
import pytest

from repro.algorithms import make_algorithm
from repro.errors import SimulationError
from repro.frontend import GraphProcessor
from repro.graph import powerlaw_graph
from repro.sched import EXTENDED_SCHEDULES
from repro.sched.base import Schedule
from repro.sched.common import inspect_topology, process_edge_batch
from repro.sim import GPUConfig
from repro.sim.instructions import counter

CFG = GPUConfig.vortex_tiny()
GRAPH = powerlaw_graph(100, 400, exponent=2.0, seed=17).undirected()


@pytest.mark.parametrize("schedule", EXTENDED_SCHEDULES)
def test_every_schedule_passes_validation(schedule):
    proc = GraphProcessor(
        make_algorithm("pagerank", iterations=2), schedule=schedule,
        config=CFG, validate=True,
    )
    proc.run(GRAPH)  # must not raise


@pytest.mark.parametrize("schedule", ["vertex_map", "sparseweaver"])
def test_filtered_algorithms_pass_validation(schedule):
    proc = GraphProcessor(
        make_algorithm("bfs", source=0), schedule=schedule, config=CFG,
        validate=True,
    )
    proc.run(GRAPH)


class _DroppingSchedule(Schedule):
    """Broken on purpose: skips every vertex's last edge."""

    name = "dropping"
    label = "broken"

    def warp_factory(self, env):
        n = env.num_vertices
        stride = env.config.total_threads
        num_epochs = max(1, -(-n // stride))

        def factory(ctx):
            if ctx.thread_ids[0] >= n:
                return None

            def kernel():
                for epoch in range(num_epochs):
                    vids = ctx.thread_ids + epoch * stride
                    vids = vids[vids < n]
                    if vids.size == 0:
                        break
                    starts, degrees = yield from inspect_topology(
                        env, vids)
                    degrees = np.maximum(degrees - 1, 0)  # the bug
                    alive = np.nonzero(degrees > 0)[0]
                    k = 0
                    while alive.size:
                        yield counter("warp_iterations")
                        yield from process_edge_batch(
                            env, vids[alive], starts[alive] + k,
                            accumulate="atomic")
                        k += 1
                        alive = alive[degrees[alive] > k]

            return kernel()

        return factory


class _DuplicatingSchedule(_DroppingSchedule):
    """Broken the other way: processes every edge twice."""

    name = "duplicating"

    def warp_factory(self, env):
        inner = super().warp_factory(env)
        n = env.num_vertices
        stride = env.config.total_threads
        num_epochs = max(1, -(-n // stride))

        def factory(ctx):
            if ctx.thread_ids[0] >= n:
                return None

            def kernel():
                for epoch in range(num_epochs):
                    vids = ctx.thread_ids + epoch * stride
                    vids = vids[vids < n]
                    if vids.size == 0:
                        break
                    starts, degrees = yield from inspect_topology(
                        env, vids)
                    for _repeat in range(2):  # the bug
                        alive = np.nonzero(degrees > 0)[0]
                        k = 0
                        while alive.size:
                            yield from process_edge_batch(
                                env, vids[alive], starts[alive] + k,
                                accumulate="atomic")
                            k += 1
                            alive = alive[degrees[alive] > k]

            return kernel()

        _ = inner
        return factory


def test_validation_catches_dropped_edges():
    proc = GraphProcessor(
        make_algorithm("pagerank", iterations=1),
        schedule=_DroppingSchedule(), config=CFG, validate=True,
    )
    with pytest.raises(SimulationError, match="dropped"):
        proc.run(GRAPH)


def test_validation_catches_duplicated_edges():
    proc = GraphProcessor(
        make_algorithm("pagerank", iterations=1),
        schedule=_DuplicatingSchedule(), config=CFG, validate=True,
    )
    with pytest.raises(SimulationError, match="duplicated"):
        proc.run(GRAPH)


def test_without_validation_broken_schedule_runs_silently():
    """The motivation for validate=True: the same bug otherwise just
    yields wrong numbers."""
    proc = GraphProcessor(
        make_algorithm("pagerank", iterations=1),
        schedule=_DroppingSchedule(), config=CFG,
    )
    res = proc.run(GRAPH)  # no exception...
    from repro.frontend import reference

    ref = reference.pagerank(GRAPH, iterations=1)
    assert not np.allclose(res.values, ref)  # ...but wrong results


def test_validation_does_not_change_results():
    a = GraphProcessor(
        make_algorithm("pagerank", iterations=2),
        schedule="sparseweaver", config=CFG,
    ).run(GRAPH)
    b = GraphProcessor(
        make_algorithm("pagerank", iterations=2),
        schedule="sparseweaver", config=CFG, validate=True,
    ).run(GRAPH)
    np.testing.assert_array_equal(a.values, b.values)
    assert a.stats.total_cycles == b.stats.total_cycles
