"""Direction-optimizing BFS: correctness and switching behavior."""

import numpy as np
import pytest

from repro.algorithms.dobfs import run_direction_optimizing_bfs
from repro.errors import AlgorithmError
from repro.frontend import reference
from repro.graph import chain_graph, powerlaw_graph, star_graph
from repro.sched import ALL_SCHEDULES
from repro.sim import GPUConfig

CFG = GPUConfig.vortex_tiny()


@pytest.mark.parametrize("schedule", ALL_SCHEDULES)
def test_dobfs_levels_match_reference(schedule):
    g = powerlaw_graph(150, 700, exponent=2.0, seed=9).undirected()
    ref = reference.bfs_levels(g, 0)
    res = run_direction_optimizing_bfs(g, 0, schedule=schedule,
                                       config=CFG)
    assert res.levels.tolist() == ref.tolist()


def test_dobfs_switches_directions_on_powerlaw():
    """A skewed graph's frontier explodes after a level or two: the
    hybrid must start top-down and flip to bottom-up."""
    g = powerlaw_graph(400, 3000, exponent=1.9, seed=4).undirected()
    res = run_direction_optimizing_bfs(g, 0, schedule="sparseweaver",
                                       config=CFG, alpha=8.0)
    assert res.directions[0] == "top_down"
    assert res.switched


def test_dobfs_stays_top_down_on_chain():
    """A path graph's frontier never exceeds one vertex."""
    g = chain_graph(30)
    res = run_direction_optimizing_bfs(g, 0, schedule="vertex_map",
                                       config=CFG)
    assert set(res.directions) == {"top_down"}
    assert res.levels.tolist() == list(range(30))


def test_dobfs_star_hits_bottom_up():
    """From the hub, the first frontier owns every edge."""
    g = star_graph(64)
    res = run_direction_optimizing_bfs(g, 0, schedule="sparseweaver",
                                       config=CFG, alpha=4.0)
    assert "bottom_up" in res.directions


def test_dobfs_unreachable_vertices():
    from repro.graph import from_edge_list

    g = from_edge_list([(0, 1), (1, 0), (2, 3), (3, 2)], num_vertices=4)
    res = run_direction_optimizing_bfs(g, 0, schedule="sparseweaver",
                                       config=CFG)
    assert res.levels.tolist() == [0, 1, -1, -1]


def test_dobfs_accumulates_stats():
    g = powerlaw_graph(100, 500, seed=2).undirected()
    res = run_direction_optimizing_bfs(g, 0, schedule="sparseweaver",
                                       config=CFG)
    assert res.total_cycles > 0
    assert res.stats.instructions > 0


def test_dobfs_validation():
    g = chain_graph(5)
    with pytest.raises(AlgorithmError):
        run_direction_optimizing_bfs(g, 99, config=CFG)
    with pytest.raises(AlgorithmError):
        run_direction_optimizing_bfs(g, 0, alpha=0, config=CFG)


def test_dobfs_beats_pure_topdown_on_skewed_graph():
    """The hybrid's whole point: bottom-up levels dodge the huge-
    frontier scatter phase."""
    from repro.frontend import GraphProcessor
    from repro.algorithms import make_algorithm

    g = powerlaw_graph(600, 4000, exponent=1.9, seed=6).undirected()
    cfg = GPUConfig.vortex_bench()
    pure = GraphProcessor(
        make_algorithm("bfs", source=0), schedule="sparseweaver",
        config=cfg,
    ).run(g)
    hybrid = run_direction_optimizing_bfs(
        g, 0, schedule="sparseweaver",
        config=cfg.with_weaver_penalty(), alpha=8.0,
    )
    assert hybrid.levels.tolist() == pure.values.tolist()
    # Not strictly guaranteed on every graph, but on this skewed one
    # the hybrid should be at least competitive.
    assert hybrid.total_cycles < 1.5 * pure.total_cycles
