"""Auto-tuner (Table V) and the benchmark harness utilities."""

import pytest

from repro.autotune import AutoTuner
from repro.algorithms import make_algorithm
from repro.bench import (
    format_breakdown,
    format_series,
    format_table,
    geomean,
    run_schedule_comparison,
    run_single,
)
from repro.errors import ScheduleError
from repro.graph import powerlaw_graph, star_graph
from repro.sim import GPUConfig

CFG = GPUConfig.vortex_tiny()


# ----------------------------------------------------------------------
# AutoTuner
# ----------------------------------------------------------------------
def test_tuner_tries_all_candidates(small_powerlaw):
    tuner = AutoTuner(lambda: make_algorithm("pagerank", iterations=2),
                      config=CFG)
    report = tuner.tune(small_powerlaw)
    assert len(report.trials) == 4
    assert report.best_schedule in {t.schedule for t in report.trials}


def test_tuner_best_is_minimum(small_powerlaw):
    tuner = AutoTuner(lambda: make_algorithm("pagerank", iterations=2),
                      config=CFG)
    report = tuner.tune(small_powerlaw)
    assert report.best_cycles == min(t.cycles for t in report.trials)


def test_tuning_bill_sums_trials(small_powerlaw):
    tuner = AutoTuner(lambda: make_algorithm("pagerank", iterations=2),
                      config=CFG)
    report = tuner.tune(small_powerlaw)
    assert report.tuning_cycles == sum(t.cycles for t in report.trials)
    assert report.tuning_cycles > report.best_cycles
    assert report.tuning_wall_seconds > 0


def test_tuner_speedup_on_skewed_graph():
    g = star_graph(100)
    tuner = AutoTuner(lambda: make_algorithm("pagerank", iterations=2),
                      config=CFG)
    report = tuner.tune(g)
    assert report.best_speedup >= 1.0


def test_tuner_custom_candidates(small_powerlaw):
    tuner = AutoTuner(
        lambda: make_algorithm("pagerank", iterations=1),
        config=CFG, candidates=["vertex_map", "edge_map"],
    )
    assert len(tuner.tune(small_powerlaw).trials) == 2


def test_tuner_empty_candidates_rejected():
    with pytest.raises(ScheduleError):
        AutoTuner(lambda: make_algorithm("pagerank"), candidates=[])


# ----------------------------------------------------------------------
# Bench runner
# ----------------------------------------------------------------------
def test_run_single(small_powerlaw):
    res = run_single(make_algorithm("pagerank", iterations=1),
                     small_powerlaw, "vertex_map", config=CFG)
    assert res.total_cycles > 0


def test_schedule_comparison_grid():
    graphs = {"a": star_graph(30), "b": powerlaw_graph(60, 240, seed=1)}
    result = run_schedule_comparison(
        lambda: make_algorithm("pagerank", iterations=1),
        graphs, ["vertex_map", "edge_map"], config=CFG,
    )
    assert set(result.cycles) == {"a", "b"}
    assert set(result.cycles["a"]) == {"vertex_map", "edge_map"}


def test_speedups_baseline_is_one():
    graphs = {"a": star_graph(30)}
    result = run_schedule_comparison(
        lambda: make_algorithm("pagerank", iterations=1),
        graphs, ["vertex_map", "edge_map"], config=CFG,
    )
    sp = result.speedups()
    assert sp["a"]["vertex_map"] == 1.0


def test_geomean_speedups():
    graphs = {"a": star_graph(30), "b": star_graph(50)}
    result = run_schedule_comparison(
        lambda: make_algorithm("pagerank", iterations=1),
        graphs, ["vertex_map", "edge_map"], config=CFG,
    )
    gm = result.geomean_speedups()
    assert gm["vertex_map"] == pytest.approx(1.0)
    assert gm["edge_map"] > 0


def test_geomean_function():
    assert geomean([2.0, 8.0]) == pytest.approx(4.0)
    assert geomean([]) == 1.0
    assert geomean([1.0, 1.0, 1.0]) == pytest.approx(1.0)


# ----------------------------------------------------------------------
# Report formatting
# ----------------------------------------------------------------------
def test_format_table_alignment():
    text = format_table(["name", "value"], [["a", 1], ["longer", 2.5]],
                        title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "longer" in lines[-1]
    assert "2.50" in lines[-1]


def test_format_series_rows_are_series():
    text = format_series("x", [1, 2], {"s1": [10, 20], "s2": [30, 40]})
    assert "s1" in text and "s2" in text
    assert "40" in text


def test_format_breakdown_totals():
    text = format_breakdown(
        {"cfgA": {"mem": 10, "alu": 30}, "cfgB": {"mem": 5}}
    )
    assert "total" in text.splitlines()[0]
    assert "40" in text


def test_format_breakdown_normalized():
    text = format_breakdown({"cfg": {"a": 1, "b": 3}}, normalize=True)
    assert "0.25" in text and "0.75" in text


def test_format_bar_chart():
    from repro.bench import format_bar_chart

    text = format_bar_chart({"a": 10, "bb": 40}, title="T", width=20,
                            unit="c")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert lines[2].count("#") == 20      # the max fills the width
    assert lines[1].count("#") == 5       # proportional
    assert "40c" in lines[2]
    assert format_bar_chart({}) == ""
