"""Execution provenance: digest ledgers and divergence localization.

Three layers of coverage: the :class:`StateDigester` unit mechanics
(FNV folding, interval rollover, sort order), the diff helpers that
turn two ledgers into a first-divergence coordinate, and the
end-to-end guarantee the whole subsystem exists for — ``REPRO_DIGEST``
unset leaves cycle counts and summary dicts bit-identical, set makes a
deliberately perturbed run localizable to the exact
``(kernel, interval, core, warp)`` where it stopped matching.
"""

import json
import os

import pytest

from repro.graph import powerlaw_graph
from repro.obs.provenance import (DEFAULT_INTERVAL, DIGEST_ENV,
                                  INTERVAL_ENV, KernelWindowTracer,
                                  StateDigester, context_window,
                                  describe_coord, diff_ledgers,
                                  digest_hex, digests_enabled,
                                  disable_digests, enable_digests,
                                  first_divergence, fold,
                                  get_digester, ledger_index,
                                  ledgers_from_cache_dir,
                                  ledgers_from_journal,
                                  resolve_interval, sort_key)
from repro.runtime import (AlgorithmSpec, GraphSpec, JobSpec,
                           RunJournal)
from repro.runtime.cache import RunSummary
from repro.runtime.engine import _execute_spec
from repro.sim import GPUConfig


@pytest.fixture(autouse=True)
def _clean_digester():
    """Every test starts and ends with the global digester off."""
    disable_digests(clear=True)
    os.environ.pop(INTERVAL_ENV, None)
    yield
    disable_digests(clear=True)
    os.environ.pop(INTERVAL_ENV, None)


def tiny_spec(**config_overrides) -> JobSpec:
    import dataclasses

    config = GPUConfig.vortex_tiny()
    if config_overrides:
        config = dataclasses.replace(config, **config_overrides)
    return JobSpec(
        algorithm=AlgorithmSpec.of("pagerank", iterations=1),
        graph=GraphSpec.inline(powerlaw_graph(100, 400, seed=1),
                               name="pl"),
        schedule="sparseweaver",
        config=config,
        max_iterations=1,
    )


# ------------------------------------------------------------ folding
def test_fold_is_portable_fnv1a():
    # Known-answer: folding one zero byte from the offset basis is the
    # classic FNV-1a single-step; the value must never depend on the
    # interpreter's hash() (ledgers compare across processes).
    assert fold(0xCBF29CE484222325, 0) == 0xAF63BD4C8601B7DF
    assert digest_hex(fold(0xCBF29CE484222325, 0)) == "af63bd4c8601b7df"
    # 64-bit wraparound stays in range.
    h = 0xCBF29CE484222325
    for v in (1, 2 ** 63, -1, 10 ** 30):
        h = fold(h, v)
        assert 0 <= h < (1 << 64)


def test_same_event_stream_same_digest():
    a, b = StateDigester(enabled=True), StateDigester(enabled=True)
    for d in (a, b):
        d.begin_job()
        d.begin_kernel()
        d.note_issue(5, 0, 0, 7, 1, 3)
        d.note_stall(9, 0, 0, 2, 4)
        d.note_mem(6, 0, 2, 40)
    la, lb = a.take_ledger(), b.take_ledger()
    assert la == lb
    # One changed event value changes the digest.
    c = StateDigester(enabled=True)
    c.begin_job()
    c.begin_kernel()
    c.note_issue(5, 0, 0, 7, 1, 4)  # done differs
    c.note_stall(9, 0, 0, 2, 4)
    c.note_mem(6, 0, 2, 40)
    assert c.take_ledger() != la


def test_interval_rollover_closes_cells():
    d = StateDigester(enabled=True, interval_cycles=10)
    d.begin_job()
    d.begin_kernel()
    d.note_issue(3, 0, 1, 7, 0, 0)    # interval 0
    d.note_issue(7, 0, 1, 7, 0, 0)    # still interval 0
    d.note_issue(25, 0, 1, 7, 0, 0)   # interval 2 -> closes interval 0
    ledger = d.take_ledger()
    warp_records = [r for r in ledger if r[3] == 1]
    assert [(r[1], r[5]) for r in warp_records] == [(0, 2), (2, 1)]
    assert all(r[0] == 0 and r[2] == 0 for r in warp_records)
    # Digests are canonical 16-hex-digit strings.
    assert all(len(r[4]) == 16 for r in ledger)


def test_take_ledger_resets_and_returns_none_when_empty():
    d = StateDigester(enabled=True, interval_cycles=10)
    d.begin_job()
    assert d.take_ledger() is None
    d.begin_kernel()
    d.note_issue(1, 0, 0, 7, 0, 0)
    assert d.take_ledger() is not None
    assert d.take_ledger() is None  # drained


def test_resolve_interval_env_and_garbage(monkeypatch):
    assert resolve_interval(64) == 64
    assert resolve_interval(0) == 1  # clamped
    monkeypatch.setenv(INTERVAL_ENV, "4096")
    assert resolve_interval() == 4096
    monkeypatch.setenv(INTERVAL_ENV, "not-a-number")
    assert resolve_interval() == DEFAULT_INTERVAL


def test_enable_disable_roundtrip_exports_env():
    assert not digests_enabled()
    digester = enable_digests(interval_cycles=512)
    assert digester is get_digester()
    assert digests_enabled()
    assert os.environ[DIGEST_ENV] == "1"
    assert os.environ[INTERVAL_ENV] == "512"
    assert digester.interval_cycles == 512
    disable_digests()
    assert not digests_enabled()
    assert DIGEST_ENV not in os.environ


# ---------------------------------------------------------- diffing
def test_sort_key_orders_summaries_after_streams():
    coords = [(-1, -1, -1, -1), (0, -1, -1, -1), (0, 0, 0, -1),
              (0, 0, 0, 0), (0, 1, 0, 0), (1, -1, -1, -1)]
    ordered = sorted(coords, key=sort_key)
    # Interval streams of kernel 0 come first (the memory stream after
    # the warps it aggregates), then kernel 0's summary, then kernel 1,
    # then the job-wide merge stream last.
    assert ordered == [(0, 0, 0, 0), (0, 0, 0, -1), (0, 1, 0, 0),
                       (0, -1, -1, -1), (1, -1, -1, -1),
                       (-1, -1, -1, -1)]


def test_diff_first_divergence_and_context():
    base = [
        [0, 0, 0, 0, "aaaa", 3],
        [0, 1, 0, 0, "bbbb", 2],
        [0, -1, -1, -1, "cccc", 5],
    ]
    other = [
        [0, 0, 0, 0, "aaaa", 3],
        [0, 1, 0, 0, "XXXX", 2],   # diverges here
        [0, -1, -1, -1, "YYYY", 5],
    ]
    assert diff_ledgers(base, base) == []
    assert first_divergence(base, base) is None
    diffs = diff_ledgers(base, other)
    assert [d["coord"] for d in diffs] == [(0, 1, 0, 0),
                                           (0, -1, -1, -1)]
    first = first_divergence(base, other)
    assert first["coord"] == (0, 1, 0, 0)
    assert first["a"] == "bbbb" and first["b"] == "XXXX"
    rows = context_window(base, other, first["coord"], context=1)
    assert [r["match"] for r in rows] == [True, False, False]
    # Records on only one side surface as None digests.
    diffs = diff_ledgers(base, base[:-1])
    assert diffs[-1]["coord"] == (0, -1, -1, -1)
    assert diffs[-1]["b"] is None


def test_ledger_index_tolerates_json_floats_and_none():
    assert ledger_index(None) == {}
    idx = ledger_index([[0.0, 1.0, 2.0, 3.0, "dead", 7.0]])
    assert idx == {(0, 1, 2, 3): ("dead", 7)}


def test_describe_coord_names_every_shape():
    assert describe_coord((-1, -1, -1, -1)) == "stats-merge stream"
    assert describe_coord((2, -1, -1, -1)) == "kernel 2 summary"
    assert describe_coord((1, 3, 0, -1)) == (
        "kernel 1 interval 3 core 0 memory stream")
    assert describe_coord((1, 3, 0, 5)) == (
        "kernel 1 interval 3 core 0 warp 5")


# ------------------------------------------------- summary transport
def test_run_summary_omits_absent_ledger():
    from repro.sim.stats import KernelStats

    summary = RunSummary(total_cycles=10, iterations=1,
                         stats=KernelStats(), values_digest="d")
    assert "digest_ledger" not in summary.to_dict()
    assert RunSummary.from_dict(summary.to_dict()).digest_ledger is None

    ledger = [[0, 0, 0, 0, "abcd", 2]]
    summary.digest_ledger = ledger
    data = summary.to_dict()
    assert data["digest_ledger"] == ledger
    # JSON round trip (journal/cache/fleet wire format).
    restored = RunSummary.from_dict(json.loads(json.dumps(data)))
    assert restored.digest_ledger == ledger


def test_ledger_rides_the_run_journal(tmp_path):
    spec = tiny_spec()
    enable_digests(256)
    try:
        data = _execute_spec(spec)
    finally:
        disable_digests(clear=True)
    assert data["digest_ledger"]
    journal = RunJournal(tmp_path / "run.jsonl")
    journal.record(spec, RunSummary.from_dict(data))

    again = RunJournal(tmp_path / "run.jsonl")
    again.load()
    restored = again.summary_for(spec)
    assert restored.digest_ledger == data["digest_ledger"]
    # The diff-side loader finds the same ledger, keyed by label.
    runs = ledgers_from_journal(tmp_path / "run.jsonl")
    assert runs[spec.label]["digest_ledger"] == data["digest_ledger"]


def test_ledgers_from_journal_tolerates_garbage(tmp_path):
    path = tmp_path / "run.jsonl"
    good = {"hash": "ab", "label": "job-a",
            "summary": {"total_cycles": 1,
                        "digest_ledger": [[0, 0, 0, 0, "aa", 1]]}}
    with path.open("w") as handle:
        handle.write(json.dumps(good) + "\n")
        handle.write("not json at all\n")
        handle.write("[1, 2, 3]\n")                       # not an object
        handle.write('{"type": "lease", "hash": "ab"}\n')  # bookkeeping
        handle.write('{"type": "complete", "summary": 7}\n')
        handle.write('{"hash": "cd", "summary": {"total_cycles"')  # torn
    runs = ledgers_from_journal(path)
    assert set(runs) == {"job-a"}
    assert runs["job-a"]["digest_ledger"] == [[0, 0, 0, 0, "aa", 1]]


def test_ledgers_from_cache_dir(tmp_path):
    (tmp_path / "aa.json").write_text(json.dumps(
        {"label": "job-a", "summary": {"total_cycles": 1}}))
    (tmp_path / "bb.json").write_text("{torn")
    (tmp_path / "cc.json").write_text(json.dumps({"summary": [1]}))
    runs = ledgers_from_cache_dir(tmp_path)
    assert set(runs) == {"job-a"}


# --------------------------------------------------- end-to-end
def test_digests_off_is_bit_identical():
    """REPRO_DIGEST unset: cycles and summary dicts are unchanged by
    the instrumented build; set: same cycles, ledger present and
    deterministic across runs."""
    spec = tiny_spec()
    off_a = _execute_spec(spec)
    off_b = _execute_spec(spec)
    assert off_a == off_b
    assert "digest_ledger" not in off_a

    enable_digests(256)
    try:
        on_a = _execute_spec(spec)
        on_b = _execute_spec(spec)
    finally:
        disable_digests(clear=True)
    # Observation never perturbs simulation.
    assert on_a["total_cycles"] == off_a["total_cycles"]
    assert on_a["stats"] == off_a["stats"]
    ledger = on_a.pop("digest_ledger")
    assert ledger == on_b.pop("digest_ledger")  # deterministic
    assert on_a == off_a  # everything else byte-identical
    # The ledger carries warp streams, kernel summaries and the
    # job-wide merge stream.
    kinds = {tuple(1 if v >= 0 else 0 for v in r[:4]) for r in ledger}
    assert (1, 1, 1, 1) in kinds   # warp stream
    assert (1, 0, 0, 0) in kinds   # kernel summary
    assert (0, 0, 0, 0) in kinds   # merge stream


def test_perturbed_run_localizes_to_warp_interval():
    """The acceptance scenario: patch an opcode latency, and the first
    diverging coordinate is a finest-grained warp record — the exact
    (kernel, interval, core, warp) where execution stopped matching."""
    enable_digests(256)
    try:
        base = _execute_spec(tiny_spec())
        perturbed = _execute_spec(tiny_spec(alu_latency=3))
    finally:
        disable_digests(clear=True)
    assert base["total_cycles"] != perturbed["total_cycles"]
    first = first_divergence(base["digest_ledger"],
                             perturbed["digest_ledger"])
    assert first is not None
    kernel, interval, core, warp = first["coord"]
    # A warp stream record, never a summary: all coordinates concrete.
    assert kernel >= 0 and interval >= 0 and core >= 0 and warp >= 0
    # The very first interval of the very first kernel diverges — an
    # ALU latency change perturbs execution from the start.
    assert kernel == 0 and interval == 0


# ------------------------------------------------- replay windowing
def test_kernel_window_tracer_gates_on_target():
    window = KernelWindowTracer(target=1, max_events=100)
    assert not window.active
    window.begin_kernel()        # kernel 0
    window.record(1, 0, 0, 7, 0, 0)
    window.record_stall(2, 0, 0, 1, 3)
    assert not window.inner.events and not window.inner.stalls
    window.begin_kernel()        # kernel 1: capture window opens
    assert window.active
    window.record(5, 0, 0, 7, 0, 0)
    window.record_stall(6, 0, 0, 1, 3)
    assert len(window.inner.events) == 1
    assert len(window.inner.stalls) == 1
    window.begin_kernel()        # kernel 2: window closed again
    assert not window.active
    window.record(9, 0, 0, 7, 0, 0)
    assert len(window.inner.events) == 1
