"""Cross-algorithm invariants on random graphs (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.algorithms import kcore_reference, make_algorithm
from repro.frontend import GraphProcessor, reference
from repro.graph import from_edge_list
from repro.sim import GPUConfig

CFG = GPUConfig.vortex_tiny()


@st.composite
def symmetric_graphs(draw):
    n = draw(st.integers(min_value=3, max_value=14))
    m = draw(st.integers(min_value=2, max_value=30))
    edges = set()
    for _ in range(m):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v:
            edges.add((u, v))
            edges.add((v, u))
    if not edges:
        edges = {(0, 1), (1, 0)}
    return from_edge_list(sorted(edges), num_vertices=n)


@given(symmetric_graphs())
@settings(max_examples=40, deadline=None)
def test_pagerank_mass_is_conserved_modulo_dangling(graph):
    pr = reference.pagerank(graph, iterations=30)
    assert np.all(pr > 0)
    assert pr.sum() <= 1.0 + 1e-9


@given(symmetric_graphs())
@settings(max_examples=40, deadline=None)
def test_unit_weight_sssp_equals_bfs(graph):
    dist = reference.sssp(graph, 0)
    levels = reference.bfs_levels(graph, 0)
    reached = levels >= 0
    np.testing.assert_allclose(dist[reached], levels[reached])
    assert np.all(np.isinf(dist[~reached]))


@given(symmetric_graphs())
@settings(max_examples=40, deadline=None)
def test_bfs_levels_differ_by_at_most_one_across_edges(graph):
    levels = reference.bfs_levels(graph, 0)
    for u, v, _ in graph.edges():
        if levels[u] >= 0 and levels[v] >= 0:
            assert abs(levels[u] - levels[v]) <= 1


@given(symmetric_graphs())
@settings(max_examples=40, deadline=None)
def test_cc_labels_are_component_minima(graph):
    labels = reference.connected_components(graph)
    levels = reference.bfs_levels(graph, 0)
    comp0 = levels >= 0
    # the component containing vertex 0 is labeled 0
    assert np.all(labels[comp0] == 0)
    # labels are idempotent under another propagation round
    assert np.all(labels[labels] == labels)


@given(symmetric_graphs())
@settings(max_examples=30, deadline=None)
def test_core_numbers_bounded_by_degree(graph):
    core = kcore_reference(graph)
    assert np.all(core <= graph.degrees)
    assert np.all(core >= 0)
    # a vertex in the k-core has >= k neighbors with core >= k
    for v in range(graph.num_vertices):
        k = core[v]
        if k > 0:
            strong = sum(1 for u in graph.neighbors(v) if core[u] >= k)
            assert strong >= k


@given(symmetric_graphs())
@settings(max_examples=20, deadline=None)
def test_simulated_bfs_equals_simulated_sssp_on_unit_weights(graph):
    bfs = GraphProcessor(
        make_algorithm("bfs", source=0), schedule="sparseweaver",
        config=CFG,
    ).run(graph)
    sssp = GraphProcessor(
        make_algorithm("sssp", source=0), schedule="sparseweaver",
        config=CFG,
    ).run(graph)
    reached = bfs.values >= 0
    np.testing.assert_allclose(sssp.values[reached],
                               bfs.values[reached])
