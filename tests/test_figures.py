"""The figure registry and its engine driver.

Covers the registry contract (every figure discoverable, grids
picklable/hashable, summaries well-formed), the determinism guarantees
(expansion order stable across runs and worker counts), parity with
the pre-registry serial runner (bit-identical cycles for fig10 and
table1), and warm-cache incrementality (second run simulates nothing).
"""

import pickle

import pytest

from repro.figures import (FigureContext, expand_jobs, figure_names,
                           get_figure, list_figures, resolve_figures,
                           run_figure, run_figures)
from repro.errors import ReproError
from repro.runtime import JobSpec, ResultCache, Telemetry

SMOKE = FigureContext.smoke_context()

#: Figures cheap enough to execute end-to-end inside tier-1 tests.
FAST_FIGURES = ["fig02b", "fig13", "ablation_dt_bypass", "table1"]


# ----------------------------------------------------------------- registry

def test_registry_names_sorted_unique():
    names = figure_names()
    assert names == sorted(names)
    assert len(names) == len(set(names))
    assert [f.name for f in list_figures()] == names


def test_registry_covers_every_benchmark_family():
    """Every bench_*.py family has registered figures."""
    names = set(figure_names())
    expected = {
        "fig02a", "fig02b", "fig03", "fig04",
        "fig10_pagerank", "fig10_bfs", "fig10_sssp", "fig10_cc",
        "fig11a", "fig11b", "fig12", "fig13", "fig14", "fig15",
        "fig16", "fig17", "fig18", "fig19",
        "table1", "table3", "table4", "table5",
        "paper_config", "robustness", "extended_ranking",
        "runtime_engine",
        "micro_pointer_chase", "micro_stream_bandwidth",
        "micro_issue_throughput", "micro_latency_hiding",
        "ablation_prefetch_depth", "ablation_zero_skip_width",
        "ablation_dt_bypass", "ablation_weaver_capacity",
        "ablation_eghw_mlp", "ablation_split_vs_weaver",
        "ablation_core_scaling", "ablation_energy",
        "ablation_reordering",
    }
    assert expected <= names


def test_resolve_figures_exact_prefix_and_errors():
    assert [f.name for f in resolve_figures(["fig13"])] == ["fig13"]
    fig10s = [f.name for f in resolve_figures(["fig10"])]
    assert fig10s == ["fig10_bfs", "fig10_cc", "fig10_pagerank",
                      "fig10_sssp"]
    abls = [f.name for f in resolve_figures(["ablation"])]
    assert len(abls) == 9
    # duplicates collapse, result stays sorted
    both = [f.name for f in resolve_figures(["fig10", "fig10_bfs"])]
    assert both == fig10s
    with pytest.raises(ReproError):
        resolve_figures(["nonsense"])
    with pytest.raises(ReproError):
        get_figure("nonsense")


def test_register_rejects_duplicates_and_anonymous():
    from repro.figures import Figure, register

    class Dup(Figure):
        name = "fig13"

    with pytest.raises(ReproError):
        register(Dup)

    class Anon(Figure):
        name = ""

    with pytest.raises(ReproError):
        register(Anon)


@pytest.mark.parametrize("name", figure_names())
def test_figure_metadata_and_grid_contract(name):
    """Every figure declares metadata and a picklable, hashable,
    rebuild-stable grid."""
    fig = get_figure(name)
    assert fig.title, name
    assert fig.paper, name

    jobs = fig.build_jobs(SMOKE)
    assert isinstance(jobs, list)
    for spec in jobs:
        assert isinstance(spec, JobSpec)
        hash(spec)
        assert spec.content_hash()
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.content_hash() == spec.content_hash()

    rebuilt = fig.build_jobs(SMOKE)
    assert ([s.content_hash() for s in jobs]
            == [s.content_hash() for s in rebuilt])


# ------------------------------------------------------------- determinism

def test_expand_jobs_sorted_by_hash_and_deduped():
    """The merged batch is hash-sorted and shares cells between
    figures (fig10_pagerank and robustness overlap at scale 0.25)."""
    ctx = FigureContext()
    figs = resolve_figures(["fig10_pagerank", "robustness"])
    batch, per_figure = expand_jobs(figs, ctx)
    hashes = [s.content_hash() for s in batch]
    assert hashes == sorted(hashes)
    assert len(hashes) == len(set(hashes))
    total = sum(len(v) for v in per_figure.values())
    assert len(batch) < total  # deduplication happened

    # Order is independent of figure iteration order.
    batch2, _ = expand_jobs(list(reversed(figs)), ctx)
    assert [s.content_hash() for s in batch2] == hashes


def test_grid_stable_across_worker_counts(tmp_path):
    """Identical outputs (cycles and artifact text) at jobs=1 and
    jobs=2."""
    serial = run_figure("fig13", SMOKE, jobs=1)
    parallel = run_figure("fig13", SMOKE, jobs=2)
    assert serial.data["cycles"] == parallel.data["cycles"]
    assert serial.blocks == parallel.blocks


# ------------------------------------------------------------------ parity

@pytest.mark.parametrize("sim_engine", ["reference", "fast"])
def test_fig10_parity_with_preport_serial_runner(sim_engine):
    """The registry path reproduces run_schedule_comparison's cycles
    bit-for-bit (acceptance criterion) — under every simulator
    execution engine."""
    from repro.bench import run_schedule_comparison
    from repro.figures.defs import fig10 as fig10_defs
    from repro.graph import dataset, dataset_names
    from repro.runtime import AlgorithmSpec
    from repro.sim import GPUConfig

    out = run_figure("fig10_pagerank", SMOKE, jobs=1,
                     sim_engine=sim_engine)

    names = dataset_names()[:3]  # SMOKE trims to three datasets
    graphs = {n: dataset(n, scale=SMOKE.rescale(0.25)) for n in names}
    result = run_schedule_comparison(
        AlgorithmSpec.of("pagerank", iterations=2), graphs,
        fig10_defs.SCHEDULES, config=GPUConfig.vortex_bench(),
        max_iterations=2)
    assert out.data["cycles"] == result.cycles


def test_cross_engine_cache_identity(tmp_path):
    """The engine is execution metadata: specs stamped with different
    engines share content hashes, so a cache warmed by one engine is
    hit-only for the other — and the summaries are bit-identical."""
    cache = ResultCache(str(tmp_path))

    cold = Telemetry()
    first = run_figures(FAST_FIGURES, SMOKE, jobs=1, cache=cache,
                        telemetry=cold, sim_engine="reference")
    submitted = cold.count("started")
    assert submitted > 0 and cold.count("cached") == 0

    warm = Telemetry()
    second = run_figures(FAST_FIGURES, SMOKE, jobs=1, cache=cache,
                         telemetry=warm, sim_engine="fast")
    assert warm.count("started") == 0
    assert warm.count("cached") == submitted
    for name in first:
        assert first[name].blocks == second[name].blocks


def test_table1_parity_with_preport_analytic_path():
    from repro.graph import dataset
    from repro.sched import analytic
    from repro.sim import GPUConfig

    out = run_figure("table1", SMOKE)
    graph = dataset("graph500", scale=SMOKE.rescale(0.25))
    expected = analytic.characteristics_table(
        graph, GPUConfig.vortex_paper())
    assert out.blocks["table1_schemes"] == expected


# ------------------------------------------------------------ incremental

def test_second_run_is_all_cache_hits(tmp_path):
    """Warm-cache acceptance criterion: a repeated run submits the
    same batch and simulates nothing."""
    cache = ResultCache(str(tmp_path))

    cold = Telemetry()
    first = run_figures(FAST_FIGURES, SMOKE, jobs=1, cache=cache,
                        telemetry=cold)
    submitted = cold.count("started")
    assert submitted > 0
    assert cold.count("cached") == 0

    warm = Telemetry()
    second = run_figures(FAST_FIGURES, SMOKE, jobs=1, cache=cache,
                         telemetry=warm)
    assert warm.count("started") == 0
    assert warm.count("cached") == submitted
    for name in first:
        assert first[name].blocks == second[name].blocks


#: Figures whose artifact text embeds measured wall-clock seconds, so
#: repeated summaries legitimately differ.
WALL_CLOCK_FIGURES = {"table5", "runtime_engine"}


@pytest.fixture(scope="module")
def whole_registry(tmp_path_factory):
    """Every figure, cold then warm against one shared cache."""
    cache = ResultCache(str(tmp_path_factory.mktemp("figcache")))
    cold_tel = Telemetry()
    cold = run_figures(list_figures(), SMOKE, jobs=1, cache=cache,
                       telemetry=cold_tel)
    warm_tel = Telemetry()
    warm = run_figures(list_figures(), SMOKE, jobs=1, cache=cache,
                       telemetry=warm_tel)
    return cold, warm, cold_tel, warm_tel


@pytest.mark.parametrize("name", figure_names())
def test_summarize_round_trips_engine_summaries(name, whole_registry):
    """summarize() produces well-formed blocks from live summaries and
    reproduces them from cache-round-tripped summary dicts."""
    cold, warm, _cold_tel, _warm_tel = whole_registry
    out = cold[name]
    assert out.name == name
    assert out.blocks, name
    for block_name, text in out.blocks.items():
        assert isinstance(text, str) and text.strip(), block_name
    if name not in WALL_CLOCK_FIGURES:
        assert warm[name].blocks == out.blocks


def test_whole_registry_warm_run_simulates_nothing(whole_registry):
    _cold, _warm, cold_tel, warm_tel = whole_registry
    assert cold_tel.count("started") > 0
    assert warm_tel.count("started") == 0
    assert warm_tel.count("cached") == cold_tel.count("started")


# ----------------------------------------------------------------- driver

def test_resultset_errors_on_unknown_spec():
    from repro.figures import ResultSet
    from repro.runtime import AlgorithmSpec, GraphSpec

    results = ResultSet([])
    spec = JobSpec(
        algorithm=AlgorithmSpec.of("pagerank", iterations=1),
        graph=GraphSpec.from_dataset("bio-human", scale=0.05),
        schedule="vertex_map")
    assert spec not in results
    with pytest.raises(ReproError):
        results.summary(spec)


def test_driver_rejects_engine_plus_engine_opts():
    from repro.runtime import BatchEngine

    with pytest.raises(ReproError):
        run_figures(["table1"], SMOKE, jobs=2,
                    engine=BatchEngine(jobs=1))


def test_figure_outputs_write_same_artifact_names(tmp_path):
    """CLI acceptance: blocks land as benchmarks/results-style files."""
    from repro.cli import main

    out_dir = tmp_path / "results"
    rc = main(["bench", "--smoke", "--figures", "table1,fig13",
               "--jobs", "1", "--no-cache", "--out", str(out_dir)])
    assert rc == 0
    produced = sorted(p.name for p in out_dir.glob("*.txt"))
    assert produced == ["fig13_table_latency.txt", "table1_schemes.txt"]


def test_cli_bench_list(capsys):
    from repro.cli import main

    assert main(["bench", "--list"]) == 0
    printed = capsys.readouterr().out
    assert "fig10_pagerank" in printed
    assert "table5" in printed


def test_run_figures_report_degrades_gracefully(tmp_path):
    """One poisoned job skips its figure, not the whole batch."""
    from repro.figures import run_figures_report
    from repro.runtime import FaultPlan

    outputs, report = run_figures_report(
        ["table1", "fig13"], SMOKE, jobs=1,
        faults=FaultPlan.parse("fatal~1.0"))
    assert report.total_jobs > 0
    assert not report.ok
    assert "fig13" in report.skipped_figures
    assert "table1" in outputs  # zero-job figure still summarizes
    assert "fatal" in report.format()

    clean_outputs, clean_report = run_figures_report(
        ["table1", "fig13"], SMOKE, jobs=1)
    assert clean_report.ok
    assert sorted(clean_outputs) == ["fig13", "table1"]


def test_run_figures_report_rejects_engine_plus_opts():
    from repro.figures import run_figures_report
    from repro.runtime import BatchEngine, RunJournal

    with pytest.raises(ReproError):
        run_figures_report(["table1"], SMOKE,
                           journal=RunJournal("unused.jsonl"),
                           engine=BatchEngine(jobs=1))


def test_run_figures_report_rejects_unknown_policy():
    from repro.errors import ConfigError
    from repro.figures import run_figures_report

    with pytest.raises(ConfigError):
        run_figures_report(["table1"], SMOKE, policy="retry_forever")
