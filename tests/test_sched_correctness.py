"""Every schedule must compute identical results to the pure references
on every graph family — the central correctness matrix.
"""

import numpy as np
import pytest

from repro.frontend import GraphProcessor, reference
from repro.algorithms import make_algorithm
from repro.graph import (
    chain_graph,
    from_edge_list,
    powerlaw_graph,
    road_grid_graph,
    star_graph,
)
from repro.sched import ALL_SCHEDULES
from repro.sim import GPUConfig

CFG = GPUConfig.vortex_tiny()

GRAPHS = {
    "powerlaw": powerlaw_graph(120, 500, exponent=2.0, seed=21).undirected(),
    "road": road_grid_graph(7, seed=3),
    "star": star_graph(25),
    "chain": chain_graph(20),
}


@pytest.mark.parametrize("schedule", ALL_SCHEDULES)
@pytest.mark.parametrize("graph_name", list(GRAPHS))
def test_pagerank_matches_reference(schedule, graph_name):
    g = GRAPHS[graph_name]
    ref = reference.pagerank(g, iterations=3)
    proc = GraphProcessor(
        make_algorithm("pagerank", iterations=3), schedule=schedule,
        config=CFG,
    )
    res = proc.run(g)
    np.testing.assert_allclose(res.values, ref, atol=1e-9)


@pytest.mark.parametrize("schedule", ALL_SCHEDULES)
@pytest.mark.parametrize("graph_name", list(GRAPHS))
def test_bfs_matches_reference(schedule, graph_name):
    g = GRAPHS[graph_name]
    ref = reference.bfs_levels(g, 0)
    proc = GraphProcessor(
        make_algorithm("bfs", source=0), schedule=schedule, config=CFG
    )
    res = proc.run(g)
    assert res.values.tolist() == ref.tolist()


@pytest.mark.parametrize("schedule", ALL_SCHEDULES)
@pytest.mark.parametrize("graph_name", list(GRAPHS))
def test_sssp_matches_reference(schedule, graph_name):
    g = GRAPHS[graph_name]
    ref = reference.sssp(g, 0)
    proc = GraphProcessor(
        make_algorithm("sssp", source=0), schedule=schedule, config=CFG
    )
    res = proc.run(g)
    np.testing.assert_allclose(res.values, ref, atol=1e-9)


@pytest.mark.parametrize("schedule", ALL_SCHEDULES)
@pytest.mark.parametrize("graph_name", list(GRAPHS))
def test_cc_matches_reference(schedule, graph_name):
    g = GRAPHS[graph_name]
    ref = reference.connected_components(g)
    proc = GraphProcessor(
        make_algorithm("cc"), schedule=schedule, config=CFG
    )
    res = proc.run(g)
    assert res.values.astype(np.int64).tolist() == ref.tolist()


@pytest.mark.parametrize("schedule", ALL_SCHEDULES)
def test_weighted_sssp(schedule):
    g = from_edge_list(
        [(0, 1, 4.0), (1, 0, 4.0), (0, 2, 1.0), (2, 0, 1.0),
         (2, 1, 1.0), (1, 2, 1.0), (1, 3, 2.0), (3, 1, 2.0)],
        num_vertices=4,
    )
    ref = reference.sssp(g, 0)
    assert ref.tolist() == [0.0, 2.0, 1.0, 4.0]
    proc = GraphProcessor(
        make_algorithm("sssp", source=0), schedule=schedule, config=CFG
    )
    res = proc.run(g)
    np.testing.assert_allclose(res.values, ref)


@pytest.mark.parametrize("schedule", ALL_SCHEDULES)
def test_bfs_unreachable_vertices(schedule):
    g = from_edge_list([(0, 1), (1, 0), (2, 3), (3, 2)], num_vertices=4)
    proc = GraphProcessor(
        make_algorithm("bfs", source=0), schedule=schedule, config=CFG
    )
    res = proc.run(g)
    assert res.values.tolist() == [0, 1, -1, -1]


@pytest.mark.parametrize("schedule", ALL_SCHEDULES)
def test_disconnected_components(schedule):
    g = from_edge_list([(0, 1), (1, 0), (2, 3), (3, 2)], num_vertices=4)
    proc = GraphProcessor(make_algorithm("cc"), schedule=schedule,
                          config=CFG)
    res = proc.run(g)
    assert res.values.astype(np.int64).tolist() == [0, 0, 2, 2]


@pytest.mark.parametrize("schedule", ALL_SCHEDULES)
def test_graph_larger_than_grid(schedule):
    """More vertices than total threads forces multi-epoch kernels."""
    total_threads = CFG.total_threads  # 8 on the tiny config
    g = powerlaw_graph(total_threads * 5, 300, seed=13).undirected()
    ref = reference.pagerank(g, iterations=2)
    proc = GraphProcessor(
        make_algorithm("pagerank", iterations=2), schedule=schedule,
        config=CFG,
    )
    res = proc.run(g)
    np.testing.assert_allclose(res.values, ref, atol=1e-9)


@pytest.mark.parametrize("schedule", ALL_SCHEDULES)
def test_empty_frontier_second_round(schedule):
    """BFS on a single edge: the frontier empties after one level."""
    g = from_edge_list([(0, 1), (1, 0)], num_vertices=2)
    proc = GraphProcessor(
        make_algorithm("bfs", source=0), schedule=schedule, config=CFG
    )
    res = proc.run(g)
    assert res.values.tolist() == [0, 1]


EXTRA_SCHEDULES = ["twc", "twce", "strict", "split_vertex_map"]


@pytest.mark.parametrize("schedule", EXTRA_SCHEDULES)
@pytest.mark.parametrize("alg_name", ["pagerank", "bfs", "sssp", "cc"])
def test_extended_schedules_match_reference(schedule, alg_name):
    """The Table I schemes the paper tabulates (S_twc, S_twce,
    S_strict) and the Tigr splits run the same UDFs bit-exactly."""
    g = GRAPHS["powerlaw"]
    kwargs = ({"iterations": 3} if alg_name == "pagerank"
              else {"source": 0} if alg_name in ("bfs", "sssp") else {})
    proc = GraphProcessor(make_algorithm(alg_name, **kwargs),
                          schedule=schedule, config=CFG)
    res = proc.run(g)
    if alg_name == "pagerank":
        ref = reference.pagerank(g, iterations=3)
        np.testing.assert_allclose(res.values, ref, atol=1e-9)
    elif alg_name == "bfs":
        assert res.values.tolist() == reference.bfs_levels(g, 0).tolist()
    elif alg_name == "sssp":
        np.testing.assert_allclose(res.values, reference.sssp(g, 0),
                                   atol=1e-9)
    else:
        ref = reference.connected_components(g)
        assert res.values.astype(np.int64).tolist() == ref.tolist()


@pytest.mark.parametrize("schedule", EXTRA_SCHEDULES)
def test_extended_schedules_on_star(schedule):
    g = GRAPHS["star"]
    ref = reference.pagerank(g, iterations=2)
    proc = GraphProcessor(make_algorithm("pagerank", iterations=2),
                          schedule=schedule, config=CFG)
    np.testing.assert_allclose(proc.run(g).values, ref, atol=1e-9)
