"""Offline report aggregation: file classification + mixed folds."""

import json

import pytest

from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import PhaseProfiler
from repro.obs.report import aggregate, classify_file, format_report


def telemetry_lines():
    return [
        {"kind": "submitted", "job": "h-a", "label": "a"},
        {"kind": "started", "job": "h-a", "label": "a"},
        {"kind": "finished", "job": "h-a", "label": "a", "cycles": 500},
        {"kind": "started", "job": "h-b", "label": "b"},
        {"kind": "failed", "job": "h-b", "label": "b", "error": "boom"},
        {"kind": "batch_summary", "jobs": 2},
    ]


def write_jsonl(path, records):
    path.write_text("".join(json.dumps(r) + "\n" for r in records))
    return path


# ----------------------------------------------------------------------
# classify_file
# ----------------------------------------------------------------------
def test_classify_empty_file_is_empty_telemetry(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    assert classify_file(path) == ("telemetry", [])
    path.write_text("  \n\n  ")
    assert classify_file(path) == ("telemetry", [])


def test_classify_telemetry_and_metrics_and_profile(tmp_path):
    tele = write_jsonl(tmp_path / "t.jsonl", telemetry_lines())
    kind, records = classify_file(tele)
    assert kind == "telemetry" and len(records) == 6

    registry = MetricsRegistry(enabled=True)
    registry.counter("sim_cycles_total").inc(1500)
    metrics = tmp_path / "m.json"
    metrics.write_text(json.dumps(registry.snapshot()))
    kind, doc = classify_file(metrics)
    assert kind == "metrics" and "metrics" in doc

    profiler = PhaseProfiler(enabled=True)
    profiler.add("execute", 0.5)
    kind, doc = classify_file(profiler.save(tmp_path / "p.json"))
    assert kind == "profile" and "profile" in doc


def test_classify_truncated_json_object_rejected(tmp_path):
    path = tmp_path / "torn.json"
    path.write_text('{"metrics": {"sim_cycles_total"')
    with pytest.raises(ReproError, match="neither a metrics snapshot"):
        classify_file(path)


def test_classify_unknown_schema_object_rejected(tmp_path):
    # A one-line JSON *object* without a metrics/profile key is read
    # as single-record telemetry; a multi-line one with garbage fails.
    path = tmp_path / "unknown.json"
    path.write_text('{"weights": [1, 2, 3]}')
    kind, records = classify_file(path)
    assert kind == "telemetry" and records == [{"weights": [1, 2, 3]}]

    path.write_text('{"weights": 1}\n[not, valid\n')
    with pytest.raises(ReproError, match="neither"):
        classify_file(path)


def test_classify_non_object_telemetry_line_rejected(tmp_path):
    path = tmp_path / "list.jsonl"
    path.write_text('{"kind": "job"}\n[1, 2, 3]\n')
    with pytest.raises(ReproError, match="must be objects"):
        classify_file(path)


def test_classify_unreadable_path_rejected(tmp_path):
    with pytest.raises(ReproError, match="cannot read"):
        classify_file(tmp_path / "missing.jsonl")


# ----------------------------------------------------------------------
# aggregate over a mixed directory
# ----------------------------------------------------------------------
def test_aggregate_mixed_directory(tmp_path):
    tele = write_jsonl(tmp_path / "events.jsonl", telemetry_lines())
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")

    registry = MetricsRegistry(enabled=True)
    registry.counter("sim_cycles_total").inc(1500)
    registry.histogram("engine_job_wall_seconds",
                       buckets=(0.1, 1.0)).observe(0.05)
    metrics = tmp_path / "metrics.json"
    metrics.write_text(json.dumps(registry.snapshot()))

    profiler = PhaseProfiler(enabled=True)
    profiler.add("execute", 0.6)
    profiler.add("mem/l1", 0.2)
    profiler.end_kernel(cycles=2000, wall_seconds=1.0)
    profile = profiler.save(tmp_path / "profile.json")

    report = aggregate([tele, empty, metrics, profile])
    assert report["jobs_total"] == 2
    assert report["done"] == 1 and report["failed"] == 1
    assert report["simulated_cycles"] == 500
    assert report["failures"] == [{"label": "b", "error": "boom"}]
    assert report["metrics"]["sim_cycles_total"]["series"][0]["value"] \
        == 1500
    host = report["host_profile"]
    assert host["kernels"] == 1
    assert host["phases"][0]["phase"] == "execute"
    kinds = {entry["path"]: entry["kind"] for entry in report["files"]}
    assert kinds == {str(tele): "telemetry", str(empty): "telemetry",
                     str(metrics): "metrics", str(profile): "profile"}

    text = format_report(report)
    assert "profile :" in text
    assert "execute" in text and "mem/l1" in text
    assert "FAILED  : b: boom" in text
    assert "p50<=" in text  # histogram percentile line


def test_aggregate_two_profiles_merge(tmp_path):
    for i, sec in enumerate((0.25, 0.75)):
        p = PhaseProfiler(enabled=True)
        p.add("execute", sec)
        p.end_kernel(cycles=100, wall_seconds=sec)
        p.save(tmp_path / f"p{i}.json")
    report = aggregate(sorted(tmp_path.glob("p*.json")))
    host = report["host_profile"]
    assert host["kernels"] == 2
    assert host["sim_wall_seconds"] == pytest.approx(1.0)
    assert host["coverage"] == pytest.approx(1.0)


def test_aggregate_profile_summary_from_telemetry_stream(tmp_path):
    records = telemetry_lines()
    records.insert(-1, {
        "kind": "profile_summary", "kernels": 3,
        "sim_wall_seconds": 0.5, "cycles_per_wall_second": 4000.0,
        "coverage": 0.97,
        "top_phases": [["execute", 0.3, 42]], "seq": 10,
    })
    tele = write_jsonl(tmp_path / "events.jsonl", records)
    report = aggregate([tele])
    host = report["host_profile"]
    assert host["kernels"] == 3 and host["coverage"] == 0.97
    text = format_report(report)
    assert "3 kernel(s)" in text and "execute" in text
