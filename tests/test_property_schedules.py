"""Property-based end-to-end tests: any random graph, every schedule,
identical results to the pure reference."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.algorithms import make_algorithm
from repro.frontend import GraphProcessor, reference
from repro.graph import from_edge_list
from repro.sched import ALL_SCHEDULES
from repro.sim import GPUConfig

CFG = GPUConfig.vortex_tiny()


@st.composite
def random_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=16))
    m = draw(st.integers(min_value=1, max_value=40))
    edges = set()
    for _ in range(m):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v:
            edges.add((u, v))
            edges.add((v, u))  # symmetric, like the paper's datasets
    if not edges:
        edges = {(0, 1), (1, 0)}
    return from_edge_list(sorted(edges), num_vertices=n)


@given(random_graphs(), st.sampled_from(ALL_SCHEDULES))
@settings(max_examples=40, deadline=None)
def test_pagerank_any_graph_any_schedule(graph, schedule):
    ref = reference.pagerank(graph, iterations=2)
    res = GraphProcessor(
        make_algorithm("pagerank", iterations=2), schedule=schedule,
        config=CFG,
    ).run(graph)
    np.testing.assert_allclose(res.values, ref, atol=1e-9)


@given(random_graphs(), st.sampled_from(ALL_SCHEDULES))
@settings(max_examples=40, deadline=None)
def test_bfs_any_graph_any_schedule(graph, schedule):
    ref = reference.bfs_levels(graph, 0)
    res = GraphProcessor(
        make_algorithm("bfs", source=0), schedule=schedule, config=CFG
    ).run(graph)
    assert res.values.tolist() == ref.tolist()


@given(random_graphs(), st.sampled_from(ALL_SCHEDULES))
@settings(max_examples=30, deadline=None)
def test_cc_any_graph_any_schedule(graph, schedule):
    ref = reference.connected_components(graph)
    res = GraphProcessor(
        make_algorithm("cc"), schedule=schedule, config=CFG
    ).run(graph)
    assert res.values.astype(np.int64).tolist() == ref.tolist()


@given(random_graphs())
@settings(max_examples=20, deadline=None)
def test_all_schedules_agree_on_cycles_being_positive(graph):
    for schedule in ALL_SCHEDULES:
        res = GraphProcessor(
            make_algorithm("pagerank", iterations=1), schedule=schedule,
            config=CFG,
        ).run(graph)
        assert res.total_cycles > 0
        assert res.stats.instructions > 0
