"""Property-based tests on the graph substrate (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graph import CSRGraph, from_edge_list
from repro.graph.metrics import degree_skewness, gini_coefficient
from repro.sched import analytic
from repro.sim import GPUConfig

CFG = GPUConfig(num_sockets=1, cores_per_socket=1, warps_per_core=2,
                threads_per_warp=4)


@st.composite
def edge_lists(draw, max_vertices=24, max_edges=60):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    edges = [
        (draw(st.integers(0, n - 1)), draw(st.integers(0, n - 1)))
        for _ in range(m)
    ]
    return n, edges


@given(edge_lists())
@settings(max_examples=60, deadline=None)
def test_csr_roundtrip_preserves_multiset(data):
    n, edges = data
    g = from_edge_list(edges, num_vertices=n)
    rebuilt = sorted((int(s), int(d)) for s, d, _ in g.edges())
    assert rebuilt == sorted(edges)


@given(edge_lists())
@settings(max_examples=60, deadline=None)
def test_row_ptr_invariants(data):
    n, edges = data
    g = from_edge_list(edges, num_vertices=n)
    assert g.row_ptr[0] == 0
    assert g.row_ptr[-1] == g.num_edges
    assert np.all(np.diff(g.row_ptr) >= 0)
    assert int(g.degrees.sum()) == g.num_edges


@given(edge_lists())
@settings(max_examples=60, deadline=None)
def test_reverse_is_involution(data):
    n, edges = data
    g = from_edge_list(edges, num_vertices=n)
    rr = CSRGraph(g.reverse().row_ptr, g.reverse().col_idx).reverse()
    assert sorted(g.edges()) == sorted(rr.edges())


@given(edge_lists())
@settings(max_examples=60, deadline=None)
def test_reverse_preserves_edge_count_and_degrees_sum(data):
    n, edges = data
    g = from_edge_list(edges, num_vertices=n)
    rev = g.reverse()
    assert rev.num_edges == g.num_edges
    assert int(rev.degrees.sum()) == int(g.degrees.sum())
    assert np.array_equal(
        np.bincount(g.col_idx, minlength=n), rev.degrees
    )


@given(edge_lists())
@settings(max_examples=60, deadline=None)
def test_undirected_is_symmetric(data):
    n, edges = data
    g = from_edge_list(edges, num_vertices=n)
    assert g.undirected().is_symmetric()


@given(edge_lists())
@settings(max_examples=40, deadline=None)
def test_gini_in_unit_interval(data):
    n, edges = data
    g = from_edge_list(edges, num_vertices=n)
    assert 0.0 <= gini_coefficient(g) <= 1.0


@given(edge_lists())
@settings(max_examples=40, deadline=None)
def test_warp_iteration_model_ordering(data):
    """For any graph: vm >= wm >= block-level >= em-rounded-down.

    Pooling work at coarser granularity can only reduce lockstep
    rounds; edge mapping is the balanced optimum.
    """
    n, edges = data
    g = from_edge_list(edges, num_vertices=n)
    vm = analytic.expected_warp_iterations(g, "vertex_map", CFG)
    wm = analytic.expected_warp_iterations(g, "warp_map", CFG)
    sw = analytic.expected_warp_iterations(g, "sparseweaver", CFG)
    em = analytic.expected_warp_iterations(g, "edge_map", CFG)
    assert vm >= wm >= sw >= em


@given(edge_lists())
@settings(max_examples=40, deadline=None)
def test_edge_map_rounds_exact(data):
    n, edges = data
    g = from_edge_list(edges, num_vertices=n)
    em = analytic.expected_warp_iterations(g, "edge_map", CFG)
    assert em == -(-g.num_edges // CFG.threads_per_warp)
