"""Property test: the cache model vs a reference per-set LRU."""

from collections import OrderedDict

from hypothesis import given, settings, strategies as st

from repro.sim import Cache, CacheConfig


class ReferenceLRU:
    """Dict-of-OrderedDict set-associative LRU."""

    def __init__(self, sets: int, ways: int) -> None:
        self.sets = [OrderedDict() for _ in range(sets)]
        self.ways = ways
        self.num_sets = sets

    def lookup(self, line: int) -> bool:
        s = self.sets[line % self.num_sets]
        if line in s:
            s.move_to_end(line)
            return True
        s[line] = True
        if len(s) > self.ways:
            s.popitem(last=False)
        return False


@given(
    st.integers(min_value=0, max_value=2).map(lambda p: 2 ** p),  # ways
    st.integers(min_value=0, max_value=2).map(lambda p: 2 ** p),  # sets
    st.lists(st.integers(min_value=0, max_value=40), min_size=1,
             max_size=200),
)
@settings(max_examples=80, deadline=None)
def test_cache_matches_reference_lru(ways, sets, accesses):
    cache = Cache(
        CacheConfig(64 * ways * sets, line_bytes=64, ways=ways), "t"
    )
    ref = ReferenceLRU(sets, ways)
    for line in accesses:
        assert cache.lookup(line) == ref.lookup(line)


@given(st.lists(st.integers(min_value=0, max_value=100), min_size=1,
                max_size=150))
@settings(max_examples=50, deadline=None)
def test_occupancy_bounded_by_capacity(accesses):
    cache = Cache(CacheConfig(4 * 64 * 2, line_bytes=64, ways=2), "t")
    for line in accesses:
        cache.lookup(line)
    assert cache.occupancy <= cache.config.num_lines


@given(st.lists(st.integers(min_value=0, max_value=30), min_size=1,
                max_size=100))
@settings(max_examples=50, deadline=None)
def test_second_touch_within_capacity_hits(accesses):
    """With capacity > distinct lines, every re-touch is a hit."""
    cache = Cache(CacheConfig(64 * 64, line_bytes=64, ways=64), "t")
    seen = set()
    for line in accesses:
        hit = cache.lookup(line)
        assert hit == (line in seen)
        seen.add(line)
