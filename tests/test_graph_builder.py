"""Edge-list / adjacency builders."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import from_adjacency, from_edge_list, to_edge_list
from repro.graph.builder import from_edge_arrays, from_networkx


def test_from_edge_list_sorts_by_source():
    g = from_edge_list([(2, 0), (0, 1), (1, 2)])
    assert g.edge_sources().tolist() == [0, 1, 2]


def test_from_edge_list_weighted():
    g = from_edge_list([(0, 1, 1.5), (0, 2, 2.5)])
    assert g.weights.tolist() == [1.5, 2.5]


def test_from_edge_list_mixed_arity_rejected():
    with pytest.raises(GraphError):
        from_edge_list([(0, 1), (0, 2, 3.0)])


def test_from_edge_list_infers_vertex_count():
    g = from_edge_list([(0, 5)])
    assert g.num_vertices == 6


def test_num_vertices_too_small_rejected():
    with pytest.raises(GraphError):
        from_edge_list([(0, 5)], num_vertices=3)


def test_negative_ids_rejected():
    with pytest.raises(GraphError):
        from_edge_arrays(np.array([-1]), np.array([0]))


def test_dedupe_keeps_first_weight():
    g = from_edge_arrays(
        np.array([0, 0]), np.array([1, 1]), 2,
        weights=np.array([3.0, 9.0]), dedupe=True,
    )
    assert g.num_edges == 1
    assert g.weights.tolist() == [3.0]


def test_from_adjacency():
    g = from_adjacency({0: [1, 2], 2: [0]})
    assert g.num_vertices == 3
    assert g.neighbors(0).tolist() == [1, 2]
    assert g.neighbors(1).tolist() == []


def test_to_edge_list_roundtrip(diamond_graph):
    edges = to_edge_list(diamond_graph)
    g2 = from_edge_list(edges, num_vertices=4)
    assert g2 == diamond_graph


def test_empty_edge_list():
    g = from_edge_list([], num_vertices=2)
    assert g.num_edges == 0


def test_from_networkx_undirected_symmetrizes():
    import networkx as nx

    nxg = nx.Graph()
    nxg.add_nodes_from(range(3))
    nxg.add_edge(0, 1)
    g = from_networkx(nxg)
    assert g.is_symmetric()
    assert g.num_edges == 2


def test_from_networkx_relabels_nodes():
    import networkx as nx

    nxg = nx.DiGraph()
    nxg.add_edge(10, 20)
    g = from_networkx(nxg)
    assert g.num_vertices == 2
    assert g.num_edges == 1
