"""Cache tag behavior and the memory hierarchy walker."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sim import Cache, CacheConfig, GPUConfig, MemoryMap
from repro.sim.config import KB
from repro.sim.memory import MemoryHierarchy


# ----------------------------------------------------------------------
# Cache
# ----------------------------------------------------------------------
def small_cache(ways=2, sets=4):
    return Cache(CacheConfig(64 * ways * sets, line_bytes=64, ways=ways,
                             hit_latency=4), "t")


def test_miss_then_hit():
    c = small_cache()
    assert not c.lookup(100)
    assert c.lookup(100)
    assert c.stats.hits == 1
    assert c.stats.misses == 1


def test_lru_eviction_within_set():
    c = small_cache(ways=2, sets=1)
    c.lookup(1)
    c.lookup(2)
    c.lookup(1)        # 1 becomes MRU
    c.lookup(3)        # evicts 2
    assert c.contains(1)
    assert not c.contains(2)
    assert c.contains(3)


def test_set_indexing_isolates_sets():
    c = small_cache(ways=1, sets=4)
    c.lookup(0)   # set 0
    c.lookup(1)   # set 1
    assert c.contains(0)
    assert c.contains(1)


def test_occupancy_and_flush():
    c = small_cache()
    for line in range(5):
        c.lookup(line)
    assert c.occupancy == 5
    c.flush()
    assert c.occupancy == 0
    assert c.stats.misses == 5  # stats survive flush


def test_warm_does_not_touch_stats():
    c = small_cache()
    c.warm([7, 8])
    assert c.stats.accesses == 0
    assert c.lookup(7)


def test_hit_rate():
    c = small_cache()
    c.lookup(1)
    c.lookup(1)
    c.lookup(1)
    assert c.stats.hit_rate == pytest.approx(2 / 3)


# ----------------------------------------------------------------------
# MemoryMap / Region
# ----------------------------------------------------------------------
def test_regions_do_not_overlap():
    mm = MemoryMap()
    a = mm.alloc("a", 100, 8)
    b = mm.alloc("b", 100, 8)
    assert a.base + a.nbytes <= b.base
    assert (a.base + a.nbytes - 1) >> 6 != b.base >> 6  # distinct lines


def test_region_addressing():
    mm = MemoryMap()
    r = mm.alloc("r", 10, 8)
    assert r.addr(3) == r.base + 24


def test_alloc_like():
    mm = MemoryMap()
    arr = np.zeros(17, dtype=np.int64)
    r = mm.alloc_like("arr", arr)
    assert r.length == 17
    assert r.itemsize == 8


def test_duplicate_region_rejected():
    mm = MemoryMap()
    mm.alloc("x", 1, 8)
    with pytest.raises(ConfigError):
        mm.alloc("x", 1, 8)


def test_bad_region_args_rejected():
    mm = MemoryMap()
    with pytest.raises(ConfigError):
        mm.alloc("neg", -1, 8)
    with pytest.raises(ConfigError):
        mm.alloc("zero_item", 1, 0)


# ----------------------------------------------------------------------
# MemoryHierarchy
# ----------------------------------------------------------------------
def hierarchy(l3=False, ratio=1):
    cfg = GPUConfig(
        num_sockets=1, cores_per_socket=1, warps_per_core=2,
        threads_per_warp=4,
        l1=CacheConfig(1 * KB, ways=2, hit_latency=4),
        l2=CacheConfig(4 * KB, ways=4, hit_latency=20),
        l3=CacheConfig(64 * KB, ways=8, hit_latency=40) if l3 else None,
        dram_latency=100, mem_freq_ratio=ratio,
    )
    return MemoryHierarchy(cfg), cfg


def test_cold_access_pays_dram():
    h, cfg = hierarchy()
    mm = MemoryMap()
    r = mm.alloc("r", 64, 8)
    lat, lines = h.access(0, r, np.array([0]))
    assert lat == cfg.dram_latency_cycles
    assert lines == 1
    assert h.dram_accesses == 1


def test_warm_access_pays_l1():
    h, cfg = hierarchy()
    mm = MemoryMap()
    r = mm.alloc("r", 64, 8)
    h.access(0, r, np.array([0]))
    lat, _ = h.access(0, r, np.array([0]))
    assert lat == cfg.l1.hit_latency


def test_l2_shared_across_cores():
    cfg = GPUConfig(
        num_sockets=1, cores_per_socket=2, warps_per_core=2,
        threads_per_warp=4,
        l1=CacheConfig(1 * KB, ways=2, hit_latency=4),
        l2=CacheConfig(4 * KB, ways=4, hit_latency=20),
    )
    h = MemoryHierarchy(cfg)
    mm = MemoryMap()
    r = mm.alloc("r", 64, 8)
    h.access(0, r, np.array([0]))          # core 0 warms L2
    lat, _ = h.access(1, r, np.array([0]))  # core 1 misses L1, hits L2
    assert lat == cfg.l2.hit_latency


def test_coalescing_single_line():
    h, cfg = hierarchy()
    mm = MemoryMap()
    r = mm.alloc("r", 64, 8)
    lat, lines = h.access(0, r, np.arange(8))  # 8 * 8B = one 64B line
    assert lines == 1


def test_uncoalesced_pays_line_throughput():
    h, cfg = hierarchy()
    mm = MemoryMap()
    r = mm.alloc("r", 1024, 8)
    idx = np.arange(0, 64, 8)  # 8 distinct lines
    lat, lines = h.access(0, r, idx)
    assert lines == 8
    # worst line queues behind 7 others at the controller, then pays
    # the DRAM latency; the warp adds per-line pipeline throughput
    assert lat == (cfg.dram_latency_cycles + 7 * cfg.dram_service_cycles
                   + 7 * cfg.line_throughput)


def test_mem_freq_ratio_scales_access():
    h1, _ = hierarchy(ratio=1)
    h4, _ = hierarchy(ratio=4)
    mm = MemoryMap()
    r = mm.alloc("r", 64, 8)
    lat1, _ = h1.access(0, r, np.array([0]))
    lat4, _ = h4.access(0, r, np.array([0]))
    assert lat4 == 4 * lat1


def test_l3_catches_l2_evictions():
    h, cfg = hierarchy(l3=True)
    mm = MemoryMap()
    big = mm.alloc("big", 4096, 8)  # 512 lines > L2's 64 lines
    for i in range(0, 4096, 8):
        h.access(0, big, np.array([i]))
    # Re-walk: most lines now come from L3, not DRAM.
    dram_before = h.dram_accesses
    lat, _ = h.access(0, big, np.array([0]))
    assert lat <= cfg.l3.hit_latency
    assert h.dram_accesses == dram_before


def test_cache_stats_aggregation():
    h, _ = hierarchy()
    mm = MemoryMap()
    r = mm.alloc("r", 64, 8)
    h.access(0, r, np.array([0]))
    h.access(0, r, np.array([0]))
    stats = h.cache_stats()
    assert stats["L1"].accesses == 2
    assert stats["L2"].accesses == 1  # only the miss walked down


def test_empty_access_is_free():
    h, _ = hierarchy()
    mm = MemoryMap()
    r = mm.alloc("r", 64, 8)
    lat, lines = h.access(0, r, np.array([], dtype=np.int64))
    assert (lat, lines) == (0, 0)


def test_line_size_mismatch_rejected():
    with pytest.raises(ConfigError):
        MemoryHierarchy(GPUConfig(
            l1=CacheConfig(1 * KB, line_bytes=64, ways=2),
            l2=CacheConfig(4 * KB, line_bytes=128, ways=4),
        ))
