"""Batch engine: parallel == serial, caching, retries, failures.

The worker-crash helpers live at module top level so
``ProcessPoolExecutor`` can pickle them by reference; they communicate
"already crashed once" through a marker file because no other state
survives a worker death.
"""

import os
import time
from pathlib import Path

import pytest

import repro.runtime.engine as engine_mod
from repro.bench import run_schedule_comparison
from repro.errors import ReproError
from repro.graph import powerlaw_graph
from repro.runtime import (AlgorithmSpec, BatchEngine, GraphSpec, JobSpec,
                           ResultCache, Telemetry, resolve_jobs)
from repro.sim import GPUConfig

SCHEDULES = ["vertex_map", "edge_map", "warp_map", "sparseweaver"]


def tiny_grid_specs():
    algorithm = AlgorithmSpec.of("pagerank", iterations=2)
    graphs = {
        "pl-a": powerlaw_graph(120, 500, seed=1),
        "pl-b": powerlaw_graph(150, 600, seed=2),
    }
    return [
        JobSpec(
            algorithm=algorithm,
            graph=GraphSpec.inline(graph, name=name),
            schedule=sched,
            config=GPUConfig.vortex_tiny(),
            max_iterations=2,
        )
        for name, graph in graphs.items()
        for sched in SCHEDULES
    ]


def _flaky_execute(spec):
    """Crash the worker once, then behave like the real executor."""
    marker = Path(os.environ["REPRO_TEST_CRASH_MARKER"])
    if not marker.exists():
        marker.write_text("crashed")
        os._exit(42)
    return engine_mod.RunSummary.from_run_result(
        spec.execute()).to_dict()


def _always_crash(spec):
    """Kill the worker on every attempt."""
    os._exit(42)


def _slow_execute(spec):
    """Outlive any reasonable per-job timeout."""
    time.sleep(2.0)
    return engine_mod.RunSummary.from_run_result(
        spec.execute()).to_dict()


# ----------------------------------------------------------------------
def test_parallel_matches_serial_cycles():
    specs = tiny_grid_specs()
    serial = BatchEngine(jobs=1).run(specs)
    parallel = BatchEngine(jobs=4).run(specs)
    assert [o.status for o in parallel] == ["ok"] * len(specs)
    assert ([o.summary.total_cycles for o in serial]
            == [o.summary.total_cycles for o in parallel])
    assert ([o.summary.values_digest for o in serial]
            == [o.summary.values_digest for o in parallel])


def test_outcomes_preserve_submission_order():
    specs = tiny_grid_specs()
    outcomes = BatchEngine(jobs=4).run(specs)
    assert [o.spec.content_hash() for o in outcomes] == [
        s.content_hash() for s in specs
    ]


def test_warm_cache_runs_zero_simulations(tmp_path):
    specs = tiny_grid_specs()
    cache = ResultCache(tmp_path / "cache")
    cold_tel = Telemetry()
    cold = BatchEngine(jobs=4, cache=cache, telemetry=cold_tel).run(specs)
    assert cold_tel.count("started") == len(specs)
    assert cold_tel.count("cached") == 0

    warm_tel = Telemetry()
    warm = BatchEngine(jobs=4, cache=cache, telemetry=warm_tel).run(specs)
    assert warm_tel.count("started") == 0  # zero simulations
    assert warm_tel.count("cached") == len(specs)
    assert cache.hits == len(specs)
    assert ([o.summary.total_cycles for o in warm]
            == [o.summary.total_cycles for o in cold])
    summary = warm_tel.summary(cache)
    assert summary["cache"]["hits"] == len(specs)
    assert summary["started"] == 0


def test_worker_crash_is_retried_once(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TEST_CRASH_MARKER",
                       str(tmp_path / "crash.marker"))
    monkeypatch.setattr(engine_mod, "_execute_spec", _flaky_execute)
    telemetry = Telemetry()
    engine = BatchEngine(jobs=2, telemetry=telemetry)
    outcomes = engine.run(tiny_grid_specs()[:1])
    assert outcomes[0].status == "ok"
    assert outcomes[0].attempts == 2
    assert telemetry.count("retried") == 1


def test_repeated_crash_becomes_structured_failure(monkeypatch):
    monkeypatch.setattr(engine_mod, "_execute_spec", _always_crash)
    telemetry = Telemetry()
    outcomes = BatchEngine(jobs=2, telemetry=telemetry).run(
        tiny_grid_specs()[:1])
    assert outcomes[0].status == "failed"
    assert "crashed" in outcomes[0].error
    assert outcomes[0].attempts == 2
    assert telemetry.count("failed") == 1


def test_in_worker_exception_fails_without_retry():
    bad = JobSpec(
        algorithm=AlgorithmSpec.of("pagerank", iterations=1),
        graph=GraphSpec.inline(powerlaw_graph(60, 200, seed=3)),
        schedule="no_such_schedule",
        config=GPUConfig.vortex_tiny(),
    )
    telemetry = Telemetry()
    outcomes = BatchEngine(jobs=2, telemetry=telemetry).run(
        [bad] + tiny_grid_specs()[:1])
    assert outcomes[0].status == "failed"
    assert "no_such_schedule" in outcomes[0].error
    assert outcomes[0].attempts == 1
    assert telemetry.count("retried") == 0
    assert outcomes[1].status == "ok"


def test_per_job_timeout_fails_structurally(monkeypatch):
    monkeypatch.setattr(engine_mod, "_execute_spec", _slow_execute)
    outcomes = BatchEngine(jobs=2, timeout=0.2).run(
        tiny_grid_specs()[:1])
    assert outcomes[0].status == "failed"
    assert "timed out" in outcomes[0].error


# ----------------------------------------------------------------------
def test_resolve_jobs_env(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs() == 1
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert resolve_jobs() == 3
    assert resolve_jobs(2) == 2  # explicit argument wins
    monkeypatch.setenv("REPRO_JOBS", "zero")
    with pytest.raises(ReproError):
        resolve_jobs()


def test_grid_comparison_engine_equals_serial():
    algorithm = AlgorithmSpec.of("pagerank", iterations=2)
    graphs = {
        "pl-a": powerlaw_graph(120, 500, seed=1),
        "pl-b": powerlaw_graph(150, 600, seed=2),
    }
    config = GPUConfig.vortex_tiny()
    serial = run_schedule_comparison(
        algorithm, graphs, SCHEDULES, config=config, max_iterations=2)
    parallel = run_schedule_comparison(
        algorithm, graphs, SCHEDULES, config=config, max_iterations=2,
        jobs=4)
    assert serial.cycles == parallel.cycles
    assert serial.speedups() == parallel.speedups()


def test_grid_comparison_warm_cache(tmp_path):
    algorithm = AlgorithmSpec.of("pagerank", iterations=1)
    graphs = {"pl": powerlaw_graph(100, 400, seed=7)}
    cache = ResultCache(tmp_path)
    first = run_schedule_comparison(
        algorithm, graphs, SCHEDULES, config=GPUConfig.vortex_tiny(),
        max_iterations=1, cache=cache)
    telemetry = Telemetry()
    second = run_schedule_comparison(
        algorithm, graphs, SCHEDULES, config=GPUConfig.vortex_tiny(),
        max_iterations=1, cache=cache, telemetry=telemetry)
    assert telemetry.count("started") == 0
    assert telemetry.count("cached") == len(SCHEDULES)
    assert first.cycles == second.cycles


def test_engine_args_with_plain_lambda_raise():
    graphs = {"pl": powerlaw_graph(60, 200, seed=1)}
    with pytest.raises(ReproError):
        run_schedule_comparison(
            lambda: None, graphs, ["vertex_map"], jobs=2)


def test_repro_jobs_env_keeps_plain_factories_serial(monkeypatch):
    from repro.algorithms import make_algorithm

    monkeypatch.setenv("REPRO_JOBS", "2")
    graphs = {"pl": powerlaw_graph(60, 200, seed=1)}
    result = run_schedule_comparison(
        lambda: make_algorithm("pagerank", iterations=1), graphs,
        ["vertex_map"], config=GPUConfig.vortex_tiny(),
        max_iterations=1)
    assert result.cycles["pl"]["vertex_map"] > 0


def test_missing_baseline_raises_repro_error():
    from repro.bench.runner import ExperimentResult

    result = ExperimentResult(cycles={"g": {"edge_map": 10}})
    with pytest.raises(ReproError) as excinfo:
        result.speedups()
    assert "vertex_map" in str(excinfo.value)
    assert "edge_map" in str(excinfo.value)


def test_autotuner_engine_matches_serial(tmp_path):
    from repro.autotune import AutoTuner

    graph = powerlaw_graph(120, 500, seed=4)
    spec = AlgorithmSpec.of("pagerank", iterations=2)
    config = GPUConfig.vortex_tiny()
    serial = AutoTuner(spec, config=config, max_iterations=2).tune(graph)
    cache = ResultCache(tmp_path)
    engine = AutoTuner(spec, config=config, max_iterations=2, jobs=2,
                       cache=cache).tune(graph)
    assert serial.best_schedule == engine.best_schedule
    assert serial.best_cycles == engine.best_cycles
    assert ([t.cycles for t in serial.trials]
            == [t.cycles for t in engine.trials])
    warm = AutoTuner(spec, config=config, max_iterations=2, jobs=2,
                     cache=cache).tune(graph)
    assert warm.tuning_wall_seconds == 0.0  # every trial memoized
    assert warm.best_cycles == serial.best_cycles
