"""The event-driven SIMT engine: issue, latency hiding, barriers, stalls."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim import GPU, GPUConfig, CacheConfig, MemoryMap
from repro.sim.config import KB
from repro.sim.instructions import (
    Instr,
    Op,
    Phase,
    alu,
    atomic,
    counter,
    load,
    nop,
    shmem_load,
    store,
    sync,
)
from repro.sim.stats import StallCat


def one_core_config(warps=2, threads=4):
    return GPUConfig(
        num_sockets=1, cores_per_socket=1, warps_per_core=warps,
        threads_per_warp=threads,
        l1=CacheConfig(1 * KB, ways=2, hit_latency=4),
        l2=CacheConfig(4 * KB, ways=4, hit_latency=20),
        dram_latency=100,
    )


def run(cfg, factory, **kw):
    return GPU(cfg).run_kernel(factory, **kw)


def test_single_alu_instruction():
    cfg = one_core_config(warps=1)

    def factory(ctx):
        def k():
            yield alu(Phase.GATHER)
        return k()

    stats = run(cfg, factory)
    assert stats.instructions == 1
    # issue (1 cycle) with the 1-cycle ALU latency folded into it
    assert stats.total_cycles == 1


def test_alu_count_charges_issue_cycles():
    cfg = one_core_config(warps=1)

    def factory(ctx):
        def k():
            yield alu(Phase.GATHER, 5)
        return k()

    # count issue cycles; result ready at the end of the last one
    assert run(cfg, factory).total_cycles == 5


def test_warps_hide_memory_latency():
    """Two warps issuing independent DRAM loads overlap them."""
    cfg = one_core_config(warps=2)
    mm = MemoryMap()
    r = mm.alloc("r", 1024, 8)

    def solo_factory(ctx):
        if ctx.warp_slot > 0:
            return None

        def k():
            yield load(Phase.GATHER, r, np.array([0]))
        return k()

    def duo_factory(ctx):
        def k():
            yield load(Phase.GATHER, r, np.array([ctx.warp_slot * 512]))
        return k()

    solo = run(cfg, solo_factory)
    duo = run(cfg, duo_factory)
    # The second load overlaps the first: far less than 2x.
    assert duo.total_cycles < solo.total_cycles + 10


def test_dependent_loads_serialize_within_warp():
    cfg = one_core_config(warps=1)
    mm = MemoryMap()
    r = mm.alloc("r", 4096, 8)

    def factory(ctx):
        def k():
            yield load(Phase.GATHER, r, np.array([0]))
            yield load(Phase.GATHER, r, np.array([256]))
        return k()

    stats = run(cfg, factory)
    assert stats.total_cycles >= 2 * cfg.dram_latency_cycles


def test_memory_stall_attributed():
    cfg = one_core_config(warps=1)
    mm = MemoryMap()
    r = mm.alloc("r", 64, 8)

    def factory(ctx):
        def k():
            yield load(Phase.GATHER, r, np.array([0]))
            yield alu(Phase.GATHER)
        return k()

    stats = run(cfg, factory)
    assert stats.stall_cycles[StallCat.MEMORY] >= cfg.dram_latency_cycles - 1


def test_barrier_synchronizes_warps():
    cfg = one_core_config(warps=2)
    order = []

    def factory(ctx):
        def k():
            if ctx.warp_slot == 0:
                yield alu(Phase.GATHER, 50)  # slow warp
            order.append(("pre", ctx.warp_slot))
            yield sync(Phase.OTHER)
            order.append(("post", ctx.warp_slot))
            yield alu(Phase.GATHER)
        return k()

    stats = run(cfg, factory)
    pre = [e for e in order if e[0] == "pre"]
    post = [e for e in order if e[0] == "post"]
    assert order.index(post[0]) > order.index(pre[-1])
    assert stats.stall_cycles[StallCat.SYNC] > 0


def test_none_factory_warps_skip_barriers():
    cfg = one_core_config(warps=2)

    def factory(ctx):
        if ctx.warp_slot == 1:
            return None

        def k():
            yield sync(Phase.OTHER)
            yield alu(Phase.GATHER)
        return k()

    stats = run(cfg, factory)
    assert stats.warps_launched == 1


def test_store_is_buffered():
    cfg = one_core_config(warps=1)
    mm = MemoryMap()
    r = mm.alloc("r", 64, 8)

    def factory(ctx):
        def k():
            yield store(Phase.GATHER, r, np.array([0]))
        return k()

    stats = run(cfg, factory)
    assert stats.total_cycles <= 1 + cfg.store_latency + 1


def test_atomic_conflicts_serialize():
    cfg = one_core_config(warps=1)
    mm = MemoryMap()
    r = mm.alloc("r", 64, 8)

    def same_addr(ctx):
        def k():
            yield atomic(Phase.GATHER, r, np.array([0, 0, 0, 0]))
        return k()

    def distinct(ctx):
        def k():
            yield atomic(Phase.GATHER, r, np.array([0, 1, 2, 3]))
        return k()

    assert (run(cfg, same_addr).total_cycles
            > run(cfg, distinct).total_cycles)


def test_shmem_latency():
    cfg = one_core_config(warps=1)

    def factory(ctx):
        def k():
            yield shmem_load(Phase.SCHEDULE, 3)
        return k()

    assert run(cfg, factory).total_cycles == 3 + cfg.shmem_latency - 1


def test_counter_is_free():
    cfg = one_core_config(warps=1)

    def factory(ctx):
        def k():
            yield counter("things", 7)
            yield counter("things", 3)
        return k()

    stats = run(cfg, factory)
    assert stats.counters["things"] == 10
    assert stats.instructions == 0
    assert stats.total_cycles == 0


def test_phase_cycles_accumulate():
    cfg = one_core_config(warps=1)

    def factory(ctx):
        def k():
            yield alu(Phase.INIT, 2)
            yield alu(Phase.APPLY, 3)
        return k()

    stats = run(cfg, factory)
    assert stats.phase_cycles[Phase.INIT] == 2
    assert stats.phase_cycles[Phase.APPLY] == 3


def test_unit_op_without_unit_raises():
    cfg = one_core_config(warps=1)

    def factory(ctx):
        def k():
            yield Instr(Op.WEAVER_DEC_ID, Phase.SCHEDULE)
        return k()

    with pytest.raises(SimulationError):
        run(cfg, factory)


def test_runaway_kernel_guard():
    cfg = one_core_config(warps=1)

    def factory(ctx):
        def k():
            while True:
                yield nop()
        return k()

    with pytest.raises(SimulationError):
        run(cfg, factory, max_instructions=100)


def test_multi_core_total_is_max():
    cfg = GPUConfig(
        num_sockets=1, cores_per_socket=2, warps_per_core=1,
        threads_per_warp=4,
        l1=CacheConfig(1 * KB, ways=2), l2=None,
    )

    def factory(ctx):
        def k():
            yield alu(Phase.GATHER, 10 if ctx.core_id == 0 else 100)
        return k()

    stats = run(cfg, factory)
    assert stats.total_cycles == 100


def test_warp_context_thread_ids():
    cfg = one_core_config(warps=2, threads=4)
    seen = {}

    def factory(ctx):
        seen[ctx.warp_slot] = ctx.thread_ids.tolist()
        return None

    run(cfg, factory)
    assert seen[0] == [0, 1, 2, 3]
    assert seen[1] == [4, 5, 6, 7]


def test_flush_caches_forces_cold_start():
    cfg = one_core_config(warps=1)
    gpu = GPU(cfg)
    mm = MemoryMap()
    r = mm.alloc("r", 64, 8)

    def factory(ctx):
        def k():
            yield load(Phase.GATHER, r, np.array([0]))
        return k()

    first = gpu.run_kernel(factory)
    warm = gpu.run_kernel(factory)
    cold = gpu.run_kernel(factory, flush_caches=True)
    assert warm.total_cycles < first.total_cycles
    assert cold.total_cycles == first.total_cycles


def test_dram_accesses_per_kernel():
    cfg = one_core_config(warps=1)
    gpu = GPU(cfg)
    mm = MemoryMap()
    r = mm.alloc("r", 64, 8)

    def factory(ctx):
        def k():
            yield load(Phase.GATHER, r, np.array([0]))
        return k()

    first = gpu.run_kernel(factory)
    second = gpu.run_kernel(factory)
    assert first.dram_accesses == 1
    assert second.dram_accesses == 0
