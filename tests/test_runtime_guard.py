"""Resource guardrails: deadlines, memory limits, guard policy env."""

import pytest

from repro.errors import ConfigError
from repro.runtime.guard import (EVICT_EXIT_CODE, DeadlineBudget,
                                 GuardPolicy, MemoryGuard, format_size,
                                 get_active_guard, parse_size,
                                 reconnect_jitter)


# ----------------------------------------------------------------------
# size parsing
# ----------------------------------------------------------------------
@pytest.mark.parametrize("text,expected", [
    ("0", 0),
    ("512", 512),
    ("4k", 4096),
    ("512M", 512 * 2**20),
    ("1g", 2**30),
    ("1.5G", int(1.5 * 2**30)),
    ("2GiB", 2 * 2**30),
    ("64mib", 64 * 2**20),
    ("100b", 100),
    (2048, 2048),
])
def test_parse_size(text, expected):
    assert parse_size(text) == expected


@pytest.mark.parametrize("bad", ["", "abc", "12q", "-5", "1.2.3g"])
def test_parse_size_rejects_garbage(bad):
    with pytest.raises(ConfigError):
        parse_size(bad)


def test_format_size_round_trips():
    for n in (0, 512, 4096, 512 * 2**20, 3 * 2**30):
        assert parse_size(format_size(n)) == n


# ----------------------------------------------------------------------
# deadline budget
# ----------------------------------------------------------------------
def test_deadline_budget_counts_down_fake_clock():
    now = [100.0]
    budget = DeadlineBudget(10.0, clock=lambda: now[0])
    assert budget.remaining() == 10.0
    assert not budget.expired()
    now[0] = 104.0
    assert budget.elapsed() == 4.0
    assert budget.remaining() == 6.0
    now[0] = 110.0
    assert budget.expired()
    assert budget.remaining() == 0.0


def test_deadline_budget_clamps_per_job_timeouts():
    now = [0.0]
    budget = DeadlineBudget(10.0, clock=lambda: now[0])
    assert budget.clamp(30.0) == 10.0   # budget tighter than timeout
    assert budget.clamp(2.0) == 2.0     # timeout tighter than budget
    assert budget.clamp(None) == 10.0   # no timeout: budget rules
    now[0] = 9.5
    assert budget.clamp(30.0) == pytest.approx(0.5)


# ----------------------------------------------------------------------
# memory guard
# ----------------------------------------------------------------------
def test_memory_guard_levels_and_trip_counters():
    rss = [100]
    guard = MemoryGuard(soft_bytes=500, hard_bytes=1000,
                        reader=lambda: rss[0])
    assert guard.check() == "ok"
    rss[0] = 600
    assert guard.check() == "soft"
    assert guard.soft_trips == 1
    rss[0] = 1500
    assert guard.check() == "hard"
    assert guard.hard_trips == 1
    assert guard.last_rss == 1500
    rss[0] = 50
    assert guard.check() == "ok"


def test_memory_guard_validates_limits():
    with pytest.raises(ConfigError):
        MemoryGuard(soft_bytes=None, hard_bytes=None)
    with pytest.raises(ConfigError):
        MemoryGuard(soft_bytes=2000, hard_bytes=1000)
    # One-sided guards are fine.
    assert MemoryGuard(soft_bytes=1, reader=lambda: 2).check() == "soft"
    assert MemoryGuard(hard_bytes=1, reader=lambda: 2).check() == "hard"


def test_memory_guard_reads_real_rss_by_default():
    guard = MemoryGuard(hard_bytes=1)
    # Any live python process dwarfs one byte.
    assert guard.check() == "hard"
    assert guard.last_rss > 2**20


# ----------------------------------------------------------------------
# policy parsing + env resolution
# ----------------------------------------------------------------------
def test_guard_policy_parse_and_spec_round_trip():
    policy = GuardPolicy.parse("deadline=120,rss_soft=512M,rss_hard=1G")
    assert policy.deadline_seconds == 120.0
    assert policy.rss_soft_bytes == 512 * 2**20
    assert policy.rss_hard_bytes == 2**30
    assert GuardPolicy.parse(policy.spec()) == policy


def test_guard_policy_partial_specs():
    assert GuardPolicy.parse("deadline=5").memory_guard() is None
    assert GuardPolicy.parse("rss_hard=1G").deadline_budget() is None
    assert GuardPolicy.parse("") is None
    with pytest.raises(ConfigError):
        GuardPolicy.parse("bogus=1")
    with pytest.raises(ConfigError):
        GuardPolicy.parse("rss_soft=2G,rss_hard=1G")


def test_get_active_guard_memoizes_on_env(monkeypatch):
    monkeypatch.delenv("REPRO_GUARD", raising=False)
    assert get_active_guard() is None
    monkeypatch.setenv("REPRO_GUARD", "deadline=7")
    first = get_active_guard()
    assert first is not None and first.deadline_seconds == 7.0
    assert get_active_guard() is first  # same raw env -> same object
    monkeypatch.setenv("REPRO_GUARD", "deadline=9")
    assert get_active_guard().deadline_seconds == 9.0
    monkeypatch.delenv("REPRO_GUARD")
    assert get_active_guard() is None


def test_reconnect_jitter_is_deterministic_and_bounded():
    values = {reconnect_jitter("w0", attempt) for attempt in range(8)}
    assert len(values) > 1  # attempts decorrelate
    for value in values:
        assert 0.0 <= value < 1.0
    assert reconnect_jitter("w0", 3) == reconnect_jitter("w0", 3)
    assert reconnect_jitter("w0", 3) != reconnect_jitter("w1", 3)


def test_evict_exit_code_is_distinct_from_crash():
    from repro.runtime.faults import CRASH_EXIT_CODE

    assert EVICT_EXIT_CODE != CRASH_EXIT_CODE
    assert 0 < EVICT_EXIT_CODE < 128


# ----------------------------------------------------------------------
# engine integration: the batch deadline budget
# ----------------------------------------------------------------------
def _tiny_specs(n=3):
    from repro.runtime import AlgorithmSpec, GraphSpec, JobSpec

    return [
        JobSpec(
            algorithm=AlgorithmSpec.of("pagerank", iterations=1),
            graph=GraphSpec.from_generator(
                "powerlaw_graph", num_vertices=40, num_edges=160,
                seed=seed),
            schedule="vertex_map",
            max_iterations=1,
        )
        for seed in range(n)
    ]


def test_engine_without_guard_has_no_deadline(monkeypatch):
    from repro.runtime import BatchEngine

    monkeypatch.delenv("REPRO_GUARD", raising=False)
    engine = BatchEngine(jobs=1)
    assert engine.guard is None
    assert engine.deadline_seconds is None
    assert engine._deadline is None


def test_engine_deadline_sheds_jobs_as_journaled_skips(tmp_path):
    from repro.runtime import BatchEngine, RunJournal, Telemetry

    specs = _tiny_specs(3)
    journal = RunJournal(tmp_path / "journal.jsonl")
    telemetry = Telemetry()
    engine = BatchEngine(jobs=1, journal=journal, telemetry=telemetry,
                         deadline=0.0)  # expired before the first job
    outcomes = engine.run(specs)
    assert [o.status for o in outcomes] == ["skipped"] * 3
    for outcome in outcomes:
        assert "deadline" in outcome.error
    skips = [e for e in telemetry.events if e.kind == "skipped"]
    assert len(skips) == 3
    assert all(e.payload["reason"] == "deadline" for e in skips)
    # Deferred, not lost: the skips are journaled and a resume run
    # (fresh budget) completes every job.
    assert journal.stats()["skipped_lines"] == 3
    reloaded = RunJournal(tmp_path / "journal.jsonl")
    reloaded.load()
    assert len(reloaded.skipped()) == 3
    resumed = BatchEngine(jobs=1, journal=reloaded).run(specs)
    assert [o.status for o in resumed] == ["ok"] * 3


def test_engine_deadline_shed_applies_parallel_path(tmp_path):
    from repro.runtime import BatchEngine, RunJournal

    specs = _tiny_specs(2)
    journal = RunJournal(tmp_path / "journal.jsonl")
    engine = BatchEngine(jobs=2, journal=journal, deadline=0.0)
    outcomes = engine.run(specs)
    assert [o.status for o in outcomes] == ["skipped"] * 2
    assert journal.stats()["skipped_lines"] == 2


def test_engine_guard_env_sets_deadline(monkeypatch):
    from repro.runtime import BatchEngine

    monkeypatch.setenv("REPRO_GUARD", "deadline=1234")
    engine = BatchEngine(jobs=1)
    assert engine.deadline_seconds == 1234.0
    # An explicit deadline kwarg wins over the env policy.
    assert BatchEngine(jobs=1, deadline=5.0).deadline_seconds == 5.0


def test_engine_deadline_mid_batch_completes_started_work(tmp_path):
    """A budget that expires mid-batch keeps finished results and
    sheds only the remainder — degradation never alters results."""
    from repro.runtime import BatchEngine, RunJournal

    specs = _tiny_specs(4)
    baseline = BatchEngine(jobs=1).run(specs)

    clock = {"now": 0.0}
    journal = RunJournal(tmp_path / "journal.jsonl")
    engine = BatchEngine(jobs=1, journal=journal, deadline=10.0)
    # Arm a controllable budget by running with a fake clock: the
    # first two pre-checks pass, then the budget reads expired.
    real_run = engine.run

    from repro.runtime.guard import DeadlineBudget

    def fake_clock():
        clock["now"] += 6.0  # two reads cross the 10s budget
        return clock["now"]

    outcomes = None

    def run_with_budget(batch):
        nonlocal outcomes
        engine.deadline_seconds = 10.0
        outcomes = real_run(batch)

    engine_budget = DeadlineBudget(10.0, clock=fake_clock)
    # Patch run()'s arming by pre-seeding: simplest is to drive the
    # serial path directly with the fake budget installed.
    engine._deadline = engine_budget
    pending = [(i, s) for i, s in enumerate(specs)]
    results = {}
    engine._run_serial(pending, results)
    statuses = [results[i].status for i in range(4)]
    assert statuses[0] == "ok"
    assert "skipped" in statuses
    # Completed jobs are bit-identical to the unguarded run.
    for i, status in enumerate(statuses):
        if status == "ok":
            assert (results[i].summary.total_cycles
                    == baseline[i].summary.total_cycles)
