"""Integration tests asserting the paper's *qualitative* results hold on
the simulator — who wins, in which regime (Section V headline shapes).

These are the claims EXPERIMENTS.md reports quantitatively; here they
gate regressions.
"""

import numpy as np
import pytest

from repro.algorithms import make_algorithm
from repro.bench import run_single
from repro.frontend import GraphProcessor
from repro.graph import powerlaw_graph, road_grid_graph
from repro.sim import GPUConfig
from repro.sim.instructions import Phase
from repro.sim.stats import StallCat

CFG = GPUConfig.vortex_bench()
SKEWED = powerlaw_graph(800, 4800, exponent=1.9, seed=3)
ROAD = road_grid_graph(22, seed=5)


def cycles(schedule, graph=SKEWED, alg=None, config=CFG, **kw):
    algorithm = alg or make_algorithm("pagerank", iterations=2)
    return run_single(algorithm, graph, schedule, config=config,
                      **kw).stats.total_cycles


@pytest.fixture(scope="module")
def skewed_cycles():
    return {
        s: cycles(s)
        for s in ["vertex_map", "edge_map", "warp_map", "cta_map",
                  "sparseweaver", "eghw"]
    }


def test_sparseweaver_beats_every_software_scheme_on_skew(skewed_cycles):
    sw = skewed_cycles["sparseweaver"]
    for sched in ("vertex_map", "edge_map", "warp_map", "cta_map"):
        assert sw < skewed_cycles[sched], sched


def test_sparseweaver_speedup_over_vm_is_large(skewed_cycles):
    """Paper Fig. 10: geomean 2.36x over S_vm (PR on skewed graphs is
    higher; we gate at 2x)."""
    assert skewed_cycles["vertex_map"] / skewed_cycles["sparseweaver"] > 2.0


def test_sparseweaver_beats_eghw_by_factor(skewed_cycles):
    """Paper Fig. 18: 3.64x geomean over EGHW; gate at 2x."""
    assert skewed_cycles["eghw"] / skewed_cycles["sparseweaver"] > 2.0


def test_vertex_map_wins_on_road_like_graphs():
    """No skew -> nothing to balance -> overheads dominate (the Fig. 2b
    lesson that no single software scheme dominates)."""
    vm = cycles("vertex_map", ROAD)
    for sched in ("edge_map", "warp_map", "cta_map", "sparseweaver"):
        assert vm < cycles(sched, ROAD), sched


def test_edge_map_pays_double_reads_on_road():
    """2|E| vs 2|V|+|E| flips the winner on low-skew graphs."""
    assert cycles("edge_map", ROAD) > cycles("vertex_map", ROAD)


def test_memory_ratio_scales_cycles_linearly():
    """Fig. 12: cycles grow with the GPU:DRAM frequency ratio."""
    from dataclasses import replace

    series = []
    for ratio in (1, 3, 6):
        cfg = replace(CFG, mem_freq_ratio=ratio)
        series.append(cycles("sparseweaver", config=cfg))
    assert series[0] < series[1] < series[2]
    # roughly linear: ratio-6 cycles within [2x, 8x] of ratio-1
    assert 2.0 < series[2] / series[0] < 8.0


def test_table_latency_is_hidden():
    """Fig. 13: SparseWeaver performance is flat as the work-table read
    latency grows 10 -> 160. The paper runs this sweep on a wider
    (32-warp) configuration precisely because warp-level parallelism is
    the hiding mechanism; we use 16 warps."""
    from dataclasses import replace

    wide = replace(CFG, warps_per_core=16)
    lat10 = cycles("sparseweaver",
                   config=replace(wide, weaver_table_latency=10))
    lat160 = cycles("sparseweaver",
                    config=replace(wide, weaver_table_latency=160))
    assert lat160 < 1.25 * lat10


def test_l3_adds_little():
    """Fig. 14: adding an L3 behind the L2 has no significant impact.

    The L3 is scaled with the dataset analog (like L1/L2): it must stay
    smaller than the streaming working set, as the paper's caches are
    dwarfed by its hundred-megabyte graphs."""
    from dataclasses import replace

    from repro.sim import CacheConfig
    from repro.sim.config import KB

    base = cycles("sparseweaver")
    with_l3 = cycles(
        "sparseweaver",
        config=replace(CFG, l3=CacheConfig(64 * KB, hit_latency=40)),
    )
    assert abs(with_l3 - base) / base < 0.10


def test_skewness_sensitivity_trend():
    """Fig. 11b: S_em and SparseWeaver gain over S_vm as skew rises.

    Mirrors the paper's setup: fixed |E|, growing |V| (so skew grows),
    with |V| always at least ~1.5x the grid so utilization stays full
    — the effect isolated is the degree tail, not occupancy."""
    from repro.graph import powerlaw_family
    from repro.sim import CacheConfig, GPUConfig
    from repro.sim.config import KB

    cfg = GPUConfig(
        num_sockets=1, cores_per_socket=1, warps_per_core=4,
        l1=CacheConfig(4 * KB, ways=4),
        l2=CacheConfig(32 * KB, hit_latency=20),
    )
    family = powerlaw_family([200, 240, 320, 400, 800, 1600], 19000,
                             exponent=2.1, seed=7)
    low_skew, high_skew = family[0], family[2]

    def alg():
        return make_algorithm("pagerank", iterations=1)

    def speedup(schedule, g):
        return (cycles("vertex_map", g, alg=alg(), config=cfg)
                / cycles(schedule, g, alg=alg(), config=cfg))

    assert speedup("sparseweaver", high_skew) > speedup(
        "sparseweaver", low_skew
    )
    assert speedup("edge_map", high_skew) > speedup("edge_map", low_skew)


def test_bfs_filters_favor_sparseweaver():
    """Paper V-A: BFS/SSSP filters create imbalance SparseWeaver wins."""
    g = SKEWED.undirected()
    vm = cycles("vertex_map", g, alg=make_algorithm("bfs", source=0))
    sw = cycles("sparseweaver", g, alg=make_algorithm("bfs", source=0))
    assert sw < vm


def test_stall_taxonomy_differs_by_schedule():
    """Fig. 4: scheduling schemes introduce *different* stall mixes —
    shared-memory stalls appear only in schemes that use shared memory."""
    vm = run_single(make_algorithm("pagerank", iterations=1), SKEWED,
                    "vertex_map", config=CFG).stats
    wm = run_single(make_algorithm("pagerank", iterations=1), SKEWED,
                    "warp_map", config=CFG).stats
    assert vm.stall_cycles.get(StallCat.SHARED, 0) == 0
    assert wm.stall_cycles.get(StallCat.SHARED, 0) > 0


def test_phase_breakdown_has_five_stages():
    """Fig. 17's stages all appear for a SparseWeaver run."""
    stats = run_single(make_algorithm("pagerank", iterations=1), SKEWED,
                       "sparseweaver", config=CFG).stats
    for phase in (Phase.INIT, Phase.REGISTRATION, Phase.SCHEDULE,
                  Phase.EDGE_ACCESS, Phase.GATHER, Phase.APPLY):
        assert stats.phase_cycles.get(phase, 0) > 0, phase


def test_eghw_time_sits_in_unit_stalls():
    """Fig. 18: EGHW loses in the distribution stage (waiting on the
    unit's serial memory reads)."""
    stats = run_single(make_algorithm("pagerank", iterations=1), SKEWED,
                       "eghw", config=CFG).stats
    assert stats.stall_cycles.get(StallCat.EGHW, 0) > 0


def test_warp_iteration_counter_tracks_analytic_ordering():
    from repro.sched import analytic

    vm_run = run_single(make_algorithm("pagerank", iterations=1), SKEWED,
                        "vertex_map", config=CFG,
                        time_init=False, time_apply=False)
    sw_run = run_single(make_algorithm("pagerank", iterations=1), SKEWED,
                        "sparseweaver", config=CFG,
                        time_init=False, time_apply=False)
    assert vm_run.stats.warp_iterations > sw_run.stats.warp_iterations
