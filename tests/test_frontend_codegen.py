"""Generated kernel source mirrors Fig. 9's structure per algorithm."""

import pytest

from repro.algorithms import make_algorithm
from repro.errors import ScheduleError
from repro.frontend.codegen import generate_kernel_source


def test_pagerank_pull_kernel_skeleton():
    src = generate_kernel_source(make_algorithm("pagerank"))
    # Fig. 9 skeleton, in order
    reg = src.index("WEAVER_REG(vid, start, deg)")
    sync = src.index("synchronization()")
    dec_id = src.index("WEAVER_DEC_ID()")
    dec_loc = src.index("WEAVER_DEC_LOC()")
    assert reg < sync < dec_id < dec_loc
    assert "if (vid == -1)" in src  # the -1 exit protocol


def test_pagerank_has_no_filters():
    src = generate_kernel_source(make_algorithm("pagerank"))
    assert "_filter" not in src
    assert "WEAVER_SKIP" not in src


def test_bottom_up_bfs_places_dest_filter_and_skip():
    src = generate_kernel_source(
        make_algorithm("bfs", source=0, variant="bottom_up"))
    assert "dest_filter(vid)" in src          # registration-side
    assert "WEAVER_SKIP" in src               # early exit
    assert "src_filter(e.src)" in src         # distribution-side


def test_top_down_bfs_places_src_filter_at_registration():
    src = generate_kernel_source(make_algorithm("bfs", source=0))
    assert "src_filter(vid)" in src
    assert "dest_filter(e.dest)" in src
    assert "WEAVER_SKIP" not in src  # no early exit in top-down


def test_sssp_uses_edge_weight():
    src = generate_kernel_source(make_algorithm("sssp", source=0))
    assert "e.weight" in src
    pr = generate_kernel_source(make_algorithm("pagerank"))
    assert "1.0f" in pr and "e.weight" not in pr


def test_push_accumulates_into_destination():
    src = generate_kernel_source(
        make_algorithm("pagerank", direction="push"))
    assert "&acc[e.dest]" in src
    pull = generate_kernel_source(make_algorithm("pagerank"))
    assert "&acc[vid]" in pull


def test_vertex_map_generator():
    src = generate_kernel_source(make_algorithm("pagerank"),
                                 schedule="vertex_map")
    assert "WEAVER" not in src
    assert "for (int eid = start" in src


def test_vertex_map_early_exit_breaks():
    src = generate_kernel_source(
        make_algorithm("bfs", source=0, variant="bottom_up"),
        schedule="vertex_map")
    assert "break;" in src


def test_unknown_schedule_rejected():
    with pytest.raises(ScheduleError):
        generate_kernel_source(make_algorithm("pagerank"),
                               schedule="warp_map")


def test_kernel_names_are_identifiers():
    src = generate_kernel_source(
        make_algorithm("bfs", source=0, variant="bottom_up"))
    assert "bfs_bottom_up_gather" in src  # dashes sanitized
