"""Fleet resilience: reconnects, circuit breaking, backpressure, shed.

Same testing posture as ``test_dist_fleet``: real TCP on ephemeral
local ports, no mocks.  Partition chaos is injected at the
MessageStream layer through seeded ``net_*`` fault rules, so every
"network failure" here is deterministic and reproducible.
"""

import socket
import threading
import time

import pytest

from repro.dist import Coordinator, Worker, protocol
from repro.dist.protocol import MessageStream
from repro.dist.resilience import (AdmissionGate, CircuitBreaker,
                                   ReconnectPolicy, resolve_gate)
from repro.errors import ConfigError, ReproError
from repro.runtime import (AlgorithmSpec, BatchEngine, FaultPlan,
                           GraphSpec, GuardPolicy, JobSpec, RunJournal,
                           Telemetry)
from repro.sim import SIMULATOR_VERSION

from tests.test_dist_fleet import (fleet_specs, join_all,
                                   start_workers)


# ----------------------------------------------------------------------
# policy units
# ----------------------------------------------------------------------
def test_reconnect_policy_backoff_grows_and_caps():
    policy = ReconnectPolicy(base=0.2, cap=1.0, jitter=0.0, key="w")
    assert policy.delay(1) == pytest.approx(0.2)
    assert policy.delay(2) == pytest.approx(0.4)
    assert policy.delay(3) == pytest.approx(0.8)
    assert policy.delay(4) == pytest.approx(1.0)  # capped
    assert policy.delay(9) == pytest.approx(1.0)


def test_reconnect_policy_jitter_is_deterministic_per_key():
    a = ReconnectPolicy(base=1.0, cap=8.0, jitter=0.5, key="w0")
    b = ReconnectPolicy(base=1.0, cap=8.0, jitter=0.5, key="w0")
    c = ReconnectPolicy(base=1.0, cap=8.0, jitter=0.5, key="w1")
    for attempt in range(1, 6):
        assert a.delay(attempt) == b.delay(attempt)
        raw = min(8.0, 1.0 * 2 ** (attempt - 1))
        assert raw / 2 <= a.delay(attempt) <= raw
    assert any(a.delay(i) != c.delay(i) for i in range(1, 6))


def test_reconnect_policy_retry_budget():
    policy = ReconnectPolicy(max_retries=2)
    assert policy.should_retry(1) and policy.should_retry(2)
    assert not policy.should_retry(3)
    with pytest.raises(ConfigError):
        ReconnectPolicy(jitter=2.0)


def test_circuit_breaker_trips_and_cools_down():
    now = [1000.0]
    breaker = CircuitBreaker(threshold=3, cooldown=10.0,
                             clock=lambda: now[0])
    assert not breaker.record_failure("w")
    assert not breaker.record_failure("w")
    assert breaker.blocked_seconds("w") == 0.0
    assert breaker.record_failure("w")  # third in a row: trips
    assert breaker.trips == 1
    assert breaker.blocked_seconds("w") == pytest.approx(10.0)
    assert breaker.quarantined() == ["w"]
    now[0] = 1011.0  # cooldown elapsed
    assert breaker.blocked_seconds("w") == 0.0
    assert breaker.quarantined() == []


def test_circuit_breaker_success_resets_the_count():
    breaker = CircuitBreaker(threshold=2, cooldown=10.0)
    breaker.record_failure("w")
    breaker.record_success("w")
    assert not breaker.record_failure("w")  # count restarted
    assert breaker.failures("w") == 1
    with pytest.raises(ConfigError):
        CircuitBreaker(threshold=0)


def test_admission_gate_bounds_inflight():
    gate = AdmissionGate(max_inflight=2, retry_after=0.1)
    assert gate.admit(0) and gate.admit(1)
    assert not gate.admit(2)
    assert not gate.admit(5)
    assert gate.rejects == 2
    assert gate.stats() == {"max_inflight": 2, "rejects": 2}
    assert resolve_gate(None) is None
    with pytest.raises(ConfigError):
        AdmissionGate(0)


# ----------------------------------------------------------------------
# raw-protocol helpers (shared shape with test_dist_fleet)
# ----------------------------------------------------------------------
def _handshake(coord, worker_id, session=""):
    sock = socket.create_connection((coord.host, coord.port),
                                    timeout=5.0)
    stream = MessageStream(sock)
    stream.send(protocol.hello(worker_id, SIMULATOR_VERSION, 1,
                               session=session))
    return stream, stream.recv()


def _claim_lease(stream, worker_id, tries=200):
    for _ in range(tries):
        stream.send(protocol.request(worker_id))
        reply = stream.recv()
        assert reply is not None
        if reply["type"] == "lease":
            return reply
        assert reply["type"] == "wait"
        time.sleep(0.02)
    raise AssertionError("coordinator never granted a lease")


def _background_batch(coord, specs):
    runner = {}

    def run():
        runner["outcomes"] = coord.run(specs)

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return runner, thread


# ----------------------------------------------------------------------
# coordinator guardrails: backpressure + circuit breaker
# ----------------------------------------------------------------------
def test_admission_gate_backpressures_extra_requests():
    specs = fleet_specs(3)
    with Coordinator("127.0.0.1:0", lease_seconds=30.0,
                     max_inflight=1) as coord:
        runner, batch = _background_batch(coord, specs)
        holder, reply = _handshake(coord, "holder")
        assert reply["type"] == "welcome"
        _claim_lease(holder, "holder")

        hopeful, reply = _handshake(coord, "hopeful")
        assert reply["type"] == "welcome"
        hopeful.send(protocol.request("hopeful"))
        wait = hopeful.recv()
        assert wait["type"] == "wait"
        assert wait["reason"] == "backpressure"

        stats = coord.fleet_stats()
        assert stats["admission"]["max_inflight"] == 1
        assert stats["admission"]["rejects"] >= 1

        coord.request_shutdown("test-end")
        batch.join(timeout=10.0)
        assert not batch.is_alive()
        holder.close()
        hopeful.close()
    # Nothing was invented: every unresolved job was shed as skipped.
    statuses = [o.status for o in runner["outcomes"]]
    assert statuses == ["skipped"] * 3


def test_circuit_breaker_quarantines_failing_worker(tmp_path):
    specs = fleet_specs(2)
    telemetry = Telemetry()
    with Coordinator("127.0.0.1:0", telemetry=telemetry,
                     breaker_threshold=1,
                     breaker_cooldown=60.0) as coord:
        runner, batch = _background_batch(coord, specs)
        flaky, reply = _handshake(coord, "flaky")
        assert reply["type"] == "welcome"
        lease = _claim_lease(flaky, "flaky")

        # One deterministic (non-transient) failure trips the N=1
        # breaker.
        flaky.send(protocol.result("flaky", lease["hash"],
                                   lease["attempt"], "failed", 0.01,
                                   error="poisoned host"))
        assert flaky.recv()["type"] == "ack"

        # The quarantined worker is refused further leases...
        flaky.send(protocol.request("flaky"))
        wait = flaky.recv()
        assert wait["type"] == "wait"
        assert wait["reason"] == "quarantined"
        assert 0 < wait["seconds"] <= 1.0

        # ...and shows up in fleet stats and telemetry.
        stats = coord.fleet_stats()
        assert stats["quarantined"] == ["flaky"]
        assert stats["workers"]["flaky"]["quarantined"] is True
        assert stats["breaker"]["trips"] == 1
        assert telemetry.count("worker_quarantined") == 1

        # A healthy peer still gets the remaining job.
        _workers, threads = start_workers(coord.address, 1)
        batch.join(timeout=30.0)
        assert not batch.is_alive()
        flaky.close()
    join_all(threads)
    statuses = [o.status for o in runner["outcomes"]]
    assert sorted(statuses) == ["failed", "ok"]


def test_breaker_cooldown_reopens_leasing():
    breaker_args = dict(breaker_threshold=1, breaker_cooldown=0.05)
    specs = fleet_specs(2)
    with Coordinator("127.0.0.1:0", retries=1, **breaker_args) as coord:
        runner, batch = _background_batch(coord, specs)
        worker, reply = _handshake(coord, "redeemed")
        assert reply["type"] == "welcome"
        lease = _claim_lease(worker, "redeemed")
        worker.send(protocol.result("redeemed", lease["hash"],
                                    lease["attempt"], "failed", 0.01,
                                    error="flake", transient=True))
        assert worker.recv()["type"] == "ack"
        time.sleep(0.1)  # cooldown elapses
        # The same worker leases again once the circuit closes.
        _claim_lease(worker, "redeemed")
        coord.request_shutdown("test-end")
        batch.join(timeout=10.0)
        worker.close()
    assert not batch.is_alive()


# ----------------------------------------------------------------------
# deadline budget + graceful shutdown (degradation sheds, never alters)
# ----------------------------------------------------------------------
def test_coordinator_deadline_sheds_to_journal_and_resume_completes(
        tmp_path):
    specs = fleet_specs(3)
    path = tmp_path / "journal.jsonl"
    telemetry = Telemetry()
    with Coordinator("127.0.0.1:0", journal=RunJournal(path),
                     telemetry=telemetry, poll_seconds=0.01,
                     deadline=0.0) as coord:
        outcomes = coord.run(specs)  # budget exhausted on arrival
    assert [o.status for o in outcomes] == ["skipped"] * 3
    assert all("deadline" in o.error for o in outcomes)
    skipped = [e for e in telemetry.events if e.kind == "skipped"]
    assert {e.payload["reason"] for e in skipped} == {"deadline"}

    # Deferred, not lost: a resume run with workers completes all
    # three, bit-identically to a serial baseline.
    journal = RunJournal(path)
    assert journal.load() == 0
    assert len(journal.skipped()) == 3
    with Coordinator("127.0.0.1:0", journal=journal) as coord:
        _workers, threads = start_workers(coord.address, 2)
        resumed = coord.run(specs)
    join_all(threads)
    assert [o.status for o in resumed] == ["ok"] * 3
    baseline = BatchEngine(jobs=1).run(specs)
    for fleet_out, serial_out in zip(resumed, baseline):
        assert (fleet_out.summary.total_cycles
                == serial_out.summary.total_cycles)


def test_request_shutdown_journals_outstanding_leases(tmp_path):
    specs = fleet_specs(2)
    path = tmp_path / "journal.jsonl"
    telemetry = Telemetry()
    with Coordinator("127.0.0.1:0", journal=RunJournal(path),
                     telemetry=telemetry, poll_seconds=0.01) as coord:
        runner, batch = _background_batch(coord, specs)
        stream, reply = _handshake(coord, "holder")
        assert reply["type"] == "welcome"
        _claim_lease(stream, "holder")

        coord.request_shutdown("sigterm")
        batch.join(timeout=10.0)
        assert not batch.is_alive()
        stream.close()

    statuses = [o.status for o in runner["outcomes"]]
    assert statuses == ["skipped", "skipped"]
    assert coord.fleet_stats()["shutdown"] == "sigterm"
    assert coord.jobs_shed == 2
    # The ledger accounts for everything: the held lease was journaled
    # as reclaimed AND deferred; the queued job as deferred.
    journal = RunJournal(path)
    journal.load()
    assert journal.active_leases() == {}  # no lease left dangling
    assert set(journal.skipped().values()) == {"sigterm"}
    assert len(journal.skipped()) == 2
    reclaimed = [e for e in telemetry.events
                 if e.kind == "lease_reclaimed"]
    assert [e.payload["reason"] for e in reclaimed] == ["sigterm"]


# ----------------------------------------------------------------------
# worker resilience: reconnect, session supersede, partitions
# ----------------------------------------------------------------------
def test_session_supersede_replaces_zombie_connection():
    specs = fleet_specs(2)
    telemetry = Telemetry()
    with Coordinator("127.0.0.1:0", telemetry=telemetry,
                     retries=2) as coord:
        runner, batch = _background_batch(coord, specs)
        old, reply = _handshake(coord, "phoenix", session="tok-1")
        assert reply["type"] == "welcome"
        _claim_lease(old, "phoenix")

        # Same id, same session: the reconnect supersedes the zombie
        # and takes back its lease for retry.
        new, reply = _handshake(coord, "phoenix", session="tok-1")
        assert reply["type"] == "welcome"
        _claim_lease(new, "phoenix")

        # Same id, *different* session: still an imposter, rejected.
        imposter, rejected = _handshake(coord, "phoenix",
                                        session="stolen")
        assert rejected["type"] == "reject"
        assert "already connected" in rejected["reason"]
        imposter.close()

        # The zombie departing must not steal the successor's lease
        # (generation guard) — the new connection keeps leasing fine.
        old.close()
        time.sleep(0.1)
        with coord._lock:
            assert len(coord._leases) == 1  # still held by the successor
        assert coord.fleet_stats()["workers"]["phoenix"]["alive"]

        reclaims = [e for e in telemetry.events
                    if e.kind == "lease_reclaimed"]
        assert [e.payload["reason"] for e in reclaims] == ["reconnect"]
        joins = [e for e in telemetry.events
                 if e.kind == "worker_joined"]
        assert [e.payload["reconnect"] for e in joins] == [False, True]

        coord.request_shutdown("test-end")
        batch.join(timeout=10.0)
        assert not batch.is_alive()
        new.close()
    assert coord.fleet_stats()["workers"]["phoenix"]["reconnects"] == 1


def test_worker_survives_injected_net_partition():
    """End-to-end chaos: a seeded net_partition cuts the worker's link
    mid-run; the worker reconnects with the same session, the
    coordinator supersedes and retries, and the batch completes with
    bit-identical cycles."""
    specs = fleet_specs(3)
    telemetry = Telemetry()
    plan = FaultPlan.parse("net_partition@4,seed=11")
    with Coordinator("127.0.0.1:0", telemetry=telemetry,
                     retries=2) as coord:
        worker = Worker(coord.address, worker_id="chaotic",
                        max_reconnects=3, reconnect_base=0.02,
                        connect_timeout=0.5, faults=plan)
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        outcomes = coord.run(specs)
    join_all([thread])

    assert plan.count("net_partition") == 1
    assert worker.reconnects >= 1
    assert [o.status for o in outcomes] == ["ok"] * 3
    baseline = BatchEngine(jobs=1).run(specs)
    for fleet_out, serial_out in zip(outcomes, baseline):
        assert (fleet_out.summary.total_cycles
                == serial_out.summary.total_cycles)
        assert (fleet_out.summary.values_digest
                == serial_out.summary.values_digest)
    # The partition surfaced as a supersede (reconnect reclaim) or a
    # plain disconnect, depending on which side noticed first; either
    # way nothing was lost or duplicated.
    kinds = {e.kind for e in telemetry.events}
    assert "worker_joined" in kinds


def test_worker_completes_after_coordinator_restart(tmp_path):
    """The satellite scenario: the coordinator dies mid-batch and a
    resumed coordinator on the same port inherits the journal; the
    surviving worker reconnects and finishes the remainder with no
    lost or duplicated journal records."""
    specs = fleet_specs(3)
    path = tmp_path / "journal.jsonl"

    first = Coordinator("127.0.0.1:0", journal=RunJournal(path),
                        lease_seconds=60.0, poll_seconds=0.01)
    first.start()
    port = first.port
    runner_a, batch_a = _background_batch(first, specs)

    # A ghost claims one lease and sits on it, so the real worker can
    # finish every job but that one — guaranteeing a mid-batch state.
    ghost, reply = _handshake(first, "ghost")
    assert reply["type"] == "welcome"
    ghost_lease = _claim_lease(ghost, "ghost")

    worker = Worker(first.address, worker_id="survivor",
                    max_reconnects=3, reconnect_base=0.02,
                    connect_timeout=1.5)
    wthread = threading.Thread(target=worker.run, daemon=True)
    wthread.start()

    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if '"type"' in path.read_text() and path.read_text().count(
                '"summary"') >= 2:
            break
        time.sleep(0.02)
    assert path.read_text().count('"summary"') >= 2, \
        "worker never completed the first two jobs"

    # "Crash" the first coordinator: server socket and all worker
    # connections drop without so much as a drain message; its
    # abandoned batch thread is shed later.
    first.close(drain=False)
    ghost.close()

    # A restarted coordinator on the same port resumes the journal.
    journal = RunJournal(path)
    assert journal.load() == 2
    second = Coordinator(f"127.0.0.1:{port}", journal=journal,
                         lease_seconds=60.0, poll_seconds=0.01)
    with second:
        outcomes = second.run(specs)
    first.request_shutdown("test-teardown")  # let thread A exit
    batch_a.join(timeout=10.0)
    join_all([wthread])

    assert sorted(o.status for o in outcomes) == ["ok", "resumed",
                                                  "resumed"]
    assert worker.reconnects >= 1
    assert worker.jobs_done == 3
    # The ledger holds exactly one completion per job — the resumed
    # run added the missing one, duplicated nothing.
    final = RunJournal(path)
    assert final.load() == 3
    assert final.hashes() == {s.content_hash() for s in specs}
    assert ghost_lease["hash"] in final.hashes()  # the held job too


# ----------------------------------------------------------------------
# memory guardrails
# ----------------------------------------------------------------------
def test_soft_memory_limit_signs_worker_off_cleanly():
    specs = fleet_specs(2)
    telemetry = Telemetry()
    with Coordinator("127.0.0.1:0", telemetry=telemetry) as coord:
        cramped = Worker(coord.address, worker_id="cramped",
                         guard=GuardPolicy(rss_soft_bytes=1))
        roomy = Worker(coord.address, worker_id="roomy")
        threads = [threading.Thread(target=w.run, daemon=True)
                   for w in (cramped, roomy)]
        for thread in threads:
            thread.start()
        outcomes = coord.run(specs)
    join_all(threads)

    # The cramped worker refused all leases and signed off with the
    # degradation reason; the roomy one did every job.
    assert cramped.stop_reason == "memory_soft"
    assert cramped.jobs_done == 0
    assert roomy.jobs_done == 2
    assert [o.status for o in outcomes] == ["ok", "ok"]
    goodbyes = [e for e in telemetry.events
                if e.kind == "worker_goodbye"]
    assert [e.payload["reason"] for e in goodbyes] == ["memory_soft"]
    stats = coord.fleet_stats()
    assert stats["workers"]["cramped"]["goodbye"] == "memory_soft"


def test_hard_memory_limit_evicts_like_a_crash(monkeypatch):
    """A hard RSS trip drops the connection (in production it also
    ``os._exit``\\ s); the coordinator reclaims like any crash and the
    batch completes elsewhere."""
    specs = fleet_specs(2)
    telemetry = Telemetry()
    evictions = []

    def fake_evict(self, stream):
        evictions.append(self.worker_id)
        stream.close()  # the disconnect is the observable effect

    monkeypatch.setattr(Worker, "_hard_evict", fake_evict)
    with Coordinator("127.0.0.1:0", telemetry=telemetry,
                     retries=1) as coord:
        doomed = Worker(coord.address, worker_id="doomed",
                        guard=GuardPolicy(rss_hard_bytes=1))
        healthy = Worker(coord.address, worker_id="healthy")
        threads = [threading.Thread(target=w.run, daemon=True)
                   for w in (doomed, healthy)]
        for thread in threads:
            thread.start()
        outcomes = coord.run(specs)
    join_all(threads)

    assert evictions == ["doomed"]
    assert doomed.stop_reason in ("memory_hard", "lost")
    assert doomed.jobs_done == 0
    assert [o.status for o in outcomes] == ["ok", "ok"]
    assert doomed.guard.rss_hard_bytes == 1


def test_memory_pressure_metric_counts_trips():
    from repro.obs.metrics import get_registry, enable_metrics

    registry = get_registry()
    was_enabled = registry.enabled
    enable_metrics()
    registry.clear()
    try:
        guard = GuardPolicy(rss_soft_bytes=1,
                            rss_hard_bytes=2 ** 50).memory_guard()
        assert guard.check() == "soft"
        series = registry.snapshot()["metrics"][
            "guard_memory_pressure_total"]["series"]
        assert any(s["labels"].get("level") == "soft"
                   and s["value"] == 1 for s in series)
    finally:
        registry.clear()
        registry.enabled = was_enabled


# ----------------------------------------------------------------------
# lease-expiry vs late-result race (the double-reclaim satellite)
# ----------------------------------------------------------------------
def test_late_result_after_expiry_is_stale_not_duplicated(tmp_path):
    specs = fleet_specs(1)
    path = tmp_path / "journal.jsonl"
    telemetry = Telemetry()
    with Coordinator("127.0.0.1:0", lease_seconds=0.15,
                     poll_seconds=0.02, retries=1,
                     journal=RunJournal(path),
                     telemetry=telemetry) as coord:
        runner, batch = _background_batch(coord, specs)
        slow, reply = _handshake(coord, "slowpoke")
        assert reply["type"] == "welcome"
        lease = _claim_lease(slow, "slowpoke")

        # Let the lease expire (no heartbeats), the sweeper reclaims
        # and requeues; the slow worker then reports anyway.
        time.sleep(0.4)
        slow.send(protocol.result(
            "slowpoke", lease["hash"], lease["attempt"], "failed",
            0.3, error="too late to matter"))
        assert slow.recv()["type"] == "ack"  # still acked, then dropped

        # A real worker runs the retried attempt to completion.
        _workers, threads = start_workers(coord.address, 1)
        batch.join(timeout=30.0)
        assert not batch.is_alive()
        slow.close()
    join_all(threads)

    assert [o.status for o in runner["outcomes"]] == ["ok"]
    assert coord.stale_results == 1
    assert telemetry.count("lease_expired") == 1
    # Exactly one completion in the ledger; the late failure neither
    # failed the job nor double-reclaimed the lease.
    journal = RunJournal(path)
    assert journal.load() == 1
    assert journal.stats()["reclaim_lines"] == 1
    reclaimed = [e for e in telemetry.events
                 if e.kind in ("lease_expired", "lease_reclaimed")]
    assert len(reclaimed) == 1


def test_worker_reconnect_attempts_are_bounded():
    """With no coordinator ever coming back, a partitioned worker
    gives up after max_reconnects consecutive losses instead of
    spinning forever."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    worker = Worker(f"127.0.0.1:{port}", worker_id="stranded",
                    connect_timeout=0.1, max_reconnects=2,
                    reconnect_base=0.01)
    start = time.monotonic()
    with pytest.raises(ReproError, match="could not reach"):
        worker.run()
    assert time.monotonic() - start < 5.0
