"""S_strict (Davidson kernel-level exact balancing)."""

import numpy as np
import pytest

from repro.algorithms import make_algorithm
from repro.frontend import GraphProcessor, reference
from repro.graph import powerlaw_graph, star_graph
from repro.sched import make_schedule
from repro.sim import GPUConfig
from repro.sim.instructions import Op
from repro.sim.stats import StallCat

CFG = GPUConfig.vortex_tiny()
GRAPH = powerlaw_graph(160, 700, exponent=2.0, seed=37).undirected()


def test_registered():
    assert make_schedule("s_strict").name == "strict"
    assert make_schedule("strict").label == "S_strict"


@pytest.mark.parametrize("alg_name,kwargs,ref_fn", [
    ("pagerank", {"iterations": 3},
     lambda g: reference.pagerank(g, iterations=3)),
    ("bfs", {"source": 0}, lambda g: reference.bfs_levels(g, 0)),
    ("sssp", {"source": 0}, lambda g: reference.sssp(g, 0)),
    ("cc", {}, lambda g: reference.connected_components(g)),
])
def test_strict_correct(alg_name, kwargs, ref_fn):
    res = GraphProcessor(
        make_algorithm(alg_name, **kwargs), schedule="strict", config=CFG,
    ).run(GRAPH)
    ref = np.asarray(ref_fn(GRAPH), dtype=float)
    np.testing.assert_allclose(res.values.astype(float), ref, atol=1e-9)


def test_strict_is_perfectly_balanced():
    """Exact rank slices: warp rounds equal the edge-map optimum
    (modulo per-warp rounding)."""
    from repro.sched import analytic

    run = GraphProcessor(
        make_algorithm("pagerank", iterations=1), schedule="strict",
        config=CFG, time_init=False, time_apply=False,
    ).run(GRAPH)
    ideal = analytic.expected_warp_iterations(GRAPH, "edge_map", CFG)
    warps = CFG.num_cores * CFG.warps_per_core
    assert run.stats.warp_iterations <= ideal + warps


def test_strict_beats_vm_on_star():
    star = star_graph(200)
    cfg = GPUConfig.vortex_bench()

    def cycles(schedule):
        return GraphProcessor(
            make_algorithm("pagerank", iterations=2), schedule=schedule,
            config=cfg,
        ).run(star).stats.total_cycles

    assert cycles("strict") < cycles("vertex_map")


def test_sparseweaver_beats_strict_on_skew():
    """The paper's ordering: exact balancing loses to the Weaver on its
    registration scans + global binary searches."""
    g = powerlaw_graph(800, 4800, exponent=1.9, seed=3)
    cfg = GPUConfig.vortex_bench()

    def cycles(schedule):
        return GraphProcessor(
            make_algorithm("pagerank", iterations=2), schedule=schedule,
            config=cfg,
        ).run(g).stats.total_cycles

    assert cycles("sparseweaver") < cycles("strict")


def test_strict_pays_global_searches_not_shared():
    run = GraphProcessor(
        make_algorithm("pagerank", iterations=1), schedule="strict",
        config=CFG, time_init=False, time_apply=False,
    ).run(GRAPH)
    # distribution searches hit global memory, not shared memory
    assert run.stats.op_counts.get(Op.SHMEM_LOAD, 0) == 0
    assert run.stats.counters.get(
        "elements_loaded:strict_prefix", 0) > 0
    # the scan kernels synchronize at registration
    assert run.stats.op_counts.get(Op.SYNC, 0) > 0
