"""Shared fixtures: tiny graphs and fast simulator configurations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (
    CSRGraph,
    chain_graph,
    from_edge_list,
    powerlaw_graph,
    road_grid_graph,
    star_graph,
)
from repro.sim import GPUConfig


@pytest.fixture
def tiny_config() -> GPUConfig:
    """1 core, 2 warps, 4 threads — smallest full pipeline."""
    return GPUConfig.vortex_tiny()


@pytest.fixture
def bench_config() -> GPUConfig:
    """2 cores, 8 warps, 32 threads — the benchmark preset."""
    return GPUConfig.vortex_bench()


@pytest.fixture
def diamond_graph() -> CSRGraph:
    """4 vertices: 0 -> {1, 2} -> 3, plus 0 -> 3."""
    return from_edge_list(
        [(0, 1), (0, 2), (0, 3), (1, 3), (2, 3)], num_vertices=4
    )


@pytest.fixture
def paper_example_graph() -> CSRGraph:
    """The Fig. 1/6 shape: vertex degrees (1, 0, 2, 0, 5).

    Vertex 0 has one edge, vertex 2 has two, vertex 4 has five, so a
    4-lane warp reproduces the paper's worked decode example.
    """
    edges = [(0, 2)]
    edges += [(2, 0), (2, 4)]
    edges += [(4, 0), (4, 1), (4, 2), (4, 3), (4, 5)]
    return from_edge_list(edges, num_vertices=6)


@pytest.fixture
def small_powerlaw() -> CSRGraph:
    return powerlaw_graph(200, 900, exponent=2.0, seed=42)


@pytest.fixture
def small_road() -> CSRGraph:
    return road_grid_graph(12, seed=7)


@pytest.fixture
def small_star() -> CSRGraph:
    return star_graph(40)


@pytest.fixture
def small_chain() -> CSRGraph:
    return chain_graph(30)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
