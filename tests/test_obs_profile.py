"""Host profiler: phases, sampler, history, bit-identical cycles."""

import json
import time

import pytest

from repro.graph import powerlaw_graph
from repro.obs.profile import (OP_BUCKETS, PerfHistory, PhaseProfiler,
                               StackSampler, disable_profiling,
                               enable_profiling, format_trajectory,
                               get_profiler, git_commit, phase,
                               profiling_enabled)
from repro.runtime import AlgorithmSpec, BatchEngine, GraphSpec, JobSpec
from repro.sim import GPUConfig


@pytest.fixture
def global_profiler():
    """Enable the process-global profiler for one test, then restore."""
    was_enabled = profiling_enabled()
    profiler = enable_profiling()
    profiler.clear()
    yield profiler
    profiler.clear()
    if not was_enabled:
        disable_profiling()


def tiny_job():
    return JobSpec(
        algorithm=AlgorithmSpec.of("pagerank", iterations=2),
        graph=GraphSpec.inline(powerlaw_graph(120, 500, seed=1),
                               name="pl-a"),
        schedule="sparseweaver",
        config=GPUConfig.vortex_tiny(),
        max_iterations=2,
    )


# ----------------------------------------------------------------------
# PhaseProfiler accumulators
# ----------------------------------------------------------------------
def test_add_accumulates_seconds_and_calls():
    p = PhaseProfiler(enabled=True)
    p.add("schedule", 0.25)
    p.add("schedule", 0.75, calls=3)
    assert p.phases["schedule"] == [1.0, 4]


def test_add_op_feeds_execute_phase_and_histogram():
    p = PhaseProfiler(enabled=True)
    p.add_op("LOAD", 2e-6)
    p.add_op("LOAD", 2e-5)
    p.add_op("STORE", 1e-3)
    assert p.phases["execute"][1] == 3
    assert p.ops["LOAD"][1] == 2
    assert sum(p.ops["LOAD"][2]) == 2
    # 1e-3 is exactly a bucket bound; bisect_left keeps it inside.
    assert sum(p.ops["STORE"][2]) == 1


def test_coverage_excludes_nested_phases():
    p = PhaseProfiler(enabled=True)
    p.add("execute", 0.6)
    p.add("schedule", 0.3)
    p.add("mem/access", 0.5)  # nested inside execute: not re-counted
    p.end_kernel(cycles=1000, wall_seconds=1.0)
    assert p.coverage() == pytest.approx(0.9)
    assert p.cycles_per_wall_second() == pytest.approx(1000.0)


def test_summary_orders_phases_and_computes_op_percentiles():
    p = PhaseProfiler(enabled=True)
    p.add("schedule", 0.1)
    p.add("execute", 0.0)
    for _ in range(99):
        p.add_op("LOAD", 2e-6)
    p.add_op("LOAD", 5e-3)
    p.end_kernel(cycles=10, wall_seconds=0.2)
    data = p.summary()
    assert data["phases"][0]["phase"] == "schedule"
    (op,) = data["ops"]
    assert op["op"] == "LOAD" and op["calls"] == 100
    assert op["p50_us"] == pytest.approx(2.5)   # bucket upper bound
    assert op["p99_us"] == pytest.approx(2.5)
    payload = p.summary_payload(top=1)
    assert payload["kernels"] == 1
    assert payload["top_phases"] == [["schedule", 0.1, 1]]
    assert "schedule" in p.format()


def test_snapshot_merge_round_trip():
    a = PhaseProfiler(enabled=True)
    a.add("schedule", 0.5, calls=7)
    a.add_op("LOAD", 3e-6)
    a.end_kernel(cycles=500, wall_seconds=1.0)
    b = PhaseProfiler(enabled=True)
    b.merge_snapshot(json.loads(json.dumps(a.snapshot())))
    b.merge_snapshot(a.snapshot())
    assert b.kernels == 2
    assert b.sim_cycles == 1000
    assert b.phases["schedule"] == [1.0, 14]
    assert b.ops["LOAD"][1] == 2


def test_merge_snapshot_noop_when_disabled():
    src = PhaseProfiler(enabled=True)
    src.add("schedule", 1.0)
    dst = PhaseProfiler(enabled=False)
    dst.merge_snapshot(src.snapshot())
    assert not dst.phases


def test_merge_snapshot_rejects_bucket_mismatch():
    src = PhaseProfiler(enabled=True)
    src.add_op("LOAD", 1e-6)
    snap = src.snapshot()
    snap["profile"]["ops"]["LOAD"]["counts"] = [1, 2]
    dst = PhaseProfiler(enabled=True)
    with pytest.raises(ValueError, match="bucket mismatch"):
        dst.merge_snapshot(snap)


def test_save_writes_mergeable_snapshot(tmp_path):
    p = PhaseProfiler(enabled=True)
    p.add("execute", 0.5)
    path = p.save(tmp_path / "deep" / "profile.json")
    doc = json.loads(path.read_text())
    assert doc["profile"]["phases"]["execute"]["seconds"] == 0.5


def test_end_kernel_publishes_deltas_to_metrics():
    from repro.obs.metrics import (disable_metrics, enable_metrics,
                                   metrics_enabled)

    was = metrics_enabled()
    registry = enable_metrics()
    registry.clear()
    try:
        p = PhaseProfiler(enabled=True)
        p.add("schedule", 1.0, calls=10)
        p.end_kernel(cycles=100, wall_seconds=2.0)
        p.add("schedule", 0.5, calls=5)
        p.end_kernel(cycles=100, wall_seconds=1.0)
        seconds = registry.counter("sim_profile_phase_seconds_total")
        # Deltas, not totals: two publications must not double-count.
        assert seconds.value(phase="schedule") == pytest.approx(1.5)
        calls = registry.counter("sim_profile_phase_calls_total")
        assert calls.value(phase="schedule") == 15
    finally:
        registry.clear()
        if not was:
            disable_metrics()


# ----------------------------------------------------------------------
# phase() context manager + global switches
# ----------------------------------------------------------------------
def test_phase_contextmanager_records_only_when_enabled(global_profiler):
    with phase("stats/merge"):
        pass
    assert global_profiler.phases["stats/merge"][1] == 1
    disable_profiling()
    with phase("stats/merge"):
        pass
    assert global_profiler.phases["stats/merge"][1] == 1


def test_enable_profiling_exports_env(global_profiler):
    import os

    assert os.environ.get("REPRO_PROFILE") == "1"
    assert get_profiler() is global_profiler
    disable_profiling()
    assert "REPRO_PROFILE" not in os.environ


# ----------------------------------------------------------------------
# The simulator contract: off = bit-identical, on = covered
# ----------------------------------------------------------------------
def test_cycles_bit_identical_with_profiler_on_and_off():
    assert not profiling_enabled()
    baseline = tiny_job().execute().stats.total_cycles
    try:
        profiler = enable_profiling()
        profiler.clear()
        profiled = tiny_job().execute().stats.total_cycles
        assert profiler.kernels > 0
        assert profiler.coverage() >= 0.90
        assert profiled == baseline
    finally:
        get_profiler().clear()
        disable_profiling()


def test_batch_engine_emits_profile_summary_before_batch_summary(
        tmp_path, global_profiler):
    from repro.runtime import Telemetry

    sink = tmp_path / "events.jsonl"
    engine = BatchEngine(jobs=1, cache=None, telemetry=Telemetry(sink))
    outcomes = engine.run([tiny_job()])
    assert all(o.status == "ok" for o in outcomes)
    kinds = [json.loads(line)["kind"]
             for line in sink.read_text().splitlines()]
    assert "profile_summary" in kinds
    # tail exits on batch_summary, so the profile must precede it.
    assert kinds.index("profile_summary") < kinds.index("batch_summary")


def test_pool_workers_ship_profile_snapshots(global_profiler):
    engine = BatchEngine(jobs=2, cache=None)
    outcomes = engine.run([tiny_job()])
    assert all(o.status == "ok" for o in outcomes)
    assert global_profiler.kernels > 0
    assert "execute" in global_profiler.phases


# ----------------------------------------------------------------------
# StackSampler
# ----------------------------------------------------------------------
def _burn(deadline: float) -> int:
    total = 0
    while time.perf_counter() < deadline:
        total += sum(range(200))
    return total


def test_sampler_collapsed_and_trace_events(tmp_path):
    sampler = StackSampler(interval=0.001)
    with sampler:
        _burn(time.perf_counter() + 0.25)
    assert sampler.samples, "no samples in 250ms of busy work"
    lines = sampler.collapsed()
    assert any("_burn" in line for line in lines)
    head = lines[0].rsplit(" ", 1)
    assert head[1].isdigit() and ";" in head[0]
    path = sampler.save_collapsed(tmp_path / "flame.collapsed")
    assert path.read_text().strip()

    events = sampler.trace_events(epoch=sampler.samples[0][0])
    spans = [e for e in events if e["ph"] == "X"]
    assert spans and all(e["cat"] == "host_sample" for e in spans)
    assert all(e["ts"] >= 0 for e in spans)
    # Metadata rows name the synthetic sampler process.
    assert any(e["ph"] == "M" and e["name"] == "process_name"
               for e in events)


def test_sampler_stop_is_idempotent_and_bounded():
    sampler = StackSampler(interval=0.001, max_samples=3)
    sampler.start()
    sampler.start()  # idempotent
    _burn(time.perf_counter() + 0.05)
    sampler.stop()
    sampler.stop()
    assert len(sampler.samples) <= 3
    assert sampler.trace_events() == [] or sampler.samples


def test_sampler_trace_events_empty_without_samples():
    assert StackSampler().trace_events() == []


# ----------------------------------------------------------------------
# PerfHistory
# ----------------------------------------------------------------------
def entry(rate, commit="abc123", schema=2):
    return {"schema": schema, "git_commit": commit, "time": 1.0,
            "simulator_version": 1,
            "metrics": {"jobs_per_second": rate,
                        "simulated_cycles_per_second": rate * 1000,
                        "cache_hit_latency_seconds": 0.001,
                        "peak_rss_bytes": 42 * 2 ** 20}}


def test_history_append_load_round_trip(tmp_path):
    history = PerfHistory(tmp_path / "hist.jsonl")
    history.append(entry(10.0))
    history.append(entry(11.0))
    assert [e["metrics"]["jobs_per_second"] for e in history.load()] \
        == [10.0, 11.0]
    assert history.bad_lines == 0


def test_history_tolerates_torn_and_garbage_lines(tmp_path):
    path = tmp_path / "hist.jsonl"
    path.write_text(json.dumps(entry(10.0)) + "\n"
                    + '{"torn": tru\n'
                    + "not json at all\n"
                    + json.dumps({"no_metrics": 1}) + "\n"
                    + json.dumps(entry(12.0)) + "\n")
    history = PerfHistory(path)
    assert len(history.load()) == 2
    assert history.bad_lines == 3
    assert history.latest()["metrics"]["jobs_per_second"] == 12.0


def test_history_missing_file_is_empty(tmp_path):
    history = PerfHistory(tmp_path / "absent.jsonl")
    assert history.load() == []
    assert history.latest() is None
    assert history.trajectory() == []


def test_trajectory_deltas_and_regression_verdicts(tmp_path):
    history = PerfHistory(tmp_path / "hist.jsonl")
    history.append(entry(100.0))
    history.append(entry(90.0))   # -10%: within the 25% gate
    history.append(entry(30.0))   # -67%: regression
    rows = history.trajectory(max_regress=0.25)
    assert [r["verdict"] for r in rows] == ["-", "ok", "REGRESSION"]
    assert rows[1]["delta"] == pytest.approx(-0.10)
    assert rows[2]["delta"] == pytest.approx(-2 / 3)
    assert rows[0]["git_commit"] == "abc123"
    table = format_trajectory(rows)
    assert "REGRESSION" in table and "jobs/s" in table


def test_git_commit_resolves_in_this_repo(tmp_path):
    commit = git_commit()
    assert len(commit) == 40 and commit != "unknown"
    assert git_commit(cwd=tmp_path) == "unknown"


def test_op_buckets_are_sorted():
    assert list(OP_BUCKETS) == sorted(OP_BUCKETS)


def test_merge_snapshot_tolerates_dead_worker_payloads():
    """Regression: a worker that died before its first phase ships
    None, a non-dict, or a snapshot whose 'profile' is None/empty —
    merging any of those must be a silent no-op, never a raise."""
    dst = PhaseProfiler(enabled=True)
    dst.add("schedule", 1.0, calls=2)
    for snap in (None, "garbage", 7, {}, {"profile": None},
                 {"profile": {}}):
        dst.merge_snapshot(snap)
    assert dst.phases["schedule"] == [1.0, 2]
    assert dst.kernels == 0
