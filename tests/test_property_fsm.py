"""Property-based tests on the Weaver FSM: for ANY registration the
dense work stream must enumerate exactly the registered edge ranges, in
order, packed to the lane width."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import SparseWorkloadTable, WeaverFSM
from repro.core.unit import WeaverUnit
from repro.sim import GPUConfig
from repro.sim.instructions import Op


@st.composite
def registrations(draw):
    count = draw(st.integers(min_value=0, max_value=12))
    entries = []
    loc = 0
    for i in range(count):
        deg = draw(st.integers(min_value=0, max_value=9))
        entries.append((i, i, loc, deg))
        loc += deg
    lanes = draw(st.sampled_from([1, 2, 4, 8]))
    return entries, lanes


def drain(fsm):
    batches = []
    while True:
        r = fsm.decode()
        if r.exhausted:
            break
        batches.append(r)
    return batches


@given(registrations())
@settings(max_examples=80, deadline=None)
def test_stream_covers_every_edge_once_in_order(data):
    entries, lanes = data
    st_table = SparseWorkloadTable(16)
    for idx, vid, loc, deg in entries:
        st_table.register(idx, vid, loc, deg)
    fsm = WeaverFSM(st_table, lanes)
    eids = []
    for batch in drain(fsm):
        eids.extend(batch.eids[batch.mask].tolist())
    total = sum(e[3] for e in entries)
    assert eids == list(range(total))  # ordered scan, dense cover


@given(registrations())
@settings(max_examples=80, deadline=None)
def test_batches_are_fully_packed_except_last(data):
    entries, lanes = data
    st_table = SparseWorkloadTable(16)
    for idx, vid, loc, deg in entries:
        st_table.register(idx, vid, loc, deg)
    fsm = WeaverFSM(st_table, lanes)
    batches = drain(fsm)
    for batch in batches[:-1]:
        assert batch.work_count == lanes  # dense operation
    total = sum(e[3] for e in entries)
    if total:
        assert batches[-1].work_count == total - lanes * (len(batches) - 1)


@given(registrations())
@settings(max_examples=80, deadline=None)
def test_vid_eid_pairs_consistent(data):
    entries, lanes = data
    ranges = {vid: (loc, loc + deg) for _, vid, loc, deg in entries}
    st_table = SparseWorkloadTable(16)
    for idx, vid, loc, deg in entries:
        st_table.register(idx, vid, loc, deg)
    fsm = WeaverFSM(st_table, lanes)
    for batch in drain(fsm):
        for vid, eid in zip(batch.vids[batch.mask], batch.eids[batch.mask]):
            lo, hi = ranges[int(vid)]
            assert lo <= int(eid) < hi


@given(registrations(), st.integers(min_value=0, max_value=11))
@settings(max_examples=60, deadline=None)
def test_skip_removes_only_that_vertex_going_forward(data, skip_vid):
    entries, lanes = data
    st_table = SparseWorkloadTable(16)
    for idx, vid, loc, deg in entries:
        st_table.register(idx, vid, loc, deg)
    fsm = WeaverFSM(st_table, lanes)
    fsm.skip(skip_vid)
    seen_vids = set()
    for batch in drain(fsm):
        seen_vids.update(int(v) for v in batch.vids[batch.mask])
    assert skip_vid not in seen_vids


@given(registrations())
@settings(max_examples=40, deadline=None)
def test_unit_epoch_reset_roundtrip(data):
    """Register -> drain -> re-register must behave like a fresh unit."""
    entries, lanes = data
    cfg = GPUConfig(
        num_sockets=1, cores_per_socket=1, warps_per_core=16,
        threads_per_warp=lanes,
    )
    unit = WeaverUnit(cfg)
    for epoch in range(2):
        per_warp = {}
        for idx, vid, loc, deg in entries:
            per_warp.setdefault(idx // lanes, []).append(
                (idx % lanes, vid, loc, deg)
            )
        for warp, regs in per_warp.items():
            unit.handle(Op.WEAVER_REG, warp, 1, regs)
        if not per_warp:
            unit.handle(Op.WEAVER_REG, 0, 1, [])
        seen = []
        t = 10
        while True:
            t += 10
            _, r = unit.handle(Op.WEAVER_DEC_ID, 0, t, None)
            if r.exhausted:
                break
            seen.extend(r.eids[r.mask].tolist())
        assert seen == list(range(sum(e[3] for e in entries))), epoch
