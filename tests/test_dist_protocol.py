"""Wire protocol of the distributed fleet: framing, parsing, safety."""

import json
import socket

import pytest

from repro.dist import protocol
from repro.dist.protocol import (MessageStream, ProtocolError, expect,
                                 format_address, parse_address)
from repro.errors import ConfigError


# ----------------------------------------------------------------------
# address parsing
# ----------------------------------------------------------------------
def test_parse_address_host_and_port():
    assert parse_address("example.org:7000") == ("example.org", 7000)
    assert parse_address("127.0.0.1:0") == ("127.0.0.1", 0)


def test_parse_address_bare_port_defaults_host():
    assert parse_address("8012") == (protocol.DEFAULT_HOST, 8012)
    assert parse_address(":8012") == (protocol.DEFAULT_HOST, 8012)


@pytest.mark.parametrize("bad", ["host:", "host:abc", "", "a:b:c",
                                 "host:70000", "host:-1"])
def test_parse_address_rejects_garbage(bad):
    with pytest.raises(ConfigError):
        parse_address(bad)


def test_format_address_inverts_parse():
    addr = ("10.0.0.5", 9999)
    assert parse_address(format_address(addr)) == addr


# ----------------------------------------------------------------------
# framing over a real socket pair
# ----------------------------------------------------------------------
@pytest.fixture()
def stream_pair():
    left, right = socket.socketpair()
    a, b = MessageStream(left), MessageStream(right)
    yield a, b
    a.close()
    b.close()


def test_send_recv_round_trip(stream_pair):
    a, b = stream_pair
    a.send(protocol.hello("w0", "sim-1", 123))
    message = b.recv()
    assert message["type"] == "hello"
    assert message["worker"] == "w0"
    assert message["protocol"] == protocol.PROTOCOL_VERSION


def test_recv_returns_none_on_clean_eof(stream_pair):
    a, b = stream_pair
    a.close()
    assert b.recv() is None


def test_recv_returns_none_on_torn_tail(stream_pair):
    a, b = stream_pair
    # A peer that dies mid-send leaves bytes without the newline.
    a.sock.sendall(b'{"type": "hel')
    a.close()
    assert b.recv() is None


def test_recv_rejects_undecodable_line(stream_pair):
    a, b = stream_pair
    a.sock.sendall(b"not json at all\n")
    with pytest.raises(ProtocolError):
        b.recv()


@pytest.mark.parametrize("line", [b"[1, 2]\n", b'{"no_type": 1}\n',
                                  b'{"type": 7}\n', b"42\n"])
def test_recv_rejects_untyped_messages(stream_pair, line):
    a, b = stream_pair
    a.sock.sendall(line)
    with pytest.raises(ProtocolError):
        b.recv()


def test_send_refuses_oversized_message(stream_pair):
    a, _b = stream_pair
    huge = {"type": "result",
            "blob": "x" * (protocol.MAX_LINE_BYTES + 1)}
    with pytest.raises(ProtocolError):
        a.send(huge)


def test_close_is_idempotent(stream_pair):
    a, _b = stream_pair
    a.close()
    a.close()  # must not raise


# ----------------------------------------------------------------------
# expect() and constructors
# ----------------------------------------------------------------------
def test_expect_passes_matching_type():
    message = protocol.ack()
    assert expect(message, "ack") is message
    assert expect(message, "lease", "ack") is message


def test_expect_raises_on_mismatch_and_eof():
    with pytest.raises(ProtocolError):
        expect(protocol.ack(), "lease")
    with pytest.raises(ProtocolError):
        expect(None, "ack")


def test_constructors_are_json_safe():
    messages = [
        protocol.hello("w", "s", 1),
        protocol.welcome("c", 30.0, 1.0),
        protocol.reject("nope"),
        protocol.request("w"),
        protocol.lease("h" * 64, {"kind": "x"}, 3, 2, 30.0,
                       fault=("crash", None)),
        protocol.wait(0.2),
        protocol.drain(),
        protocol.heartbeat("w", "h" * 64),
        protocol.result("w", "h" * 64, 1, "ok", 0.5,
                        summary={"cycles": 9}, metrics={"m": 1}),
        protocol.result("w", "h" * 64, 2, "failed", 0.1,
                        error="boom", transient=True),
        protocol.ack(),
        protocol.goodbye("w", 4),
    ]
    for message in messages:
        round_tripped = json.loads(json.dumps(message, sort_keys=True))
        assert round_tripped == message
        assert isinstance(message["type"], str)


def test_lease_fault_serializes_as_list():
    lease = protocol.lease("h", {}, 0, 1, 5.0, fault=("hang", 2.0))
    assert lease["fault"] == ["hang", 2.0]
    assert "fault" not in protocol.lease("h", {}, 0, 1, 5.0)


def test_send_oversize_error_names_kind_and_size(stream_pair):
    a, _b = stream_pair
    huge = {"type": "result",
            "blob": "x" * (protocol.MAX_LINE_BYTES + 1)}
    with pytest.raises(ProtocolError, match=r"'result'") as err:
        a.send(huge)
    assert str(protocol.MAX_LINE_BYTES) in str(err.value)
    # The refusal happened before any bytes hit the wire.


def test_recv_oversize_error_names_kind_and_size(stream_pair):
    a, b = stream_pair
    import threading

    line = (b'{"type": "result", "blob": "'
            + b"x" * (protocol.MAX_LINE_BYTES + 64) + b'"}\n')
    writer = threading.Thread(target=a.sock.sendall, args=(line,),
                              daemon=True)
    writer.start()
    with pytest.raises(ProtocolError, match=r"'result'") as err:
        b.recv()
    assert "exceeds" in str(err.value)
    a.close()
    writer.join(timeout=5.0)


def test_oversized_result_payload_regression():
    """A worker whose summary balloons past the frame limit must fail
    that one send with a clean, named ProtocolError — not corrupt the
    stream or die with a bare OSError (regression for oversize-line
    handling)."""
    left, right = socket.socketpair()
    a, b = MessageStream(left), MessageStream(right)
    try:
        message = protocol.result(
            "w0", "h" * 64, 1, "ok", 0.5,
            summary={"stall_matrix": "y" * (protocol.MAX_LINE_BYTES)})
        with pytest.raises(ProtocolError) as err:
            a.send(message)
        assert "'result'" in str(err.value)
        # The stream is still usable for a normally-sized message.
        a.send(protocol.heartbeat("w0", "h" * 64))
        assert b.recv()["type"] == "heartbeat"
    finally:
        a.close()
        b.close()


# ----------------------------------------------------------------------
# network fault injection (the MessageStream layer)
# ----------------------------------------------------------------------
def _net_stream_pair(plan_text):
    from repro.runtime.faults import FaultPlan

    left, right = socket.socketpair()
    plan = FaultPlan.parse(plan_text)
    return (MessageStream(left, faults=plan), MessageStream(right),
            plan)


def test_net_drop_swallows_one_outbound_message():
    a, b, _plan = _net_stream_pair("net_drop@0,seed=3")
    try:
        a.send(protocol.heartbeat("w", "h"))  # index 0: dropped
        a.send(protocol.request("w"))         # index 1: delivered
        assert b.recv()["type"] == "request"
    finally:
        a.close()
        b.close()


def test_net_delay_sleeps_then_delivers():
    import time as time_mod

    a, b, _plan = _net_stream_pair("net_delay@0:0.05,seed=3")
    try:
        start = time_mod.monotonic()
        a.send(protocol.request("w"))
        assert time_mod.monotonic() - start >= 0.045
        assert b.recv()["type"] == "request"
    finally:
        a.close()
        b.close()


def test_net_partition_raises_oserror_and_closes():
    a, b, plan = _net_stream_pair("net_partition@1,seed=3")
    try:
        a.send(protocol.request("w"))  # index 0: fine
        assert b.recv()["type"] == "request"
        with pytest.raises(OSError, match="net_partition"):
            a.send(protocol.heartbeat("w", "h"))  # index 1: cut
        assert b.recv() is None  # the link really died
        assert plan.count("net_partition") == 1
    finally:
        a.close()
        b.close()


def test_net_fault_counter_spans_streams():
    """A shared fault_state makes the message index survive a
    reconnect: the rule at index 2 fires on the *second* stream."""
    from repro.runtime.faults import FaultPlan

    plan = FaultPlan.parse("net_partition@2,seed=3")
    state = [0]
    first_l, first_r = socket.socketpair()
    a = MessageStream(first_l, faults=plan, fault_state=state)
    a.send(protocol.request("w"))   # 0
    a.send(protocol.request("w"))   # 1
    a.close()
    first_r.close()

    second_l, second_r = socket.socketpair()
    c = MessageStream(second_l, faults=plan, fault_state=state)
    try:
        with pytest.raises(OSError, match="net_partition"):
            c.send(protocol.request("w"))  # index 2 overall
    finally:
        c.close()
        second_r.close()


def test_hello_session_and_goodbye_reason_are_optional():
    assert "session" not in protocol.hello("w", "s", 1)
    assert protocol.hello("w", "s", 1, session="tok")["session"] == "tok"
    assert "reason" not in protocol.goodbye("w", 1)
    assert protocol.goodbye("w", 1, reason="memory_soft")["reason"] == (
        "memory_soft")
    assert "reason" not in protocol.wait(0.1)
    assert protocol.wait(0.1, reason="backpressure")["reason"] == (
        "backpressure")
