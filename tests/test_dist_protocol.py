"""Wire protocol of the distributed fleet: framing, parsing, safety."""

import json
import socket

import pytest

from repro.dist import protocol
from repro.dist.protocol import (MessageStream, ProtocolError, expect,
                                 format_address, parse_address)
from repro.errors import ConfigError


# ----------------------------------------------------------------------
# address parsing
# ----------------------------------------------------------------------
def test_parse_address_host_and_port():
    assert parse_address("example.org:7000") == ("example.org", 7000)
    assert parse_address("127.0.0.1:0") == ("127.0.0.1", 0)


def test_parse_address_bare_port_defaults_host():
    assert parse_address("8012") == (protocol.DEFAULT_HOST, 8012)
    assert parse_address(":8012") == (protocol.DEFAULT_HOST, 8012)


@pytest.mark.parametrize("bad", ["host:", "host:abc", "", "a:b:c",
                                 "host:70000", "host:-1"])
def test_parse_address_rejects_garbage(bad):
    with pytest.raises(ConfigError):
        parse_address(bad)


def test_format_address_inverts_parse():
    addr = ("10.0.0.5", 9999)
    assert parse_address(format_address(addr)) == addr


# ----------------------------------------------------------------------
# framing over a real socket pair
# ----------------------------------------------------------------------
@pytest.fixture()
def stream_pair():
    left, right = socket.socketpair()
    a, b = MessageStream(left), MessageStream(right)
    yield a, b
    a.close()
    b.close()


def test_send_recv_round_trip(stream_pair):
    a, b = stream_pair
    a.send(protocol.hello("w0", "sim-1", 123))
    message = b.recv()
    assert message["type"] == "hello"
    assert message["worker"] == "w0"
    assert message["protocol"] == protocol.PROTOCOL_VERSION


def test_recv_returns_none_on_clean_eof(stream_pair):
    a, b = stream_pair
    a.close()
    assert b.recv() is None


def test_recv_returns_none_on_torn_tail(stream_pair):
    a, b = stream_pair
    # A peer that dies mid-send leaves bytes without the newline.
    a.sock.sendall(b'{"type": "hel')
    a.close()
    assert b.recv() is None


def test_recv_rejects_undecodable_line(stream_pair):
    a, b = stream_pair
    a.sock.sendall(b"not json at all\n")
    with pytest.raises(ProtocolError):
        b.recv()


@pytest.mark.parametrize("line", [b"[1, 2]\n", b'{"no_type": 1}\n',
                                  b'{"type": 7}\n', b"42\n"])
def test_recv_rejects_untyped_messages(stream_pair, line):
    a, b = stream_pair
    a.sock.sendall(line)
    with pytest.raises(ProtocolError):
        b.recv()


def test_send_refuses_oversized_message(stream_pair):
    a, _b = stream_pair
    huge = {"type": "result",
            "blob": "x" * (protocol.MAX_LINE_BYTES + 1)}
    with pytest.raises(ProtocolError):
        a.send(huge)


def test_close_is_idempotent(stream_pair):
    a, _b = stream_pair
    a.close()
    a.close()  # must not raise


# ----------------------------------------------------------------------
# expect() and constructors
# ----------------------------------------------------------------------
def test_expect_passes_matching_type():
    message = protocol.ack()
    assert expect(message, "ack") is message
    assert expect(message, "lease", "ack") is message


def test_expect_raises_on_mismatch_and_eof():
    with pytest.raises(ProtocolError):
        expect(protocol.ack(), "lease")
    with pytest.raises(ProtocolError):
        expect(None, "ack")


def test_constructors_are_json_safe():
    messages = [
        protocol.hello("w", "s", 1),
        protocol.welcome("c", 30.0, 1.0),
        protocol.reject("nope"),
        protocol.request("w"),
        protocol.lease("h" * 64, {"kind": "x"}, 3, 2, 30.0,
                       fault=("crash", None)),
        protocol.wait(0.2),
        protocol.drain(),
        protocol.heartbeat("w", "h" * 64),
        protocol.result("w", "h" * 64, 1, "ok", 0.5,
                        summary={"cycles": 9}, metrics={"m": 1}),
        protocol.result("w", "h" * 64, 2, "failed", 0.1,
                        error="boom", transient=True),
        protocol.ack(),
        protocol.goodbye("w", 4),
    ]
    for message in messages:
        round_tripped = json.loads(json.dumps(message, sort_keys=True))
        assert round_tripped == message
        assert isinstance(message["type"], str)


def test_lease_fault_serializes_as_list():
    lease = protocol.lease("h", {}, 0, 1, 5.0, fault=("hang", 2.0))
    assert lease["fault"] == ["hang", 2.0]
    assert "fault" not in protocol.lease("h", {}, 0, 1, 5.0)
