"""Energy model arithmetic and schedule-level energy shapes."""

import pytest

from repro.algorithms import make_algorithm
from repro.bench import run_single
from repro.graph import powerlaw_graph
from repro.sim import GPUConfig
from repro.sim.energy import EnergyBreakdown, EnergyModel, estimate_energy
from repro.sim.instructions import Op
from repro.sim.stats import CacheStats, KernelStats

CFG = GPUConfig.vortex_bench()
GRAPH = powerlaw_graph(600, 3600, exponent=1.9, seed=13)


def synthetic_stats():
    s = KernelStats(total_cycles=1000)
    s.op_counts[Op.ALU] = 100
    s.op_counts[Op.LOAD] = 50
    s.op_counts[Op.SHMEM_LOAD] = 10
    s.op_counts[Op.ATOMIC] = 5
    s.cache["L1"] = CacheStats(hits=40, misses=10)
    s.cache["L2"] = CacheStats(hits=6, misses=4)
    s.dram_accesses = 4
    return s


def test_component_arithmetic():
    m = EnergyModel()
    e = m.estimate(synthetic_stats())
    assert e.picojoules["alu"] == 100 * m.alu_pj
    assert e.picojoules["shared"] == 10 * m.shmem_pj
    assert e.picojoules["atomic"] == 5 * m.atomic_extra_pj
    assert e.picojoules["cache"] == 50 * m.l1_pj + 10 * m.l2_pj
    assert e.picojoules["dram"] == 4 * m.dram_pj
    assert e.picojoules["static"] == 1000 * m.static_pj_per_cycle
    assert e.total_pj == sum(e.picojoules.values())
    assert e.total_nj == pytest.approx(e.total_pj / 1000)


def test_counters_cost_nothing():
    s = KernelStats()
    s.op_counts[Op.COUNTER] = 1_000_000
    assert estimate_energy(s).picojoules["issue"] == 0.0


def test_empty_breakdown():
    e = EnergyBreakdown()
    assert e.total_pj == 0.0
    assert e.dominant() == "none"


def test_summary_mentions_total():
    e = estimate_energy(synthetic_stats())
    assert "total=" in e.summary()


def run_energy(schedule):
    stats = run_single(
        make_algorithm("pagerank", iterations=2), GRAPH, schedule,
        config=CFG,
    ).stats
    return estimate_energy(stats)


def test_memory_bound_runs_are_dram_dominated():
    e = run_energy("vertex_map")
    assert e.dominant() in ("dram", "static")
    assert e.picojoules["dram"] > e.picojoules["alu"]


def test_sparseweaver_saves_energy_over_vm_on_skew():
    """Fewer instructions and no redundant edge reads: the balanced
    hardware schedule wins on energy too."""
    vm = run_energy("vertex_map")
    sw = run_energy("sparseweaver")
    assert sw.total_pj < vm.total_pj


def test_edge_map_pays_dram_energy():
    """S_em's 2|E| traffic shows up as extra DRAM energy vs SW."""
    em = run_energy("edge_map")
    sw = run_energy("sparseweaver")
    assert em.picojoules["dram"] > sw.picojoules["dram"]


def test_custom_model_scales():
    s = synthetic_stats()
    cheap = EnergyModel(dram_pj=1.0).estimate(s)
    pricey = EnergyModel(dram_pj=10_000.0).estimate(s)
    assert pricey.picojoules["dram"] == 10_000 * cheap.picojoules["dram"]
