"""EGHW unit: record generation, serial timeline, batch protocol."""

import numpy as np
import pytest

from repro.core.eghw import EGHWUnit
from repro.errors import SimulationError
from repro.graph import from_edge_list
from repro.sim import GPUConfig, CacheConfig, MemoryMap
from repro.sim.config import KB
from repro.sim.instructions import Op
from repro.sim.memory import MemoryHierarchy


def make_unit(graph, lanes=4, mlp=4):
    cfg = GPUConfig(
        num_sockets=1, cores_per_socket=1, warps_per_core=2,
        threads_per_warp=lanes,
        l1=CacheConfig(1 * KB, ways=2), l2=CacheConfig(4 * KB, ways=4),
        eghw_mlp=mlp,
    )
    mem = MemoryHierarchy(cfg)
    mm = MemoryMap()
    regions = {
        "row_ptr": mm.alloc_like("row_ptr", graph.row_ptr),
        "col": mm.alloc_like("col", graph.col_idx),
        "w": mm.alloc_like("w", graph.weights),
    }
    unit = EGHWUnit(0, cfg, mem, regions["row_ptr"], regions["col"],
                    regions["w"], graph.row_ptr, graph.col_idx,
                    graph.weights)
    return unit


@pytest.fixture
def small_graph():
    return from_edge_list(
        [(0, 1, 2.0), (0, 2, 3.0), (1, 2, 1.0), (2, 0, 5.0)],
        num_vertices=3,
    )


def test_push_then_fetch_returns_records(small_graph):
    u = make_unit(small_graph)
    u.handle(Op.EGHW_PUSH, 0, 1, [0, 1, 2])
    done, batch = u.handle(Op.EGHW_FETCH, 0, 10, None)
    assert batch.vids.tolist() == [0, 0, 1, 2]
    assert batch.eids.tolist() == [0, 1, 2, 3]
    assert batch.others.tolist() == [1, 2, 2, 0]
    assert batch.weights.tolist() == [2.0, 3.0, 1.0, 5.0]
    assert done > 10  # serial memory time elapsed


def test_fetch_drains_then_empty(small_graph):
    u = make_unit(small_graph)
    u.handle(Op.EGHW_PUSH, 0, 1, [0, 1, 2])
    u.handle(Op.EGHW_FETCH, 0, 10, None)
    _, empty = u.handle(Op.EGHW_FETCH, 0, 2000, None)
    assert empty.exhausted
    assert u.drained


def test_zero_degree_vertices_produce_nothing(small_graph):
    u = make_unit(small_graph)
    u.handle(Op.EGHW_PUSH, 0, 1, [1])
    _, batch = u.handle(Op.EGHW_FETCH, 0, 10, None)
    assert batch.vids.tolist() == [1, -1, -1, -1]


def test_partial_batches_across_fetches(small_graph):
    u = make_unit(small_graph, lanes=2)
    u.handle(Op.EGHW_PUSH, 0, 1, [0, 1, 2])
    _, b1 = u.handle(Op.EGHW_FETCH, 0, 10, None)
    _, b2 = u.handle(Op.EGHW_FETCH, 0, 2000, None)
    seen = b1.eids[b1.mask].tolist() + b2.eids[b2.mask].tolist()
    assert sorted(seen) == [0, 1, 2, 3]


def test_serial_timeline_slower_than_mlp(small_graph):
    slow = make_unit(small_graph, mlp=1)
    fast = make_unit(small_graph, mlp=8)
    for u in (slow, fast):
        u.handle(Op.EGHW_PUSH, 0, 1, [0, 1, 2])
    done_slow, _ = slow.handle(Op.EGHW_FETCH, 0, 10, None)
    done_fast, _ = fast.handle(Op.EGHW_FETCH, 0, 10, None)
    assert done_slow > done_fast


def test_edges_generated_counter(small_graph):
    u = make_unit(small_graph)
    u.handle(Op.EGHW_PUSH, 0, 1, [0, 1, 2])
    u.handle(Op.EGHW_FETCH, 0, 10, None)
    assert u.edges_generated == 4


def test_incremental_pushes_append(small_graph):
    u = make_unit(small_graph, lanes=2)
    u.handle(Op.EGHW_PUSH, 0, 1, [0])
    u.handle(Op.EGHW_PUSH, 0, 2, [2])
    _, b1 = u.handle(Op.EGHW_FETCH, 0, 10, None)
    _, b2 = u.handle(Op.EGHW_FETCH, 0, 3000, None)
    seen = b1.eids[b1.mask].tolist() + b2.eids[b2.mask].tolist()
    assert sorted(seen) == [0, 1, 3]


def test_reset_clears_state(small_graph):
    u = make_unit(small_graph)
    u.handle(Op.EGHW_PUSH, 0, 1, [0])
    u.reset()
    assert u.drained
    _, batch = u.handle(Op.EGHW_FETCH, 0, 10, None)
    assert batch.exhausted


def test_unknown_op_rejected(small_graph):
    u = make_unit(small_graph)
    with pytest.raises(SimulationError):
        u.handle(Op.WEAVER_REG, 0, 1, None)
