"""ST and DT table semantics."""

import numpy as np
import pytest

from repro.core import DenseWorkIDTable, SparseWorkloadTable, STEntry
from repro.errors import WeaverError


def test_st_register_and_scan_in_index_order():
    st = SparseWorkloadTable(8)
    st.register(4, vid=40, loc=400, degree=4)
    st.register(1, vid=10, loc=100, degree=1)
    scanned = [e.vid for e in st.scan()]
    assert scanned == [10, 40]  # index order, not arrival order


def test_st_skips_unregistered_slots():
    st = SparseWorkloadTable(4)
    st.register(2, vid=5, loc=0, degree=2)
    assert len(st) == 1
    assert [e.vid for e in st.scan()] == [5]


def test_st_total_degree():
    st = SparseWorkloadTable(4)
    st.register(0, 0, 0, 3)
    st.register(1, 1, 3, 5)
    assert st.total_degree() == 8


def test_st_clear():
    st = SparseWorkloadTable(4)
    st.register(0, 0, 0, 3)
    st.clear()
    assert len(st) == 0
    assert list(st.scan()) == []


def test_st_capacity_overflow():
    st = SparseWorkloadTable(2)
    with pytest.raises(WeaverError):
        st.register(2, 0, 0, 0)


def test_st_double_registration_rejected():
    st = SparseWorkloadTable(2)
    st.register(0, 0, 0, 1)
    with pytest.raises(WeaverError):
        st.register(0, 1, 1, 1)


def test_st_entry_validation():
    with pytest.raises(WeaverError):
        STEntry(0, 0, -1)
    with pytest.raises(WeaverError):
        STEntry(0, -1, 1)
    with pytest.raises(WeaverError):
        SparseWorkloadTable(0)


def test_st_write_counter():
    st = SparseWorkloadTable(4)
    st.register(0, 0, 0, 1)
    st.register(1, 1, 1, 1)
    assert st.writes == 2


def test_dt_write_read_roundtrip():
    dt = DenseWorkIDTable(num_warps=2, lanes=4)
    row = np.array([2, 10, 11, 30])
    dt.write(1, row)
    assert dt.read(1).tolist() == [2, 10, 11, 30]


def test_dt_read_before_write_rejected():
    dt = DenseWorkIDTable(2, 4)
    with pytest.raises(WeaverError):
        dt.read(0)


def test_dt_wrong_lane_count_rejected():
    dt = DenseWorkIDTable(2, 4)
    with pytest.raises(WeaverError):
        dt.write(0, np.array([1, 2]))


def test_dt_bad_warp_rejected():
    dt = DenseWorkIDTable(2, 4)
    with pytest.raises(WeaverError):
        dt.write(5, np.zeros(4, dtype=np.int64))


def test_dt_row_is_copied():
    dt = DenseWorkIDTable(1, 2)
    row = np.array([1, 2])
    dt.write(0, row)
    row[0] = 99
    assert dt.read(0).tolist() == [1, 2]


def test_dt_clear():
    dt = DenseWorkIDTable(1, 2)
    dt.write(0, np.array([1, 2]))
    dt.clear()
    with pytest.raises(WeaverError):
        dt.read(0)
