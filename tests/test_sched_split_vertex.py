"""Tigr-style split-vertex schedule: correctness and balancing shape."""

import numpy as np
import pytest

from repro.algorithms import make_algorithm
from repro.errors import ScheduleError
from repro.frontend import GraphProcessor, reference
from repro.graph import powerlaw_graph, star_graph
from repro.sched import SplitVertexMapSchedule, make_schedule
from repro.sim import GPUConfig

CFG = GPUConfig.vortex_tiny()
GRAPH = powerlaw_graph(150, 700, exponent=2.0, seed=31).undirected()


def test_registered_under_aliases():
    assert make_schedule("tigr").name == "split_vertex_map"
    assert make_schedule("split_vertex_map").name == "split_vertex_map"


def test_invalid_max_degree():
    with pytest.raises(ScheduleError):
        SplitVertexMapSchedule(max_degree=0)


@pytest.mark.parametrize("alg_name,kwargs,ref_fn", [
    ("pagerank", {"iterations": 3},
     lambda g: reference.pagerank(g, iterations=3)),
    ("bfs", {"source": 0}, lambda g: reference.bfs_levels(g, 0)),
    ("sssp", {"source": 0}, lambda g: reference.sssp(g, 0)),
    ("cc", {}, lambda g: reference.connected_components(g)),
])
def test_split_schedule_correct(alg_name, kwargs, ref_fn):
    res = GraphProcessor(
        make_algorithm(alg_name, **kwargs),
        schedule="split_vertex_map", config=CFG,
    ).run(GRAPH)
    ref = np.asarray(ref_fn(GRAPH), dtype=float)
    np.testing.assert_allclose(res.values.astype(float), ref, atol=1e-9)


@pytest.mark.parametrize("max_degree", [1, 3, 8, 64])
def test_split_widths_all_correct(max_degree):
    res = GraphProcessor(
        make_algorithm("pagerank", iterations=2),
        schedule=SplitVertexMapSchedule(max_degree=max_degree),
        config=CFG,
    ).run(GRAPH)
    ref = reference.pagerank(GRAPH, iterations=2)
    np.testing.assert_allclose(res.values, ref, atol=1e-9)


def test_split_bounds_warp_rounds_on_star():
    """A 200-leaf hub: plain vm pays ~200 rounds in one warp; splitting
    at degree 8 caps the rounds and lands between vm and SparseWeaver."""
    star = star_graph(200)
    cfg = GPUConfig.vortex_bench()

    def cycles(schedule):
        return GraphProcessor(
            make_algorithm("pagerank", iterations=2), schedule=schedule,
            config=cfg,
        ).run(star).stats.total_cycles

    vm = cycles("vertex_map")
    split = cycles(SplitVertexMapSchedule(max_degree=8))
    sw = cycles("sparseweaver")
    assert sw < split < vm


def test_smaller_splits_fewer_rounds():
    star = star_graph(100)
    cfg = GPUConfig.vortex_bench()

    def rounds(max_degree):
        return GraphProcessor(
            make_algorithm("pagerank", iterations=1),
            schedule=SplitVertexMapSchedule(max_degree=max_degree),
            config=cfg, time_init=False, time_apply=False,
        ).run(star).stats.warp_iterations

    assert rounds(4) < rounds(16) < rounds(101)


def test_split_uses_atomics_even_in_pull():
    """Splits of one hub share an accumulator, so unlike plain vm the
    split schedule must pay atomics."""
    from repro.sim.instructions import Op

    run = GraphProcessor(
        make_algorithm("pagerank", iterations=1),
        schedule=SplitVertexMapSchedule(max_degree=4), config=CFG,
        time_init=False, time_apply=False,
    ).run(star_graph(40))
    assert run.stats.op_counts.get(Op.ATOMIC, 0) > 0
