"""Dashboard follower/renderer, report aggregation, tail/report CLI."""

import io
import json
import threading
import time

import pytest

from repro.cli import main
from repro.errors import ReproError
from repro.obs.dashboard import BatchWatch, JSONLFollower, render, tail
from repro.obs.report import aggregate, classify_file, format_report


def write_jsonl(path, records):
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")


TELEMETRY = [
    {"kind": "submitted", "job": "aaa", "label": "pr/g/vm", "time": 10.0},
    {"kind": "submitted", "job": "bbb", "label": "pr/g/wm", "time": 10.0},
    {"kind": "submitted", "job": "ccc", "label": "pr/g/sw", "time": 10.0},
    {"kind": "cached", "job": "ccc", "label": "pr/g/sw", "time": 10.1,
     "cycles": 500},
    {"kind": "started", "job": "aaa", "label": "pr/g/vm", "time": 10.2},
    {"kind": "started", "job": "bbb", "label": "pr/g/wm", "time": 10.2},
    {"kind": "finished", "job": "aaa", "label": "pr/g/vm", "time": 11.0,
     "cycles": 1000, "wall": 0.8},
    {"kind": "failed", "job": "bbb", "label": "pr/g/wm", "time": 11.5,
     "error": "SimulationError: boom"},
    {"kind": "batch_summary", "time": 11.6,
     "cache": {"entries": 2, "hits": 1, "misses": 2, "stores": 1,
               "evictions": 0, "dir": "/tmp/c"}},
]


# ----------------------------------------------------------------------
def test_follower_reads_incrementally(tmp_path):
    path = tmp_path / "events.jsonl"
    path.write_text('{"kind": "submitted", "job": "a"}\n')
    follower = JSONLFollower(path)
    assert [r["kind"] for r in follower.poll()] == ["submitted"]
    assert follower.poll() == []  # nothing new

    with open(path, "a") as handle:
        handle.write('{"kind": "started", "job": "a"}\n{"kind": "fin')
    assert [r["kind"] for r in follower.poll()] == ["started"]
    with open(path, "a") as handle:  # complete the partial line
        handle.write('ished", "job": "a"}\n')
    assert [r["kind"] for r in follower.poll()] == ["finished"]
    assert follower.bad_lines == 0


def test_follower_handles_truncation_and_garbage(tmp_path):
    path = tmp_path / "events.jsonl"
    write_jsonl(path, TELEMETRY[:4])
    follower = JSONLFollower(path)
    assert len(follower.poll()) == 4
    path.write_text('not json\n{"kind": "submitted", "job": "x"}\n')
    records = follower.poll()  # reset to top after shrink
    assert [r["kind"] for r in records] == ["submitted"]
    assert follower.bad_lines == 1


def test_follower_missing_file(tmp_path):
    assert JSONLFollower(tmp_path / "absent.jsonl").poll() == []


# ----------------------------------------------------------------------
def test_batchwatch_snapshot():
    watch = BatchWatch()
    watch.update_all(TELEMETRY)
    snap = watch.snapshot()
    assert snap["jobs_total"] == 3
    assert snap["done"] == 2 and snap["failed"] == 1
    assert snap["cached"] == 1 and snap["running"] == 0
    assert snap["simulated_cycles"] == 1500
    assert snap["finished"] is True
    assert snap["cache_hit_rate"] == pytest.approx(1 / 3, abs=1e-4)
    assert watch.failures[0]["label"] == "pr/g/wm"


def test_render_frame():
    watch = BatchWatch()
    watch.update_all(TELEMETRY)
    frame = render(watch, clock=0.0)
    assert "3 total" in frame
    assert "100%" in frame
    assert "1,500 simulated" in frame
    assert "pr/g/wm failed: SimulationError: boom" in frame
    assert "2 entries" in frame


def test_tail_once_reads_static_file(tmp_path):
    path = tmp_path / "events.jsonl"
    write_jsonl(path, TELEMETRY)
    out = io.StringIO()
    watch = tail(path, follow=False, out=out)
    assert watch.finished
    assert "3 total" in out.getvalue()


def test_tail_follows_growing_file(tmp_path):
    """The dashboard keeps up with a writer appending concurrently."""
    path = tmp_path / "events.jsonl"
    write_jsonl(path, TELEMETRY[:2])

    def writer():
        for record in TELEMETRY[2:]:
            time.sleep(0.02)
            with open(path, "a") as handle:
                handle.write(json.dumps(record) + "\n")

    thread = threading.Thread(target=writer)
    thread.start()
    out = io.StringIO()
    watch = tail(path, follow=True, interval=0.01, max_frames=500,
                 out=out, use_ansi=False)
    thread.join()
    # Exited because batch_summary arrived, having seen every record.
    assert watch.finished
    assert watch.snapshot()["jobs_total"] == 3
    assert out.getvalue().count("batch telemetry") >= 2


def test_tail_stops_at_max_frames(tmp_path):
    path = tmp_path / "events.jsonl"
    write_jsonl(path, TELEMETRY[:3])  # no batch_summary => never "done"
    watch = tail(path, follow=True, interval=0.001, max_frames=3,
                 out=io.StringIO(), use_ansi=False)
    assert not watch.finished


# ----------------------------------------------------------------------
def test_classify_file(tmp_path):
    events = tmp_path / "events.jsonl"
    write_jsonl(events, TELEMETRY)
    kind, records = classify_file(events)
    assert kind == "telemetry" and len(records) == len(TELEMETRY)

    metrics = tmp_path / "metrics.json"
    metrics.write_text(json.dumps(
        {"metrics": {"c": {"kind": "counter", "help": "",
                           "series": [{"labels": {}, "value": 2.0}]}}}))
    kind, snap = classify_file(metrics)
    assert kind == "metrics" and "c" in snap["metrics"]

    garbage = tmp_path / "garbage.txt"
    garbage.write_text("definitely not json\n")
    with pytest.raises(ReproError):
        classify_file(garbage)
    with pytest.raises(ReproError):
        classify_file(tmp_path / "missing.jsonl")


def test_aggregate_telemetry_and_metrics(tmp_path):
    events = tmp_path / "events.jsonl"
    write_jsonl(events, TELEMETRY)
    metrics = tmp_path / "metrics.json"
    metrics.write_text(json.dumps(
        {"metrics": {"sim_cycles_total": {
            "kind": "counter", "help": "",
            "series": [{"labels": {}, "value": 1500.0}]}}}))

    report = aggregate([events, metrics])
    assert report["jobs_total"] == 3
    assert report["failed"] == 1
    assert report["simulated_cycles"] == 1500
    assert [f["kind"] for f in report["files"]] == ["telemetry", "metrics"]
    assert report["metrics"]["sim_cycles_total"]["series"][0]["value"] == 1500
    assert report["failures"] == [
        {"label": "pr/g/wm", "error": "SimulationError: boom"}]

    text = format_report(report)
    assert "3 total" in text and "1 failed" in text
    assert "sim_cycles_total = 1500" in text


def test_aggregate_merges_two_sinks(tmp_path):
    a = tmp_path / "a.jsonl"
    b = tmp_path / "b.jsonl"
    write_jsonl(a, TELEMETRY[:4])
    write_jsonl(b, TELEMETRY[4:])
    report = aggregate([a, b])
    assert report["jobs_total"] == 3
    assert report["done"] == 2 and report["failed"] == 1


# ----------------------------------------------------------------------
def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


def test_cli_tail_once(capsys, tmp_path):
    path = tmp_path / "events.jsonl"
    write_jsonl(path, TELEMETRY)
    code, out = run_cli(capsys, "tail", str(path), "--once", "--json")
    assert code == 1  # one failed job
    assert "batch telemetry" in out
    last = out.strip().splitlines()[-1]
    assert json.loads(last)["jobs_total"] == 3


def test_cli_report(capsys, tmp_path):
    path = tmp_path / "events.jsonl"
    write_jsonl(path, [r for r in TELEMETRY if r["kind"] != "failed"])
    code, out = run_cli(capsys, "report", str(path))
    assert code == 0
    assert "observability report" in out
    code, out = run_cli(capsys, "report", str(path), "--json")
    assert code == 0
    assert json.loads(out)["done"] == 2


# ---------------------------------------------------- resumed/skipped
RESUME_TELEMETRY = [
    {"kind": "submitted", "job": "aaa", "label": "pr/g/vm", "time": 10.0},
    {"kind": "submitted", "job": "bbb", "label": "pr/g/wm", "time": 10.0},
    {"kind": "submitted", "job": "ccc", "label": "pr/g/sw", "time": 10.0},
    {"kind": "resumed", "job": "aaa", "label": "pr/g/vm", "time": 10.1,
     "cycles": 700},
    {"kind": "started", "job": "bbb", "label": "pr/g/wm", "time": 10.2},
    {"kind": "failed", "job": "bbb", "label": "pr/g/wm", "time": 10.5,
     "error": "FatalError: injected"},
    {"kind": "skipped", "job": "ccc", "label": "pr/g/sw", "time": 10.5},
    {"kind": "batch_summary", "time": 10.6,
     "cache": {"entries": 1, "hits": 0, "misses": 1, "stores": 1,
               "evictions": 0, "quarantined": 2, "dir": "/tmp/c"}},
]


def test_batchwatch_counts_resumed_and_skipped():
    watch = BatchWatch()
    watch.update_all(RESUME_TELEMETRY)
    snap = watch.snapshot()
    assert snap["jobs_total"] == 3
    assert snap["done"] == 1  # the resumed job is terminal
    assert snap["resumed"] == 1
    assert snap["skipped"] == 1
    assert snap["failed"] == 1
    assert snap["simulated_cycles"] == 700
    # Resumed jobs count as hits: 1 resumed vs 1 started.
    assert snap["cache_hit_rate"] == pytest.approx(0.5, abs=1e-4)


def test_render_shows_resumed_skipped_quarantined():
    watch = BatchWatch()
    watch.update_all(RESUME_TELEMETRY)
    frame = render(watch, clock=0.0)
    assert "1 resumed" in frame
    assert "1 skipped" in frame
    assert "2 quarantined" in frame


def test_report_shows_resumed_and_quarantined(tmp_path):
    path = tmp_path / "events.jsonl"
    write_jsonl(path, RESUME_TELEMETRY)
    report = aggregate([path])
    assert report["resumed"] == 1
    assert report["skipped"] == 1
    text = format_report(report)
    assert "1 resumed" in text
    assert "2 quarantined" in text


# ------------------------------------------------- crash-safe appends
def test_killed_writer_never_leaves_a_torn_line(tmp_path):
    """Regression: SIGKILL a process mid-stream; every line in the
    sink must still parse (single-write O_APPEND emission)."""
    import os
    import signal
    import subprocess
    import sys
    from pathlib import Path

    path = tmp_path / "events.jsonl"
    repo_root = Path(__file__).resolve().parents[1]
    child = subprocess.Popen(
        [sys.executable, "-c", (
            "import sys\n"
            "from repro.runtime.telemetry import Telemetry\n"
            "t = Telemetry(sys.argv[1])\n"
            "i = 0\n"
            "while True:\n"
            "    t.emit('started', None, seq=i, pad='x' * 200)\n"
            "    i += 1\n"
        ), str(path)],
        env=dict(os.environ, PYTHONPATH=str(repo_root / "src")),
    )
    try:
        deadline = time.time() + 60
        while time.time() < deadline:
            if path.exists() and path.stat().st_size > 20_000:
                break
            time.sleep(0.01)
        assert path.exists() and path.stat().st_size > 0
    finally:
        child.kill()  # SIGKILL: no cleanup, no flush handlers
        child.wait(timeout=60)

    follower = JSONLFollower(path)
    records = follower.poll()
    assert follower.bad_lines == 0  # no torn lines, ever
    assert records
    assert [r["seq"] for r in records] == list(range(len(records)))
    assert path.read_text().endswith("\n")


# ---------------------------------------------------------------- fleet
FLEET_TELEMETRY = [
    {"kind": "worker_joined", "job": "", "label": "", "time": 0.0,
     "worker": "w0", "addr": "127.0.0.1:50001"},
    {"kind": "worker_joined", "job": "", "label": "", "time": 0.1,
     "worker": "w1", "addr": "127.0.0.1:50002"},
    {"kind": "started", "job": "aaa", "label": "j1", "time": 0.2,
     "worker": "w0"},
    {"kind": "lease_result", "job": "aaa", "label": "j1", "time": 1.2,
     "worker": "w0", "status": "ok", "wall": 1.0},
    {"kind": "finished", "job": "aaa", "label": "j1", "time": 1.2,
     "cycles": 100, "wall": 1.0},
    {"kind": "started", "job": "bbb", "label": "j2", "time": 0.3,
     "worker": "w1"},
    {"kind": "lease_expired", "job": "bbb", "label": "j2", "time": 2.0,
     "worker": "w1", "reason": "expired"},
    {"kind": "lease_reclaimed", "job": "bbb", "label": "j2",
     "time": 2.0, "worker": "w1", "reason": "disconnect"},
    {"kind": "started", "job": "bbb", "label": "j2", "time": 2.1,
     "worker": "w0"},
    {"kind": "lease_result", "job": "bbb", "label": "j2", "time": 3.0,
     "worker": "w0", "status": "ok", "wall": 0.9},
    {"kind": "finished", "job": "bbb", "label": "j2", "time": 3.0,
     "cycles": 200, "wall": 0.9},
    {"kind": "lease_result", "job": "ccc", "label": "j3", "time": 3.1,
     "worker": "w1", "status": "stale", "wall": 0.1},
    {"kind": "worker_left", "job": "", "label": "", "time": 3.2,
     "worker": "w0", "jobs": 2},
]


def test_batchwatch_folds_fleet_kinds():
    watch = BatchWatch()
    watch.update_all(FLEET_TELEMETRY)
    snap = watch.snapshot()
    assert snap["workers_seen"] == 2
    assert snap["workers_alive"] == 1  # w0 left, w1 still connected
    assert snap["leases_expired"] == 1
    assert snap["leases_reclaimed"] == 1

    fleet = watch.fleet()
    assert list(fleet) == ["w0", "w1"]
    assert fleet["w0"]["jobs_done"] == 2
    assert fleet["w0"]["leases"] == 2
    assert fleet["w0"]["alive"] is False
    assert fleet["w0"]["busy_seconds"] == pytest.approx(1.9)
    # elapsed is 3.2s of telemetry time: 2 jobs / 3.2s
    assert fleet["w0"]["jobs_per_second"] == pytest.approx(0.625)
    # A stale result counts as neither done nor failed.
    assert fleet["w1"]["jobs_done"] == 0
    assert fleet["w1"]["jobs_failed"] == 0
    assert fleet["w1"]["alive"] is True


def test_render_shows_fleet_section():
    watch = BatchWatch()
    watch.update_all(FLEET_TELEMETRY)
    frame = render(watch, clock=0.0)
    assert "1/2 workers alive" in frame
    assert "1 leases expired" in frame
    assert "1 reclaimed" in frame
    assert "w0: gone 2 done" in frame
    assert "w1: up" in frame


def test_report_includes_fleet_section(tmp_path):
    path = tmp_path / "fleet.jsonl"
    write_jsonl(path, FLEET_TELEMETRY)
    report = aggregate([path])
    assert report["workers_seen"] == 2
    assert report["fleet"]["w0"]["jobs_done"] == 2
    text = format_report(report)
    assert "fleet   : 1/2 workers alive" in text
    assert "w0: 2 done" in text
