"""Hybrid ELL/CSR format and the ELL+SparseWeaver schedule."""

import numpy as np
import pytest

from repro.algorithms import make_algorithm
from repro.errors import GraphError
from repro.frontend import GraphProcessor, reference
from repro.graph import chain_graph, powerlaw_graph, star_graph
from repro.graph.ell import hybrid_covers_all_edges, to_hybrid_ell
from repro.sched import HybridELLSchedule, make_schedule
from repro.sim import GPUConfig

CFG = GPUConfig.vortex_tiny()
GRAPH = powerlaw_graph(150, 700, exponent=2.0, seed=29).undirected()


# ----------------------------------------------------------------------
# Format split
# ----------------------------------------------------------------------
def test_split_covers_all_edges():
    hybrid = to_hybrid_ell(GRAPH, width=4)
    assert hybrid_covers_all_edges(hybrid)
    assert hybrid.ell_edges + hybrid.residue_edges == GRAPH.num_edges


def test_default_width_is_mean_degree():
    hybrid = to_hybrid_ell(GRAPH)
    avg = GRAPH.num_edges / GRAPH.num_vertices
    assert hybrid.width == int(np.ceil(avg))


def test_wide_slab_empties_residue():
    hybrid = to_hybrid_ell(GRAPH, width=int(GRAPH.degrees.max()))
    assert hybrid.residue_edges == 0
    assert hybrid.coverage() == 1.0


def test_narrow_slab_pushes_hubs_to_residue():
    star = star_graph(50)
    hybrid = to_hybrid_ell(star, width=1)
    assert hybrid.residue_edges == 49        # hub tail
    assert hybrid.residue.degree(0) == 49


def test_chain_fits_entirely_in_slab():
    hybrid = to_hybrid_ell(chain_graph(10), width=2)
    assert hybrid.residue_edges == 0


def test_invalid_width():
    with pytest.raises(GraphError):
        to_hybrid_ell(GRAPH, width=0)


def test_ell_is_column_major_padded():
    hybrid = to_hybrid_ell(star_graph(3), width=2)
    # leaves have degree 1: row 1 of their columns is padding
    assert (hybrid.ell_cols[1, 1:] == -1).all()


# ----------------------------------------------------------------------
# Schedule
# ----------------------------------------------------------------------
def test_registered():
    assert make_schedule("ell").name == "hybrid_ell"


@pytest.mark.parametrize("alg_name,kwargs,ref_fn", [
    ("pagerank", {"iterations": 3},
     lambda g: reference.pagerank(g, iterations=3)),
    ("bfs", {"source": 0}, lambda g: reference.bfs_levels(g, 0)),
    ("sssp", {"source": 0}, lambda g: reference.sssp(g, 0)),
    ("cc", {}, lambda g: reference.connected_components(g)),
])
def test_hybrid_correct(alg_name, kwargs, ref_fn):
    res = GraphProcessor(
        make_algorithm(alg_name, **kwargs), schedule="hybrid_ell",
        config=CFG,
    ).run(GRAPH)
    ref = np.asarray(ref_fn(GRAPH), dtype=float)
    np.testing.assert_allclose(res.values.astype(float), ref, atol=1e-9)


@pytest.mark.parametrize("width", [1, 3, 10])
def test_hybrid_widths_all_correct(width):
    res = GraphProcessor(
        make_algorithm("pagerank", iterations=2),
        schedule=HybridELLSchedule(width=width), config=CFG,
    ).run(GRAPH)
    ref = reference.pagerank(GRAPH, iterations=2)
    np.testing.assert_allclose(res.values, ref, atol=1e-9)


def test_hybrid_beats_vm_on_skew():
    g = powerlaw_graph(800, 4800, exponent=1.9, seed=3)
    cfg = GPUConfig.vortex_bench()

    def cycles(schedule):
        return GraphProcessor(
            make_algorithm("pagerank", iterations=2), schedule=schedule,
            config=cfg,
        ).run(g).stats.total_cycles

    assert cycles("hybrid_ell") < cycles("vertex_map") / 2


def test_hybrid_weaves_only_the_tail():
    """The Weaver's decode traffic covers just the residue, not |E|."""
    g = powerlaw_graph(400, 2400, exponent=1.9, seed=6)
    cfg = GPUConfig.vortex_bench()
    hybrid_run = GraphProcessor(
        make_algorithm("pagerank", iterations=1),
        schedule="hybrid_ell", config=cfg,
        time_init=False, time_apply=False,
    ).run(g)
    sw_run = GraphProcessor(
        make_algorithm("pagerank", iterations=1),
        schedule="sparseweaver", config=cfg,
        time_init=False, time_apply=False,
    ).run(g)
    from repro.sim.instructions import Op

    assert (hybrid_run.stats.op_counts[Op.WEAVER_DEC_ID]
            < sw_run.stats.op_counts[Op.WEAVER_DEC_ID])
