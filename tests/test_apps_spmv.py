"""SpMV on the graph machinery: dense/scipy oracles, all schedules."""

import numpy as np
import pytest

from repro.apps.spmv import (
    matrix_from_dense,
    run_spmv,
    spmv_reference,
)
from repro.errors import AlgorithmError
from repro.graph import powerlaw_graph
from repro.sched import EXTENDED_SCHEDULES
from repro.sim import GPUConfig

CFG = GPUConfig.vortex_tiny()


@pytest.fixture
def small_matrix(rng):
    dense = rng.normal(size=(24, 24))
    dense[np.abs(dense) < 0.8] = 0.0  # sparsify
    return dense, matrix_from_dense(dense)


def test_matrix_from_dense_structure(small_matrix):
    dense, matrix = small_matrix
    assert matrix.num_vertices == 24
    assert matrix.num_edges == np.count_nonzero(dense)


def test_matrix_from_dense_validation():
    with pytest.raises(AlgorithmError):
        matrix_from_dense(np.ones((2, 3)))
    with pytest.raises(AlgorithmError):
        matrix_from_dense(np.ones(4))


def test_keep_zeros_stores_everything():
    dense = np.zeros((3, 3))
    dense[0, 1] = 5.0
    assert matrix_from_dense(dense, keep_zeros=True).num_edges == 9


def test_reference_matches_numpy(small_matrix, rng):
    dense, matrix = small_matrix
    x = rng.normal(size=24)
    np.testing.assert_allclose(spmv_reference(matrix, x), dense @ x,
                               atol=1e-12)


def test_reference_matches_scipy(small_matrix, rng):
    scipy_sparse = pytest.importorskip("scipy.sparse")
    dense, matrix = small_matrix
    x = rng.normal(size=24)
    csr = scipy_sparse.csr_matrix(dense)
    np.testing.assert_allclose(spmv_reference(matrix, x), csr @ x,
                               atol=1e-12)


def test_reference_validates_x(small_matrix):
    _, matrix = small_matrix
    with pytest.raises(AlgorithmError):
        spmv_reference(matrix, np.ones(3))


@pytest.mark.parametrize("schedule", EXTENDED_SCHEDULES)
def test_spmv_all_schedules(small_matrix, rng, schedule):
    dense, matrix = small_matrix
    x = rng.normal(size=24)
    result = run_spmv(matrix, x, schedule=schedule, config=CFG)
    np.testing.assert_allclose(result.values, dense @ x, atol=1e-9)


def test_spmv_row_skew_favors_weaver():
    """A power-law 'matrix' (heavy rows) is the classic SpMV imbalance
    case; the Weaver beats row-per-thread."""
    g = powerlaw_graph(600, 3600, exponent=1.9, seed=10)
    rng = np.random.default_rng(0)
    from repro.graph.builder import from_edge_arrays

    matrix = from_edge_arrays(
        g.edge_sources(), g.col_idx, g.num_vertices,
        weights=rng.uniform(0.1, 1.0, g.num_edges),
    )
    x = rng.normal(size=matrix.num_vertices)
    cfg = GPUConfig.vortex_bench()
    naive = run_spmv(matrix, x, schedule="vertex_map", config=cfg)
    weaver = run_spmv(matrix, x, schedule="sparseweaver", config=cfg)
    np.testing.assert_allclose(naive.values, weaver.values, atol=1e-9)
    assert weaver.total_cycles < naive.total_cycles


def test_spmv_empty_rows(rng):
    dense = np.zeros((6, 6))
    dense[0, 3] = 2.0
    matrix = matrix_from_dense(dense)
    x = np.ones(6)
    result = run_spmv(matrix, x, schedule="sparseweaver", config=CFG)
    np.testing.assert_allclose(result.values, dense @ x)
