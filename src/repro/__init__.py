"""SparseWeaver (HPCA 2025) reproduction.

A hardware/software co-designed graph-processing framework: the Weaver
unit converts sparse gather operations into dense, SIMD-friendly work
distribution. This package reproduces the paper's system on a
cycle-level Python simulator of a Vortex-like GPU.

Quickstart::

    from repro import GraphProcessor, make_algorithm, powerlaw_graph

    graph = powerlaw_graph(2_000, 12_000, seed=1)
    proc = GraphProcessor(make_algorithm("pagerank"), schedule="sparseweaver")
    result = proc.run(graph)
    print(result.values[:5], result.total_cycles)

Layers (see DESIGN.md for the full inventory):

* :mod:`repro.graph` — CSR storage, generators, dataset analogs.
* :mod:`repro.sim` — the cycle-level SIMT GPU simulator.
* :mod:`repro.core` — the Weaver FSM/tables/unit, ISA, EGHW, area model.
* :mod:`repro.sched` — scheduling schemes (software baselines + SW + EGHW).
* :mod:`repro.frontend` — UDF model and the GraphProcessor driver.
* :mod:`repro.algorithms` — PR, BFS, SSSP, CC, GCN.
* :mod:`repro.autotune` — the auto-tuner baseline of Table V.
* :mod:`repro.bench` — experiment runner and report formatting.
* :mod:`repro.runtime` — parallel batch engine, result cache, telemetry.
* :mod:`repro.figures` — the paper-figure registry and engine driver.
* :mod:`repro.dist` — the distributed coordinator/worker fleet.
"""

from repro.errors import (
    AlgorithmError,
    ConfigError,
    FatalError,
    GraphError,
    ReproError,
    ScheduleError,
    SimulationError,
    TransientError,
    WeaverError,
)
from repro.graph import (
    CSRGraph,
    dataset,
    dataset_names,
    from_edge_list,
    powerlaw_graph,
)
from repro.sim import (
    GPU,
    GPUConfig,
    KernelStats,
    SimulatorEngine,
    available_engines,
    get_engine,
)
from repro.core import WeaverAreaModel, WeaverFSM, WeaverUnit
from repro.sched import (ALL_SCHEDULES, EXTENDED_SCHEDULES,
                         SOFTWARE_SCHEDULES, make_schedule)
from repro.frontend import Algorithm, Direction, GraphProcessor, RunResult
from repro.algorithms import make_algorithm, algorithm_names
from repro.runtime import (
    AlgorithmSpec,
    BatchEngine,
    FaultPlan,
    GraphSpec,
    JobSpec,
    ResultCache,
    RunJournal,
    Telemetry,
)
from repro.bench import run_schedule_comparison, run_single
from repro.dist import Coordinator, Worker
from repro.figures import (
    FailureReport,
    Figure,
    FigureContext,
    FigureOutput,
    figure_names,
    list_figures,
    run_figure,
    run_figures,
    run_figures_report,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "GraphError",
    "ConfigError",
    "SimulationError",
    "WeaverError",
    "ScheduleError",
    "AlgorithmError",
    "TransientError",
    "FatalError",
    "CSRGraph",
    "from_edge_list",
    "powerlaw_graph",
    "dataset",
    "dataset_names",
    "GPU",
    "GPUConfig",
    "KernelStats",
    "SimulatorEngine",
    "get_engine",
    "available_engines",
    "WeaverFSM",
    "WeaverUnit",
    "WeaverAreaModel",
    "ALL_SCHEDULES",
    "EXTENDED_SCHEDULES",
    "SOFTWARE_SCHEDULES",
    "make_schedule",
    "Algorithm",
    "Direction",
    "GraphProcessor",
    "RunResult",
    "make_algorithm",
    "algorithm_names",
    "AlgorithmSpec",
    "BatchEngine",
    "FaultPlan",
    "GraphSpec",
    "JobSpec",
    "ResultCache",
    "RunJournal",
    "Telemetry",
    "run_single",
    "run_schedule_comparison",
    "Coordinator",
    "Worker",
    "FailureReport",
    "Figure",
    "FigureContext",
    "FigureOutput",
    "figure_names",
    "list_figures",
    "run_figure",
    "run_figures",
    "run_figures_report",
    "__version__",
]
