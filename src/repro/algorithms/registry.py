"""Algorithm registry: name -> UDF factory."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import AlgorithmError
from repro.frontend.udf import Algorithm
from repro.algorithms.bfs import bfs_algorithm
from repro.algorithms.cc import connected_components_algorithm
from repro.algorithms.pagerank import pagerank_algorithm
from repro.algorithms.sssp import sssp_algorithm

_FACTORIES: Dict[str, Callable[..., Algorithm]] = {
    "pagerank": pagerank_algorithm,
    "pr": pagerank_algorithm,
    "bfs": bfs_algorithm,
    "sssp": sssp_algorithm,
    "cc": connected_components_algorithm,
    "connected_components": connected_components_algorithm,
}


def algorithm_names() -> List[str]:
    """Canonical algorithm names (the paper's four benchmarks)."""
    return ["pagerank", "bfs", "sssp", "cc"]


def make_algorithm(name: str, **params) -> Algorithm:
    """Build an algorithm UDF by name with factory parameters."""
    key = name.lower()
    if key not in _FACTORIES:
        raise AlgorithmError(
            f"unknown algorithm {name!r}; known: {algorithm_names()}"
        )
    return _FACTORIES[key](**params)
