"""PageRank as a pull-direction UDF.

Each vertex gathers ``rank[u] / out_degree[u]`` from its in-neighbors
and applies the damped update. The paper notes PR has no filters and
touches every edge every iteration — the workload where balanced
scheduling pays off most uniformly (Section V-A).
"""

from __future__ import annotations

import numpy as np

from repro.errors import AlgorithmError
from repro.frontend.udf import Algorithm, Direction
from repro.graph.csr import CSRGraph


def pagerank_algorithm(
    damping: float = 0.85,
    iterations: int = 3,
    tol: float = 0.0,
    direction: str = "pull",
) -> Algorithm:
    """Build the PageRank UDF.

    Parameters
    ----------
    damping:
        The damping factor d of the PR update.
    iterations:
        Fixed iteration count (benchmarks use a small count; correctness
        tests use enough to converge).
    tol:
        Optional early stop on total rank movement; 0 disables it.
    direction:
        ``"pull"`` gathers over incoming edges into the base vertex;
        ``"push"`` scatters contributions along outgoing edges with
        atomics — the two sides of the Fig. 17 breakdown.
    """
    if not 0.0 < damping < 1.0:
        raise AlgorithmError(f"damping must be in (0, 1), got {damping}")
    if iterations < 1:
        raise AlgorithmError("iterations must be at least 1")
    if direction not in ("pull", "push"):
        raise AlgorithmError(
            f"direction must be 'pull' or 'push', got {direction!r}"
        )
    pull = direction == "pull"

    def init_state(graph: CSRGraph):
        n = graph.num_vertices
        out_deg = graph.degrees.astype(np.float64)
        safe_deg = np.where(out_deg > 0, out_deg, 1.0)
        rank = np.full(n, 1.0 / max(n, 1))
        return {
            "rank": rank,
            "contrib": rank / safe_deg,
            "acc": np.zeros(n),
            "_safe_deg": safe_deg,
            "_delta": np.zeros(1),
        }

    def edge_update(state, bases, others, weights, eids):
        if pull:
            # base = destination gathers from source (other)
            np.add.at(state["acc"], bases, state["contrib"][others])
        else:
            # base = source scatters to destination (other)
            np.add.at(state["acc"], others, state["contrib"][bases])

    def apply_update(state, graph: CSRGraph, iteration: int) -> int:
        n = graph.num_vertices
        new_rank = (1.0 - damping) / max(n, 1) + damping * state["acc"]
        state["_delta"][0] = np.abs(new_rank - state["rank"]).sum()
        state["rank"][:] = new_rank
        state["contrib"][:] = new_rank / state["_safe_deg"]
        state["acc"][:] = 0.0
        return n

    def converged(state, iteration: int, changed: int) -> bool:
        if tol > 0.0 and state["_delta"][0] < tol:
            return True
        return iteration + 1 >= iterations

    def no_filter(state, vids):
        # Push direction loads contrib[base] at registration; modeling
        # that load rides on the base-filter hook with a pass-all mask.
        return np.zeros(vids.size, dtype=bool)

    return Algorithm(
        name="pagerank" if pull else "pagerank-push",
        direction=Direction.PULL if pull else Direction.PUSH,
        init_state=init_state,
        edge_update=edge_update,
        apply_update=apply_update,
        converged=converged,
        result_array="rank",
        acc_array="acc",
        edge_value_arrays=("contrib",) if pull else (),
        base_filter_arrays=() if pull else ("contrib",),
        base_filter=None if pull else no_filter,
        uses_weights=False,
        gather_alu=1,
        apply_alu=3,
        max_iterations=iterations,
        accumulate_target="base" if pull else "other",
    )
