"""Benchmark algorithms in UDF form (Section V: PR, BFS, SSSP, CC, GCN).

Each factory returns an :class:`~repro.frontend.udf.Algorithm` whose
kernels any schedule can execute; ``repro.algorithms.gcn`` additionally
provides the SpMM/GraphSum operator pair of Case Study 2.
"""

from repro.algorithms.pagerank import pagerank_algorithm
from repro.algorithms.bfs import bfs_algorithm
from repro.algorithms.sssp import sssp_algorithm
from repro.algorithms.cc import connected_components_algorithm
from repro.algorithms.registry import algorithm_names, make_algorithm
from repro.algorithms.dobfs import run_direction_optimizing_bfs
from repro.algorithms.kcore import run_kcore, kcore_reference
from repro.algorithms import gcn

__all__ = [
    "pagerank_algorithm",
    "bfs_algorithm",
    "sssp_algorithm",
    "connected_components_algorithm",
    "algorithm_names",
    "make_algorithm",
    "run_direction_optimizing_bfs",
    "run_kcore",
    "kcore_reference",
    "gcn",
]
