"""BFS as a UDF, in both classic GPU formulations.

``top_down`` (default — the Merrill et al. [35] style the paper
benchmarks): frontier vertices scatter ``level + 1`` along outgoing
edges; a *base filter* restricts registration to the current frontier
and a *destination filter* drops already-visited neighbors. Frontier
degrees follow the graph's skew, so naive vertex mapping collapses —
the imbalance that makes BFS the paper's best case for SparseWeaver.

``bottom_up``: every unvisited vertex gathers from in-neighbors looking
for a frontier parent; gathering stops at the first hit — the *early
exit* that motivates the ``WEAVER_SKIP`` instruction (Section III-C's
supernode example).
"""

from __future__ import annotations

import numpy as np

from repro.errors import AlgorithmError
from repro.frontend.udf import Algorithm, Direction
from repro.graph.csr import CSRGraph


def bfs_algorithm(
    source: int = 0,
    max_depth: int = 10_000,
    variant: str = "top_down",
) -> Algorithm:
    """Build the BFS UDF rooted at ``source``."""
    if source < 0:
        raise AlgorithmError("BFS source must be non-negative")
    if max_depth < 1:
        raise AlgorithmError("max_depth must be at least 1")
    if variant not in ("top_down", "bottom_up"):
        raise AlgorithmError(
            f"variant must be 'top_down' or 'bottom_up', got {variant!r}"
        )

    def init_state(graph: CSRGraph):
        n = graph.num_vertices
        if source >= n:
            raise AlgorithmError(
                f"BFS source {source} out of range [0, {n})"
            )
        level = np.full(n, -1, dtype=np.int64)
        level[source] = 0
        return {
            "level": level,
            "found": np.zeros(n, dtype=bool),
            "_depth": np.zeros(1, dtype=np.int64),
        }

    def apply_update(state, graph: CSRGraph, iteration: int) -> int:
        depth = int(state["_depth"][0])
        newly = state["found"] & (state["level"] < 0)
        state["level"][newly] = depth + 1
        state["found"][:] = False
        state["_depth"][0] = depth + 1
        return int(newly.sum())

    def converged(state, iteration: int, changed: int) -> bool:
        return changed == 0 or int(state["_depth"][0]) >= max_depth

    if variant == "top_down":
        def base_filter(state, vids):
            # Only current-frontier vertices expand.
            return state["level"][vids] != state["_depth"][0]

        def other_filter(state, others):
            # Visited destinations need no notification.
            return state["level"][others] >= 0

        def edge_update(state, bases, others, weights, eids):
            state["found"][others] = True

        return Algorithm(
            name="bfs",
            direction=Direction.PUSH,
            init_state=init_state,
            edge_update=edge_update,
            apply_update=apply_update,
            converged=converged,
            result_array="level",
            acc_array="found",
            edge_value_arrays=("level",),
            base_filter_arrays=("level",),
            uses_weights=False,
            base_filter=base_filter,
            other_filter=other_filter,
            gather_alu=1,
            apply_alu=2,
            max_iterations=max_depth,
            accumulate_target="other",
        )

    # bottom-up
    def bu_base_filter(state, vids):
        # Visited vertices need no more gathering.
        return state["level"][vids] >= 0

    def bu_other_filter(state, others):
        # Only parents in the current frontier contribute.
        return state["level"][others] != state["_depth"][0]

    def bu_edge_update(state, bases, others, weights, eids):
        state["found"][bases] = True

    def early_exit(state, bases):
        return state["found"][bases]

    return Algorithm(
        name="bfs-bottom-up",
        direction=Direction.PULL,
        init_state=init_state,
        edge_update=bu_edge_update,
        apply_update=apply_update,
        converged=converged,
        result_array="level",
        acc_array="found",
        edge_value_arrays=("level",),
        base_filter_arrays=("level",),
        uses_weights=False,
        base_filter=bu_base_filter,
        other_filter=bu_other_filter,
        early_exit=early_exit,
        gather_alu=1,
        apply_alu=2,
        max_iterations=max_depth,
    )
