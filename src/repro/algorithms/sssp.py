"""Single-Source Shortest Path (pull Bellman-Ford) as a UDF.

Each round, vertices gather ``dist[u] + w`` from in-neighbors whose
distance changed last round (the *source filter* of Section V-A). SSSP
reads edge weights, which is why the paper sees slightly lower speedup
than BFS — the extra weight load dilutes the scheduling win.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AlgorithmError
from repro.frontend.udf import Algorithm, Direction
from repro.graph.csr import CSRGraph


def sssp_algorithm(source: int = 0, max_rounds: int = 10_000) -> Algorithm:
    """Build the SSSP UDF rooted at ``source``."""
    if source < 0:
        raise AlgorithmError("SSSP source must be non-negative")
    if max_rounds < 1:
        raise AlgorithmError("max_rounds must be at least 1")

    def init_state(graph: CSRGraph):
        n = graph.num_vertices
        if source >= n:
            raise AlgorithmError(
                f"SSSP source {source} out of range [0, {n})"
            )
        if np.any(graph.weights < 0):
            raise AlgorithmError("SSSP requires non-negative weights")
        dist = np.full(n, np.inf)
        dist[source] = 0.0
        changed = np.zeros(n, dtype=bool)
        changed[source] = True
        return {
            "dist": dist,
            "changed": changed,
            "acc": dist.copy(),
        }

    def other_filter(state, others):
        return ~state["changed"][others]

    def edge_update(state, bases, others, weights, eids):
        np.minimum.at(state["acc"], bases, state["dist"][others] + weights)

    def apply_update(state, graph: CSRGraph, iteration: int) -> int:
        improved = state["acc"] < state["dist"]
        state["dist"][improved] = state["acc"][improved]
        state["changed"][:] = improved
        state["acc"][:] = state["dist"]
        return int(improved.sum())

    def converged(state, iteration: int, changed: int) -> bool:
        return changed == 0 or iteration + 1 >= max_rounds

    return Algorithm(
        name="sssp",
        direction=Direction.PULL,
        init_state=init_state,
        edge_update=edge_update,
        apply_update=apply_update,
        converged=converged,
        result_array="dist",
        acc_array="acc",
        edge_value_arrays=("dist", "changed"),
        uses_weights=True,
        other_filter=other_filter,
        gather_alu=2,
        apply_alu=2,
        max_iterations=max_rounds,
    )
