"""GCN operators for Case Study 2 (Fig. 19).

The paper evaluates three kernels of a GCN layer — initialization,
SpMM (feature transform + sparse aggregation) and GraphSum (degree-
normalized mean aggregation) — across 16 weight-dimension sizes, under
two parallelization strategies:

* **S_vm weight-parallel** — threads parallelize the weight (feature)
  dimension first, then vertices: each thread walks a vertex's full
  neighbor list for one feature column, avoiding atomics but inheriting
  vertex-mapping's imbalance; with few feature columns, parallelism is
  also underutilized.
* **SparseWeaver edge-parallel** — the Weaver deals out edges densely;
  each work item iterates the weight dimension with atomic updates.

``run_gcn_operator`` executes either strategy on the simulator and
returns both timing and the computed feature matrix, which tests check
against :func:`repro.frontend.reference.gcn_layer`-style math.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.unit import WeaverUnit
from repro.errors import AlgorithmError
from repro.graph.csr import CSRGraph
from repro.sim.config import GPUConfig
from repro.sim.engines import build_gpu
from repro.sim.instructions import (
    Phase,
    alu,
    atomic,
    counter,
    load,
    store,
    sync,
    weaver_dec_id,
    weaver_dec_loc,
    weaver_reg,
)
from repro.sim.memory import MemoryMap
from repro.sim.stats import KernelStats


@dataclass
class GCNResult:
    """Output features plus simulator statistics per kernel."""

    features: np.ndarray
    stats: KernelStats
    kernel_stats: Dict[str, KernelStats]


class GCNModel:
    """Multi-layer GCN forward pass on the simulator.

    ``layers`` is a list of weight matrices; ReLU is applied between
    layers (not after the last). Every layer runs the init/SpMM/
    GraphSum kernel trio under the chosen strategy and all per-layer
    statistics are merged.
    """

    def __init__(self, layers, strategy: str = "sparseweaver") -> None:
        if not layers:
            raise AlgorithmError("GCNModel needs at least one layer")
        for i, (a, b) in enumerate(zip(layers, layers[1:])):
            if a.shape[1] != b.shape[0]:
                raise AlgorithmError(
                    f"layer {i} output dim {a.shape[1]} does not feed "
                    f"layer {i + 1} input dim {b.shape[0]}"
                )
        self.layers = [np.asarray(w, dtype=np.float64) for w in layers]
        self.strategy = strategy

    def forward(
        self,
        graph: CSRGraph,
        features: np.ndarray,
        config: Optional[GPUConfig] = None,
    ) -> GCNResult:
        """Run the full forward pass; returns final features + stats."""
        h = np.asarray(features, dtype=np.float64)
        total = KernelStats()
        kernel_stats: Dict[str, KernelStats] = {}
        for i, weight in enumerate(self.layers):
            result = run_gcn_operator(graph, h, weight,
                                      strategy=self.strategy,
                                      config=config)
            total.merge(result.stats)
            for name, st in result.kernel_stats.items():
                kernel_stats[f"layer{i}/{name}"] = st
            h = result.features
            if i < len(self.layers) - 1:
                h = np.maximum(h, 0.0)  # ReLU between layers
        return GCNResult(features=h, stats=total,
                         kernel_stats=kernel_stats)

    def reference(self, graph: CSRGraph,
                  features: np.ndarray) -> np.ndarray:
        """Pure-numpy forward pass oracle."""
        h = np.asarray(features, dtype=np.float64)
        for i, weight in enumerate(self.layers):
            h = gcn_reference(graph, h, weight)
            if i < len(self.layers) - 1:
                h = np.maximum(h, 0.0)
        return h


def _normalization(graph: CSRGraph) -> np.ndarray:
    """Symmetric-normalization coefficient per edge:
    ``1 / sqrt(deg_out(src) * deg_in(dst))``."""
    n = graph.num_vertices
    src = graph.edge_sources()
    dst = graph.col_idx
    out_deg = np.bincount(src, minlength=n).astype(np.float64)
    in_deg = np.bincount(dst, minlength=n).astype(np.float64)
    out_deg[out_deg == 0] = 1.0
    in_deg[in_deg == 0] = 1.0
    return 1.0 / np.sqrt(out_deg[src] * in_deg[dst])


def gcn_reference(graph: CSRGraph, features: np.ndarray,
                  weight: np.ndarray) -> np.ndarray:
    """Functional result both strategies must reproduce.

    Pull convention: each row vertex ``v`` aggregates
    ``norm(e) * (X W)[u]`` over its neighbor run ``u = col_idx[e]``
    (feed a reversed/symmetric graph for push semantics).
    """
    transformed = features @ weight
    norm = _normalization(graph)
    out = np.zeros((graph.num_vertices, weight.shape[1]))
    np.add.at(out, graph.edge_sources(),
              transformed[graph.col_idx] * norm[:, None])
    return out


def run_gcn_operator(
    graph: CSRGraph,
    features: np.ndarray,
    weight: np.ndarray,
    strategy: str = "sparseweaver",
    config: Optional[GPUConfig] = None,
) -> GCNResult:
    """Run init + SpMM + GraphSum under one strategy.

    ``strategy`` is ``"sparseweaver"`` (edge-parallel via the Weaver) or
    ``"vertex_map"`` (the paper's weight-parallelized S_vm baseline).
    """
    if strategy not in ("sparseweaver", "vertex_map"):
        raise AlgorithmError(
            f"unknown GCN strategy {strategy!r}; use 'sparseweaver' or "
            "'vertex_map'"
        )
    cfg = config or GPUConfig.vortex_bench()
    if strategy == "sparseweaver":
        cfg = cfg.with_weaver_penalty()
    n = graph.num_vertices
    if features.shape[0] != n:
        raise AlgorithmError(f"features must have {n} rows")
    if weight.shape[0] != features.shape[1]:
        raise AlgorithmError("weight rows must match feature columns")
    dims = int(weight.shape[1])

    gpu = build_gpu(cfg)
    mm = MemoryMap()
    regions = {
        "row_ptr": mm.alloc_like("row_ptr", graph.row_ptr),
        "col_idx": mm.alloc_like("col_idx", graph.col_idx),
        "features": mm.alloc("features", features.size, 8),
        "transformed": mm.alloc("transformed", n * dims, 8),
        "out": mm.alloc("out", n * dims, 8),
        "degree": mm.alloc("degree", n, 8),
    }
    transformed = features @ weight
    norm = _normalization(graph)
    out = np.zeros((n, dims))
    kernel_stats: Dict[str, KernelStats] = {}

    # --- init kernel: zero the output features -----------------------
    kernel_stats["init"] = gpu.run_kernel(
        _init_factory(cfg, regions, n, dims)
    )
    # --- SpMM kernel: dense feature transform X @ W ------------------
    kernel_stats["spmm"] = gpu.run_kernel(
        _spmm_factory(cfg, regions, n, features.shape[1], dims)
    )
    # --- GraphSum kernel: normalized sparse aggregation --------------
    if strategy == "vertex_map":
        kernel_stats["graphsum"] = gpu.run_kernel(
            _graphsum_vm_factory(cfg, regions, graph, transformed, norm,
                                 out, dims)
        )
    else:
        kernel_stats["graphsum"] = gpu.run_kernel(
            _graphsum_sw_factory(cfg, regions, graph, transformed, norm,
                                 out, dims),
            unit_factory=lambda core_id: WeaverUnit(cfg),
        )

    total = KernelStats()
    for st in kernel_stats.values():
        total.merge(st)
    return GCNResult(features=out, stats=total, kernel_stats=kernel_stats)


# ----------------------------------------------------------------------
# Kernels
# ----------------------------------------------------------------------
def _init_factory(cfg: GPUConfig, regions, n: int, dims: int):
    stride = cfg.total_threads
    cells = n * dims
    epochs = max(1, math.ceil(cells / stride))

    def factory(ctx):
        if ctx.thread_ids[0] >= cells:
            return None

        def kernel():
            for e in range(epochs):
                idx = ctx.thread_ids + e * stride
                idx = idx[idx < cells]
                if idx.size == 0:
                    break
                yield store(Phase.INIT, regions["out"], idx)

        return kernel()

    return factory


def _spmm_factory(cfg: GPUConfig, regions, n: int, in_dims: int,
                  out_dims: int):
    """Dense X @ W: each thread computes one output cell, reading the
    input feature row once per inner step."""
    stride = cfg.total_threads
    cells = n * out_dims
    epochs = max(1, math.ceil(cells / stride))

    def factory(ctx):
        if ctx.thread_ids[0] >= cells:
            return None

        def kernel():
            for e in range(epochs):
                idx = ctx.thread_ids + e * stride
                idx = idx[idx < cells]
                if idx.size == 0:
                    break
                rows = idx // out_dims
                for k in range(in_dims):
                    yield load(Phase.GATHER, regions["features"],
                               rows * in_dims + k)
                    yield alu(Phase.GATHER, 2)  # mul + add
                yield store(Phase.GATHER, regions["transformed"], idx)

        return kernel()

    return factory


def _graphsum_vm_factory(cfg: GPUConfig, regions, graph: CSRGraph,
                         transformed, norm, out, dims: int):
    """Weight-parallelized vertex mapping: consecutive threads take
    consecutive weight columns of the same vertex (weight-first layout),
    removing atomics for the weight update — but every (vertex, dim)
    thread walks the neighbor list independently, so the degree-based
    normalization coefficient is recomputed per edge *per weight
    column* (the cost the paper says SparseWeaver removes)."""
    stride = cfg.total_threads
    n = graph.num_vertices
    cells = n * dims
    epochs = max(1, math.ceil(cells / stride))
    row_ptr = graph.row_ptr
    col = graph.col_idx

    def factory(ctx):
        if ctx.thread_ids[0] >= cells:
            return None

        def kernel():
            for e in range(epochs):
                idx = ctx.thread_ids + e * stride
                idx = idx[idx < cells]
                if idx.size == 0:
                    break
                # weight-first layout: vertex = idx // dims, col = idx % dims
                verts = idx // dims
                cols_of = idx % dims
                yield load(Phase.REGISTRATION, regions["row_ptr"],
                           np.concatenate([verts, verts + 1]))
                yield alu(Phase.REGISTRATION)
                starts = row_ptr[verts]
                degs = row_ptr[verts + 1] - starts
                alive = np.nonzero(degs > 0)[0]
                k = 0
                while alive.size:
                    yield counter("warp_iterations")
                    eids = starts[alive] + k
                    yield load(Phase.EDGE_ACCESS, regions["col_idx"], eids)
                    srcs = col[eids]
                    # per-lane coefficient recompute from both degrees
                    yield load(Phase.GATHER, regions["degree"], srcs)
                    yield load(Phase.GATHER, regions["degree"], verts[alive])
                    yield alu(Phase.GATHER, 4)  # rsqrt + muls
                    yield load(Phase.GATHER, regions["transformed"],
                               srcs * dims + cols_of[alive])
                    yield alu(Phase.GATHER, 2)  # multiply-add
                    np.add.at(
                        out,
                        (verts[alive], cols_of[alive]),
                        transformed[srcs, cols_of[alive]] * norm[eids],
                    )
                    k += 1
                    alive = alive[degs[alive] > k]
                touched = idx[degs > 0]
                if touched.size:
                    yield store(Phase.GATHER, regions["out"], touched)

        return kernel()

    return factory


def _graphsum_sw_factory(cfg: GPUConfig, regions, graph: CSRGraph,
                         transformed, norm, out, dims: int):
    """SparseWeaver edge-parallel GraphSum: register per-vertex edge
    runs once; each dense work item loops the weight dimension with
    atomic accumulation (the paper's 'iterating through the weight
    dimension using atomic operation')."""
    stride = cfg.total_threads
    n = graph.num_vertices
    epochs = max(1, math.ceil(n / stride))
    row_ptr = graph.row_ptr
    col = graph.col_idx
    lanes = np.arange(cfg.threads_per_warp, dtype=np.int64)

    def factory(ctx):
        def kernel():
            for e in range(epochs):
                vids = ctx.thread_ids + e * stride
                vids = vids[vids < n]
                if vids.size:
                    yield load(Phase.REGISTRATION, regions["row_ptr"],
                               np.concatenate([vids, vids + 1]))
                    yield alu(Phase.REGISTRATION)
                    starts = row_ptr[vids]
                    degs = row_ptr[vids + 1] - starts
                    entries = list(zip(lanes[: vids.size].tolist(),
                                       vids.tolist(), starts.tolist(),
                                       degs.tolist()))
                    yield weaver_reg(Phase.REGISTRATION, entries)
                else:
                    yield weaver_reg(Phase.REGISTRATION, [])
                yield sync(Phase.REGISTRATION)
                while True:
                    yield counter("warp_iterations")
                    decoded = yield weaver_dec_id(Phase.SCHEDULE)
                    if decoded.exhausted:
                        break
                    eid_row = yield weaver_dec_loc(Phase.SCHEDULE)
                    mask = decoded.mask
                    bases = decoded.vids[mask]
                    eids = eid_row[mask]
                    yield load(Phase.EDGE_ACCESS, regions["col_idx"], eids)
                    srcs = col[eids]
                    # coefficient computed once per edge, reused for
                    # every weight column (the paper's GraphSum win)
                    yield load(Phase.GATHER, regions["degree"], srcs)
                    yield load(Phase.GATHER, regions["degree"], bases)
                    yield alu(Phase.GATHER, 4)
                    for d in range(dims):
                        yield load(Phase.GATHER, regions["transformed"],
                                   srcs * dims + d)
                        yield alu(Phase.GATHER, 2)
                        yield atomic(Phase.GATHER, regions["out"],
                                     bases * dims + d)
                        np.add.at(out, (bases, np.full(bases.size, d)),
                                  transformed[srcs, d] * norm[eids])
                if e < epochs - 1:
                    yield sync(Phase.SCHEDULE)

        return kernel()

    return factory
