"""k-core decomposition by iterative peeling, on any schedule.

Another workload shaped like Section VII's generalization argument:
each peeling round is a gather over the *remaining* subgraph — the
active set shrinks unpredictably, so registration-time filtering (alive
vertices only) does the same work the paper's frontier filters do, and
degree skew makes the early rounds imbalanced.

Semantics: a vertex's core number is the largest k such that it belongs
to a subgraph where every vertex has degree >= k. The driver peels k =
1, 2, ... ; within each k it repeatedly removes vertices whose alive
degree is below k until stable, assigning core number k-... (standard
Matula-Beck peeling). Works on symmetric graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from repro.errors import AlgorithmError
from repro.frontend.udf import Algorithm, Direction
from repro.graph.csr import CSRGraph
from repro.sched.base import KernelEnv, Schedule
from repro.sched.registry import make_schedule
from repro.sim.config import GPUConfig
from repro.sim.engines import build_gpu
from repro.sim.memory import MemoryMap
from repro.sim.stats import KernelStats


def kcore_reference(graph: CSRGraph) -> np.ndarray:
    """Pure-python peeling oracle (expects a symmetric graph)."""
    n = graph.num_vertices
    degree = graph.degrees.astype(np.int64).copy()
    alive = np.ones(n, dtype=bool)
    core = np.zeros(n, dtype=np.int64)
    k = 0
    while alive.any():
        k += 1
        while True:
            peel = alive & (degree < k)
            if not peel.any():
                break
            core[peel] = k - 1
            alive[peel] = False
            for v in np.nonzero(peel)[0]:
                for u in graph.neighbors(v):
                    if alive[u]:
                        degree[u] -= 1
    return core


def _peel_algorithm() -> Algorithm:
    """One peeling step as a UDF: every alive vertex counts its alive
    neighbors; apply removes those below the current k."""

    def init_state(graph: CSRGraph):
        n = graph.num_vertices
        return {
            "alive": np.ones(n, dtype=bool),
            "acc": np.zeros(n),
            "core": np.zeros(n, dtype=np.int64).astype(np.float64),
            "_k": np.ones(1, dtype=np.int64),
        }

    def base_filter(state, vids):
        return ~state["alive"][vids]

    def other_filter(state, others):
        return ~state["alive"][others]

    def edge_update(state, bases, others, weights, eids):
        np.add.at(state["acc"], bases, 1.0)

    def apply_update(state, graph, iteration):
        k = int(state["_k"][0])
        peel = state["alive"] & (state["acc"] < k)
        state["core"][peel] = k - 1
        state["alive"][peel] = False
        state["acc"][:] = 0.0
        return int(peel.sum())

    def converged(state, iteration, changed):
        return True  # the driver controls the loop

    return Algorithm(
        name="kcore-peel",
        direction=Direction.PULL,
        init_state=init_state,
        edge_update=edge_update,
        apply_update=apply_update,
        converged=converged,
        result_array="core",
        acc_array="acc",
        edge_value_arrays=("alive",),
        base_filter_arrays=("alive",),
        base_filter=base_filter,
        other_filter=other_filter,
        gather_alu=1,
        apply_alu=3,
    )


@dataclass
class KCoreResult:
    """Core numbers plus merged simulator statistics."""

    core_numbers: np.ndarray
    rounds: int = 0
    stats: KernelStats = field(default_factory=KernelStats)

    @property
    def total_cycles(self) -> int:
        """Simulated cycles across all peeling rounds."""
        return self.stats.total_cycles

    @property
    def degeneracy(self) -> int:
        """The graph's largest core number."""
        return int(self.core_numbers.max()) if self.core_numbers.size else 0


def run_kcore(
    graph: CSRGraph,
    schedule: Union[str, Schedule] = "sparseweaver",
    config: Optional[GPUConfig] = None,
    max_k: int = 10_000,
) -> KCoreResult:
    """Peel the graph to its core decomposition on the simulator."""
    if max_k < 1:
        raise AlgorithmError("max_k must be at least 1")
    cfg = config or GPUConfig.vortex_bench()
    sched = make_schedule(schedule)
    alg = _peel_algorithm()
    traversal = graph.reverse()
    state = alg.make_state(graph)
    gpu = build_gpu(cfg)
    env = KernelEnv(graph=traversal, algorithm=alg, state=state,
                    config=cfg, memory_map=MemoryMap())
    env.memory = gpu.memory

    stats = KernelStats()
    rounds = 0
    k = 1
    while state["alive"].any() and k <= max_k:
        state["_k"][0] = k
        while True:
            rounds += 1
            warp_factory = sched.warp_factory(env)
            unit_factory = (sched.unit_factory(env)
                            if sched.uses_hardware_unit else None)
            stats.merge(gpu.run_kernel(warp_factory,
                                       unit_factory=unit_factory))
            peeled = alg.apply_update(state, graph, rounds)
            if peeled == 0:
                break
        # everything still alive belongs to at least the k-core
        state["core"][state["alive"]] = k
        k += 1
    return KCoreResult(core_numbers=state["core"].astype(np.int64),
                       rounds=rounds, stats=stats)
