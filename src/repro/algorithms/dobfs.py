"""Direction-optimizing BFS (Beamer-style hybrid) on any schedule.

An extension beyond the paper's benchmark set: per level, choose
top-down expansion (push) while the frontier is small and switch to
bottom-up gathering (pull) once the frontier's outgoing edges exceed
``|E| / alpha`` — the classic heuristic. Both directions run through
the same scheduling machinery, which is exactly the flexibility the
paper claims for SparseWeaver ("decouples algorithm and load
balancing"): the Weaver serves push and pull levels alike, and
bottom-up levels exercise ``WEAVER_SKIP``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np

from repro.algorithms.bfs import bfs_algorithm
from repro.errors import AlgorithmError
from repro.graph.csr import CSRGraph
from repro.sched.base import KernelEnv, Schedule
from repro.sched.registry import make_schedule
from repro.sim.config import GPUConfig
from repro.sim.engines import build_gpu
from repro.sim.memory import MemoryMap
from repro.sim.stats import KernelStats


@dataclass
class DOBFSResult:
    """Levels, per-level directions, and merged statistics."""

    levels: np.ndarray
    directions: List[str] = field(default_factory=list)
    stats: KernelStats = field(default_factory=KernelStats)

    @property
    def total_cycles(self) -> int:
        """Simulated cycles across all levels."""
        return self.stats.total_cycles

    @property
    def switched(self) -> bool:
        """Whether both directions were used."""
        return len(set(self.directions)) > 1


def run_direction_optimizing_bfs(
    graph: CSRGraph,
    source: int = 0,
    schedule: Union[str, Schedule] = "sparseweaver",
    config: Optional[GPUConfig] = None,
    alpha: float = 4.0,
    max_depth: int = 10_000,
) -> DOBFSResult:
    """Run hybrid BFS; returns levels identical to plain BFS."""
    if not 0 <= source < graph.num_vertices:
        raise AlgorithmError(
            f"source {source} out of range [0, {graph.num_vertices})"
        )
    if alpha <= 0:
        raise AlgorithmError("alpha must be positive")
    cfg = config or GPUConfig.vortex_bench()
    sched = make_schedule(schedule)

    top_down = bfs_algorithm(source, variant="top_down")
    bottom_up = bfs_algorithm(source, variant="bottom_up")
    # One shared state dict: both variants read/write level/found/_depth.
    state = top_down.make_state(graph)

    gpu = build_gpu(cfg)
    env_td = KernelEnv(graph=graph, algorithm=top_down, state=state,
                       config=cfg, memory_map=MemoryMap())
    env_bu = KernelEnv(graph=graph.reverse(), algorithm=bottom_up,
                       state=state, config=cfg,
                       memory_map=MemoryMap(base=0x4000_0000))
    env_td.memory = env_bu.memory = gpu.memory

    out_degrees = graph.degrees
    total_edges = max(1, graph.num_edges)
    stats = KernelStats()
    directions: List[str] = []

    for _ in range(max_depth):
        depth = int(state["_depth"][0])
        frontier = state["level"] == depth
        frontier_edges = int(out_degrees[frontier].sum())
        go_bottom_up = frontier_edges > total_edges / alpha
        env = env_bu if go_bottom_up else env_td
        directions.append("bottom_up" if go_bottom_up else "top_down")

        warp_factory = sched.warp_factory(env)
        unit_factory = (sched.unit_factory(env)
                        if sched.uses_hardware_unit else None)
        stats.merge(gpu.run_kernel(warp_factory,
                                   unit_factory=unit_factory))
        changed = env.algorithm.apply_update(state, graph, depth)
        if changed == 0:
            break
    return DOBFSResult(levels=state["level"].copy(),
                       directions=directions, stats=stats)
