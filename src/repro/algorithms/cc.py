"""Connected Components (min-label propagation) as a UDF.

Vertices gather the minimum label of their neighbors; the apply kernel
additionally performs pointer jumping (``label = label[label]``), the
"apply kernel to rapidly propagate connection IDs" the paper describes
for its CC benchmark [45]. The algorithm expects a symmetric graph —
``symmetrize=True`` below makes the framework symmetrize inputs, as the
paper's benchmark datasets are symmetric (Section V-G).
"""

from __future__ import annotations

import numpy as np

from repro.errors import AlgorithmError
from repro.frontend.udf import Algorithm, Direction
from repro.graph.csr import CSRGraph


def connected_components_algorithm(max_rounds: int = 10_000) -> Algorithm:
    """Build the CC UDF."""
    if max_rounds < 1:
        raise AlgorithmError("max_rounds must be at least 1")

    def init_state(graph: CSRGraph):
        n = graph.num_vertices
        label = np.arange(n, dtype=np.int64)
        return {
            "label": label.astype(np.float64),
            "acc": label.astype(np.float64),
            "changed": np.ones(n, dtype=bool),
        }

    def other_filter(state, others):
        return ~state["changed"][others]

    def edge_update(state, bases, others, weights, eids):
        np.minimum.at(state["acc"], bases, state["label"][others])

    def apply_update(state, graph: CSRGraph, iteration: int) -> int:
        new_label = np.minimum(state["label"], state["acc"])
        # Pointer jumping: follow the label chain one hop.
        new_label = new_label[new_label.astype(np.int64)]
        changed = new_label != state["label"]
        state["label"][:] = new_label
        state["acc"][:] = new_label
        state["changed"][:] = changed
        return int(changed.sum())

    def converged(state, iteration: int, changed: int) -> bool:
        return changed == 0 or iteration + 1 >= max_rounds

    return Algorithm(
        name="cc",
        direction=Direction.PULL,
        init_state=init_state,
        edge_update=edge_update,
        apply_update=apply_update,
        converged=converged,
        result_array="label",
        acc_array="acc",
        edge_value_arrays=("label", "changed"),
        uses_weights=False,
        other_filter=other_filter,
        gather_alu=1,
        apply_alu=4,
        max_iterations=max_rounds,
    )
