"""Bucketed GPU hash table with a CSR-style layout.

Keys are hashed into ``num_buckets`` chains stored contiguously: an
``offsets`` array (length ``num_buckets + 1``) points into parallel
``keys`` / ``values`` arrays, exactly the layout of Alcantara's GPU
hash tables the paper cites [2] — and structurally identical to a CSR
graph, which is why the Weaver applies: ``(bucket, offsets[bucket],
chain length)`` is a registration triple.

The multiplicative hash is deliberately simple so callers can construct
skewed tables (clustered keys -> long chains) to study imbalance.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ReproError

_MIX = np.int64(2_654_435_761)


class GPUHashTable:
    """An immutable bucketed hash table over int64 keys."""

    def __init__(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        num_buckets: Optional[int] = None,
        multiplicative: bool = True,
        allow_duplicates: bool = False,
    ) -> None:
        """``allow_duplicates=True`` builds a multimap (several values
        per key), the layout aggregate probes (hash joins, group-by)
        scan in full — the paper's Algorithm 1 loop shape."""
        keys = np.asarray(keys, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if keys.ndim != 1 or keys.shape != values.shape:
            raise ReproError("keys and values must be parallel 1-D arrays")
        if not allow_duplicates and np.unique(keys).size != keys.size:
            raise ReproError(
                "duplicate keys require allow_duplicates=True (multimap)"
            )
        if num_buckets is None:
            num_buckets = max(1, int(keys.size // 4) or 1)
        if num_buckets < 1:
            raise ReproError("num_buckets must be at least 1")
        self.num_buckets = int(num_buckets)
        self.multiplicative = multiplicative

        buckets = self.hash(keys)
        order = np.argsort(buckets, kind="stable")
        self.keys = keys[order]
        self.values = values[order]
        counts = np.bincount(buckets, minlength=self.num_buckets)
        self.offsets = np.zeros(self.num_buckets + 1, dtype=np.int64)
        np.cumsum(counts, out=self.offsets[1:])

    # ------------------------------------------------------------------
    def hash(self, keys: np.ndarray) -> np.ndarray:
        """Bucket index per key.

        ``multiplicative=False`` selects the naive ``key % buckets``
        hash, which clustered key populations overload — the skewed
        regime where dense work weaving pays off.
        """
        keys = np.asarray(keys, dtype=np.int64)
        if self.multiplicative:
            # Fibonacci-style mix; take HIGH bits so strided key
            # populations (multiples of 2^k) still spread.
            mixed = (keys * _MIX) & np.int64(0x7FFF_FFFF_FFFF_FFFF)
            return ((mixed >> np.int64(24)) % self.num_buckets).astype(
                np.int64
            )
        return (np.abs(keys) % self.num_buckets).astype(np.int64)

    def bucket_range(self, bucket: int):
        """``(start, end)`` slot run of one bucket — the registration
        triple's loc/degree source."""
        if not 0 <= bucket < self.num_buckets:
            raise ReproError(
                f"bucket {bucket} out of range [0, {self.num_buckets})"
            )
        return int(self.offsets[bucket]), int(self.offsets[bucket + 1])

    @property
    def size(self) -> int:
        """Number of stored entries."""
        return self.keys.size

    @property
    def chain_lengths(self) -> np.ndarray:
        """Bucket chain lengths (the 'degree' distribution)."""
        return np.diff(self.offsets)

    def max_chain(self) -> int:
        """Longest chain (the supernode analog)."""
        lengths = self.chain_lengths
        return int(lengths.max()) if lengths.size else 0

    def lookup_reference(self, queries: np.ndarray) -> np.ndarray:
        """Pure-python oracle: value per query, NaN for misses."""
        queries = np.asarray(queries, dtype=np.int64)
        table = {int(k): float(v) for k, v in zip(self.keys, self.values)}
        return np.asarray(
            [table.get(int(q), np.nan) for q in queries], dtype=np.float64
        )

    def aggregate_reference(self, queries: np.ndarray) -> np.ndarray:
        """Pure-python oracle for aggregate probes: sum of all values
        stored under each query key (0.0 when absent)."""
        queries = np.asarray(queries, dtype=np.int64)
        sums: dict = {}
        for k, v in zip(self.keys.tolist(), self.values.tolist()):
            sums[k] = sums.get(k, 0.0) + v
        return np.asarray(
            [sums.get(int(q), 0.0) for q in queries], dtype=np.float64
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"GPUHashTable(size={self.size}, buckets={self.num_buckets}, "
            f"max_chain={self.max_chain()})"
        )
