"""Beyond graphs: other sparse applications on SparseWeaver.

Section VII-A argues the Weaver generalizes to any workload whose
sparse structure lives in a CSR-style offset array — GPU hashing,
MapReduce, GNNs, SpMM. This subpackage implements the paper's worked
example (Algorithm 1): GPU hash-table lookup, where bucket scans are
the sparse operation the Weaver converts into dense lane work.
"""

from repro.apps.hash_table import GPUHashTable
from repro.apps.hash_lookup import LookupResult, run_hash_lookup
from repro.apps.spmv import (
    matrix_from_dense,
    run_spmv,
    spmv_algorithm,
    spmv_reference,
)

__all__ = [
    "GPUHashTable",
    "LookupResult",
    "run_hash_lookup",
    "matrix_from_dense",
    "run_spmv",
    "spmv_algorithm",
    "spmv_reference",
]
