"""GPU hash lookup under two schedules (paper Algorithm 1).

``thread_per_query`` is the naive mapping: each thread hashes its key
and serially scans the bucket chain — lockstep makes every warp wait
for its longest chain, the hash-table analog of vertex mapping.

``sparseweaver`` registers ``(query, chain start, chain length)``
triples with the Weaver and processes densely packed (query, slot) work
items; a query that finds its key sends ``WEAVER_SKIP`` so the rest of
an overloaded chain is never distributed — the paper's supernode story,
transplanted to hashing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.apps.hash_table import GPUHashTable
from repro.core.unit import WeaverUnit
from repro.errors import ReproError
from repro.sim.config import GPUConfig
from repro.sim.engines import build_gpu
from repro.sim.instructions import (
    Phase,
    alu,
    counter,
    load,
    store,
    sync,
    weaver_dec_id,
    weaver_dec_loc,
    weaver_reg,
    weaver_skip,
)
from repro.sim.memory import MemoryMap
from repro.sim.stats import KernelStats


@dataclass
class LookupResult:
    """Values per query (NaN for misses) plus simulator statistics."""

    values: np.ndarray
    found: np.ndarray
    stats: KernelStats

    @property
    def hit_rate(self) -> float:
        """Fraction of queries that found their key."""
        return float(self.found.mean()) if self.found.size else 0.0


def run_hash_lookup(
    table: GPUHashTable,
    queries: np.ndarray,
    strategy: str = "sparseweaver",
    config: Optional[GPUConfig] = None,
    mode: str = "first",
) -> LookupResult:
    """Simulate a batched probe; returns values and cycle statistics.

    ``mode="first"`` is a point lookup: probing stops at the first key
    match (the early-exit / ``WEAVER_SKIP`` path). ``mode="aggregate"``
    scans the full chain and sums every matching value — the multimap
    probe of Algorithm 1's loop, where nothing can exit early and
    chain-length imbalance hits naive mapping with full force.
    """
    if strategy not in ("thread_per_query", "sparseweaver"):
        raise ReproError(
            f"unknown strategy {strategy!r}; use 'thread_per_query' or "
            "'sparseweaver'"
        )
    if mode not in ("first", "aggregate"):
        raise ReproError(f"mode must be 'first' or 'aggregate', got {mode!r}")
    cfg = config or GPUConfig.vortex_bench()
    queries = np.asarray(queries, dtype=np.int64)
    buckets = table.hash(queries)
    starts_all = table.offsets[buckets]
    lengths_all = table.offsets[buckets + 1] - starts_all

    first = mode == "first"
    out_values = (np.full(queries.size, np.nan) if first
                  else np.zeros(queries.size))
    out_found = np.zeros(queries.size, dtype=bool)

    gpu = build_gpu(cfg)
    mm = MemoryMap()
    regions = {
        "offsets": mm.alloc_like("offsets", table.offsets),
        "table_keys": mm.alloc_like("table_keys", table.keys),
        "table_values": mm.alloc_like("table_values", table.values),
        "queries": mm.alloc_like("queries", queries),
        "out": mm.alloc("out", queries.size, 8),
    }

    if strategy == "thread_per_query":
        factory = _thread_per_query_factory(
            cfg, regions, table, queries, starts_all, lengths_all,
            out_values, out_found, first,
        )
        stats = gpu.run_kernel(factory)
    else:
        factory = _sparseweaver_factory(
            cfg, regions, table, queries, starts_all, lengths_all,
            out_values, out_found, first,
        )
        stats = gpu.run_kernel(
            factory, unit_factory=lambda core_id: WeaverUnit(cfg)
        )
    return LookupResult(values=out_values, found=out_found, stats=stats)


def _probe(table, queries, out_values, out_found, qidx, slots, first):
    """Functional probe: compare table keys at ``slots`` with the
    queries owning them; record (first) or accumulate (aggregate)."""
    hit = table.keys[slots] == queries[qidx]
    if hit.any():
        if first:
            out_values[qidx[hit]] = table.values[slots[hit]]
        else:
            np.add.at(out_values, qidx[hit], table.values[slots[hit]])
        out_found[qidx[hit]] = True
    return hit


def _thread_per_query_factory(cfg, regions, table, queries, starts,
                              lengths, out_values, out_found, first):
    stride = cfg.total_threads
    n = queries.size
    epochs = max(1, math.ceil(n / stride))

    def factory(ctx):
        if ctx.thread_ids[0] >= n:
            return None

        def kernel():
            for epoch in range(epochs):
                qidx = ctx.thread_ids + epoch * stride
                qidx = qidx[qidx < n]
                if qidx.size == 0:
                    break
                # hash + chain bounds (Algorithm 1 lines 2-3)
                yield load(Phase.REGISTRATION, regions["queries"], qidx)
                yield alu(Phase.REGISTRATION, 2)  # hash
                h = table.hash(queries[qidx])
                yield load(Phase.REGISTRATION, regions["offsets"],
                           np.concatenate([h, h + 1]))
                st = starts[qidx]
                ln = lengths[qidx]
                alive = np.nonzero(ln > 0)[0]
                k = 0
                while alive.size:
                    yield counter("warp_iterations")
                    slots = st[alive] + k
                    yield load(Phase.EDGE_ACCESS, regions["table_keys"],
                               slots)
                    yield alu(Phase.GATHER)  # compare
                    hit = _probe(table, queries, out_values, out_found,
                                 qidx[alive], slots, first)
                    if hit.any():
                        yield load(Phase.GATHER, regions["table_values"],
                                   slots[hit])
                        yield store(Phase.GATHER, regions["out"],
                                    qidx[alive][hit])
                    k += 1
                    still = ln[alive] > k
                    if first:
                        still &= ~hit  # point lookup exits on the hit
                    alive = alive[still]

        return kernel()

    return factory


def _sparseweaver_factory(cfg, regions, table, queries, starts, lengths,
                          out_values, out_found, first):
    stride = cfg.total_threads
    n = queries.size
    epochs = max(1, math.ceil(n / stride))
    lanes = np.arange(cfg.threads_per_warp, dtype=np.int64)
    # The Weaver distributes (query id, slot) work items: the "vertex"
    # is the query, its "edge run" is the bucket chain.

    def factory(ctx):
        def kernel():
            for epoch in range(epochs):
                qidx = ctx.thread_ids + epoch * stride
                qidx = qidx[qidx < n]
                if qidx.size:
                    yield load(Phase.REGISTRATION, regions["queries"], qidx)
                    yield alu(Phase.REGISTRATION, 2)  # hash
                    h = table.hash(queries[qidx])
                    yield load(Phase.REGISTRATION, regions["offsets"],
                               np.concatenate([h, h + 1]))
                    entries = list(zip(
                        lanes[: qidx.size].tolist(),
                        qidx.tolist(),
                        starts[qidx].tolist(),
                        lengths[qidx].tolist(),
                    ))
                    yield weaver_reg(Phase.REGISTRATION, entries)
                else:
                    yield weaver_reg(Phase.REGISTRATION, [])
                yield sync(Phase.REGISTRATION)
                while True:
                    yield counter("warp_iterations")
                    decoded = yield weaver_dec_id(Phase.SCHEDULE)
                    if decoded.exhausted:
                        break
                    slot_row = yield weaver_dec_loc(Phase.SCHEDULE)
                    mask = decoded.mask
                    owners = decoded.vids[mask]
                    slots = slot_row[mask]
                    yield load(Phase.EDGE_ACCESS, regions["table_keys"],
                               slots)
                    yield alu(Phase.GATHER)
                    hit = _probe(table, queries, out_values, out_found,
                                 owners, slots, first)
                    if hit.any():
                        yield load(Phase.GATHER, regions["table_values"],
                                   slots[hit])
                        yield store(Phase.GATHER, regions["out"],
                                    owners[hit])
                        if first:
                            for q in np.unique(owners[hit]).tolist():
                                yield weaver_skip(Phase.GATHER, int(q))
                if epoch < epochs - 1:
                    yield sync(Phase.SCHEDULE)

        return kernel()

    return factory
