"""Sparse matrix-vector multiply on the graph machinery (Section VII).

``y = A @ x`` over a CSR matrix is structurally identical to one
PageRank gather: each row collects ``A[row, col] * x[col]`` over its
stored entries. Expressing it as an
:class:`~repro.frontend.udf.Algorithm` means *every* schedule — naive
row-per-thread, the software balancers, the Weaver — runs SpMV without
new kernels, and row-length skew (the classic SpMV pain) maps exactly
onto degree skew.

A CSR matrix here is a :class:`~repro.graph.csr.CSRGraph` whose rows
are sources, column indices are ``col_idx`` and values are the edge
weights; :func:`matrix_from_dense` builds one from a dense array.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.errors import AlgorithmError
from repro.frontend.framework import GraphProcessor, RunResult
from repro.frontend.udf import Algorithm, Direction
from repro.graph.builder import from_edge_arrays
from repro.graph.csr import CSRGraph
from repro.sched.base import Schedule
from repro.sim.config import GPUConfig


def matrix_from_dense(dense: np.ndarray,
                      keep_zeros: bool = False) -> CSRGraph:
    """CSR matrix from a dense 2-D array (square matrices only —
    rows and columns share the vertex id space)."""
    dense = np.asarray(dense, dtype=np.float64)
    if dense.ndim != 2 or dense.shape[0] != dense.shape[1]:
        raise AlgorithmError("matrix must be square 2-D")
    if keep_zeros:
        rows, cols = np.meshgrid(
            np.arange(dense.shape[0]), np.arange(dense.shape[1]),
            indexing="ij",
        )
        rows, cols = rows.ravel(), cols.ravel()
    else:
        rows, cols = np.nonzero(dense)
    return from_edge_arrays(rows, cols, dense.shape[0],
                            weights=dense[rows, cols])


def spmv_reference(matrix: CSRGraph, x: np.ndarray) -> np.ndarray:
    """Plain numpy oracle for ``y = A @ x``."""
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (matrix.num_vertices,):
        raise AlgorithmError(
            f"x must have length {matrix.num_vertices}, got {x.shape}"
        )
    y = np.zeros(matrix.num_vertices)
    np.add.at(y, matrix.edge_sources(),
              matrix.weights * x[matrix.col_idx])
    return y


def spmv_algorithm(x: np.ndarray) -> Algorithm:
    """SpMV as a one-iteration gather UDF.

    Rows gather over their own stored entries, so the traversal runs
    over the matrix as stored (PUSH orientation) while accumulation
    stays on the row (base) side — vertex mapping keeps its
    no-atomics row sums, exactly like a hand-written CSR SpMV kernel.
    """
    x = np.asarray(x, dtype=np.float64)

    def init_state(graph: CSRGraph):
        if x.shape != (graph.num_vertices,):
            raise AlgorithmError(
                f"x must have length {graph.num_vertices}, got {x.shape}"
            )
        return {
            "x": x.copy(),
            "acc": np.zeros(graph.num_vertices),
            "y": np.zeros(graph.num_vertices),
        }

    def edge_update(state, bases, others, weights, eids):
        np.add.at(state["acc"], bases, weights * state["x"][others])

    def apply_update(state, graph, iteration):
        state["y"][:] = state["acc"]
        return graph.num_vertices

    return Algorithm(
        name="spmv",
        direction=Direction.PUSH,
        init_state=init_state,
        edge_update=edge_update,
        apply_update=apply_update,
        converged=lambda state, iteration, changed: True,
        result_array="y",
        acc_array="acc",
        edge_value_arrays=("x",),
        uses_weights=True,
        gather_alu=2,
        apply_alu=1,
        max_iterations=1,
        accumulate_target="base",
    )


def run_spmv(
    matrix: CSRGraph,
    x: np.ndarray,
    schedule: Union[str, Schedule] = "sparseweaver",
    config: Optional[GPUConfig] = None,
) -> RunResult:
    """Simulate ``y = A @ x``; ``result.values`` is ``y``."""
    proc = GraphProcessor(spmv_algorithm(x), schedule=schedule,
                          config=config)
    return proc.run(matrix, max_iterations=1)
