"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``       one (algorithm, dataset, schedule) simulation with stats
``compare``   every schedule on one workload, speedups over S_vm
``bench``     regenerate paper figures via the figure registry + engine
``datasets``  the Table III analog inventory
``area``      the Table IV area model
``weaver``    replay the Fig. 6 FSM example
``batch``     run a job grid through the parallel runtime engine
``serve``     coordinate a job grid across a distributed worker fleet
``work``      pull and run leases from a ``serve``/``--dist`` coordinator
``cache``     inspect or clear the content-addressed result cache
``tail``      live dashboard over a batch telemetry JSONL file
``report``    aggregate telemetry/metrics files into one summary
``perf``      perf-trajectory table over perf_history.jsonl
``diff``      first-divergence localization between two runs' ledgers
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
from typing import List, Optional

from repro.algorithms import algorithm_names, make_algorithm
from repro.bench import format_table, run_schedule_comparison, run_single
from repro.core import SparseWorkloadTable, WeaverAreaModel, WeaverFSM
from repro.graph import dataset, dataset_names
from repro.graph.datasets import dataset_spec
from repro.graph.metrics import average_degree, degree_skewness
from repro.sched import ALL_SCHEDULES, EXTENDED_SCHEDULES, schedule_names
from repro.sim import GPUConfig


def _add_engine_flag(p) -> None:
    """The shared ``--engine`` flag (simulator execution engine)."""
    p.add_argument("--engine", default=None, metavar="NAME",
                   help="simulator execution engine (reference/fast/"
                        "auto; default: $REPRO_ENGINE, then "
                        "reference); engines are bit-identical, this "
                        "changes wall-clock speed only")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SparseWeaver (HPCA 2025) reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="simulate one workload")
    run_p.add_argument("--algorithm", default="pagerank",
                       choices=algorithm_names())
    run_p.add_argument("--dataset", default="hollywood",
                       choices=dataset_names())
    run_p.add_argument("--schedule", default="sparseweaver",
                       choices=schedule_names())
    run_p.add_argument("--scale", type=float, default=0.25)
    run_p.add_argument("--iterations", type=int, default=3)
    run_p.add_argument("--trace", default=None, metavar="PATH",
                       help="write a Chrome trace (kernel spans + "
                            "per-warp instruction/stall timeline) "
                            "loadable in chrome://tracing or Perfetto")
    run_p.add_argument("--trace-events", type=int, default=200_000,
                       help="instruction-trace bound for --trace")
    run_p.add_argument("--profile", default=None, metavar="DIR",
                       help="host-profile the simulator: per-phase "
                            "wall-time table on stdout, profile.json + "
                            "flamegraph.collapsed in DIR; sampler "
                            "spans merge into --trace output")
    _add_engine_flag(run_p)

    cmp_p = sub.add_parser("compare", help="all schedules, one workload")
    cmp_p.add_argument("--algorithm", default="pagerank",
                       choices=algorithm_names())
    cmp_p.add_argument("--dataset", default="hollywood",
                       choices=dataset_names())
    cmp_p.add_argument("--scale", type=float, default=0.25)
    cmp_p.add_argument("--iterations", type=int, default=2)
    cmp_p.add_argument("--extended", action="store_true",
                       help="include every implemented schedule")

    bench_p = sub.add_parser(
        "bench",
        help="regenerate paper figures through the figure registry "
             "and the batch engine (parallel + incremental)")
    bench_p.add_argument("--figures", default=None,
                         help="comma-separated figure names or prefixes "
                              "(e.g. fig10,fig11,ablation); default: "
                              "every registered figure")
    bench_p.add_argument("--list", action="store_true",
                         dest="list_figures",
                         help="list registered figures and exit")
    bench_p.add_argument("--smoke", action="store_true",
                         help="tiny-scale trimmed sweeps (CI health "
                              "check; outputs are not paper shapes)")
    bench_p.add_argument("--scale", type=float, default=None,
                         help="dataset analog scale (default: 0.25, "
                              "the benchmark scale)")
    bench_p.add_argument("--jobs", type=int, default=None,
                         help="worker processes (default: REPRO_JOBS "
                              "or 1)")
    bench_p.add_argument("--out", default=None, metavar="DIR",
                         help="artifact directory (default: "
                              "benchmarks/results)")
    bench_p.add_argument("--cache-dir", default=None,
                         help="result cache directory (default: "
                              "REPRO_CACHE_DIR or ~/.cache/repro)")
    bench_p.add_argument("--no-cache", action="store_true",
                         help="disable the result cache for this run")
    bench_p.add_argument("--telemetry", default=None, metavar="PATH",
                         help="append run events to this JSONL file")
    bench_p.add_argument("--timeout", type=float, default=None,
                         help="per-job timeout in seconds")
    bench_p.add_argument("--keep-going", action="store_true",
                         help="finish the whole batch even when jobs "
                              "fail; emit the completed figures plus a "
                              "failure table on stderr (exit 1)")
    bench_p.add_argument("--journal", default=None, metavar="PATH",
                         help="append each completed job to this run "
                              "journal (JSONL) for --resume")
    bench_p.add_argument("--resume", action="store_true",
                         help="restore completed jobs from --journal "
                              "before running; nothing journaled is "
                              "re-simulated")
    bench_p.add_argument("--faults", default=None, metavar="PLAN",
                         help="inject a deterministic fault plan, e.g. "
                              "'crash@1,corrupt@0,seed=7' (see "
                              "repro.runtime.faults; also REPRO_FAULTS)")
    bench_p.add_argument("--dist", default=None, metavar="HOST:PORT",
                         help="serve the batch to a distributed worker "
                              "fleet bound at this address instead of "
                              "running locally; start workers with "
                              "'repro work HOST:PORT'")
    bench_p.add_argument("--lease-seconds", type=float, default=None,
                         help="fleet lease lifetime without a heartbeat "
                              "(with --dist; default 30)")
    bench_p.add_argument("--profile", default=None, metavar="DIR",
                         help="host-profile the simulator during the "
                              "bench; writes profile.json + "
                              "flamegraph.collapsed to DIR")
    _add_engine_flag(bench_p)

    sub.add_parser("datasets", help="Table III analog inventory")

    area_p = sub.add_parser("area", help="Table IV area model")
    area_p.add_argument("--cores", type=int, nargs="+", default=[1, 16])

    sub.add_parser("weaver", help="replay the Fig. 6 FSM example")

    rep_p = sub.add_parser(
        "reproduce",
        help="re-run a paper experiment by id (e.g. fig10, table5, "
             "fig13, ablations, microbench)")
    rep_p.add_argument("experiment", help="experiment id substring")

    batch_p = sub.add_parser(
        "batch",
        help="run an (algorithm x dataset x schedule) grid through the "
             "runtime engine (parallel workers + result cache)")
    batch_p.add_argument("--algorithm", default="pagerank",
                         choices=algorithm_names())
    batch_p.add_argument("--datasets", nargs="+", default=["bio-human"],
                         choices=dataset_names())
    batch_p.add_argument("--schedules", nargs="+", default=None,
                         choices=schedule_names(),
                         help="default: the paper's five (ALL_SCHEDULES)")
    batch_p.add_argument("--scale", type=float, default=0.25)
    batch_p.add_argument("--iterations", type=int, default=2)
    batch_p.add_argument("--jobs", type=int, default=None,
                         help="worker processes (default: REPRO_JOBS or 1)")
    batch_p.add_argument("--spec-file", default=None,
                         help="JSON file with a list of job objects "
                              "(overrides the grid flags)")
    batch_p.add_argument("--cache-dir", default=None,
                         help="result cache directory (default: "
                              "REPRO_CACHE_DIR or ~/.cache/repro)")
    batch_p.add_argument("--no-cache", action="store_true",
                         help="disable the result cache for this batch")
    batch_p.add_argument("--telemetry", default=None, metavar="PATH",
                         help="append run events to this JSONL file")
    batch_p.add_argument("--timeout", type=float, default=None,
                         help="per-job timeout in seconds")
    batch_p.add_argument("--deadline", type=float, default=None,
                         help="batch wall-clock budget in seconds; "
                              "jobs not started in time are journaled "
                              "as skipped (deferred to --resume), "
                              "never guessed (also REPRO_GUARD "
                              "deadline=N)")
    batch_p.add_argument("--metrics", default=None, metavar="PATH",
                         help="write a metrics-registry snapshot JSON "
                              "(implies --obs)")
    batch_p.add_argument("--trace", default=None, metavar="PATH",
                         help="write a Chrome trace of per-job engine "
                              "spans")
    batch_p.add_argument("--obs", action="store_true",
                         help="enable the metrics registry for this "
                              "batch (same as REPRO_OBS=1)")
    batch_p.add_argument("--cache-max-bytes", type=int, default=None,
                         help="result-cache byte budget")
    batch_p.add_argument("--cache-ttl", type=float, default=None,
                         help="result-cache entry TTL in seconds")
    batch_p.add_argument("--retries", type=int, default=1,
                         help="extra attempts per job after a transient "
                              "failure (worker crash) before failing it")
    batch_p.add_argument("--fail-fast", action="store_true",
                         help="stop scheduling at the first failed job; "
                              "the rest of the batch is marked skipped")
    batch_p.add_argument("--journal", default=None, metavar="PATH",
                         help="append each completed job to this run "
                              "journal (JSONL) for --resume")
    batch_p.add_argument("--resume", action="store_true",
                         help="restore completed jobs from --journal "
                              "before running; nothing journaled is "
                              "re-simulated")
    batch_p.add_argument("--faults", default=None, metavar="PLAN",
                         help="inject a deterministic fault plan, e.g. "
                              "'crash@1,corrupt@0,seed=7' (see "
                              "repro.runtime.faults; also REPRO_FAULTS)")
    batch_p.add_argument("--profile", default=None, metavar="DIR",
                         help="host-profile the simulator across the "
                              "batch (worker snapshots fold into the "
                              "parent); writes profile.json + "
                              "flamegraph.collapsed to DIR; sampler "
                              "spans merge into --trace output")
    _add_engine_flag(batch_p)

    serve_p = sub.add_parser(
        "serve",
        help="coordinate a job grid across a distributed worker fleet "
             "(the batch command's grid, served over TCP leases)")
    serve_p.add_argument("--bind", default="127.0.0.1:0",
                         metavar="HOST:PORT",
                         help="address to listen on (port 0 picks an "
                              "ephemeral port, printed at startup)")
    serve_p.add_argument("--algorithm", default="pagerank",
                         choices=algorithm_names())
    serve_p.add_argument("--datasets", nargs="+", default=["bio-human"],
                         choices=dataset_names())
    serve_p.add_argument("--schedules", nargs="+", default=None,
                         choices=schedule_names(),
                         help="default: the paper's five (ALL_SCHEDULES)")
    serve_p.add_argument("--scale", type=float, default=0.25)
    serve_p.add_argument("--iterations", type=int, default=2)
    serve_p.add_argument("--spec-file", default=None,
                         help="JSON file with a list of job objects "
                              "(overrides the grid flags)")
    serve_p.add_argument("--cache-dir", default=None)
    serve_p.add_argument("--no-cache", action="store_true")
    serve_p.add_argument("--telemetry", default=None, metavar="PATH",
                         help="append run events to this JSONL file")
    serve_p.add_argument("--timeout", type=float, default=None,
                         help="hard per-job deadline (heartbeats cannot "
                              "extend a lease past it)")
    serve_p.add_argument("--retries", type=int, default=1,
                         help="extra attempts per job after a lost or "
                              "transiently-failed lease")
    serve_p.add_argument("--lease-seconds", type=float, default=None,
                         help="lease lifetime without a heartbeat "
                              "(default 30)")
    serve_p.add_argument("--fail-fast", action="store_true")
    serve_p.add_argument("--journal", default=None, metavar="PATH",
                         help="work ledger: leases, reclaims and "
                              "completions (JSONL) for --resume")
    serve_p.add_argument("--resume", action="store_true",
                         help="restore completed jobs from --journal; "
                              "nothing journaled is re-simulated")
    serve_p.add_argument("--faults", default=None, metavar="PLAN",
                         help="fault directives shipped to workers in "
                              "their leases, e.g. 'crash@1,seed=7'")
    serve_p.add_argument("--max-runtime", type=float, default=None,
                         metavar="SECONDS",
                         help="total serving budget; when exhausted the "
                              "remaining jobs are shed as skipped "
                              "(journaled for --resume) and the "
                              "coordinator exits cleanly")
    serve_p.add_argument("--max-inflight", type=int, default=None,
                         help="bound outstanding leases; further "
                              "requests get a backpressure wait "
                              "instead of a grant")
    serve_p.add_argument("--breaker", type=int, default=None,
                         metavar="N",
                         help="quarantine a worker after N consecutive "
                              "failures (circuit breaker)")
    serve_p.add_argument("--breaker-cooldown", type=float, default=30.0,
                         metavar="SECONDS",
                         help="how long a tripped worker stays "
                              "quarantined (default 30)")
    serve_p.add_argument("--json", action="store_true",
                         help="print outcomes + fleet stats as JSON")
    serve_p.add_argument("--profile", default=None, metavar="DIR",
                         help="fold worker host-profile snapshots and "
                              "write profile.json + "
                              "flamegraph.collapsed to DIR")
    _add_engine_flag(serve_p)

    work_p = sub.add_parser(
        "work",
        help="pull and run simulation leases from a coordinator "
             "(repro serve / repro bench --dist)")
    work_p.add_argument("address", metavar="HOST:PORT",
                        help="the coordinator's address")
    work_p.add_argument("--id", default=None, dest="worker_id",
                        help="worker id (default: hostname-pid)")
    work_p.add_argument("--max-jobs", type=int, default=None,
                        help="sign off after this many leases "
                             "(default: run until drained)")
    work_p.add_argument("--connect-timeout", type=float, default=10.0,
                        help="seconds to keep retrying the initial "
                             "connect (workers may start first)")
    work_p.add_argument("--reconnect", type=int, default=5,
                        metavar="N",
                        help="survive up to N consecutive lost "
                             "sessions (coordinator restart or "
                             "partition) with jittered exponential "
                             "backoff; 0 exits on the first loss")
    work_p.add_argument("--rss-soft", default=None, metavar="SIZE",
                        help="soft memory limit (e.g. 512M): finish "
                             "the current job, then sign off and "
                             "refuse further leases")
    work_p.add_argument("--rss-hard", default=None, metavar="SIZE",
                        help="hard memory limit (e.g. 1G): self-evict "
                             "immediately; the coordinator reclaims "
                             "the lease like a crash")
    work_p.add_argument("--obs", action="store_true",
                        help="enable the metrics registry; worker "
                             "metrics ship home with each result")
    work_p.add_argument("--profile", action="store_true",
                        help="enable the host profiler; per-phase "
                             "snapshots ship home with each result")
    _add_engine_flag(work_p)

    cache_p = sub.add_parser(
        "cache", help="inspect or clear the result cache")
    cache_p.add_argument("action", choices=["stats", "clear"])
    cache_p.add_argument("--cache-dir", default=None)
    cache_p.add_argument("--json", action="store_true",
                         help="emit stats as JSON (scriptable)")

    tail_p = sub.add_parser(
        "tail",
        help="live dashboard over a batch telemetry JSONL file")
    tail_p.add_argument("path", help="telemetry JSONL file to follow")
    tail_p.add_argument("--interval", type=float, default=0.5,
                        help="poll interval in seconds")
    tail_p.add_argument("--once", action="store_true",
                        help="render one frame of the current file "
                             "and exit")
    tail_p.add_argument("--frames", type=int, default=None,
                        help="stop after this many polls (default: "
                             "follow until the batch summary arrives)")
    tail_p.add_argument("--json", action="store_true",
                        help="print the final aggregate as JSON")

    rep2_p = sub.add_parser(
        "report",
        help="aggregate telemetry JSONL and metrics snapshot files")
    rep2_p.add_argument("paths", nargs="+",
                        help="telemetry .jsonl and/or metrics .json files")
    rep2_p.add_argument("--json", action="store_true",
                        help="emit the aggregate as JSON (CI artifacts)")

    perf_p = sub.add_parser(
        "perf",
        help="perf-trajectory table over perf_history.jsonl: one row "
             "per recorded bench emission, deltas vs. the previous "
             "entry, regressions flagged with the CI speed-gate rule")
    perf_p.add_argument("--history", default=None, metavar="PATH",
                        help="perf history JSONL (default: "
                             "benchmarks/results/perf_history.jsonl)")
    perf_p.add_argument("--max-regress", type=float, default=None,
                        help="fractional jobs/s drop vs. the previous "
                             "entry that counts as a regression "
                             "(default 0.25, the CI speed gate)")
    perf_p.add_argument("--limit", type=int, default=None,
                        help="show only the most recent N entries")
    perf_p.add_argument("--check", action="store_true",
                        help="exit 1 when the latest entry is a "
                             "regression (CI gate)")
    perf_p.add_argument("--json", action="store_true",
                        help="emit the trajectory rows as JSON")

    diff_p = sub.add_parser(
        "diff",
        help="compare two runs' provenance digest ledgers "
             "(REPRO_DIGEST=1 runs) and localize the first diverging "
             "(kernel, interval, core, warp) coordinate")
    diff_p.add_argument("--a", required=True, metavar="SRC",
                        help="side A: a run-journal JSONL file, a "
                             "result-cache directory, or live "
                             "'key=val[,key=val]' options (e.g. "
                             "'engine=reference,dataset=bio-human,"
                             "alu_latency=2') re-executed now with "
                             "digests on")
    diff_p.add_argument("--b", required=True, metavar="SRC",
                        help="side B: same source forms as --a")
    diff_p.add_argument("--context", type=int, default=3,
                        help="ledger rows shown around the first "
                             "divergence (default 3)")
    diff_p.add_argument("--interval", type=int, default=None,
                        help="digest interval in simulated cycles for "
                             "live re-execution (default 8192, or "
                             "REPRO_DIGEST_INTERVAL)")
    diff_p.add_argument("--replay", default=None, metavar="PATH",
                        help="re-run only the first diverging kernel "
                             "of both (live) sides with full per-cycle "
                             "event capture and write a side-by-side "
                             "Chrome trace for Perfetto")
    diff_p.add_argument("--json", action="store_true",
                        help="emit the divergence report as JSON")
    return parser


def _make_alg(name: str, iterations: int):
    if name == "pagerank":
        return make_algorithm("pagerank", iterations=iterations)
    if name in ("bfs", "sssp"):
        return make_algorithm(name, source=0)
    return make_algorithm(name)


def _cmd_run(args) -> int:
    graph = dataset(args.dataset, scale=args.scale)
    tracer = exec_tracer = None
    if args.trace:
        from repro.obs.tracing import Tracer
        from repro.sim.trace import ExecutionTracer

        tracer = Tracer()
        exec_tracer = ExecutionTracer(max_events=args.trace_events)
    profiler, sampler = _start_profiling(args)
    result = run_single(
        _make_alg(args.algorithm, args.iterations), graph,
        args.schedule, config=GPUConfig.vortex_bench(),
        max_iterations=args.iterations,
        tracer=tracer, exec_tracer=exec_tracer,
        engine=args.engine,
    )
    if sampler is not None:
        sampler.stop()
    print(f"{args.algorithm} on {args.dataset} (analog {graph}) "
          f"under {args.schedule}:")
    print(f"  cycles:     {result.stats.total_cycles:,}")
    print(f"  iterations: {result.iterations}")
    print("  phases:     " + ", ".join(
        f"{k}={v}" for k, v in result.stats.phase_breakdown().items()))
    print("  stalls:     " + ", ".join(
        f"{k}={v}" for k, v in result.stats.stall_breakdown().items()))
    if args.trace:
        from repro.obs.tracing import execution_trace_events

        extra = list(execution_trace_events(exec_tracer))
        if sampler is not None:
            # Host sampler spans share the tracer's perf_counter
            # origin, so both clocks line up in one Perfetto view.
            extra.extend(sampler.trace_events(epoch=tracer.epoch))
        path = tracer.save(args.trace, extra)
        summary = exec_tracer.summary()
        note = (f" ({summary['dropped']} instruction events dropped "
                "at the trace bound)" if summary["dropped"] else "")
        print(f"  trace:      {path} — open in chrome://tracing or "
              f"https://ui.perfetto.dev{note}")
    _finish_profiling(args, profiler, sampler)
    return 0


def _cmd_compare(args) -> int:
    graph = dataset(args.dataset, scale=args.scale)
    schedules = (EXTENDED_SCHEDULES if getattr(args, "extended", False)
                 else ALL_SCHEDULES)
    result = run_schedule_comparison(
        lambda: _make_alg(args.algorithm, args.iterations),
        {args.dataset: graph}, schedules,
        config=GPUConfig.vortex_bench(),
        max_iterations=args.iterations,
    )
    speedups = result.speedups()[args.dataset]
    cycles = result.cycles[args.dataset]
    rows = [
        [sched, cycles[sched], round(speedups[sched], 2)]
        for sched in schedules
    ]
    print(format_table(
        ["schedule", "cycles", "speedup over S_vm"], rows,
        title=f"{args.algorithm} on {args.dataset} ({graph})"))
    return 0


def _resolve_journal(args):
    """``--journal``/``--resume`` flags -> a ready RunJournal or None.

    ``--resume`` loads the existing journal (restored jobs are not
    re-simulated); without it a named journal starts fresh so stale
    completions cannot silently skip work.
    """
    from repro.errors import ConfigError
    from repro.runtime import RunJournal

    if args.resume and not args.journal:
        raise ConfigError("--resume requires --journal PATH")
    if not args.journal:
        return None
    journal = RunJournal(args.journal)
    if args.resume:
        restored = journal.load()
        note = (f"resume: {restored} completed job(s) restored from "
                f"{args.journal}")
        if journal.bad_lines or journal.stale_lines:
            note += (f" ({journal.bad_lines} torn, "
                     f"{journal.stale_lines} stale line(s) skipped)")
        print(note)
    else:
        journal.reset()
    return journal


def _resolve_faults(args):
    """``--faults PLAN`` -> a parsed FaultPlan, or None (env fallback)."""
    if not getattr(args, "faults", None):
        return None
    from repro.runtime import FaultPlan

    return FaultPlan.parse(args.faults)


def _print_failures(report, stream=None) -> None:
    """Emit a failure report table on stderr."""
    print(report.format(), file=stream or sys.stderr)


def _start_profiling(args):
    """``--profile`` -> ``(profiler, sampler)``, both live.

    Returns ``(None, None)`` when the flag is absent.  Enabling the
    profiler also exports ``REPRO_PROFILE=1`` so pool workers spawned
    later come up profiling and their snapshots fold back here.
    """
    if not getattr(args, "profile", None):
        return None, None
    from repro.obs.profile import StackSampler, enable_profiling

    profiler = enable_profiling()
    sampler = StackSampler()
    sampler.start()
    return profiler, sampler


def _finish_profiling(args, profiler, sampler, quiet: bool = False
                      ) -> None:
    """Stop the sampler, print the phase table, write artifacts.

    Writes ``profile.json`` (mergeable snapshot, accepted by
    ``repro report``) and ``flamegraph.collapsed`` (collapsed stacks
    for any flamegraph renderer) into the ``--profile`` directory.
    ``quiet`` writes the artifacts without printing (``--json`` modes).
    """
    if profiler is None:
        return
    from pathlib import Path

    sampler.stop()
    out = Path(args.profile)
    out.mkdir(parents=True, exist_ok=True)
    profile_path = profiler.save(out / "profile.json")
    flame_path = sampler.save_collapsed(out / "flamegraph.collapsed")
    if not quiet:
        print(profiler.format())
        print(f"profile:    {profile_path}")
        print(f"flamegraph: {flame_path}")


def _cmd_bench(args) -> int:
    import time
    from pathlib import Path

    from repro.figures import (FigureContext, list_figures,
                               resolve_figures, run_figures_report)
    from repro.runtime import ResultCache, Telemetry

    if args.list_figures:
        rows = [[fig.name, fig.paper, fig.title]
                for fig in list_figures()]
        print(format_table(["figure", "paper", "title"], rows,
                           title=f"{len(rows)} registered figures"))
        return 0

    patterns = ([p.strip() for p in args.figures.split(",") if p.strip()]
                if args.figures else None)
    figures = (resolve_figures(patterns) if patterns
               else list_figures())
    if args.smoke:
        ctx = FigureContext.smoke_context(
            scale=args.scale) if args.scale else \
            FigureContext.smoke_context()
    else:
        ctx = (FigureContext(scale=args.scale) if args.scale
               else FigureContext())

    faults = _resolve_faults(args)
    journal = _resolve_journal(args)
    cache = None if args.no_cache else ResultCache(args.cache_dir,
                                                   faults=faults)
    telemetry = Telemetry(args.telemetry, faults=faults)
    if args.dist and args.jobs:
        from repro.errors import ConfigError

        raise ConfigError("--jobs does not apply with --dist; the "
                          "fleet's parallelism is its worker count")
    dist_options = ({"lease_seconds": args.lease_seconds}
                    if args.lease_seconds else None)
    profiler, sampler = _start_profiling(args)
    start = time.perf_counter()
    outputs, report = run_figures_report(
        figures, ctx, jobs=args.jobs, cache=cache, telemetry=telemetry,
        journal=journal, timeout=args.timeout, faults=faults,
        policy="keep_going" if args.keep_going else "fail_fast",
        dist=args.dist, dist_options=dist_options,
        sim_engine=args.engine)
    elapsed = time.perf_counter() - start

    out_dir = Path(args.out) if args.out else (
        Path(__file__).resolve().parents[2] / "benchmarks" / "results")
    out_dir.mkdir(parents=True, exist_ok=True)
    rows = []
    for name in sorted(outputs):
        out = outputs[name]
        for block_name, text in out.blocks.items():
            (out_dir / f"{block_name}.txt").write_text(text + "\n")
        rows.append([name, len(out.blocks),
                     ", ".join(sorted(out.blocks))])
    print(format_table(
        ["figure", "blocks", "artifacts"], rows,
        title=f"{len(outputs)} figure(s) in {elapsed:.1f}s -> "
              f"{out_dir}"))
    print(telemetry.format_summary(cache))
    _finish_profiling(args, profiler, sampler)
    if not report.ok:
        _print_failures(report)
        return 1
    return 0


def _cmd_datasets(_args) -> int:
    rows = []
    for name in dataset_names():
        spec = dataset_spec(name)
        g = dataset(name, scale=0.25)
        rows.append([
            name, spec.paper_vertices, spec.paper_edges, g.num_vertices,
            g.num_edges, round(average_degree(g), 1),
            round(degree_skewness(g), 2),
        ])
    print(format_table(
        ["dataset", "|V| paper", "|E| paper", "|V| analog", "|E| analog",
         "avg deg", "skew"],
        rows, title="Table III analogs (scale 0.25)"))
    return 0


def _cmd_area(args) -> int:
    model = WeaverAreaModel()
    for cores in args.cores:
        print(model.utilization_summary(cores))
    return 0


def _cmd_weaver(_args) -> int:
    st = SparseWorkloadTable(16)
    st.register(0, vid=0, loc=2, degree=1)
    st.register(1, vid=2, loc=10, degree=2)
    st.register(2, vid=4, loc=30, degree=5)
    fsm = WeaverFSM(st, lanes=4)
    for request in (1, 2, 3):
        result = fsm.decode()
        walk = " -> ".join(s.value for s in result.states)
        print(f"request {request}: {walk or '(end)'}")
        print(f"  VIDs {result.vids.tolist()}  EIDs {result.eids.tolist()}")
    return 0


def _cmd_reproduce(args) -> int:
    """Run the matching benchmark module(s) under pytest."""
    import subprocess
    from pathlib import Path

    bench_dir = Path(__file__).resolve().parents[2] / "benchmarks"
    matches = sorted(bench_dir.glob(f"bench_*{args.experiment}*.py"))
    if not matches:
        available = sorted(
            p.stem.replace("bench_", "") for p in
            bench_dir.glob("bench_*.py")
        )
        print(f"no benchmark matches {args.experiment!r}; available: "
              + ", ".join(available))
        return 1
    cmd = [sys.executable, "-m", "pytest", "--benchmark-only", "-q",
           "-s"] + [str(p) for p in matches]
    return subprocess.call(cmd)


def _load_spec_file(path: str):
    """Load a JSON batch file into :class:`JobSpec` objects.

    Accepts a list (or ``{"jobs": [...]}``) of objects with the keys
    ``algorithm``, ``params``, ``dataset`` (or ``generator`` +
    ``graph_params``), ``scale``, ``schedule``, ``max_iterations``,
    ``symmetrize``.
    """
    import json

    from repro.errors import ReproError
    from repro.runtime import AlgorithmSpec, GraphSpec, JobSpec

    known = {"algorithm", "params", "dataset", "generator", "graph_params",
             "scale", "schedule", "max_iterations", "symmetrize"}
    with open(path) as handle:
        data = json.load(handle)
    if isinstance(data, dict):
        data = data.get("jobs", [])
    specs = []
    for i, entry in enumerate(data):
        unknown = sorted(set(entry) - known)
        if unknown:
            raise ReproError(
                f"job {i} in {path} has unknown key(s) {unknown}; "
                f"expected a subset of {sorted(known)}")
        if "dataset" in entry:
            graph = GraphSpec.from_dataset(
                entry["dataset"], scale=float(entry.get("scale", 1.0)))
        elif "generator" in entry:
            graph = GraphSpec.from_generator(
                entry["generator"], **entry.get("graph_params", {}))
        else:
            raise ReproError(
                f"job {i} in {path} needs a 'dataset' or 'generator'")
        specs.append(JobSpec(
            algorithm=AlgorithmSpec.of(
                entry["algorithm"], **entry.get("params", {})),
            graph=graph,
            schedule=entry["schedule"],
            max_iterations=entry.get("max_iterations"),
            symmetrize=bool(entry.get("symmetrize", False)),
        ))
    return specs


def _batch_specs(args):
    """The ``batch``/``serve`` grid (or spec file) as JobSpec objects.

    ``--engine`` stamps every spec; the field is excluded from the
    content hash, so stamped specs keep their engine-less cache and
    journal identities.
    """
    from repro.runtime import AlgorithmSpec, GraphSpec, JobSpec

    if args.spec_file:
        specs = _load_spec_file(args.spec_file)
    else:
        schedules = args.schedules or list(ALL_SCHEDULES)
        algorithm = AlgorithmSpec.of(
            args.algorithm,
            **({"iterations": args.iterations}
               if args.algorithm == "pagerank" else
               {"source": 0} if args.algorithm in ("bfs", "sssp")
               else {}))
        specs = [
            JobSpec(
                algorithm=algorithm,
                graph=GraphSpec.from_dataset(name, scale=args.scale),
                schedule=sched,
                config=GPUConfig.vortex_bench(),
                max_iterations=args.iterations,
            )
            for name in args.datasets
            for sched in schedules
        ]
    if getattr(args, "engine", None):
        import dataclasses

        specs = [dataclasses.replace(s, engine=args.engine)
                 for s in specs]
    return specs


def _outcome_rows(outcomes):
    """The shared ``batch``/``serve`` result table rows."""
    return [
        [o.spec.algorithm.name, o.spec.graph.name, o.spec.schedule,
         o.status,
         o.summary.total_cycles if o.summary else "-",
         round(o.wall_seconds, 3)]
        for o in outcomes
    ]


def _cmd_batch(args) -> int:
    from repro.runtime import BatchEngine, ResultCache, Telemetry

    specs = _batch_specs(args)
    if args.obs or args.metrics:
        from repro.obs.metrics import enable_metrics

        enable_metrics()
    tracer = None
    if args.trace:
        from repro.obs.tracing import Tracer

        tracer = Tracer()
    faults = _resolve_faults(args)
    journal = _resolve_journal(args)
    cache = None if args.no_cache else ResultCache(
        args.cache_dir, max_bytes=args.cache_max_bytes,
        ttl_seconds=args.cache_ttl, faults=faults)
    telemetry = Telemetry(args.telemetry, faults=faults)
    engine = BatchEngine(jobs=args.jobs, cache=cache,
                         telemetry=telemetry, timeout=args.timeout,
                         retries=args.retries, tracer=tracer,
                         journal=journal, faults=faults,
                         fail_fast=args.fail_fast,
                         deadline=args.deadline)
    profiler, sampler = _start_profiling(args)
    outcomes = engine.run(specs)
    if sampler is not None:
        sampler.stop()

    rows = _outcome_rows(outcomes)
    print(format_table(
        ["algorithm", "graph", "schedule", "status", "cycles", "sec"],
        rows, title=f"batch of {len(specs)} jobs "
                    f"({engine.jobs} worker(s))"))
    print(telemetry.format_summary(cache))
    if args.metrics:
        from repro.obs.metrics import get_registry

        print(f"metrics snapshot: {get_registry().save(args.metrics)}")
    if tracer is not None:
        extra = (sampler.trace_events(epoch=tracer.epoch)
                 if sampler is not None else ())
        print(f"engine trace: {tracer.save(args.trace, extra)}")
    _finish_profiling(args, profiler, sampler)
    from repro.figures.driver import FailureReport

    report = FailureReport.from_outcomes(outcomes)
    if not report.ok:
        _print_failures(report)
        return 1
    return 0


def _cmd_serve(args) -> int:
    import json as json_mod

    from repro.dist import DEFAULT_LEASE_SECONDS, Coordinator
    from repro.figures.driver import FailureReport
    from repro.runtime import ResultCache, Telemetry

    specs = _batch_specs(args)
    faults = _resolve_faults(args)
    journal = _resolve_journal(args)
    cache = None if args.no_cache else ResultCache(args.cache_dir,
                                                   faults=faults)
    telemetry = Telemetry(args.telemetry, faults=faults)
    coordinator = Coordinator(
        args.bind,
        lease_seconds=args.lease_seconds or DEFAULT_LEASE_SECONDS,
        cache=cache, telemetry=telemetry, journal=journal,
        timeout=args.timeout, retries=args.retries, faults=faults,
        fail_fast=args.fail_fast, deadline=args.max_runtime,
        max_inflight=args.max_inflight,
        breaker_threshold=args.breaker,
        breaker_cooldown=args.breaker_cooldown)
    coordinator.start()
    print(f"coordinator serving {len(specs)} job(s) at "
          f"{coordinator.address}; start workers with "
          f"'repro work {coordinator.address}'", flush=True)
    profiler, sampler = _start_profiling(args)
    # SIGTERM = graceful degradation, not death: shed unresolved work
    # (journaling every outstanding lease) so run() returns normally
    # and --resume completes the remainder.  Main thread only; the
    # coordinator lock is reentrant so shedding from the handler is
    # safe even mid-transition.
    previous = None
    try:
        previous = signal.signal(
            signal.SIGTERM,
            lambda _sig, _frm: coordinator.request_shutdown("sigterm"))
    except ValueError:
        pass  # not the main thread (embedded use); no handler then
    try:
        outcomes = coordinator.run(specs)
    finally:
        coordinator.close()
        if previous is not None:
            signal.signal(signal.SIGTERM, previous)
    if sampler is not None:
        sampler.stop()

    fleet = coordinator.fleet_stats()
    if args.json:
        print(json_mod.dumps({
            "outcomes": [
                {"label": o.spec.label, "status": o.status,
                 "cycles": (o.summary.total_cycles
                            if o.summary else None),
                 "attempts": o.attempts,
                 "error": o.error}
                for o in outcomes
            ],
            "fleet": fleet,
            "telemetry": telemetry.summary(cache=cache),
        }, sort_keys=True))
    else:
        print(format_table(
            ["algorithm", "graph", "schedule", "status", "cycles",
             "sec"],
            _outcome_rows(outcomes),
            title=f"fleet batch of {len(specs)} jobs "
                  f"({len(fleet['workers'])} worker(s) seen)"))
        print(telemetry.format_summary(cache))
    _finish_profiling(args, profiler, sampler, quiet=args.json)
    report = FailureReport.from_outcomes(outcomes)
    if not report.ok:
        _print_failures(report)
        return 1
    return 0


def _cmd_work(args) -> int:
    from repro.dist import Worker

    if args.obs:
        from repro.obs.metrics import enable_metrics

        enable_metrics()
    if args.profile:
        from repro.obs.profile import enable_profiling

        enable_profiling()
    if args.engine:
        # Worker-local default for mixed fleets; a lease that carries
        # its own stamped engine still wins (spec.engine resolves
        # first).
        os.environ["REPRO_ENGINE"] = args.engine
    guard = None
    if args.rss_soft or args.rss_hard:
        from repro.runtime.guard import GuardPolicy, parse_size

        guard = GuardPolicy(
            rss_soft_bytes=(parse_size(args.rss_soft)
                            if args.rss_soft else None),
            rss_hard_bytes=(parse_size(args.rss_hard)
                            if args.rss_hard else None))
    worker = Worker(args.address, worker_id=args.worker_id,
                    connect_timeout=args.connect_timeout,
                    max_jobs=args.max_jobs,
                    max_reconnects=args.reconnect, guard=guard)
    print(f"worker {worker.worker_id} pulling leases from "
          f"{args.address}", flush=True)
    done = worker.run()
    extra = ""
    if worker.reconnects:
        extra += f", {worker.reconnects} reconnect(s)"
    if worker.stop_reason not in ("", "drained"):
        extra += f", stopped: {worker.stop_reason}"
    print(f"worker {worker.worker_id} drained: {done} job(s) run, "
          f"{worker.jobs_failed} failed attempt(s){extra}")
    return 0


def _cmd_cache(args) -> int:
    import json as json_mod

    from repro.runtime import ResultCache

    cache = ResultCache(args.cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached result(s) from {cache.dir}")
        return 0
    if args.json:
        print(json_mod.dumps(cache.stats(), sort_keys=True))
        return 0
    for key, value in cache.stats().items():
        print(f"  {key}: {value}")
    return 0


def _cmd_tail(args) -> int:
    import json as json_mod

    from repro.obs.dashboard import tail

    watch = tail(args.path, follow=not args.once,
                 interval=args.interval, max_frames=args.frames)
    if args.json:
        print(json_mod.dumps(watch.snapshot(), sort_keys=True))
    return 1 if watch.snapshot()["failed"] else 0


def _cmd_report(args) -> int:
    import json as json_mod

    from repro.obs.report import aggregate, format_report

    report = aggregate(args.paths)
    if args.json:
        print(json_mod.dumps(report, sort_keys=True, indent=1))
    else:
        print(format_report(report))
    return 1 if report["failed"] else 0


def _cmd_perf(args) -> int:
    import json as json_mod
    from pathlib import Path

    from repro.obs.profile import (DEFAULT_HISTORY, DEFAULT_MAX_REGRESS,
                                   PerfHistory, format_trajectory)

    path = (Path(args.history) if args.history
            else Path(__file__).resolve().parents[2] / DEFAULT_HISTORY)
    history = PerfHistory(path)
    max_regress = (args.max_regress if args.max_regress is not None
                   else DEFAULT_MAX_REGRESS)
    rows = history.trajectory(max_regress=max_regress)
    if args.limit:
        rows = rows[-args.limit:]
    if args.json:
        from repro.obs.profile import git_commit

        # Stamped like the table view: the commit the report was made
        # at, the gate applied, and per-entry verdicts in the rows.
        print(json_mod.dumps({
            "git_commit": git_commit(),
            "max_regress": max_regress,
            "history": str(path),
            "entries": rows,
        }, sort_keys=True))
    elif not rows:
        print(f"no perf history at {path} — run "
              "benchmarks/bench_perf_trajectory.py (or the CI speed "
              "gate) to record an entry")
    else:
        print(format_trajectory(rows))
        if history.bad_lines:
            print(f"({history.bad_lines} torn/unreadable line(s) "
                  "skipped)")
    if args.check and rows and rows[-1]["verdict"] == "REGRESSION":
        print(f"perf regression: jobs/s dropped "
              f"{-rows[-1]['delta'] * 100:.1f}% vs. the previous "
              f"entry (gate: {max_regress * 100:.0f}%)",
              file=sys.stderr)
        return 1
    return 0


def _parse_diff_options(src: str):
    """``'key=val,key=val'`` live-source grammar -> an options dict."""
    from repro.errors import ReproError

    opts = {}
    for part in src.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ReproError(
                f"diff source {src!r} is neither an existing journal "
                "file, a cache directory, nor 'key=value' live options")
        key, value = part.split("=", 1)
        opts[key.strip()] = value.strip()
    return opts


def _diff_live_spec(opts):
    """Build the JobSpec a live diff side re-executes.

    Recognized keys: ``engine`` (any registered simulator engine —
    ``reference``, ``fast``, ``auto``; this is how divergence bisection
    compares two engines live), ``algorithm``, ``dataset``,
    ``schedule``, ``scale``, ``iterations``, plus any numeric
    :class:`GPUConfig` field as an override (``alu_latency=2``) — the
    deliberate-perturbation lever.
    """
    import dataclasses

    from repro.errors import ReproError
    from repro.runtime import AlgorithmSpec, GraphSpec, JobSpec
    from repro.sim.engines import available_engines

    opts = dict(opts)
    engine = opts.pop("engine", "reference")
    if engine not in available_engines():
        raise ReproError(
            f"unknown engine {engine!r}; available: "
            f"{available_engines()}")
    algorithm = opts.pop("algorithm", "pagerank")
    dataset_name = opts.pop("dataset", "bio-human")
    schedule = opts.pop("schedule", "sparseweaver")
    scale = float(opts.pop("scale", 0.25))
    iterations = int(opts.pop("iterations", 2))
    config = GPUConfig.vortex_bench()
    overrides = {}
    config_fields = {f.name for f in dataclasses.fields(GPUConfig)}
    for key in list(opts):
        if key in config_fields:
            raw = opts.pop(key)
            try:
                overrides[key] = int(raw)
            except ValueError:
                try:
                    overrides[key] = float(raw)
                except ValueError:
                    raise ReproError(
                        f"config override {key}={raw!r} is not "
                        "numeric") from None
    if opts:
        raise ReproError(
            f"unknown diff option(s) {sorted(opts)}; expected engine/"
            "algorithm/dataset/schedule/scale/iterations or a numeric "
            "GPUConfig field")
    if overrides:
        config = dataclasses.replace(config, **overrides)
    return JobSpec(
        algorithm=AlgorithmSpec.of(
            algorithm,
            **({"iterations": iterations} if algorithm == "pagerank"
               else {"source": 0} if algorithm in ("bfs", "sssp")
               else {})),
        graph=GraphSpec.from_dataset(dataset_name, scale=scale),
        schedule=schedule,
        config=config,
        max_iterations=iterations,
        engine=engine,
    )


def _diff_side(src: str, interval):
    """One ``--a``/``--b`` source -> ``(label -> summary, spec, kind)``.

    ``spec`` is the live-side JobSpec (``None`` for journal/cache
    sources — those can only be compared, not replayed).
    """
    from pathlib import Path

    from repro.errors import ReproError
    from repro.obs.provenance import (enable_digests,
                                      ledgers_from_cache_dir,
                                      ledgers_from_journal)

    path = Path(src)
    if path.is_dir():
        runs = ledgers_from_cache_dir(path)
        if not runs:
            raise ReproError(f"cache directory {src} holds no "
                             "readable entries")
        return runs, None, "cache"
    if path.is_file():
        runs = ledgers_from_journal(path)
        if not runs:
            raise ReproError(f"journal {src} holds no completion "
                             "records")
        return runs, None, "journal"
    spec = _diff_live_spec(_parse_diff_options(src))
    enable_digests(interval)
    from repro.runtime.engine import _execute_spec

    return {spec.label: _execute_spec(spec)}, spec, "live"


def _diff_replay(path, spec_a, spec_b, kernel: int) -> str:
    """Re-run both live sides recording only ``kernel``; write a
    side-by-side Chrome trace and return its path."""
    import json as json_mod
    from pathlib import Path

    from repro.obs.provenance import KernelWindowTracer
    from repro.obs.tracing import execution_trace_events

    events = []
    for spec, label, pid_base in ((spec_a, "A", 1000),
                                  (spec_b, "B", 5000)):
        window = KernelWindowTracer(kernel)
        run_single(
            spec.algorithm.build(), spec.graph.build(), spec.schedule,
            config=spec.effective_config(),
            max_iterations=spec.max_iterations,
            symmetrize=spec.symmetrize, exec_tracer=window)
        events.extend(execution_trace_events(
            window.inner, pid_base=pid_base,
            label=f"{label}:{spec.label}"))
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json_mod.dumps({"traceEvents": events}))
    return str(out)


def _cmd_diff(args) -> int:
    import json as json_mod

    from repro.errors import ReproError
    from repro.obs.provenance import (context_window, describe_coord,
                                      diff_ledgers)

    runs_a, spec_a, kind_a = _diff_side(args.a, args.interval)
    runs_b, spec_b, kind_b = _diff_side(args.b, args.interval)
    common = sorted(set(runs_a) & set(runs_b))
    if not common:
        raise ReproError(
            f"no common job labels between --a ({kind_a}: "
            f"{len(runs_a)} run(s)) and --b ({kind_b}: {len(runs_b)} "
            "run(s)) — digest ledgers are matched by job label")

    jobs = []
    missing = 0
    for label in common:
        la = (runs_a[label] or {}).get("digest_ledger")
        lb = (runs_b[label] or {}).get("digest_ledger")
        if la is None and lb is None:
            missing += 1
            continue
        diffs = diff_ledgers(la, lb)
        entry = {"label": label, "divergences": len(diffs)}
        if diffs:
            first = diffs[0]
            coord = [int(v) for v in first["coord"]]
            entry["first"] = {
                "coord": coord,
                "where": describe_coord(coord),
                "a": first["a"], "b": first["b"],
                "context": [
                    {"coord": [int(v) for v in row["coord"]],
                     "a": row["a"], "b": row["b"],
                     "match": row["match"]}
                    for row in context_window(la, lb, coord,
                                              args.context)
                ],
            }
        jobs.append(entry)

    if not jobs:
        raise ReproError(
            f"none of the {len(common)} common job(s) carry a digest "
            "ledger — re-run both sides with REPRO_DIGEST=1")

    divergent = [j for j in jobs if j["divergences"]]
    replay_path = None
    if args.replay and divergent:
        if spec_a is None or spec_b is None:
            raise ReproError(
                "--replay needs both sides to be live 'key=value' "
                "sources (journal/cache entries cannot be re-executed)")
        kernel = divergent[0]["first"]["coord"][0]
        if kernel < 0:
            kernel = 0  # merge-stream divergence: replay kernel 0
        replay_path = _diff_replay(args.replay, spec_a, spec_b, kernel)

    if args.json:
        print(json_mod.dumps({
            "a": {"source": args.a, "kind": kind_a,
                  "runs": len(runs_a)},
            "b": {"source": args.b, "kind": kind_b,
                  "runs": len(runs_b)},
            "compared": len(jobs),
            "without_ledgers": missing,
            "divergent": len(divergent),
            "jobs": jobs,
            "replay": replay_path,
        }, sort_keys=True))
        return 1 if divergent else 0

    print(f"provenance diff: {len(jobs)} job(s) compared "
          f"({kind_a} vs {kind_b})"
          + (f", {missing} without ledgers skipped" if missing else ""))
    for job in jobs:
        if not job["divergences"]:
            print(f"  {job['label']}: ledgers identical")
            continue
        first = job["first"]
        print(f"  {job['label']}: {job['divergences']} diverging "
              f"record(s); first at {first['where']} "
              f"(coord {tuple(first['coord'])})")
        print(f"    a={first['a'] or '(absent)'}  "
              f"b={first['b'] or '(absent)'}")
        for row in first["context"]:
            mark = " " if row["match"] else ">"
            print(f"    {mark} {tuple(row['coord'])}  "
                  f"a={row['a'] or '-':>16}  b={row['b'] or '-':>16}")
    if replay_path:
        print(f"  replay trace: {replay_path} — open in "
              "chrome://tracing or https://ui.perfetto.dev")
    if divergent:
        print(f"FIRST DIVERGENCE: {divergent[0]['label']} at "
              f"{divergent[0]['first']['where']}")
        return 1
    print("no divergences: every compared ledger matches")
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "compare": _cmd_compare,
    "bench": _cmd_bench,
    "datasets": _cmd_datasets,
    "area": _cmd_area,
    "weaver": _cmd_weaver,
    "reproduce": _cmd_reproduce,
    "batch": _cmd_batch,
    "serve": _cmd_serve,
    "work": _cmd_work,
    "cache": _cmd_cache,
    "tail": _cmd_tail,
    "report": _cmd_report,
    "perf": _cmd_perf,
    "diff": _cmd_diff,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Exit codes: 0 success; 1 at least one job failed (partial results
    were still emitted under ``--keep-going``); 2 configuration error;
    130 interrupted (SIGINT) — a journaled run resumes with
    ``--resume``.
    """
    from repro.errors import ReproError

    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except KeyboardInterrupt:
        print("interrupted; rerun with --resume to continue a "
              "journaled batch", file=sys.stderr)
        return 130
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
