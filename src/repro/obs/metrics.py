"""Process-local metrics registry: counters, gauges, histograms.

One :class:`MetricsRegistry` per process collects named instruments
with optional key=value labels (Prometheus-style).  The registry is
*disabled by default* — a disabled registry hands out no-op
instruments whose ``inc``/``set``/``observe`` are empty methods, so
instrumented hot paths cost one dict lookup and one no-op call.

Enable it per process (``enable_metrics()`` or ``REPRO_OBS=1`` in the
environment), and every instrumented layer — the simulator publishing
:class:`~repro.sim.stats.KernelStats` at kernel end, the batch
engine's job counters, the result cache's hit/miss/eviction counters,
telemetry event counts — accumulates into one place.

Registries cross process boundaries as *snapshots*: plain JSON-able
dicts produced by :meth:`MetricsRegistry.snapshot` and folded back
with :meth:`MetricsRegistry.merge_snapshot`.  The batch engine uses
exactly this to aggregate worker-process metrics into the parent
(counters and histograms add; gauges keep the incoming value).
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: Sorted ``(key, value)`` pairs — the hashable form of a label set.
LabelSet = Tuple[Tuple[str, str], ...]

#: Histogram bucket upper bounds used when none are given (seconds).
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)


def _labelset(labels: Dict[str, Any]) -> LabelSet:
    """Normalize a labels dict into a sorted, hashable tuple."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def percentile_from_counts(bounds: Sequence[float],
                           counts: Sequence[int],
                           q: float) -> float:
    """Estimate the ``q``-th percentile of a bucketed distribution.

    ``bounds`` are the bucket upper bounds; ``counts`` holds one cell
    per bound plus a final overflow cell (per-bucket counts, not
    cumulative).  The estimate is the upper bound of the bucket the
    ``q``-quantile sample falls in — the standard conservative answer
    for pre-aggregated histograms.  Overflow samples report the last
    finite bound; an empty distribution reports ``0.0``.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile {q!r} out of range [0, 100]")
    total = sum(counts)
    if total <= 0:
        return 0.0
    rank = q / 100.0 * total
    seen = 0
    for i, cell in enumerate(counts):
        seen += cell
        if seen >= rank and cell:
            return float(bounds[i]) if i < len(bounds) else float(bounds[-1])
    return float(bounds[-1])


class _NoopInstrument:
    """Shared stand-in handed out by a disabled registry."""

    __slots__ = ()

    def inc(self, value: float = 1.0, **labels) -> None:
        """Do nothing."""

    def set(self, value: float, **labels) -> None:
        """Do nothing."""

    def observe(self, value: float, **labels) -> None:
        """Do nothing."""


_NOOP = _NoopInstrument()


class Counter:
    """Monotonically increasing value, optionally split by labels."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.values: Dict[LabelSet, float] = {}

    def inc(self, value: float = 1.0, **labels) -> None:
        """Add ``value`` to the series selected by ``labels``."""
        if value < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = _labelset(labels)
        self.values[key] = self.values.get(key, 0.0) + value

    def value(self, **labels) -> float:
        """Current value of one labelled series (0.0 if never touched)."""
        return self.values.get(_labelset(labels), 0.0)

    def total(self) -> float:
        """Sum across every label combination."""
        return sum(self.values.values())


class Gauge:
    """Last-written value, optionally split by labels."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.values: Dict[LabelSet, float] = {}

    def set(self, value: float, **labels) -> None:
        """Record the current level of the labelled series."""
        self.values[_labelset(labels)] = float(value)

    def inc(self, value: float = 1.0, **labels) -> None:
        """Adjust the labelled series by ``value`` (may be negative)."""
        key = _labelset(labels)
        self.values[key] = self.values.get(key, 0.0) + value

    def value(self, **labels) -> float:
        """Current value of one labelled series (0.0 if never set)."""
        return self.values.get(_labelset(labels), 0.0)


class Histogram:
    """Bucketed distribution (cumulative counts, like Prometheus)."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.help = help
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        # Per label set: [per-bucket counts..., overflow], sum, count.
        self.values: Dict[LabelSet, Dict[str, Any]] = {}

    def _series(self, key: LabelSet) -> Dict[str, Any]:
        series = self.values.get(key)
        if series is None:
            series = {"counts": [0] * (len(self.buckets) + 1),
                      "sum": 0.0, "count": 0}
            self.values[key] = series
        return series

    def observe(self, value: float, **labels) -> None:
        """Record one sample into the labelled series."""
        series = self._series(_labelset(labels))
        idx = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                idx = i
                break
        series["counts"][idx] += 1
        series["sum"] += value
        series["count"] += 1

    def count(self, **labels) -> int:
        """Number of samples observed in one labelled series."""
        return self.values.get(_labelset(labels), {}).get("count", 0)

    def sum(self, **labels) -> float:
        """Sum of samples observed in one labelled series."""
        return self.values.get(_labelset(labels), {}).get("sum", 0.0)

    def percentile(self, q: float, **labels) -> float:
        """Bucketed ``q``-th percentile estimate of one labelled series.

        See :func:`percentile_from_counts` for the estimation rule
        (upper bound of the quantile's bucket; 0.0 when empty).
        """
        series = self.values.get(_labelset(labels))
        if series is None:
            return 0.0
        return percentile_from_counts(self.buckets, series["counts"], q)


# ----------------------------------------------------------------------
class MetricsRegistry:
    """Named instruments plus snapshot/merge for process aggregation."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._instruments: Dict[str, Any] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _get(self, name: str, factory, kind: str):
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = factory()
                self._instruments[name] = inst
            elif inst.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {inst.kind}, "
                    f"not {kind}"
                )
            return inst

    def counter(self, name: str, help: str = ""):
        """Get or create a :class:`Counter` (no-op when disabled)."""
        if not self.enabled:
            return _NOOP
        return self._get(name, lambda: Counter(name, help), "counter")

    def gauge(self, name: str, help: str = ""):
        """Get or create a :class:`Gauge` (no-op when disabled)."""
        if not self.enabled:
            return _NOOP
        return self._get(name, lambda: Gauge(name, help), "gauge")

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS):
        """Get or create a :class:`Histogram` (no-op when disabled)."""
        if not self.enabled:
            return _NOOP
        return self._get(
            name, lambda: Histogram(name, help, buckets), "histogram")

    # ------------------------------------------------------------------
    def instruments(self) -> List[Any]:
        """Registered instruments, sorted by name."""
        with self._lock:
            return [self._instruments[k] for k in sorted(self._instruments)]

    def get(self, name: str):
        """Look up an instrument by name (``None`` when absent)."""
        return self._instruments.get(name)

    def clear(self) -> None:
        """Drop every instrument (registry stays enabled/disabled)."""
        with self._lock:
            self._instruments.clear()

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-able dump of every instrument and labelled series."""
        out: Dict[str, Any] = {"metrics": {}}
        for inst in self.instruments():
            entry: Dict[str, Any] = {"kind": inst.kind, "help": inst.help}
            if inst.kind == "histogram":
                entry["buckets"] = list(inst.buckets)
                entry["series"] = [
                    {"labels": dict(key), "counts": list(s["counts"]),
                     "sum": s["sum"], "count": s["count"]}
                    for key, s in sorted(inst.values.items())
                ]
            else:
                entry["series"] = [
                    {"labels": dict(key), "value": value}
                    for key, value in sorted(inst.values.items())
                ]
            out["metrics"][inst.name] = entry
        return out

    def merge_snapshot(self, snap: Dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` from another process into this one.

        Counters and histograms accumulate; gauges adopt the incoming
        value (last write wins, matching their point-in-time meaning).
        A disabled registry ignores the snapshot entirely, and a
        ``None`` or empty snapshot — a worker that died before
        recording anything — merges as a no-op rather than raising.
        """
        if not self.enabled or not isinstance(snap, dict):
            return
        for name, entry in (snap.get("metrics") or {}).items():
            kind = entry.get("kind")
            if kind == "counter":
                inst = self.counter(name, entry.get("help", ""))
                for series in entry.get("series", []):
                    inst.inc(series["value"], **series.get("labels", {}))
            elif kind == "gauge":
                inst = self.gauge(name, entry.get("help", ""))
                for series in entry.get("series", []):
                    inst.set(series["value"], **series.get("labels", {}))
            elif kind == "histogram":
                inst = self.histogram(
                    name, entry.get("help", ""),
                    buckets=entry.get("buckets", DEFAULT_BUCKETS))
                for series in entry.get("series", []):
                    key = _labelset(series.get("labels", {}))
                    dst = inst._series(key)
                    counts = series.get("counts", [])
                    if len(counts) != len(dst["counts"]):
                        raise ValueError(
                            f"histogram {name!r} bucket mismatch while "
                            f"merging ({len(counts)} vs "
                            f"{len(dst['counts'])} counts)")
                    for i, c in enumerate(counts):
                        dst["counts"][i] += c
                    dst["sum"] += series.get("sum", 0.0)
                    dst["count"] += series.get("count", 0)

    # ------------------------------------------------------------------
    def publish_kernel_stats(self, stats) -> None:
        """Fold one :class:`~repro.sim.stats.KernelStats` into counters.

        Called by :meth:`repro.sim.gpu.GPU.run_kernel` at kernel end so
        the simulator's per-run accounting and the registry share one
        export path without touching the issue loop.
        """
        if not self.enabled:
            return
        self.counter("sim_kernels_total",
                     "Kernels simulated").inc()
        self.counter("sim_cycles_total",
                     "Simulated cycles").inc(stats.total_cycles)
        self.counter("sim_instructions_total",
                     "Warp instructions issued").inc(stats.instructions)
        self.counter("sim_warps_launched_total",
                     "Warps launched").inc(stats.warps_launched)
        stalls = self.counter("sim_stall_cycles_total",
                              "Stall cycles by class")
        for cat, cycles in stats.stall_cycles.items():
            stalls.inc(cycles, stall=cat.name)
        phases = self.counter("sim_phase_cycles_total",
                              "Cycles by execution phase")
        for phase, cycles in stats.phase_cycles.items():
            phases.inc(cycles, phase=phase.name)

    def save(self, path) -> Path:
        """Write :meth:`snapshot` as JSON; returns the path written."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.snapshot(), sort_keys=True,
                                   indent=1) + "\n")
        return path

    def format(self) -> str:
        """Human-readable one-line-per-series dump."""
        lines = []
        for inst in self.instruments():
            if inst.kind == "histogram":
                for key, series in sorted(inst.values.items()):
                    label = _format_labels(key)
                    lines.append(
                        f"{inst.name}{label} count={series['count']} "
                        f"sum={series['sum']:.6g}")
            else:
                for key, value in sorted(inst.values.items()):
                    lines.append(
                        f"{inst.name}{_format_labels(key)} {value:g}")
        return "\n".join(lines)


def _format_labels(key: LabelSet) -> str:
    if not key:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in key)
    return "{" + inner + "}"


# ----------------------------------------------------------------------
# Process-global default registry
# ----------------------------------------------------------------------
_REGISTRY = MetricsRegistry(
    enabled=bool(os.environ.get("REPRO_OBS", "").strip())
)


def get_registry() -> MetricsRegistry:
    """The process-global registry every instrumented layer defaults to."""
    return _REGISTRY


def metrics_enabled() -> bool:
    """Whether the global registry is collecting."""
    return _REGISTRY.enabled


def enable_metrics() -> MetricsRegistry:
    """Turn the global registry on; returns it for convenience."""
    _REGISTRY.enabled = True
    return _REGISTRY


def disable_metrics(clear: bool = False) -> MetricsRegistry:
    """Turn the global registry off (optionally dropping its data)."""
    _REGISTRY.enabled = False
    if clear:
        _REGISTRY.clear()
    return _REGISTRY
