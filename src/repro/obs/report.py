"""Offline aggregation of telemetry and metrics files.

``python -m repro report runs.jsonl metrics.json [--json]`` folds any
mix of telemetry JSONL sinks (batch-engine event streams) and metrics
snapshots (:meth:`~repro.obs.metrics.MetricsRegistry.save` output)
into one summary — job counts, simulated cycles, wall time, cache
counters, failure list, merged metrics — suitable for a CI artifact or
a quick terminal read after a long batch.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Tuple

from repro.errors import ReproError
from repro.obs.dashboard import BatchWatch
from repro.obs.metrics import MetricsRegistry


def classify_file(path) -> Tuple[str, Any]:
    """Load one input file as ``("telemetry", records)`` or
    ``("metrics", snapshot)``.

    Telemetry sinks are JSONL (one event object per line); metrics
    snapshots are a single JSON object with a top-level ``"metrics"``
    key.  Anything else is rejected with a :class:`ReproError`.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ReproError(f"cannot read {path}: {exc}") from exc
    stripped = text.strip()
    if not stripped:
        return "telemetry", []
    if stripped.startswith("{"):
        try:
            doc = json.loads(stripped)
        except json.JSONDecodeError:
            doc = None
        if isinstance(doc, dict) and "metrics" in doc:
            return "metrics", doc
    records = []
    for i, line in enumerate(stripped.splitlines()):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ReproError(
                f"{path}:{i + 1} is neither a metrics snapshot nor "
                f"telemetry JSONL: {exc}") from exc
        if not isinstance(record, dict):
            raise ReproError(
                f"{path}:{i + 1}: telemetry records must be objects")
        records.append(record)
    return "telemetry", records


def aggregate(paths: Iterable) -> Dict[str, Any]:
    """Fold every input file into one report dict."""
    registry = MetricsRegistry(enabled=True)
    combined = BatchWatch()
    files: List[Dict[str, Any]] = []
    metrics_files = 0
    for path in paths:
        kind, payload = classify_file(path)
        if kind == "metrics":
            registry.merge_snapshot(payload)
            metrics_files += 1
            files.append({"path": str(path), "kind": "metrics",
                          "metrics": len(payload.get("metrics", {}))})
            continue
        watch = BatchWatch()
        watch.update_all(payload)
        combined.update_all(payload)
        entry = {"path": str(path), "kind": "telemetry",
                 "events": len(payload)}
        entry.update(watch.snapshot())
        files.append(entry)

    report: Dict[str, Any] = {"files": files}
    report.update(combined.snapshot())
    report["failures"] = [
        {"label": f.get("label", "?"), "error": f.get("error", "?")}
        for f in combined.failures
    ]
    if combined.workers:
        report["fleet"] = combined.fleet()
    if combined.cache_stats:
        report["cache"] = combined.cache_stats
    if metrics_files:
        report["metrics"] = registry.snapshot()["metrics"]
    return report


def format_report(report: Dict[str, Any]) -> str:
    """Human-readable report block."""
    jobs_line = (f"  jobs    : {report['jobs_total']} total | "
                 f"{report['done']} done | {report['failed']} failed | "
                 f"{report['cached']} cached | "
                 f"{report['retried']} retried")
    if report.get("resumed"):
        jobs_line += f" | {report['resumed']} resumed"
    if report.get("skipped"):
        jobs_line += f" | {report['skipped']} skipped"
    lines = [
        "observability report",
        jobs_line,
        (f"  cycles  : {report['simulated_cycles']:,} simulated over "
         f"{report['elapsed_seconds']:.3f}s wall"),
        f"  cache   : {report['cache_hit_rate'] * 100:.1f}% hit rate",
    ]
    if report.get("cache"):
        cs = report["cache"]
        store = (
            f"  store   : {cs.get('entries', 0)} entries, "
            f"{cs.get('hits', 0)} hits, {cs.get('misses', 0)} misses, "
            f"{cs.get('evictions', 0)} evictions")
        if cs.get("quarantined"):
            store += f", {cs['quarantined']} quarantined"
        lines.append(store)
    if report.get("fleet"):
        lines.append(
            f"  fleet   : {report.get('workers_alive', 0)}/"
            f"{report.get('workers_seen', 0)} workers alive | "
            f"{report.get('leases_expired', 0)} leases expired | "
            f"{report.get('leases_reclaimed', 0)} reclaimed")
        for worker, info in report["fleet"].items():
            lines.append(
                f"    {worker}: {info['jobs_done']} done"
                + (f", {info['jobs_failed']} failed"
                   if info.get("jobs_failed") else "")
                + f", {info['jobs_per_second']:.2f} jobs/s")
    for failure in report.get("failures", []):
        lines.append(f"  FAILED  : {failure['label']}: {failure['error']}")
    for entry in report["files"]:
        if entry["kind"] == "telemetry":
            lines.append(
                f"  file    : {entry['path']} ({entry['events']} events)")
        else:
            lines.append(
                f"  file    : {entry['path']} "
                f"({entry['metrics']} metric(s))")
    metrics = report.get("metrics")
    if metrics:
        lines.append("  metrics :")
        for name in sorted(metrics):
            entry = metrics[name]
            if entry.get("kind") == "histogram":
                total = sum(s.get("count", 0)
                            for s in entry.get("series", []))
                lines.append(f"    {name} (histogram, {total} samples)")
            else:
                total = sum(s.get("value", 0.0)
                            for s in entry.get("series", []))
                lines.append(f"    {name} = {total:g}")
    return "\n".join(lines)
