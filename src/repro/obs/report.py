"""Offline aggregation of telemetry and metrics files.

``python -m repro report runs.jsonl metrics.json [--json]`` folds any
mix of telemetry JSONL sinks (batch-engine event streams) and metrics
snapshots (:meth:`~repro.obs.metrics.MetricsRegistry.save` output)
into one summary — job counts, simulated cycles, wall time, cache
counters, failure list, merged metrics — suitable for a CI artifact or
a quick terminal read after a long batch.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Tuple

from repro.errors import ReproError
from repro.obs.dashboard import BatchWatch
from repro.obs.metrics import MetricsRegistry, percentile_from_counts
from repro.obs.profile import PhaseProfiler


def classify_file(path) -> Tuple[str, Any]:
    """Load one input file as ``("telemetry", records)``,
    ``("metrics", snapshot)`` or ``("profile", snapshot)``.

    Telemetry sinks are JSONL (one event object per line); metrics
    snapshots are a single JSON object with a top-level ``"metrics"``
    key; host-profiler snapshots
    (:meth:`~repro.obs.profile.PhaseProfiler.save`) have a top-level
    ``"profile"`` key.  Anything else is rejected with a
    :class:`ReproError`.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ReproError(f"cannot read {path}: {exc}") from exc
    stripped = text.strip()
    if not stripped:
        return "telemetry", []
    if stripped.startswith("{"):
        try:
            doc = json.loads(stripped)
        except json.JSONDecodeError:
            doc = None
        if isinstance(doc, dict) and "metrics" in doc:
            return "metrics", doc
        if isinstance(doc, dict) and "profile" in doc:
            return "profile", doc
    records = []
    for i, line in enumerate(stripped.splitlines()):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ReproError(
                f"{path}:{i + 1} is neither a metrics snapshot nor "
                f"telemetry JSONL: {exc}") from exc
        if not isinstance(record, dict):
            raise ReproError(
                f"{path}:{i + 1}: telemetry records must be objects")
        records.append(record)
    return "telemetry", records


def aggregate(paths: Iterable) -> Dict[str, Any]:
    """Fold every input file into one report dict."""
    registry = MetricsRegistry(enabled=True)
    profiler = PhaseProfiler(enabled=True)
    combined = BatchWatch()
    files: List[Dict[str, Any]] = []
    metrics_files = profile_files = 0
    for path in paths:
        kind, payload = classify_file(path)
        if kind == "metrics":
            registry.merge_snapshot(payload)
            metrics_files += 1
            files.append({"path": str(path), "kind": "metrics",
                          "metrics": len(payload.get("metrics", {}))})
            continue
        if kind == "profile":
            profiler.merge_snapshot(payload)
            profile_files += 1
            files.append({"path": str(path), "kind": "profile",
                          "phases": len(payload.get("profile", {})
                                        .get("phases", {}))})
            continue
        watch = BatchWatch()
        watch.update_all(payload)
        combined.update_all(payload)
        entry = {"path": str(path), "kind": "telemetry",
                 "events": len(payload)}
        entry.update(watch.snapshot())
        files.append(entry)

    report: Dict[str, Any] = {"files": files}
    report.update(combined.snapshot())
    report["failures"] = [
        {"label": f.get("label", "?"), "error": f.get("error", "?")}
        for f in combined.failures
    ]
    if combined.workers:
        report["fleet"] = combined.fleet()
    if combined.cache_stats:
        report["cache"] = combined.cache_stats
    if metrics_files:
        report["metrics"] = registry.snapshot()["metrics"]
    if profile_files:
        report["host_profile"] = profiler.summary()
    elif combined.profile_summary is not None:
        # No standalone snapshot files, but the telemetry stream
        # carried a batch-end rollup — surface that one instead.
        report["host_profile"] = {
            k: combined.profile_summary[k]
            for k in ("kernels", "sim_wall_seconds",
                      "cycles_per_wall_second", "coverage",
                      "top_phases")
            if k in combined.profile_summary
        }
    return report


def format_report(report: Dict[str, Any]) -> str:
    """Human-readable report block."""
    jobs_line = (f"  jobs    : {report['jobs_total']} total | "
                 f"{report['done']} done | {report['failed']} failed | "
                 f"{report['cached']} cached | "
                 f"{report['retried']} retried")
    if report.get("resumed"):
        jobs_line += f" | {report['resumed']} resumed"
    if report.get("skipped"):
        jobs_line += f" | {report['skipped']} skipped"
    lines = [
        "observability report",
        jobs_line,
        (f"  cycles  : {report['simulated_cycles']:,} simulated over "
         f"{report['elapsed_seconds']:.3f}s wall"),
        f"  cache   : {report['cache_hit_rate'] * 100:.1f}% hit rate",
    ]
    if report.get("digest_records"):
        lines.append(
            f"  digests : {report['digest_records']:,} provenance "
            f"ledger record(s) shipped (REPRO_DIGEST)")
    if report.get("cache"):
        cs = report["cache"]
        store = (
            f"  store   : {cs.get('entries', 0)} entries, "
            f"{cs.get('hits', 0)} hits, {cs.get('misses', 0)} misses, "
            f"{cs.get('evictions', 0)} evictions")
        if cs.get("quarantined"):
            store += f", {cs['quarantined']} quarantined"
        lines.append(store)
    if report.get("fleet"):
        lines.append(
            f"  fleet   : {report.get('workers_alive', 0)}/"
            f"{report.get('workers_seen', 0)} workers alive | "
            f"{report.get('leases_expired', 0)} leases expired | "
            f"{report.get('leases_reclaimed', 0)} reclaimed")
        for worker, info in report["fleet"].items():
            lines.append(
                f"    {worker}: {info['jobs_done']} done"
                + (f", {info['jobs_failed']} failed"
                   if info.get("jobs_failed") else "")
                + f", {info['jobs_per_second']:.2f} jobs/s")
    profile = report.get("host_profile")
    if profile:
        lines.append(
            f"  profile : {profile.get('kernels', 0)} kernel(s), "
            f"{profile.get('sim_wall_seconds', 0.0):.3f}s simulator "
            f"wall, {profile.get('cycles_per_wall_second', 0.0):,.0f} "
            f"cycles/s, {profile.get('coverage', 0.0) * 100:.1f}% "
            f"coverage")
        phases = profile.get("phases")
        if phases:
            for p in phases[:8]:
                lines.append(
                    f"    {p['phase']:<12} {p['seconds']:>9.3f}s "
                    f"{p['share'] * 100:>5.1f}%  "
                    f"{p['calls']:>12,} calls")
        else:
            for entry in profile.get("top_phases", [])[:8]:
                name, seconds, calls = entry
                lines.append(
                    f"    {name:<12} {float(seconds):>9.3f}s "
                    f"{int(calls):>12,} calls")
    for failure in report.get("failures", []):
        lines.append(f"  FAILED  : {failure['label']}: {failure['error']}")
    for entry in report["files"]:
        if entry["kind"] == "telemetry":
            lines.append(
                f"  file    : {entry['path']} ({entry['events']} events)")
        elif entry["kind"] == "profile":
            lines.append(
                f"  file    : {entry['path']} "
                f"({entry['phases']} profiled phase(s))")
        else:
            lines.append(
                f"  file    : {entry['path']} "
                f"({entry['metrics']} metric(s))")
    metrics = report.get("metrics")
    if metrics:
        lines.append("  metrics :")
        for name in sorted(metrics):
            entry = metrics[name]
            if entry.get("kind") == "histogram":
                # Percentile estimates over every labelled series
                # merged — readable at a glance, unlike bucket dumps.
                bounds = entry.get("buckets", [])
                merged = [0] * (len(bounds) + 1)
                total = 0
                for s in entry.get("series", []):
                    total += s.get("count", 0)
                    for i, c in enumerate(s.get("counts", [])):
                        if i < len(merged):
                            merged[i] += c
                line = f"    {name} (histogram, {total} samples"
                if total and bounds:
                    p50 = percentile_from_counts(bounds, merged, 50)
                    p90 = percentile_from_counts(bounds, merged, 90)
                    p99 = percentile_from_counts(bounds, merged, 99)
                    line += (f"; p50<={p50:g} p90<={p90:g} "
                             f"p99<={p99:g}")
                lines.append(line + ")")
            else:
                total = sum(s.get("value", 0.0)
                            for s in entry.get("series", []))
                lines.append(f"    {name} = {total:g}")
    return "\n".join(lines)
