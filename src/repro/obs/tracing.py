"""Span tracing with Chrome ``trace_event`` export.

A :class:`Tracer` collects wall-clock :class:`Span`s — kernel phases
in the :class:`~repro.frontend.framework.GraphProcessor`, per-job
lifecycle in the batch engine — and serializes them as Chrome
trace-event JSON, loadable in ``chrome://tracing`` or Perfetto.

Two clocks coexist in one trace file:

* **wall spans** (``ph: "X"`` complete events) use microseconds since
  the tracer was created;
* **simulated-cycle events** converted from an
  :class:`~repro.sim.trace.ExecutionTracer` by
  :func:`execution_trace_events` use one timestamp unit per simulated
  cycle, one Perfetto *process* per core and one *thread* row per warp
  (instruction spans) or stall class (stall spans).

Timestamps within each track are monotonic, which is all the viewers
require.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional


@dataclass
class Span:
    """One completed (or in-flight) wall-clock span."""

    name: str
    cat: str
    ts_us: float
    dur_us: float = 0.0
    tid: str = "main"
    args: Dict[str, Any] = field(default_factory=dict)

    def to_event(self, pid: int, tid: int) -> Dict[str, Any]:
        """Chrome ``trace_event`` complete-event form."""
        return {
            "ph": "X",
            "name": self.name,
            "cat": self.cat,
            "ts": round(self.ts_us, 3),
            "dur": round(max(self.dur_us, 0.001), 3),
            "pid": pid,
            "tid": tid,
            "args": self.args,
        }


class _NullSpan:
    """Span stand-in for a disabled tracer (args go nowhere useful)."""

    __slots__ = ("args",)

    def __init__(self) -> None:
        self.args: Dict[str, Any] = {}


class Tracer:
    """Collects spans and instants; exports Chrome trace JSON."""

    def __init__(self, enabled: bool = True, pid: Optional[int] = None) -> None:
        self.enabled = enabled
        self.pid = os.getpid() if pid is None else pid
        self.spans: List[Span] = []
        self.instants: List[Dict[str, Any]] = []
        self._t0 = time.perf_counter()

    # ------------------------------------------------------------------
    @property
    def epoch(self) -> float:
        """``perf_counter`` origin of this tracer's wall clock.

        External event producers (the host :class:`~repro.obs.profile.
        StackSampler`) anchor their timestamps here so their spans line
        up with this tracer's in one Perfetto view.
        """
        return self._t0

    def now_us(self) -> float:
        """Microseconds since this tracer was created."""
        return (time.perf_counter() - self._t0) * 1e6

    @contextmanager
    def span(self, name: str, cat: str = "phase", tid: str = "main",
             **args):
        """Context manager timing one span.

        Yields the :class:`Span` so the body can attach result args::

            with tracer.span("gather", iteration=3) as sp:
                stats = run(...)
                sp.args["cycles"] = stats.total_cycles
        """
        if not self.enabled:
            yield _NullSpan()
            return
        span = Span(name=name, cat=cat, ts_us=self.now_us(), tid=tid,
                    args=dict(args))
        try:
            yield span
        finally:
            span.dur_us = self.now_us() - span.ts_us
            self.spans.append(span)

    def add_span(self, name: str, cat: str, ts_us: float, dur_us: float,
                 tid: str = "main", **args) -> None:
        """Record a span whose endpoints were measured elsewhere."""
        if not self.enabled:
            return
        self.spans.append(Span(name, cat, ts_us, dur_us, tid, dict(args)))

    def instant(self, name: str, cat: str = "mark", tid: str = "main",
                **args) -> None:
        """Record a zero-duration marker."""
        if not self.enabled:
            return
        self.instants.append({
            "ph": "i", "name": name, "cat": cat, "s": "t",
            "ts": round(self.now_us(), 3), "tid": tid,
            "args": dict(args),
        })

    # ------------------------------------------------------------------
    def chrome_trace(self, extra_events: Iterable[Dict[str, Any]] = ()
                     ) -> Dict[str, Any]:
        """The full trace document (``{"traceEvents": [...]}``).

        ``extra_events`` lets callers splice in pre-built events, e.g.
        :func:`execution_trace_events` output.
        """
        tids: Dict[str, int] = {}
        events: List[Dict[str, Any]] = [{
            "ph": "M", "name": "process_name", "pid": self.pid, "tid": 0,
            "args": {"name": "repro"},
        }]

        def tid_of(name: str) -> int:
            if name not in tids:
                tids[name] = len(tids)
                events.append({
                    "ph": "M", "name": "thread_name", "pid": self.pid,
                    "tid": tids[name], "args": {"name": name},
                })
            return tids[name]

        for span in sorted(self.spans, key=lambda s: s.ts_us):
            events.append(span.to_event(self.pid, tid_of(span.tid)))
        for inst in sorted(self.instants, key=lambda e: e["ts"]):
            event = dict(inst)
            event["pid"] = self.pid
            event["tid"] = tid_of(event.pop("tid", "main"))
            events.append(event)
        events.extend(extra_events)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def save(self, path, extra_events: Iterable[Dict[str, Any]] = ()
             ) -> Path:
        """Write :meth:`chrome_trace` as JSON; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.chrome_trace(extra_events)) + "\n")
        return path

    def __len__(self) -> int:
        return len(self.spans) + len(self.instants)


#: A shared disabled tracer — callers may use it as a default so hot
#: paths never branch on ``tracer is None``.
NULL_TRACER = Tracer(enabled=False)


# ----------------------------------------------------------------------
# Simulated-cycle events from an ExecutionTracer
# ----------------------------------------------------------------------
def execution_trace_events(exec_tracer, pid_base: int = 1000,
                           ts_offset: int = 0,
                           label: str = "sim") -> List[Dict[str, Any]]:
    """Convert an :class:`~repro.sim.trace.ExecutionTracer` to events.

    One Perfetto process per simulated core (``pid_base + core``); one
    thread row per warp carrying instruction spans (name = opcode,
    category = execution phase), plus one row per stall class carrying
    the attributed stall spans recorded by the simulator.  Timestamps
    are simulated cycles (rendered as microseconds by the viewer).

    ``label`` names the process rows (``"<label> core N"``) so two
    tracers rendered into one file — ``repro diff --replay`` puts run A
    and run B side by side under distinct ``pid_base`` ranges — stay
    tellable apart in the viewer.
    """
    events: List[Dict[str, Any]] = []
    cores = sorted({e.core for e in exec_tracer.events}
                   | {s.core for s in getattr(exec_tracer, "stalls", [])})
    for core in cores:
        events.append({
            "ph": "M", "name": "process_name", "pid": pid_base + core,
            "tid": 0, "args": {"name": f"{label} core {core}"},
        })
    named: set = set()
    for e in exec_tracer.events:
        pid = pid_base + e.core
        if (pid, e.warp) not in named:
            named.add((pid, e.warp))
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid,
                "tid": e.warp, "args": {"name": f"warp {e.warp}"},
            })
        events.append({
            "ph": "X", "name": e.op.name, "cat": e.phase.name,
            "ts": e.time + ts_offset, "dur": max(e.latency, 1),
            "pid": pid, "tid": e.warp,
            "args": {"warp": e.warp, "core": e.core},
        })
    for s in getattr(exec_tracer, "stalls", []):
        pid = pid_base + s.core
        tid = 100 + int(s.cat)
        if (pid, tid) not in named:
            named.add((pid, tid))
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid,
                "tid": tid, "args": {"name": f"stall:{s.cat.name}"},
            })
        events.append({
            "ph": "X", "name": f"stall:{s.cat.name}", "cat": "stall",
            "ts": s.time + ts_offset, "dur": max(s.cycles, 1),
            "pid": pid, "tid": tid,
            "args": {"warp": s.warp, "cycles": s.cycles},
        })
    return events
