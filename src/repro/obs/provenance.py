"""Execution provenance: rolling state digests and divergence ledgers.

When two runs of the same job disagree — a fast-path engine against the
reference interpreter, a perturbed configuration against a baseline, a
fleet worker against a serial run — a pass/fail cycle comparison says
*that* they diverged but not *where*.  This module makes the "where"
cheap to capture and mechanical to find:

* :class:`StateDigester` — guarded hooks in the simulator hot path
  (:mod:`repro.sim.gpu` issue/stall accounting, :mod:`repro.sim.memory`
  accesses, :mod:`repro.sim.cache` lookups, :mod:`repro.sim.stats`
  merges) fold architectural state into **rolling 64-bit digests**, one
  stream per ``(core, warp)`` closed every ``interval_cycles`` simulated
  cycles.  The result is a per-job **digest ledger**: an ordered list of
  ``[kernel, interval, core, warp, digest, events]`` records small
  enough to ride inside a :class:`~repro.runtime.cache.RunSummary`,
  through the run journal, the result cache and the fleet protocol.
* ledger comparison helpers — :func:`diff_ledgers` /
  :func:`first_divergence` bisect two ledgers to the first coordinate
  whose digests disagree, which is exactly the first simulated interval
  at which the two executions stopped being the same machine.

Same guard discipline as :class:`~repro.obs.profile.PhaseProfiler`:
disabled (``REPRO_DIGEST`` unset) every hook is one local truth test,
no clock reads, no allocation — simulated cycle counts and summary
dicts are bit-identical with or without the module imported.  Digests
fold only *simulated* values (times, opcodes, latencies, counts), so an
enabled digester never perturbs cycles either; it can only observe.

Digest grammar (all integers, folded with 64-bit FNV-1a so the value is
identical across processes and Python versions — ``hash()`` is not):

* warp stream ``(k, i, c, w >= 0)`` — tagged issue events
  ``(1, t, op, phase, done)`` and stall events ``(2, t, cat, cycles)``;
* memory stream ``(k, i, c, -1)`` — per-access ``(t, lines, latency)``
  traffic of core ``c``;
* kernel summary ``(k, -1, -1, -1)`` — total cycles, instructions,
  DRAM fills, sorted stall cells and per-level cache hit/miss counts;
* merge stream ``(-1, -1, -1, -1)`` — the order and content of
  :meth:`~repro.sim.stats.KernelStats.merge` calls across the job.

Coordinates use ``-1`` as "not applicable"; :func:`sort_key` orders
summary records after the interval streams they summarize, so "first
divergence" always lands on the finest-grained record available.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: Environment switch; any non-empty value enables digest capture.
DIGEST_ENV = "REPRO_DIGEST"

#: Environment override for the digest interval (simulated cycles).
INTERVAL_ENV = "REPRO_DIGEST_INTERVAL"

#: Default rolling-digest interval.  8192 cycles keeps smoke-bench
#: ledgers at tens of records per kernel while still localizing a
#: divergence to well under one kernel iteration.
DEFAULT_INTERVAL = 8192

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK = (1 << 64) - 1

#: Coordinate of one ledger record: (kernel, interval, core, warp).
Coord = Tuple[int, int, int, int]


def fold(h: int, value: int) -> int:
    """Fold one integer into a rolling 64-bit FNV-1a digest.

    Explicit arithmetic (not Python ``hash()``) so the digest of the
    same event stream is identical across interpreter versions,
    processes and machines — ledgers from a fleet worker must compare
    equal to serial ones bit-for-bit.
    """
    return ((h ^ (value & _MASK)) * _FNV_PRIME) & _MASK


def digest_hex(h: int) -> str:
    """Canonical 16-hex-digit rendering of a digest value."""
    return f"{h:016x}"


def resolve_interval(value: Optional[int] = None) -> int:
    """The digest interval: explicit arg, else env, else the default."""
    if value is not None:
        return max(1, int(value))
    raw = os.environ.get(INTERVAL_ENV, "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass  # a garbled override falls back to the default
    return DEFAULT_INTERVAL


class StateDigester:
    """Rolling per-interval digests of simulated architectural state.

    The simulator calls :meth:`note_issue` / :meth:`note_stall` /
    :meth:`note_mem` / :meth:`note_cache` only after hoisting
    :attr:`enabled` into a local (the PhaseProfiler guard discipline),
    so a disabled digester costs one comparison per instrumented
    section and a job's summary is byte-identical to one produced
    before this module existed.
    """

    def __init__(self, enabled: bool = False,
                 interval_cycles: Optional[int] = None) -> None:
        self.enabled = enabled
        self.interval_cycles = resolve_interval(interval_cycles)
        #: Closed records: [kernel, interval, core, warp, hex, events].
        self._records: List[List[Any]] = []
        #: Open streams: (core, warp) -> [interval, digest, events].
        self._streams: Dict[Tuple[int, int], List[int]] = {}
        #: Per-level cache hit/miss counts for the current kernel.
        self._cache_counts: Dict[str, List[int]] = {}
        self._kernel = -1
        self._merge_digest = _FNV_OFFSET
        self._merge_events = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def begin_job(self) -> None:
        """Reset all state; the next kernel is index 0."""
        self._records = []
        self._streams = {}
        self._cache_counts = {}
        self._kernel = -1
        self._merge_digest = _FNV_OFFSET
        self._merge_events = 0

    def begin_kernel(self) -> None:
        """Advance to the next kernel in launch order."""
        self._flush_streams()  # safety: a kernel that never ended
        self._kernel += 1
        self._cache_counts = {}

    def end_kernel(self, stats) -> None:
        """Close the kernel: flush streams, emit its summary record.

        ``stats`` is the kernel's :class:`~repro.sim.stats.KernelStats`
        (duck-typed; only plain counters are read), captured after the
        engine folded stall cells and per-kernel cache/DRAM deltas.
        """
        self._flush_streams()
        h = _FNV_OFFSET
        h = fold(h, int(stats.total_cycles))
        h = fold(h, int(stats.instructions))
        h = fold(h, int(stats.warps_launched))
        h = fold(h, int(stats.dram_accesses))
        for (core, warp, cat), cycles in sorted(
                ((int(c), int(w), int(s)), int(v))
                for (c, w, s), v in stats.stall_cells.items()):
            h = fold(h, core)
            h = fold(h, warp)
            h = fold(h, cat)
            h = fold(h, cycles)
        for level in sorted(self._cache_counts):
            hits, misses = self._cache_counts[level]
            for ch in level.encode("utf-8"):
                h = fold(h, ch)
            h = fold(h, hits)
            h = fold(h, misses)
        self._records.append([self._kernel, -1, -1, -1, digest_hex(h),
                              int(stats.instructions)])

    def take_ledger(self) -> Optional[List[List[Any]]]:
        """The job's closed ledger (and reset), or ``None`` if empty."""
        self._flush_streams()
        if self._merge_events:
            self._records.append([-1, -1, -1, -1,
                                  digest_hex(self._merge_digest),
                                  self._merge_events])
        records, self._records = self._records, []
        self._streams = {}
        self._cache_counts = {}
        self._kernel = -1
        self._merge_digest = _FNV_OFFSET
        self._merge_events = 0
        return records or None

    # ------------------------------------------------------------------
    # hot-path notes (call only with ``enabled`` hoisted true)
    # ------------------------------------------------------------------
    def _stream(self, core: int, warp: int, t: int) -> List[int]:
        """The open interval cell for ``(core, warp)`` at time ``t``."""
        key = (core, warp)
        iv = t // self.interval_cycles
        cell = self._streams.get(key)
        if cell is None:
            cell = [iv, _FNV_OFFSET, 0]
            self._streams[key] = cell
        elif iv > cell[0]:
            self._records.append([self._kernel, cell[0], core, warp,
                                  digest_hex(cell[1]), cell[2]])
            cell[0] = iv
            cell[1] = _FNV_OFFSET
            cell[2] = 0
        return cell

    def note_issue(self, t: int, core: int, warp: int, op: int,
                   phase: int, done: int) -> None:
        """Fold one issued instruction into the warp's stream."""
        cell = self._stream(core, warp, t)
        h = cell[1]
        h = fold(h, 1)
        h = fold(h, t)
        h = fold(h, op)
        h = fold(h, phase)
        h = fold(h, done)
        cell[1] = h
        cell[2] += 1

    def note_stall(self, t: int, core: int, warp: int, cat: int,
                   cycles: int) -> None:
        """Fold one attributed stall gap into the warp's stream."""
        cell = self._stream(core, warp, t)
        h = cell[1]
        h = fold(h, 2)
        h = fold(h, t)
        h = fold(h, cat)
        h = fold(h, cycles)
        cell[1] = h
        cell[2] += 1

    def note_mem(self, t: int, core: int, lines: int,
                 latency: int) -> None:
        """Fold one coalesced memory access into the core's stream."""
        cell = self._stream(core, -1, t)
        h = cell[1]
        h = fold(h, t)
        h = fold(h, lines)
        h = fold(h, latency)
        cell[1] = h
        cell[2] += 1

    def note_cache(self, level: str, hit: bool) -> None:
        """Count one cache lookup (folded at kernel end, per level)."""
        cell = self._cache_counts.get(level)
        if cell is None:
            cell = [0, 0]
            self._cache_counts[level] = cell
        cell[0 if hit else 1] += 1

    def note_merge(self, total_cycles: int, instructions: int) -> None:
        """Fold one :meth:`KernelStats.merge` into the merge stream."""
        h = self._merge_digest
        h = fold(h, total_cycles)
        h = fold(h, instructions)
        self._merge_digest = h
        self._merge_events += 1

    # ------------------------------------------------------------------
    def _flush_streams(self) -> None:
        """Close every open interval stream into the record list."""
        if not self._streams:
            return
        for (core, warp), cell in sorted(self._streams.items()):
            self._records.append([self._kernel, cell[0], core, warp,
                                  digest_hex(cell[1]), cell[2]])
        self._streams = {}


# ----------------------------------------------------------------------
# Process-global digester (the instance the simulator hooks use)
# ----------------------------------------------------------------------
_DIGESTER = StateDigester(
    enabled=bool(os.environ.get(DIGEST_ENV, "").strip())
)


def get_digester() -> StateDigester:
    """The process-global digester the simulator hot path consults."""
    return _DIGESTER


def digests_enabled() -> bool:
    """Whether the global digester is collecting."""
    return _DIGESTER.enabled


def enable_digests(interval_cycles: Optional[int] = None
                   ) -> StateDigester:
    """Turn the global digester on; returns it for convenience.

    Also exports ``REPRO_DIGEST=1`` (and the interval override, when
    given) so worker processes spawned later — pool or fleet — come up
    digesting, and the ledgers they ship home are comparable.
    """
    _DIGESTER.enabled = True
    os.environ[DIGEST_ENV] = "1"
    if interval_cycles is not None:
        _DIGESTER.interval_cycles = max(1, int(interval_cycles))
        os.environ[INTERVAL_ENV] = str(_DIGESTER.interval_cycles)
    return _DIGESTER


def disable_digests(clear: bool = False) -> StateDigester:
    """Turn the global digester off (optionally dropping its state)."""
    _DIGESTER.enabled = False
    os.environ.pop(DIGEST_ENV, None)
    if clear:
        _DIGESTER.begin_job()
    return _DIGESTER


# ----------------------------------------------------------------------
# Ledger comparison
# ----------------------------------------------------------------------
_LATE = 1 << 62  # sentinel coordinates sort after real ones


def sort_key(coord: Coord) -> Tuple[int, int, int, int]:
    """Comparison order: interval streams first, summaries after them.

    ``-1`` coordinates mean "summary over everything at this level", so
    they sort *after* the records they summarize — a first divergence
    then always names the finest record that disagrees.
    """
    return tuple(v if v >= 0 else _LATE for v in coord)  # type: ignore


def ledger_index(ledger: Optional[Iterable[Iterable[Any]]]
                 ) -> Dict[Coord, Tuple[str, int]]:
    """A ledger as ``{(k, i, c, w): (digest, events)}``.

    Tolerates JSON round-trips (coordinates arrive as ints or floats)
    and ``None`` / empty ledgers (an older run with no digests).
    """
    out: Dict[Coord, Tuple[str, int]] = {}
    for record in ledger or ():
        k, i, c, w, digest, events = record
        out[(int(k), int(i), int(c), int(w))] = (str(digest),
                                                 int(events))
    return out


def diff_ledgers(a, b) -> List[Dict[str, Any]]:
    """Every diverging coordinate between two ledgers, in sort order.

    Each divergence is ``{"coord", "a", "b", "events_a", "events_b"}``
    with ``None`` digests for records present on only one side.  An
    empty list means the ledgers are identical.
    """
    ia, ib = ledger_index(a), ledger_index(b)
    out: List[Dict[str, Any]] = []
    for coord in sorted(set(ia) | set(ib), key=sort_key):
        da, ea = ia.get(coord, (None, None))
        db, eb = ib.get(coord, (None, None))
        if da != db:
            out.append({"coord": coord, "a": da, "b": db,
                        "events_a": ea, "events_b": eb})
    return out


def first_divergence(a, b) -> Optional[Dict[str, Any]]:
    """The earliest diverging coordinate, or ``None`` when clean."""
    diffs = diff_ledgers(a, b)
    return diffs[0] if diffs else None


def context_window(a, b, coord: Coord, context: int = 3
                   ) -> List[Dict[str, Any]]:
    """Rows around ``coord``: the matched/diverged neighborhood.

    Returns up to ``context`` records before and after the coordinate
    (in sort order) from the union of both ledgers, each row carrying
    both sides' digests and a ``"match"`` flag — the side-by-side view
    ``repro diff`` prints.
    """
    ia, ib = ledger_index(a), ledger_index(b)
    coords = sorted(set(ia) | set(ib), key=sort_key)
    coord = tuple(int(v) for v in coord)  # type: ignore
    try:
        center = coords.index(coord)
    except ValueError:
        return []
    rows = []
    for c in coords[max(0, center - context):center + context + 1]:
        da, ea = ia.get(c, (None, None))
        db, eb = ib.get(c, (None, None))
        rows.append({"coord": c, "a": da, "b": db, "events_a": ea,
                     "events_b": eb, "match": da == db})
    return rows


def describe_coord(coord: Coord) -> str:
    """Human name of a ledger coordinate."""
    k, i, c, w = (int(v) for v in coord)
    if k < 0:
        return "stats-merge stream"
    if i < 0:
        return f"kernel {k} summary"
    if w < 0:
        return f"kernel {k} interval {i} core {c} memory stream"
    return f"kernel {k} interval {i} core {c} warp {w}"


# ----------------------------------------------------------------------
# Run-ledger loaders (``repro diff`` sources)
# ----------------------------------------------------------------------
def ledgers_from_journal(path) -> Dict[str, Dict[str, Any]]:
    """``label -> summary dict`` from a run journal's completions.

    A deliberately tolerant reader: torn or non-JSON lines, non-object
    records and lease/reclaim bookkeeping are skipped, and *no* schema
    or simulator-version gate is applied — diffing a ledger from an
    older build against today's is precisely the point.  The label
    (falling back to the content hash) keys the result so perturbed
    re-runs, whose hashes differ by construction, still pair up.
    """
    import json

    out: Dict[str, Dict[str, Any]] = {}
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn line
            if not isinstance(record, dict):
                continue
            if record.get("type", "complete") != "complete":
                continue
            summary = record.get("summary")
            if not isinstance(summary, dict):
                continue
            label = record.get("label") or record.get("hash") or "?"
            out[str(label)] = summary
    return out


def ledgers_from_cache_dir(path) -> Dict[str, Dict[str, Any]]:
    """``label -> summary dict`` from a result-cache directory."""
    import json
    from pathlib import Path

    out: Dict[str, Dict[str, Any]] = {}
    for entry_path in sorted(Path(path).glob("*.json")):
        try:
            entry = json.loads(entry_path.read_text())
        except (OSError, ValueError):
            continue
        if not isinstance(entry, dict):
            continue
        summary = entry.get("summary")
        if not isinstance(summary, dict):
            continue
        label = entry.get("label") or entry_path.stem
        out[str(label)] = summary
    return out


# ----------------------------------------------------------------------
# Replay support
# ----------------------------------------------------------------------
class KernelWindowTracer:
    """An :class:`~repro.sim.trace.ExecutionTracer` gate for one kernel.

    ``repro diff --replay`` re-runs a job recording only the diverging
    kernel: the simulator's duck-typed ``begin_kernel`` notification
    advances the launch counter, and instruction/stall events delegate
    to the wrapped tracer only while the counter matches ``target`` —
    full per-cycle capture of one kernel without paying for the rest.
    """

    def __init__(self, target: int, max_events: int = 200_000) -> None:
        from repro.sim.trace import ExecutionTracer

        self.target = int(target)
        self.kernel = -1
        self.inner = ExecutionTracer(max_events=max_events)

    def begin_kernel(self) -> None:
        """Duck-typed launch notification from ``GPU.run_kernel``."""
        self.kernel += 1

    @property
    def active(self) -> bool:
        """Whether events are currently being captured."""
        return self.kernel == self.target

    def record(self, time, core, warp, op, phase, done) -> None:
        if self.kernel == self.target:
            self.inner.record(time, core, warp, op, phase, done)

    def record_stall(self, time, core, warp, cat, cycles) -> None:
        if self.kernel == self.target:
            self.inner.record_stall(time, core, warp, cat, cycles)
