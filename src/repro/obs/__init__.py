"""Unified observability: metrics, span tracing, dashboards, reports.

The layer that explains where cycles and wall time go — the repo-side
analog of the profiling views the paper's evaluation leans on (Fig. 4
stall breakdowns, Fig. 12 memory ratios):

* :mod:`repro.obs.metrics` — process-local counters / gauges /
  histograms with labels; a cheap no-op when disabled (the default);
  snapshot/merge for aggregating across worker processes.  Enable via
  ``REPRO_OBS=1`` or :func:`enable_metrics`.
* :mod:`repro.obs.tracing` — wall-clock :class:`Span`s (kernel phases,
  engine job lifecycle) plus simulated-cycle instruction/stall events,
  exported together as Chrome ``trace_event`` JSON for
  ``chrome://tracing`` / Perfetto.
* :mod:`repro.obs.dashboard` — ``python -m repro tail events.jsonl``:
  a live, refreshing terminal view of a running batch.
* :mod:`repro.obs.report` — ``python -m repro report`` aggregation of
  telemetry sinks and metrics snapshots into one text/JSON summary.
* :mod:`repro.obs.profile` — host-side self-profiler (wall-time per
  simulator phase, per-opcode latency histograms, flamegraph
  sampler) and the ``perf_history.jsonl`` trajectory store behind
  ``python -m repro perf``.  Enable via ``REPRO_PROFILE=1`` or
  :func:`enable_profiling`.
* :mod:`repro.obs.provenance` — rolling digests of simulated
  architectural state and the divergence ledger behind
  ``python -m repro diff``.  Enable via ``REPRO_DIGEST=1`` or
  :func:`enable_digests`.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    get_registry,
    metrics_enabled,
    percentile_from_counts,
)
from repro.obs.profile import (
    PerfHistory,
    PhaseProfiler,
    StackSampler,
    disable_profiling,
    enable_profiling,
    get_profiler,
    profiling_enabled,
)
from repro.obs.provenance import (
    KernelWindowTracer,
    StateDigester,
    diff_ledgers,
    digests_enabled,
    disable_digests,
    enable_digests,
    first_divergence,
    get_digester,
)
from repro.obs.tracing import (
    NULL_TRACER,
    Span,
    Tracer,
    execution_trace_events,
)
from repro.obs.dashboard import BatchWatch, JSONLFollower, render, tail
from repro.obs.report import aggregate, format_report

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "disable_metrics",
    "enable_metrics",
    "get_registry",
    "metrics_enabled",
    "percentile_from_counts",
    "PerfHistory",
    "PhaseProfiler",
    "StackSampler",
    "disable_profiling",
    "enable_profiling",
    "get_profiler",
    "profiling_enabled",
    "KernelWindowTracer",
    "StateDigester",
    "diff_ledgers",
    "digests_enabled",
    "disable_digests",
    "enable_digests",
    "first_divergence",
    "get_digester",
    "NULL_TRACER",
    "Span",
    "Tracer",
    "execution_trace_events",
    "BatchWatch",
    "JSONLFollower",
    "render",
    "tail",
    "aggregate",
    "format_report",
]
