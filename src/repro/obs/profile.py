"""Host-side self-profiler and perf-trajectory history.

Everything else in :mod:`repro.obs` attributes *simulated* cycles
(stall classes, phase cycles); this module attributes **host
wall-time** — where the pure-Python simulator actually spends the
seconds — so optimization work on the interpreter starts from a
measurement instead of a guess.  Three layers:

* :class:`PhaseProfiler` — enter/exit hooks compiled into the
  simulator hot path (:mod:`repro.sim.gpu` warp scheduling and
  execute, :mod:`repro.sim.memory` / :mod:`repro.sim.cache` lookups)
  accumulate wall-seconds and call counts per phase, plus per-opcode
  execute-time histograms and a derived
  ``simulated_cycles_per_wall_second`` per kernel.  Disabled by
  default: every hook is behind a single local truth test, so cycle
  counts stay bit-identical and the overhead is one comparison per
  instrumented section.  Enable with ``REPRO_PROFILE=1`` or
  :func:`enable_profiling`.
* :class:`StackSampler` — an opt-in wall-clock sampler of the main
  thread (a daemon thread polling ``sys._current_frames()``; a
  ``sys.setprofile``/``sys.monitoring`` hook would slow the
  interpreter 2-4x, defeating the measurement, so sampling is the
  deliberate choice).  Emits collapsed-stack lines
  (``a;b;c count`` — flamegraph.pl / speedscope / inferno format) and
  Chrome-trace span events that merge into the existing
  :class:`~repro.obs.tracing.Tracer` export so host-time and
  simulated-time views line up in Perfetto.
* :class:`PerfHistory` — an append-only JSONL trajectory of
  ``bench_perf_trajectory.py`` emissions keyed on git commit and
  simulator version; ``python -m repro perf`` renders it as a table
  with deltas against the previous entry and flags any jobs/s drop
  beyond the CI speed gate's tolerance.

Profiler state crosses process boundaries as snapshots, exactly like
:class:`~repro.obs.metrics.MetricsRegistry`: pool workers and fleet
workers ship :meth:`PhaseProfiler.snapshot` home with their results
and the parent folds them back with :meth:`~PhaseProfiler.merge_snapshot`.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
from bisect import bisect_left
from contextlib import contextmanager
from pathlib import Path
from time import perf_counter
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.metrics import get_registry, percentile_from_counts

#: Environment switch; any non-empty value enables the profiler.
PROFILE_ENV = "REPRO_PROFILE"


def peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes (0 if unknown).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; the value
    is a high-water mark, so it only ever grows.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platform
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(peak if sys.platform == "darwin" else peak * 1024)


def read_rss_bytes() -> int:
    """Current resident set size of this process, in bytes.

    Reads ``/proc/self/statm`` where available (Linux); elsewhere the
    peak is the best cheap proxy — a memory guard built on it still
    trips, just never un-trips.
    """
    try:
        with open("/proc/self/statm", "rb") as handle:
            pages = int(handle.read().split()[1])
        return pages * os.sysconf("SC_PAGESIZE")
    except (OSError, ValueError, IndexError, AttributeError):
        return peak_rss_bytes()

#: Per-opcode execute-time bucket bounds (seconds).  One simulated
#: instruction's host cost sits in the hundreds of nanoseconds to
#: tens of microseconds; the tail buckets catch pathological ops.
OP_BUCKETS: Tuple[float, ...] = (
    5e-7, 1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 1e-3, 1e-2,
)

#: Phase-name convention: names containing ``/`` (``mem/access``,
#: ``mem/l1``) are *nested* inside a top-level phase and are excluded
#: from the coverage total, so wall-time is never double-counted.
NESTED_SEP = "/"


class PhaseProfiler:
    """Wall-time and call-count accumulation per simulator phase.

    Phases are flat named accumulators; the hot path calls
    :meth:`add` / :meth:`add_op` only when :attr:`enabled` is true
    (callers hoist the check into a local), so a disabled profiler
    costs nothing and cannot perturb simulated cycle counts.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        #: phase name -> [seconds, calls]
        self.phases: Dict[str, List[float]] = {}
        #: opcode name -> [seconds, calls, per-bucket counts]
        self.ops: Dict[str, List[Any]] = {}
        self.kernels = 0
        self.sim_wall_seconds = 0.0
        self.sim_cycles = 0
        #: Last totals folded into the metrics registry, so per-kernel
        #: publication ships deltas, never double-counts.
        self._published: Dict[str, Tuple[float, float]] = {}

    # ------------------------------------------------------------------
    # hot-path accumulation
    # ------------------------------------------------------------------
    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        """Accumulate one timed section into phase ``name``."""
        cell = self.phases.get(name)
        if cell is None:
            self.phases[name] = [seconds, calls]
        else:
            cell[0] += seconds
            cell[1] += calls

    def add_op(self, op: str, seconds: float) -> None:
        """Accumulate one instruction execute into the op histogram.

        Also feeds the top-level ``execute`` phase, so the per-opcode
        view decomposes it rather than adding to it.
        """
        self.add("execute", seconds)
        cell = self.ops.get(op)
        if cell is None:
            cell = [0.0, 0, [0] * (len(OP_BUCKETS) + 1)]
            self.ops[op] = cell
        cell[0] += seconds
        cell[1] += 1
        cell[2][bisect_left(OP_BUCKETS, seconds)] += 1

    def end_kernel(self, cycles: int, wall_seconds: float) -> None:
        """Close one kernel: derived metrics + registry publication."""
        self.kernels += 1
        self.sim_cycles += int(cycles)
        self.sim_wall_seconds += wall_seconds
        registry = get_registry()
        if not registry.enabled:
            return
        registry.counter("sim_profile_kernels_total",
                         "Kernels profiled").inc()
        registry.gauge(
            "process_peak_rss_bytes",
            "Peak resident set size of the profiled process"
        ).set(peak_rss_bytes())
        registry.counter("sim_profile_wall_seconds_total",
                         "Host wall-seconds inside run_kernel"
                         ).inc(wall_seconds)
        if wall_seconds > 0:
            registry.gauge(
                "sim_profile_cycles_per_wall_second",
                "Simulated cycles per host second, last kernel"
            ).set(cycles / wall_seconds)
        seconds = registry.counter("sim_profile_phase_seconds_total",
                                   "Host wall-seconds by simulator phase")
        calls = registry.counter("sim_profile_phase_calls_total",
                                 "Hook calls by simulator phase")
        for name, (sec, count) in self.phases.items():
            prev_sec, prev_count = self._published.get(name, (0.0, 0.0))
            if sec > prev_sec:
                seconds.inc(sec - prev_sec, phase=name)
            if count > prev_count:
                calls.inc(count - prev_count, phase=name)
            self._published[name] = (sec, count)

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def cycles_per_wall_second(self) -> float:
        """Simulated throughput over every profiled kernel."""
        if self.sim_wall_seconds <= 0:
            return 0.0
        return self.sim_cycles / self.sim_wall_seconds

    def coverage(self) -> float:
        """Fraction of kernel wall-time the top-level phases explain.

        Nested phases (names containing ``/``) time sections already
        inside a top-level phase and are excluded.
        """
        if self.sim_wall_seconds <= 0:
            return 0.0
        top = sum(sec for name, (sec, _calls) in self.phases.items()
                  if NESTED_SEP not in name)
        return top / self.sim_wall_seconds

    def summary(self) -> Dict[str, Any]:
        """JSON-able rollup: top phases, op latencies, throughput."""
        phases = [
            {"phase": name, "seconds": round(sec, 6), "calls": int(calls),
             "share": round(sec / self.sim_wall_seconds, 4)
             if self.sim_wall_seconds > 0 else 0.0,
             "nested": NESTED_SEP in name}
            for name, (sec, calls) in sorted(
                self.phases.items(), key=lambda kv: -kv[1][0])
        ]
        ops = []
        for op, (sec, count, counts) in sorted(
                self.ops.items(), key=lambda kv: -kv[1][0]):
            ops.append({
                "op": op, "seconds": round(sec, 6), "calls": int(count),
                "mean_us": round(sec / count * 1e6, 3) if count else 0.0,
                "p50_us": round(percentile_from_counts(
                    OP_BUCKETS, counts, 50) * 1e6, 3),
                "p99_us": round(percentile_from_counts(
                    OP_BUCKETS, counts, 99) * 1e6, 3),
            })
        return {
            "kernels": self.kernels,
            "sim_wall_seconds": round(self.sim_wall_seconds, 6),
            "sim_cycles": self.sim_cycles,
            "cycles_per_wall_second": round(
                self.cycles_per_wall_second(), 1),
            "coverage": round(self.coverage(), 4),
            "peak_rss_bytes": peak_rss_bytes(),
            "phases": phases,
            "ops": ops,
        }

    def summary_payload(self, top: int = 6) -> Dict[str, Any]:
        """Compact summary for telemetry events (dashboard fodder)."""
        full = self.summary()
        return {
            "kernels": full["kernels"],
            "sim_wall_seconds": full["sim_wall_seconds"],
            "cycles_per_wall_second": full["cycles_per_wall_second"],
            "coverage": full["coverage"],
            "peak_rss_bytes": full["peak_rss_bytes"],
            "top_phases": [
                [p["phase"], p["seconds"], p["calls"]]
                for p in full["phases"] if not p["nested"]
            ][:top],
        }

    def format(self) -> str:
        """Human-readable profile block (CLI / report output)."""
        data = self.summary()
        lines = [
            (f"host profile: {data['kernels']} kernel(s), "
             f"{data['sim_wall_seconds']:.3f}s simulator wall, "
             f"{data['cycles_per_wall_second']:,.0f} cycles/s, "
             f"{data['coverage'] * 100:.1f}% phase coverage, "
             f"{data['peak_rss_bytes'] / 2**20:.0f} MiB peak rss"),
        ]
        for p in data["phases"]:
            indent = "    " if p["nested"] else "  "
            lines.append(
                f"{indent}{p['phase']:<12} {p['seconds']:>9.3f}s "
                f"{p['share'] * 100:>5.1f}%  {p['calls']:>12,} calls")
        for op in data["ops"][:8]:
            lines.append(
                f"  op {op['op']:<14} {op['seconds']:>8.3f}s "
                f"{op['calls']:>12,} x {op['mean_us']:>8.3f}us mean "
                f"(p50 {op['p50_us']:.2f}, p99 {op['p99_us']:.2f})")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # snapshot / merge / persistence
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-able dump for process transport and report files."""
        return {"profile": {
            "kernels": self.kernels,
            "sim_wall_seconds": self.sim_wall_seconds,
            "sim_cycles": self.sim_cycles,
            "phases": {name: {"seconds": sec, "calls": int(calls)}
                       for name, (sec, calls)
                       in sorted(self.phases.items())},
            "ops": {op: {"seconds": sec, "calls": int(count),
                         "buckets": list(OP_BUCKETS),
                         "counts": list(counts)}
                    for op, (sec, count, counts)
                    in sorted(self.ops.items())},
        }}

    def merge_snapshot(self, snap: Dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` from another process into this one.

        A disabled profiler ignores the snapshot, mirroring
        :meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot`.
        A worker that died before its first phase ships ``None`` or an
        empty snapshot; merging those must be a no-op, never an error.
        """
        if not self.enabled or not isinstance(snap, dict):
            return
        data = snap.get("profile") or {}
        self.kernels += int(data.get("kernels", 0))
        self.sim_wall_seconds += float(data.get("sim_wall_seconds", 0.0))
        self.sim_cycles += int(data.get("sim_cycles", 0))
        for name, cell in data.get("phases", {}).items():
            self.add(name, float(cell.get("seconds", 0.0)),
                     int(cell.get("calls", 0)))
        for op, cell in data.get("ops", {}).items():
            dst = self.ops.get(op)
            if dst is None:
                dst = [0.0, 0, [0] * (len(OP_BUCKETS) + 1)]
                self.ops[op] = dst
            dst[0] += float(cell.get("seconds", 0.0))
            dst[1] += int(cell.get("calls", 0))
            counts = cell.get("counts", [])
            if len(counts) != len(dst[2]):
                raise ValueError(
                    f"op histogram {op!r} bucket mismatch while merging "
                    f"({len(counts)} vs {len(dst[2])} counts)")
            for i, c in enumerate(counts):
                dst[2][i] += c

    def clear(self) -> None:
        """Drop every accumulator (enabled/disabled state is kept)."""
        self.phases.clear()
        self.ops.clear()
        self._published.clear()
        self.kernels = 0
        self.sim_wall_seconds = 0.0
        self.sim_cycles = 0

    def save(self, path) -> Path:
        """Write :meth:`snapshot` as JSON; returns the path written."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.snapshot(), sort_keys=True,
                                   indent=1) + "\n")
        return path


# ----------------------------------------------------------------------
# Process-global profiler (the instance the simulator hooks use)
# ----------------------------------------------------------------------
_PROFILER = PhaseProfiler(
    enabled=bool(os.environ.get(PROFILE_ENV, "").strip())
)


def get_profiler() -> PhaseProfiler:
    """The process-global profiler the simulator hot path consults."""
    return _PROFILER


def profiling_enabled() -> bool:
    """Whether the global profiler is collecting."""
    return _PROFILER.enabled


def enable_profiling() -> PhaseProfiler:
    """Turn the global profiler on; returns it for convenience.

    Also sets ``REPRO_PROFILE=1`` in this process's environment so
    worker processes spawned later (pool or fleet) come up profiling —
    snapshots they ship home then merge into this profiler.
    """
    _PROFILER.enabled = True
    os.environ[PROFILE_ENV] = "1"
    return _PROFILER


def disable_profiling(clear: bool = False) -> PhaseProfiler:
    """Turn the global profiler off (optionally dropping its data)."""
    _PROFILER.enabled = False
    os.environ.pop(PROFILE_ENV, None)
    if clear:
        _PROFILER.clear()
    return _PROFILER


@contextmanager
def phase(name: str):
    """Time one non-hot-path section into the global profiler.

    A no-op (one truth test) when profiling is disabled; hot loops
    should hoist ``get_profiler().enabled`` into a local and call
    :meth:`PhaseProfiler.add` directly instead.
    """
    if not _PROFILER.enabled:
        yield
        return
    start = perf_counter()
    try:
        yield
    finally:
        _PROFILER.add(name, perf_counter() - start)


# ----------------------------------------------------------------------
# Sampling profiler (flamegraphs + Chrome-trace host spans)
# ----------------------------------------------------------------------
class StackSampler:
    """Periodic stack sampler of one thread (the main thread default).

    A daemon thread wakes every ``interval`` seconds and snapshots the
    target thread's Python stack via ``sys._current_frames()`` — the
    py-spy-style approach, chosen over ``sys.setprofile`` /
    ``sys.monitoring`` callbacks because per-call hooks slow the
    interpreter severely enough to invalidate the numbers being
    collected.  Overhead is one stack walk per sample.
    """

    def __init__(self, interval: float = 0.005,
                 max_samples: int = 200_000,
                 max_depth: int = 64,
                 thread_id: Optional[int] = None) -> None:
        self.interval = float(interval)
        self.max_samples = int(max_samples)
        self.max_depth = int(max_depth)
        self.thread_id = (thread_id if thread_id is not None
                          else threading.main_thread().ident)
        #: (perf_counter seconds, frame tuple root-first)
        self.samples: List[Tuple[float, Tuple[str, ...]]] = []
        self.dropped = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    def start(self) -> "StackSampler":
        """Begin sampling (idempotent)."""
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-sampler", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> "StackSampler":
        """Stop sampling and join the sampler thread."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        return self

    def __enter__(self) -> "StackSampler":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            frame = sys._current_frames().get(self.thread_id)
            if frame is None:
                continue
            stack: List[str] = []
            while frame is not None and len(stack) < self.max_depth:
                code = frame.f_code
                stack.append(
                    f"{Path(code.co_filename).stem}:{code.co_name}")
                frame = frame.f_back
            stack.reverse()
            if len(self.samples) >= self.max_samples:
                self.dropped += 1
                continue
            self.samples.append((perf_counter(), tuple(stack)))

    # ------------------------------------------------------------------
    def collapsed(self) -> List[str]:
        """Collapsed-stack lines (``a;b;c count``), sorted by count."""
        counts: Dict[Tuple[str, ...], int] = {}
        for _ts, stack in self.samples:
            counts[stack] = counts.get(stack, 0) + 1
        return [
            ";".join(stack) + f" {count}"
            for stack, count in sorted(counts.items(),
                                       key=lambda kv: (-kv[1], kv[0]))
        ]

    def save_collapsed(self, path) -> Path:
        """Write :meth:`collapsed` lines (flamegraph.pl input)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("\n".join(self.collapsed()) + "\n")
        return path

    def trace_events(self, pid: int = 4242,
                     epoch: Optional[float] = None
                     ) -> List[Dict[str, Any]]:
        """Chrome-trace span events, mergeable into a Tracer export.

        Consecutive samples with an identical stack coalesce into one
        span named after the leaf frame.  ``epoch`` is the
        ``perf_counter`` origin of the target trace (e.g.
        :attr:`repro.obs.tracing.Tracer.epoch`) so host-sampler spans
        line up with the tracer's wall spans; it defaults to the first
        sample's timestamp.
        """
        if not self.samples:
            return []
        if epoch is None:
            epoch = self.samples[0][0]
        events: List[Dict[str, Any]] = [
            {"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
             "args": {"name": "host sampler"}},
            {"ph": "M", "name": "thread_name", "pid": pid, "tid": 0,
             "args": {"name": f"sampled stack ({self.interval * 1e3:g}ms)"}},
        ]
        run_start, run_last, run_stack = None, None, None
        for ts, stack in self.samples:
            if stack == run_stack:
                run_last = ts
                continue
            if run_stack is not None:
                events.append(self._span(run_start, run_last, run_stack,
                                         pid, epoch))
            run_start = run_last = ts
            run_stack = stack
        events.append(self._span(run_start, run_last, run_stack, pid,
                                 epoch))
        return events

    def _span(self, start: float, last: float, stack: Tuple[str, ...],
              pid: int, epoch: float) -> Dict[str, Any]:
        leaf = stack[-1] if stack else "?"
        return {
            "ph": "X", "name": leaf, "cat": "host_sample",
            "ts": round((start - epoch) * 1e6, 3),
            "dur": round(max((last - start + self.interval) * 1e6, 1.0),
                         3),
            "pid": pid, "tid": 0,
            "args": {"stack": ";".join(stack[-12:])},
        }


# ----------------------------------------------------------------------
# Perf-trajectory history
# ----------------------------------------------------------------------
#: Default history location, relative to the repo root.
DEFAULT_HISTORY = Path("benchmarks") / "results" / "perf_history.jsonl"

#: Regression tolerance matching the CI speed gate's default.
DEFAULT_MAX_REGRESS = 0.25


def git_commit(cwd=None) -> str:
    """Current git commit hash, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd, timeout=10,
            capture_output=True, text=True)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    commit = out.stdout.strip()
    return commit if out.returncode == 0 and commit else "unknown"


class PerfHistory:
    """Append-only JSONL trajectory of platform-performance artifacts.

    One line per ``bench_perf_trajectory.py`` emission (the full
    artifact: schema, git commit, simulator version, metrics, optional
    profile summary).  The loader tolerates torn or garbage lines —
    the file may be appended by interrupted CI runs — counting them in
    :attr:`bad_lines` instead of failing.
    """

    def __init__(self, path=DEFAULT_HISTORY) -> None:
        self.path = Path(path)
        self.bad_lines = 0

    # ------------------------------------------------------------------
    def append(self, artifact: Dict[str, Any]) -> Dict[str, Any]:
        """Append one artifact as a single JSONL line; returns it."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(artifact, sort_keys=True) + "\n"
        with self.path.open("a") as handle:
            handle.write(line)
        return artifact

    def load(self) -> List[Dict[str, Any]]:
        """Every decodable entry, in file (chronological) order."""
        self.bad_lines = 0
        try:
            text = self.path.read_text()
        except OSError:
            return []
        entries = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                self.bad_lines += 1
                continue
            if isinstance(entry, dict) and "metrics" in entry:
                entries.append(entry)
            else:
                self.bad_lines += 1
        return entries

    # ------------------------------------------------------------------
    def trajectory(self, max_regress: float = DEFAULT_MAX_REGRESS
                   ) -> List[Dict[str, Any]]:
        """Rows with deltas vs. the previous entry and verdicts.

        The verdict applies the CI speed gate's comparison — jobs/s
        below ``previous * (1 - max_regress)`` is a ``REGRESSION`` —
        to every consecutive pair in the history.
        """
        rows: List[Dict[str, Any]] = []
        prev_rate: Optional[float] = None
        for entry in self.load():
            metrics = entry.get("metrics", {})
            rate = metrics.get("jobs_per_second")
            row = {
                "git_commit": str(entry.get("git_commit", "?"))[:12],
                "schema": entry.get("schema"),
                "time": entry.get("time"),
                "simulator_version": entry.get("simulator_version"),
                "jobs_per_second": rate,
                "simulated_cycles_per_second": metrics.get(
                    "simulated_cycles_per_second"),
                "cache_hit_latency_seconds": metrics.get(
                    "cache_hit_latency_seconds"),
                "peak_rss_bytes": metrics.get("peak_rss_bytes"),
                "fast_cycles_per_second": None,
                "fast_ratio": None,
                "delta": None,
                "verdict": "-",
            }
            # Schema >= 3 artifacts carry per-engine metrics; the
            # fast/reference cycles-per-second ratio is the headline
            # number for the vectorized engine's trajectory.
            engines = entry.get("engines") or {}
            fast_cps = (engines.get("fast") or {}).get(
                "simulated_cycles_per_second")
            ref_cps = (engines.get("reference") or {}).get(
                "simulated_cycles_per_second")
            if fast_cps is not None:
                row["fast_cycles_per_second"] = fast_cps
                if ref_cps:
                    row["fast_ratio"] = fast_cps / ref_cps
            if rate is not None and prev_rate:
                row["delta"] = (rate - prev_rate) / prev_rate
                row["verdict"] = ("REGRESSION"
                                  if rate < prev_rate * (1.0 - max_regress)
                                  else "ok")
            if rate is not None:
                prev_rate = rate
            rows.append(row)
        return rows

    def latest(self) -> Optional[Dict[str, Any]]:
        """The newest entry, or ``None`` on an empty history."""
        entries = self.load()
        return entries[-1] if entries else None


def format_trajectory(rows: Iterable[Dict[str, Any]]) -> str:
    """Render :meth:`PerfHistory.trajectory` rows as a text table."""
    from repro.bench.report import format_table

    table = []
    for row in rows:
        delta = ("-" if row["delta"] is None
                 else f"{row['delta'] * 100:+.1f}%")
        rss = row.get("peak_rss_bytes")
        fast_ratio = row.get("fast_ratio")
        table.append([
            row["git_commit"], row.get("schema", "?"),
            "-" if row["jobs_per_second"] is None
            else f"{row['jobs_per_second']:.3f}",
            delta,
            "-" if row["simulated_cycles_per_second"] is None
            else f"{row['simulated_cycles_per_second']:,.0f}",
            "-" if fast_ratio is None else f"{fast_ratio:.2f}x",
            "-" if rss is None else f"{rss / 2 ** 20:.0f}",
            row["verdict"],
        ])
    return format_table(
        ["commit", "schema", "jobs/s", "Δ jobs/s", "cycles/s",
         "fast/ref", "rss MiB", "verdict"],
        table, title=f"perf trajectory ({len(table)} entr(y/ies))")
