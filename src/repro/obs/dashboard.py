"""Live terminal dashboard over a telemetry JSONL sink.

``python -m repro tail events.jsonl`` follows a batch-engine telemetry
file as it grows and redraws an in-terminal status table: jobs in
flight, completion progress with an ETA, cache hit rate, simulated
cycles per wall second.  The same machinery renders a single frame of
a finished file (``--once``), which is what tests and CI use.

The pieces compose: :class:`JSONLFollower` incrementally reads whole
lines from a growing file (tolerating partial writes and truncation),
:class:`BatchWatch` folds telemetry records into an aggregate view,
and :func:`render` draws one frame.
"""

from __future__ import annotations

import json
import time
from collections import deque
from pathlib import Path
from typing import Any, Dict, List, Optional

#: Terminal control: home the cursor and clear to end of screen.
ANSI_CLEAR = "\x1b[H\x1b[J"


class JSONLFollower:
    """Incremental reader of a (possibly still growing) JSONL file.

    Each :meth:`poll` returns the records appended since the last
    call.  A partial trailing line (a writer mid-``write``) stays
    buffered until its newline arrives; a shrinking file (truncation /
    rotation) resets the reader to the top.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._pos = 0
        self._buf = ""
        self.bad_lines = 0

    def poll(self) -> List[Dict[str, Any]]:
        """Parse and return records appended since the last poll."""
        try:
            size = self.path.stat().st_size
        except OSError:
            return []
        if size < self._pos:  # truncated or rotated underneath us
            self._pos = 0
            self._buf = ""
        if size == self._pos:
            return []
        with self.path.open("r") as handle:
            handle.seek(self._pos)
            chunk = handle.read()
            self._pos = handle.tell()
        self._buf += chunk
        *lines, self._buf = self._buf.split("\n")
        records = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                self.bad_lines += 1
        return records


class BatchWatch:
    """Aggregate view of a batch run, fed one telemetry record at a time."""

    def __init__(self, recent: int = 5) -> None:
        self.counts: Dict[str, int] = {}
        self.jobs: Dict[str, str] = {}  # job hash -> last known state
        self.cycles = 0
        #: Provenance digest-ledger records shipped with finishes
        #: (REPRO_DIGEST runs; zero otherwise).
        self.digest_records = 0
        self.first_ts: Optional[float] = None
        self.last_ts: Optional[float] = None
        self.cache_stats: Optional[Dict[str, Any]] = None
        self.batch_summary: Optional[Dict[str, Any]] = None
        self.recent: deque = deque(maxlen=recent)
        self.failures: List[Dict[str, Any]] = []
        #: Fleet view (repro.dist): worker id -> live aggregate.
        self.workers: Dict[str, Dict[str, Any]] = {}
        #: Host-profiler rollup (repro.obs.profile), when one was
        #: emitted at batch end.
        self.profile_summary: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    def _fold_fleet(self, kind: str, record: Dict[str, Any]) -> None:
        """Fold the distributed-fleet event kinds (no-op otherwise)."""
        worker = record.get("worker")
        if not isinstance(worker, str) or not worker:
            return
        info = self.workers.setdefault(worker, {
            "alive": False, "leases": 0, "jobs_done": 0,
            "jobs_failed": 0, "busy_seconds": 0.0, "cycles": 0,
            "reconnects": 0, "quarantined": False, "degraded": "",
        })
        if kind == "worker_joined":
            info["alive"] = True
            if record.get("reconnect"):
                info["reconnects"] += 1
        elif kind == "worker_left":
            info["alive"] = False
        elif kind == "worker_quarantined":
            info["quarantined"] = True
        elif kind == "worker_goodbye":
            reason = record.get("reason")
            if isinstance(reason, str) and reason:
                info["degraded"] = reason
        elif kind == "started":
            info["quarantined"] = False  # a grant means the circuit closed
            info["leases"] += 1
        elif kind == "lease_result":
            status = record.get("status")
            if status == "ok":
                info["jobs_done"] += 1
                cycles = record.get("cycles")
                if isinstance(cycles, (int, float)):
                    info["cycles"] += int(cycles)
            elif status != "stale":
                info["jobs_failed"] += 1
            wall = record.get("wall")
            if isinstance(wall, (int, float)):
                info["busy_seconds"] += float(wall)

    def update(self, record: Dict[str, Any]) -> None:
        """Fold one telemetry record into the aggregate."""
        kind = record.get("kind", "")
        self.counts[kind] = self.counts.get(kind, 0) + 1
        ts = record.get("time")
        if isinstance(ts, (int, float)):
            self.first_ts = ts if self.first_ts is None else min(
                self.first_ts, ts)
            self.last_ts = ts if self.last_ts is None else max(
                self.last_ts, ts)
        self._fold_fleet(kind, record)
        job = record.get("job", "")
        if kind == "submitted" and job:
            self.jobs.setdefault(job, "pending")
        elif kind == "started" and job:
            self.jobs[job] = "running"
        elif kind in ("finished", "cached", "resumed") and job:
            self.jobs[job] = "done"
            self.cycles += int(record.get("cycles", 0))
            self.digest_records += int(record.get("digests", 0))
            self.recent.append(record)
        elif kind == "failed" and job:
            self.jobs[job] = "failed"
            self.failures.append(record)
            self.recent.append(record)
        elif kind == "skipped" and job:
            self.jobs[job] = "skipped"
            self.recent.append(record)
        elif kind == "batch_summary":
            self.batch_summary = record
            if isinstance(record.get("cache"), dict):
                self.cache_stats = record["cache"]
        elif kind == "profile_summary":
            self.profile_summary = record

    def update_all(self, records) -> None:
        """Fold a batch of records."""
        for record in records:
            self.update(record)

    # ------------------------------------------------------------------
    def _job_states(self) -> Dict[str, int]:
        out = {"pending": 0, "running": 0, "done": 0, "failed": 0,
               "skipped": 0}
        for state in self.jobs.values():
            out[state] += 1
        return out

    @property
    def finished(self) -> bool:
        """Whether the batch-end summary event has arrived."""
        return self.batch_summary is not None

    def snapshot(self) -> Dict[str, Any]:
        """The numbers one frame renders (also the ``--json`` output)."""
        states = self._job_states()
        total = len(self.jobs)
        done = states["done"] + states["failed"] + states["skipped"]
        elapsed = 0.0
        if self.first_ts is not None and self.last_ts is not None:
            elapsed = self.last_ts - self.first_ts
        rate = done / elapsed if elapsed > 0 else 0.0
        remaining = states["pending"] + states["running"]
        eta = remaining / rate if rate > 0 else None
        cached = self.counts.get("cached", 0)
        resumed = self.counts.get("resumed", 0)
        lookups = cached + resumed + self.counts.get("started", 0)
        return {
            "jobs_total": total,
            "pending": states["pending"],
            "running": states["running"],
            "done": states["done"],
            "failed": states["failed"],
            "skipped": states["skipped"],
            "cached": cached,
            "resumed": resumed,
            "retried": self.counts.get("retried", 0),
            "elapsed_seconds": round(elapsed, 3),
            "jobs_per_second": round(rate, 3),
            "eta_seconds": None if eta is None else round(eta, 1),
            "simulated_cycles": self.cycles,
            "cycles_per_second": round(self.cycles / elapsed, 1)
            if elapsed > 0 else 0.0,
            "cache_hit_rate": round((cached + resumed) / lookups, 4)
            if lookups else 0.0,
            "finished": self.finished,
            "digest_records": self.digest_records,
            "workers_seen": len(self.workers),
            "workers_alive": sum(
                1 for w in self.workers.values() if w["alive"]),
            "leases_expired": self.counts.get("lease_expired", 0),
            "leases_reclaimed": self.counts.get("lease_reclaimed", 0),
            "workers_quarantined": sum(
                1 for w in self.workers.values() if w["quarantined"]),
            "worker_reconnects": sum(
                w["reconnects"] for w in self.workers.values()),
        }

    def fleet(self) -> Dict[str, Dict[str, Any]]:
        """Per-worker aggregates with derived throughput (jobs/s)."""
        elapsed = 0.0
        if self.first_ts is not None and self.last_ts is not None:
            elapsed = self.last_ts - self.first_ts
        out: Dict[str, Dict[str, Any]] = {}
        for worker in sorted(self.workers):
            info = dict(self.workers[worker])
            info["jobs_per_second"] = (
                round(info["jobs_done"] / elapsed, 3)
                if elapsed > 0 else 0.0)
            info["busy_seconds"] = round(info["busy_seconds"], 3)
            cycles = info.get("cycles", 0)
            info["cycles_per_second"] = (
                round(cycles / info["busy_seconds"], 1)
                if info["busy_seconds"] > 0 else 0.0)
            out[worker] = info
        return out


def _progress_bar(done: int, total: int, width: int = 28) -> str:
    if total <= 0:
        return "[" + "-" * width + "]   0%"
    frac = min(1.0, done / total)
    filled = int(round(frac * width))
    return ("[" + "#" * filled + "-" * (width - filled)
            + f"] {frac * 100:3.0f}%")


def render(watch: BatchWatch, clock: Optional[float] = None) -> str:
    """Draw one dashboard frame as plain text."""
    snap = watch.snapshot()
    done = snap["done"] + snap["failed"]
    stamp = time.strftime(
        "%H:%M:%S", time.localtime(clock if clock is not None
                                   else time.time()))
    eta = ("--" if snap["eta_seconds"] is None
           else f"{snap['eta_seconds']:.1f}s")
    if snap["finished"]:
        eta = "done"
    lines = [
        f"batch telemetry — {stamp}",
        (f"  jobs    : {snap['jobs_total']} total | "
         f"{snap['running']} running | {snap['done']} done | "
         f"{snap['failed']} failed | {snap['cached']} cached"
         + (f" | {snap['resumed']} resumed" if snap["resumed"] else "")
         + (f" | {snap['skipped']} skipped" if snap["skipped"] else "")
         + (f" | {snap['retried']} retried" if snap["retried"] else "")),
        (f"  progress: {_progress_bar(done, snap['jobs_total'])}"
         f"  ETA {eta}"),
        (f"  cycles  : {snap['simulated_cycles']:,} simulated"
         f" ({snap['cycles_per_second']:,.0f}/s over "
         f"{snap['elapsed_seconds']:.1f}s)"),
        (f"  cache   : {snap['cached']} hits, "
         f"{snap['cache_hit_rate'] * 100:.1f}% hit rate"),
    ]
    if watch.cache_stats:
        cs = watch.cache_stats
        store = (
            f"  store   : {cs.get('entries', 0)} entries, "
            f"{cs.get('stores', 0)} stores, "
            f"{cs.get('evictions', 0)} evictions at {cs.get('dir', '?')}")
        if cs.get("quarantined"):
            store += f", {cs['quarantined']} quarantined"
        lines.append(store)
    if watch.workers:
        fleet = watch.fleet()
        fleet_line = (
            f"  fleet   : {snap['workers_alive']}/{snap['workers_seen']}"
            f" workers alive | {snap['leases_expired']} leases expired"
            f" | {snap['leases_reclaimed']} reclaimed")
        if snap["workers_quarantined"]:
            fleet_line += (f" | {snap['workers_quarantined']} "
                           f"quarantined")
        if snap["worker_reconnects"]:
            fleet_line += (f" | {snap['worker_reconnects']} "
                           f"reconnect(s)")
        lines.append(fleet_line)
        for worker, info in fleet.items():
            if info.get("quarantined"):
                state = "QUAR"
            else:
                state = "up  " if info["alive"] else "gone"
            lines.append(
                f"    {worker}: {state} {info['jobs_done']} done"
                + (f", {info['jobs_failed']} failed"
                   if info["jobs_failed"] else "")
                + f", {info['jobs_per_second']:.2f} jobs/s"
                  f" ({info['busy_seconds']:.1f}s busy)"
                + (f", {info['cycles_per_second']:,.0f} cycles/s"
                   if info.get("cycles_per_second") else "")
                + (f", degraded: {info['degraded']}"
                   if info.get("degraded") else ""))
    if watch.profile_summary:
        prof = watch.profile_summary
        lines.append(
            f"  profile : {prof.get('kernels', 0)} kernel(s), "
            f"{prof.get('sim_wall_seconds', 0.0):.3f}s simulator wall, "
            f"{prof.get('cycles_per_wall_second', 0.0):,.0f} cycles/s, "
            f"{prof.get('coverage', 0.0) * 100:.1f}% coverage")
        for entry in prof.get("top_phases", [])[:5]:
            try:
                name, seconds, calls = entry
            except (TypeError, ValueError):
                continue
            lines.append(
                f"    {name:<12} {float(seconds):>9.3f}s "
                f"{int(calls):>12,} calls")
    for record in watch.recent:
        verb = record.get("kind", "?")
        extra = ""
        if verb == "finished" and "wall" in record:
            extra = f" in {record['wall']:.3f}s"
        if verb == "failed":
            extra = f": {record.get('error', '?')}"
        lines.append(f"  last    : {record.get('label', '?')} {verb}{extra}")
    return "\n".join(lines)


def tail(path, follow: bool = True, interval: float = 0.5,
         max_frames: Optional[int] = None, out=None,
         use_ansi: Optional[bool] = None) -> BatchWatch:
    """Follow a telemetry file, redrawing the dashboard as it grows.

    Returns the final :class:`BatchWatch` state.  Exits when the
    batch-summary event arrives (the batch is over), when ``max_frames``
    frames have been drawn, or on Ctrl-C; ``follow=False`` reads the
    current file content and draws exactly one frame.
    """
    import sys

    out = out if out is not None else sys.stdout
    if use_ansi is None:
        use_ansi = follow and getattr(out, "isatty", lambda: False)()
    follower = JSONLFollower(path)
    watch = BatchWatch()
    frames = polls = 0
    try:
        while True:
            records = follower.poll()
            polls += 1
            watch.update_all(records)
            if records or frames == 0:
                frame = render(watch)
                if use_ansi:
                    out.write(ANSI_CLEAR + frame + "\n")
                else:
                    out.write(frame + "\n")
                out.flush()
                frames += 1
            if not follow or watch.finished:
                break
            if max_frames is not None and polls >= max_frames:
                break
            time.sleep(interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    return watch
