"""S_vm over a Tigr-style split graph (static storage-format balancing).

The Related Work's other software family fixes imbalance at *static*
time: vertex virtualization (Tigr [37], CSR5-style splits) caps every
vertex's degree by splitting hubs into bounded-degree virtual vertices.
Section III-D notes SparseWeaver can register such splits directly;
this schedule instead runs plain vertex mapping over the split view —
the software-only alternative — which bounds warp rounds at
``max_degree`` but pays for it with more registration entries, an extra
indirection table (split -> physical vertex), and atomics, since splits
of one hub now share an accumulator.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ScheduleError
from repro.graph.formats import SplitVertexFormatInterface
from repro.sched.base import KernelEnv, Schedule
from repro.sched.common import check_early_exit, process_edge_batch
from repro.sim.instructions import Phase, alu, counter, load


class SplitVertexMapSchedule(Schedule):
    """Vertex mapping over bounded-degree virtual vertices."""

    name = "split_vertex_map"
    label = "S_vm+split"
    trace_safe = True

    def __init__(self, max_degree: int = 8) -> None:
        if max_degree < 1:
            raise ScheduleError("split max_degree must be at least 1")
        self.max_degree = max_degree

    def warp_factory(self, env: KernelEnv):
        split = SplitVertexFormatInterface(env.graph, self.max_degree)
        num_split = split.num_vertices
        starts = split._starts
        ends = split._ends
        owners = split._owners
        stride = env.config.total_threads
        num_epochs = max(1, -(-num_split // stride))
        alg = env.algorithm

        # The virtualization tables are data the kernel must read; Tigr
        # materializes them at static time. Allocate once per env.
        if "split_table" not in env.regions:
            env.regions["split_table"] = env.memory_map.alloc(
                "split_table", 3 * num_split, 8
            )

        def factory(ctx):
            if ctx.thread_ids[0] >= num_split:
                return None

            def kernel():
                for epoch in range(num_epochs):
                    sids = ctx.thread_ids + epoch * stride
                    sids = sids[sids < num_split]
                    if sids.size == 0:
                        break
                    # split-table read: (owner, start, end) per lane
                    yield load(Phase.REGISTRATION,
                               env.region("split_table"), sids * 3)
                    yield alu(Phase.REGISTRATION)
                    base_vids = owners[sids]
                    seg_starts = starts[sids]
                    degrees = ends[sids] - seg_starts
                    if alg.has_base_filter:
                        for name in alg.base_filter_arrays:
                            yield load(Phase.REGISTRATION,
                                       env.region(name), base_vids)
                        yield alu(Phase.REGISTRATION)
                        degrees = alg.filtered_degrees(
                            env.state, base_vids, degrees
                        )
                    alive = np.nonzero(degrees > 0)[0]
                    k = 0
                    while alive.size:
                        yield counter("warp_iterations")
                        bases = base_vids[alive]
                        eids = seg_starts[alive] + k
                        # splits of one hub share an accumulator ->
                        # atomic merge, unlike plain vertex mapping
                        yield from process_edge_batch(
                            env, bases, eids, accumulate="atomic"
                        )
                        k += 1
                        alive = alive[degrees[alive] > k]
                        if alive.size:
                            done = yield from check_early_exit(
                                env, base_vids[alive]
                            )
                            if done.any():
                                alive = alive[~done]

            return kernel()

        return factory
