"""Closed-form scheduling analysis: Fig. 2a and Table I.

``expected_warp_iterations`` computes, from the degree array alone, how
many lockstep gather rounds each scheme needs — the metric of Fig. 2a.
``scheme_characteristics`` reproduces Table I's qualitative/arithmetic
comparison for a given graph and configuration, including the schemes
the simulator does not execute (S_twc, S_twce, S_strict), whose rows
the paper specifies directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ScheduleError
from repro.graph.csr import CSRGraph
from repro.sim.config import GPUConfig


def _chunk_pad(values: np.ndarray, width: int) -> np.ndarray:
    """Pad to a multiple of ``width`` and reshape to (chunks, width)."""
    pad = (-values.size) % width
    if pad:
        values = np.concatenate([values, np.zeros(pad, dtype=values.dtype)])
    return values.reshape(-1, width)


def expected_warp_iterations(
    graph: CSRGraph,
    schedule: str,
    config: Optional[GPUConfig] = None,
    split_degree: int = 8,
) -> int:
    """Total lockstep gather rounds summed over all warps (Fig. 2a).

    * ``vertex_map`` — each warp's rounds equal the max degree among its
      lanes; consecutive vertex ids map to consecutive lanes.
    * ``edge_map`` / ``strict`` — edges are dealt out evenly:
      ``ceil(|E| / T)``.
    * ``warp_map`` — each warp handles its lanes' combined degree:
      ``sum(ceil(warp_total / T))``.
    * ``cta_map`` / ``sparseweaver`` — block-level pooling:
      ``sum(ceil(block_total / T))`` over blocks of ``W*T`` vertices.
    * ``split_vertex_map`` — vertex mapping after Tigr splitting at
      ``split_degree``: rounds bounded by the split width.
    """
    cfg = config or GPUConfig.vortex_paper()
    lanes = cfg.threads_per_warp
    deg = graph.degrees.astype(np.int64)
    if deg.size == 0:
        return 0
    if schedule in ("vertex_map", "svm", "s_vm"):
        chunks = _chunk_pad(deg, lanes)
        return int(chunks.max(axis=1).sum())
    if schedule in ("edge_map", "sem", "s_em", "strict", "s_strict"):
        return math.ceil(graph.num_edges / lanes)
    if schedule in ("warp_map", "swm", "s_wm"):
        chunks = _chunk_pad(deg, lanes)
        return int(np.ceil(chunks.sum(axis=1) / lanes).sum())
    if schedule in ("cta_map", "scm", "s_cm", "sparseweaver", "sw"):
        block = lanes * cfg.warps_per_core
        chunks = _chunk_pad(deg, block)
        return int(np.ceil(chunks.sum(axis=1) / lanes).sum())
    if schedule in ("split_vertex_map", "tigr"):
        if split_degree < 1:
            raise ScheduleError("split_degree must be at least 1")
        pieces = np.ceil(deg / split_degree).astype(np.int64)
        split_degs = []
        for d, count in zip(deg, pieces):
            if count == 0:
                continue
            full, rest = divmod(int(d), split_degree)
            split_degs.extend([split_degree] * full)
            if rest:
                split_degs.append(rest)
        if not split_degs:
            return 0
        chunks = _chunk_pad(np.asarray(split_degs, dtype=np.int64), lanes)
        return int(chunks.max(axis=1).sum())
    raise ScheduleError(f"no warp-iteration model for schedule {schedule!r}")


def imbalance_factor(graph: CSRGraph, config: Optional[GPUConfig] = None) -> float:
    """S_vm rounds over the balanced optimum — how much naive mapping
    loses to skew (1.0 = already balanced)."""
    cfg = config or GPUConfig.vortex_paper()
    naive = expected_warp_iterations(graph, "vertex_map", cfg)
    ideal = expected_warp_iterations(graph, "edge_map", cfg)
    return naive / ideal if ideal else 1.0


# ----------------------------------------------------------------------
# Table I
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SchemeCharacteristics:
    """One Table I column, with |V|/|E|/|B| symbols evaluated."""

    name: str
    sharing_granularity: str
    imbalance: str
    edge_mem_access: int
    shared_mem: int
    global_mem: int
    registration_complexity: str
    registration_costs: str   # (sync, add kernel, #atomics, #warp shfl)
    distribution_complexity: str
    distribution_costs: str   # (#binary search, #atomics, #sync)
    edge_access_locality: str


def scheme_characteristics(
    graph: CSRGraph, config: Optional[GPUConfig] = None
) -> List[SchemeCharacteristics]:
    """Evaluate Table I for a concrete graph/configuration."""
    cfg = config or GPUConfig.vortex_paper()
    v = graph.num_vertices
    e = graph.num_edges
    b = cfg.warps_per_core * cfg.threads_per_warp
    alpha_e = max(1, e // 10)  # the paper's alpha|E| for S_twce
    rows = [
        SchemeCharacteristics(
            "S_vm", "Thread", "high", 2 * v + e, 0, 0,
            "low", "0, 0, 0, 0", "low", "0, 0, 0", "low"),
        SchemeCharacteristics(
            "S_em", "Kernel", "low", 2 * e, 0, 0,
            "low", "0, 0, 0, 0", "low", "0, 0, 0", "high"),
        SchemeCharacteristics(
            "S_wm", "Warp", "mid", 2 * v + e, 3 * b, 0,
            "mid", "1, 0, 0, 6", "high", f"{e}, 0, 0", "mid"),
        SchemeCharacteristics(
            "S_cm", "Block", "low", 2 * v + e, 3 * b, 0,
            "mid", "17, 0, 0, 15", "high", f"{e}, 0, 0", "high"),
        SchemeCharacteristics(
            "S_twc", "T, W, B", "low", 2 * v + e, 3 * b, 3 * v,
            "high", f"1, 0, {3 * v}, 6", "high", f"{e}, 0, 0", "mid"),
        SchemeCharacteristics(
            "S_twce", "T, W, B", "mid", 2 * v + e, 6 * b, 0,
            "high", f"1, 3, {2 * v}, 0", "high",
            f"0, {alpha_e}, {alpha_e}", "mid"),
        SchemeCharacteristics(
            "S_strict", "Kernel", "low", 2 * v + e, 3 * b, 3 * v,
            "high", "17, 3, 0, 15", "mid", f"{e}, 0, 0", "high"),
        SchemeCharacteristics(
            "SparseWeaver", "Block", "low", 2 * v + e, 4 * b, 0,
            "low", "1, 0, 0, 0", "low", "0, 0, 0", "high"),
    ]
    return rows


def characteristics_table(
    graph: CSRGraph, config: Optional[GPUConfig] = None
) -> str:
    """Render Table I as aligned text."""
    rows = scheme_characteristics(graph, config)
    headers = [
        "Scheme", "Granularity", "Imbalance", "EdgeMem", "SharedMem",
        "GlobalMem", "RegCmplx", "RegCosts", "DistCmplx", "DistCosts",
        "Locality",
    ]
    table: List[List[str]] = [headers]
    for r in rows:
        table.append([
            r.name, r.sharing_granularity, r.imbalance,
            str(r.edge_mem_access), str(r.shared_mem), str(r.global_mem),
            r.registration_complexity, r.registration_costs,
            r.distribution_complexity, r.distribution_costs,
            r.edge_access_locality,
        ])
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    lines = [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        for row in table
    ]
    lines.insert(1, "  ".join("-" * w for w in widths))
    return "\n".join(lines)


def memory_access_counts(graph: CSRGraph) -> Dict[str, int]:
    """Edge-memory access totals per scheme (the Table I row alone)."""
    v, e = graph.num_vertices, graph.num_edges
    return {
        "vertex_map": 2 * v + e,
        "edge_map": 2 * e,
        "warp_map": 2 * v + e,
        "cta_map": 2 * v + e,
        "sparseweaver": 2 * v + e,
    }
