"""S_twce — TWC with Extra kernels (GraphIt [6]; Table I column 6).

GraphIt's variant of thread/warp/CTA bucketing launches a *separate
kernel per bucket* (Table I's "add Kernel = 3") and builds the buckets
with atomically-bumped shared/global worklist counters (2|V| atomics at
registration, 6|B| shared memory). During distribution, threads pop
work from the shared worklists with atomic counters instead of binary
searching — no searches, but alpha|E| atomics and alpha|E| syncs.

Modeled here as the TWC structure plus: worklist-append atomics at
registration, kernel-boundary barriers with bucket-data reloads between
sub-phases (registers do not survive a kernel launch), and a
shared-memory worklist pop per processed batch.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.sched.base import KernelEnv, Schedule
from repro.sched.common import inspect_topology, process_edge_batch
from repro.sched.twc import TWCSchedule, _bucketize, _my_slice
from repro.sim.instructions import (
    Phase,
    alu,
    atomic,
    counter,
    load,
    shmem_store,
    sync,
)


class TWCESchedule(TWCSchedule):
    """TWC with per-bucket kernels and worklist atomics."""

    name = "twce"
    label = "S_twce"
    trace_safe = True  # inherits twc's slot-keyed registry discipline

    def warp_factory(self, env: KernelEnv):
        cfg = env.config
        lanes = env.lanes
        warps = cfg.warps_per_core
        small_max = self.small_max
        medium_max = self.medium_max or 8 * lanes
        stride = cfg.total_threads
        num_epochs = env.vertex_epochs()
        num_vertices = env.num_vertices
        if "twc_buckets" not in env.regions:
            env.regions["twc_buckets"] = env.memory_map.alloc(
                "twc_buckets", 3 * max(1, num_vertices), 8
            )
        shared: Dict[Tuple[int, int], Dict] = {}

        def factory(ctx):
            def kernel():
                for epoch in range(num_epochs):
                    key = (ctx.core_id, epoch)
                    entry = shared.setdefault(key, {"warps": {}})
                    vids = ctx.thread_ids + epoch * stride
                    vids = vids[vids < num_vertices]
                    starts, degrees = yield from inspect_topology(env, vids)
                    if vids.size:
                        # two worklist-counter bumps per vertex
                        yield alu(Phase.REGISTRATION, 2)
                        yield atomic(Phase.REGISTRATION,
                                     env.region("twc_buckets"), vids)
                        yield atomic(Phase.REGISTRATION,
                                     env.region("twc_buckets"),
                                     vids + num_vertices)
                        yield shmem_store(Phase.REGISTRATION, 2)
                    entry["warps"][ctx.warp_slot] = (vids, starts, degrees)
                    yield sync(Phase.REGISTRATION)

                    combined = entry.get("combined")
                    if combined is None:
                        combined = _bucketize(entry["warps"], small_max,
                                              medium_max)
                        entry["combined"] = combined
                    buckets = dict(zip(("small", "medium", "large"),
                                       combined))

                    # --- three sub-kernels, one per bucket ------------
                    for which in ("small", "medium", "large"):
                        # kernel boundary: reload this bucket's entries
                        # from global memory (registers don't survive).
                        b_vids, b_starts, b_degs = buckets[which]
                        if b_vids.size:
                            yield load(Phase.SCHEDULE,
                                       env.region("twc_buckets"), b_vids)
                        if which == "small":
                            s_vids, s_starts, s_degs = _my_slice(
                                buckets[which], ctx, warps, lanes,
                                per="thread")
                            alive = np.nonzero(s_degs > 0)[0]
                            k = 0
                            while alive.size:
                                yield counter("warp_iterations")
                                yield shmem_store(Phase.SCHEDULE, 1)
                                yield from process_edge_batch(
                                    env, s_vids[alive],
                                    s_starts[alive] + k,
                                    accumulate="atomic",
                                )
                                k += 1
                                alive = alive[s_degs[alive] > k]
                        elif which == "medium":
                            m_vids, m_starts, m_degs = _my_slice(
                                buckets[which], ctx, warps, lanes,
                                per="warp")
                            for v, s, d in zip(m_vids.tolist(),
                                               m_starts.tolist(),
                                               m_degs.tolist()):
                                for off in range(0, d, lanes):
                                    yield counter("warp_iterations")
                                    yield shmem_store(Phase.SCHEDULE, 1)
                                    eids = s + np.arange(
                                        off, min(off + lanes, d))
                                    yield from process_edge_batch(
                                        env, np.full(eids.size, v), eids,
                                        accumulate="atomic",
                                    )
                        else:
                            l_vids, l_starts, l_degs = buckets[which]
                            block = warps * lanes
                            for v, s, d in zip(l_vids.tolist(),
                                               l_starts.tolist(),
                                               l_degs.tolist()):
                                rounds = -(-d // block)
                                for r in range(rounds):
                                    yield counter("warp_iterations")
                                    lo = (s + r * block
                                          + ctx.warp_slot * lanes)
                                    hi = min(lo + lanes, s + d)
                                    if lo >= s + d:
                                        continue
                                    yield shmem_store(Phase.SCHEDULE, 1)
                                    eids = np.arange(lo, hi)
                                    yield from process_edge_batch(
                                        env, np.full(eids.size, v), eids,
                                        accumulate="atomic",
                                    )
                        # kernel boundary barrier
                        yield sync(Phase.SCHEDULE)

            return kernel()

        return factory
