"""Schedule interface and the kernel environment.

A :class:`KernelEnv` bundles everything a gather kernel needs: the
traversal-direction CSR graph, the algorithm UDFs, live state arrays,
the memory regions backing them, and the GPU configuration. A
:class:`Schedule` turns an environment into a warp factory for
:meth:`repro.sim.gpu.GPU.run_kernel`, plus (optionally) a hardware-unit
factory for SparseWeaver / EGHW launches.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, Optional

import numpy as np

from repro.errors import ScheduleError
from repro.graph.csr import CSRGraph

if False:  # pragma: no cover - import avoided at runtime (circular)
    from repro.frontend.udf import Algorithm  # noqa: F401
from repro.sim.config import GPUConfig
from repro.sim.gpu import WarpContext
from repro.sim.memory import MemoryHierarchy, MemoryMap, Region


@dataclass
class KernelEnv:
    """Everything a gather kernel closes over.

    ``graph`` is the *traversal* graph: for pull-direction algorithms it
    is the transpose of the input, so each row's base vertex is the
    gathering destination and the row's column entries are the opposite
    endpoints.
    """

    graph: CSRGraph
    algorithm: "Algorithm"
    state: Dict[str, np.ndarray]
    config: GPUConfig
    memory_map: MemoryMap
    regions: Dict[str, Region] = field(default_factory=dict)
    memory: Optional[MemoryHierarchy] = None

    def __post_init__(self) -> None:
        if not self.regions:
            self._allocate_regions()

    def _allocate_regions(self) -> None:
        mm = self.memory_map
        g = self.graph
        self.regions["row_ptr"] = mm.alloc_like("row_ptr", g.row_ptr)
        self.regions["col_idx"] = mm.alloc_like("col_idx", g.col_idx)
        self.regions["weights"] = mm.alloc_like("weights", g.weights)
        # Second-endpoint array: only edge mapping reads it, but it is
        # part of the dataset's footprint either way.
        self.regions["edge_src"] = mm.alloc(
            "edge_src", g.num_edges, g.col_idx.itemsize
        )
        for name, arr in self.state.items():
            self.regions[name] = mm.alloc_like(f"state:{name}", arr)

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Vertices of the traversal graph."""
        return self.graph.num_vertices

    @property
    def num_edges(self) -> int:
        """Edges of the traversal graph."""
        return self.graph.num_edges

    @property
    def lanes(self) -> int:
        """Threads per warp."""
        return self.config.threads_per_warp

    def region(self, name: str) -> Region:
        """Region backing a named array."""
        if name not in self.regions:
            raise ScheduleError(f"no region allocated for {name!r}")
        return self.regions[name]

    def vertex_epochs(self) -> int:
        """Grid-stride epochs needed to cover all vertices."""
        return max(1, math.ceil(self.num_vertices / self.config.total_threads))

    def edge_epochs(self) -> int:
        """Grid-stride epochs needed to cover all edges."""
        return max(1, math.ceil(self.num_edges / self.config.total_threads))


WarpFactory = Callable[[WarpContext], Optional[Iterator]]
UnitFactory = Callable[[int], Any]


class Schedule(ABC):
    """A work-distribution scheme for the gather kernel."""

    #: Paper-style short name (S_vm, S_em, ... or sparseweaver/eghw).
    name: str = "abstract"
    #: Human label used in benchmark tables.
    label: str = "abstract"
    #: Whether :meth:`unit_factory` must be passed to the kernel launch.
    uses_hardware_unit: bool = False
    #: Whether the gather instruction stream is *response-independent*:
    #: it may depend on topology and launch geometry, but never on
    #: simulated latencies, hardware-unit replies, or state values the
    #: kernel itself mutates.  Shared per-launch state is allowed only
    #: if pre-barrier writes are slot-keyed and post-barrier combination
    #: is idempotent.  Opting in lets the fast engine trace one launch
    #: and replay it bit-identically (see ``docs/engines.md``).
    trace_safe: bool = False

    @abstractmethod
    def warp_factory(self, env: KernelEnv) -> WarpFactory:
        """Build the gather kernel's per-warp generator factory."""

    def unit_factory(self, env: KernelEnv) -> Optional[UnitFactory]:
        """Per-core hardware unit constructor (None for software-only)."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"
