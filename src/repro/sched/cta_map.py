"""S_cm — CTA/block-level sharing (Meng et al. [33]; Table I column 4).

All warps of a core pool their vertices' degree runs into one shared
prefix array, then split the block's total work evenly across every
lane of every warp. Better balance than S_wm (a hub is spread across
the whole block) at the price of block-wide synchronization and a
deeper ``O(log(W*T))`` binary search per edge — the higher registration
complexity row of Table I.

The block-wide scan is modeled hierarchically: intra-warp shuffle scan,
a barrier, warp-totals scan, a barrier, then the triple store.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.sched.base import KernelEnv, Schedule
from repro.sched.common import (
    epoch_vertex_ids,
    inspect_topology,
    log2_ceil,
    process_edge_batch,
)
from repro.sim.instructions import (
    Phase,
    alu,
    counter,
    shmem_load,
    shmem_store,
    sync,
)


class CTAMapSchedule(Schedule):
    """Block-shared prefix sum + per-edge binary search over the block."""

    name = "cta_map"
    label = "S_cm"
    # Shared per-launch registries are slot-keyed before each barrier
    # and combined idempotently after it — the trace_safe contract.
    trace_safe = True

    def warp_factory(self, env: KernelEnv):
        num_epochs = env.vertex_epochs()
        cfg = env.config
        lanes = env.lanes
        warps = cfg.warps_per_core
        block_threads = warps * lanes
        log_t = log2_ceil(lanes)
        log_w = log2_ceil(warps)
        log_b = log2_ceil(block_threads)
        # Shared registry: (core, epoch) -> per-warp registered runs.
        shared: Dict[Tuple[int, int], Dict] = {}

        def factory(ctx):
            core_key = ctx.core_id

            def kernel():
                for epoch in range(num_epochs):
                    key = (core_key, epoch)
                    entry = shared.setdefault(
                        key, {"warps": {}, "combined": None}
                    )
                    vids = epoch_vertex_ids(ctx, env, epoch)
                    starts, degrees = yield from inspect_topology(env, vids)
                    entry["warps"][ctx.warp_slot] = (vids, starts, degrees)
                    # Hierarchical block scan: intra-warp shuffles, warp
                    # total to shared, barrier, warp-totals scan, barrier,
                    # final (vid, start, prefix) store.
                    yield alu(Phase.REGISTRATION, log_t)
                    yield shmem_store(Phase.REGISTRATION, 1)
                    yield sync(Phase.REGISTRATION)
                    yield shmem_load(Phase.REGISTRATION, 1)
                    yield alu(Phase.REGISTRATION, log_w)
                    yield shmem_store(Phase.REGISTRATION, 3)
                    yield sync(Phase.REGISTRATION)

                    combined = entry.get("combined")
                    if combined is None:
                        combined = _combine(entry["warps"])
                        entry["combined"] = combined
                    all_vids, all_starts, prefix, total = combined
                    rounds = -(-total // block_threads) if total else 0
                    for block_round in range(rounds):
                        yield counter("warp_iterations")
                        lo = (block_round * block_threads
                              + ctx.warp_slot * lanes)
                        hi = min(lo + lanes, total)
                        if lo >= total:
                            # Lockstep: idle warps still pay the search
                            # round alongside their block.
                            yield shmem_load(Phase.SCHEDULE, log_b)
                            yield alu(Phase.SCHEDULE, log_b)
                            continue
                        ranks = np.arange(lo, hi, dtype=np.int64)
                        yield shmem_load(Phase.SCHEDULE, log_b)
                        yield alu(Phase.SCHEDULE, log_b)
                        owners = np.searchsorted(prefix, ranks, side="right")
                        prev = np.where(owners > 0, prefix[owners - 1], 0)
                        eids = all_starts[owners] + (ranks - prev)
                        bases = all_vids[owners]
                        yield from process_edge_batch(
                            env, bases, eids, accumulate="atomic"
                        )

            return kernel()

        return factory


def _combine(per_warp: Dict[int, Tuple]) -> Tuple:
    """Concatenate per-warp registrations in warp order and build the
    block prefix sum."""
    vids_list, starts_list, degs_list = [], [], []
    for slot in sorted(per_warp):
        vids, starts, degs = per_warp[slot]
        vids_list.append(vids)
        starts_list.append(starts)
        degs_list.append(degs)
    all_vids = np.concatenate(vids_list) if vids_list else np.zeros(0, np.int64)
    all_starts = (
        np.concatenate(starts_list) if starts_list else np.zeros(0, np.int64)
    )
    all_degs = (
        np.concatenate(degs_list) if degs_list else np.zeros(0, np.int64)
    )
    prefix = np.cumsum(all_degs)
    total = int(prefix[-1]) if prefix.size else 0
    return all_vids, all_starts, prefix, total
