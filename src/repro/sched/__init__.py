"""Scheduling schemes: software baselines, SparseWeaver, and EGHW.

Each schedule turns an algorithm + graph into a gather-kernel warp
factory for the simulator. Names follow the paper:

* ``vertex_map`` (S_vm) — naive one-vertex-per-thread mapping.
* ``edge_map`` (S_em) — one-edge-per-thread; double edge memory reads.
* ``warp_map`` (S_wm) — warp-level sharing with prefix sum + binary
  search in shared memory (Meng et al.).
* ``cta_map`` (S_cm) — block-level sharing with a block-wide scan.
* ``sparseweaver`` — the paper's hardware/software co-design.
* ``eghw`` — the edge-generating-hardware baseline of Case Study 1.
"""

from repro.sched.base import KernelEnv, Schedule
from repro.sched.vertex_map import VertexMapSchedule
from repro.sched.edge_map import EdgeMapSchedule
from repro.sched.warp_map import WarpMapSchedule
from repro.sched.cta_map import CTAMapSchedule
from repro.sched.sparseweaver import SparseWeaverSchedule
from repro.sched.split_vertex import SplitVertexMapSchedule
from repro.sched.twc import TWCSchedule
from repro.sched.strict import StrictSchedule
from repro.sched.twce import TWCESchedule
from repro.sched.hybrid_ell import HybridELLSchedule
from repro.sched.eghw_sched import EGHWSchedule
from repro.sched.registry import (
    SOFTWARE_SCHEDULES,
    ALL_SCHEDULES,
    EXTENDED_SCHEDULES,
    make_schedule,
    schedule_names,
)
from repro.sched import analytic

__all__ = [
    "KernelEnv",
    "Schedule",
    "VertexMapSchedule",
    "EdgeMapSchedule",
    "WarpMapSchedule",
    "CTAMapSchedule",
    "SparseWeaverSchedule",
    "SplitVertexMapSchedule",
    "TWCSchedule",
    "StrictSchedule",
    "TWCESchedule",
    "HybridELLSchedule",
    "EGHWSchedule",
    "SOFTWARE_SCHEDULES",
    "ALL_SCHEDULES",
    "EXTENDED_SCHEDULES",
    "make_schedule",
    "schedule_names",
    "analytic",
]
