"""Schedule registry: name -> Schedule instance."""

from __future__ import annotations

from typing import Dict, List, Union

from repro.errors import ScheduleError
from repro.sched.base import Schedule
from repro.sched.cta_map import CTAMapSchedule
from repro.sched.edge_map import EdgeMapSchedule
from repro.sched.eghw_sched import EGHWSchedule
from repro.sched.hybrid_ell import HybridELLSchedule
from repro.sched.sparseweaver import SparseWeaverSchedule
from repro.sched.split_vertex import SplitVertexMapSchedule
from repro.sched.strict import StrictSchedule
from repro.sched.twc import TWCSchedule
from repro.sched.twce import TWCESchedule
from repro.sched.vertex_map import VertexMapSchedule
from repro.sched.warp_map import WarpMapSchedule

#: The four software baselines of Fig. 10, in paper order.
SOFTWARE_SCHEDULES: List[str] = [
    "vertex_map",
    "edge_map",
    "warp_map",
    "cta_map",
]

#: Everything the paper evaluates in Fig. 10, plus the two hardware
#: schemes of the case studies.
ALL_SCHEDULES: List[str] = SOFTWARE_SCHEDULES + ["sparseweaver", "eghw"]

#: Every implemented schedule, including the Table I schemes the paper
#: only tabulates (S_twc, S_twce, S_strict) and the Tigr-style splits.
EXTENDED_SCHEDULES: List[str] = ALL_SCHEDULES + [
    "twc", "twce", "strict", "split_vertex_map", "hybrid_ell",
]

_FACTORIES: Dict[str, type] = {
    "vertex_map": VertexMapSchedule,
    "edge_map": EdgeMapSchedule,
    "warp_map": WarpMapSchedule,
    "cta_map": CTAMapSchedule,
    "sparseweaver": SparseWeaverSchedule,
    "eghw": EGHWSchedule,
    "split_vertex_map": SplitVertexMapSchedule,
    "twc": TWCSchedule,
    "strict": StrictSchedule,
    "twce": TWCESchedule,
    "hybrid_ell": HybridELLSchedule,
}

_ALIASES = {
    "svm": "vertex_map",
    "s_vm": "vertex_map",
    "sem": "edge_map",
    "s_em": "edge_map",
    "swm": "warp_map",
    "s_wm": "warp_map",
    "scm": "cta_map",
    "s_cm": "cta_map",
    "sw": "sparseweaver",
    "weaver": "sparseweaver",
    "tigr": "split_vertex_map",
    "svm_split": "split_vertex_map",
    "stwc": "twc",
    "s_twc": "twc",
    "s_strict": "strict",
    "s_twce": "twce",
    "stwce": "twce",
    "ell": "hybrid_ell",
}


def schedule_names() -> List[str]:
    """All registered schedule names."""
    return list(_FACTORIES)


def make_schedule(name: Union[str, Schedule], **params) -> Schedule:
    """Resolve a schedule by name (paper aliases accepted) or pass an
    instance through.

    Keyword ``params`` are forwarded to the schedule constructor
    (e.g. ``make_schedule("sparseweaver", prefetch_depth=8)``), which
    is how a :class:`~repro.runtime.jobspec.JobSpec` rebuilds a
    parametrized schedule inside a worker process.
    """
    if isinstance(name, Schedule):
        if params:
            raise ScheduleError(
                "schedule parameters can only be applied to a schedule "
                f"name, not an instance ({name.name!r})"
            )
        return name
    key = _ALIASES.get(name.lower(), name.lower())
    if key not in _FACTORIES:
        raise ScheduleError(
            f"unknown schedule {name!r}; known: {sorted(_FACTORIES)}"
        )
    try:
        return _FACTORIES[key](**params)
    except TypeError as exc:
        raise ScheduleError(
            f"schedule {key!r} rejected parameters "
            f"{sorted(params)}: {exc}"
        ) from None
