"""S_twc — Thread/Warp/CTA bucketing (Merrill et al. [34]).

Registration classifies vertices by degree into three buckets held in
*global* memory (Table I charges this scheme 3|V| global memory and
3|V| atomics): small vertices are processed thread-per-vertex like
S_vm, medium vertices warp-per-vertex (all lanes cooperate on one
neighbor list), and large vertices block-per-vertex (every warp of the
core cooperates). The tiered cooperation removes the worst lockstep
imbalance without a per-edge binary search — at the cost of the bucket
build (atomic appends) and two extra distribution sub-phases.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.errors import ScheduleError
from repro.sched.base import KernelEnv, Schedule
from repro.sched.common import inspect_topology, process_edge_batch
from repro.sim.instructions import (
    Phase,
    alu,
    atomic,
    counter,
    load,
    sync,
)


class TWCSchedule(Schedule):
    """Three-bucket thread/warp/CTA cooperation."""

    name = "twc"
    label = "S_twc"
    # Bucket registries are slot-keyed before the barrier and
    # bucketized idempotently after it — the trace_safe contract.
    trace_safe = True

    def __init__(self, small_max: int = 4,
                 medium_max: int = None) -> None:
        if small_max < 1:
            raise ScheduleError("small_max must be at least 1")
        self.small_max = small_max
        self.medium_max = medium_max  # default: 8 * warp width

    def warp_factory(self, env: KernelEnv):
        cfg = env.config
        lanes = env.lanes
        warps = cfg.warps_per_core
        small_max = self.small_max
        medium_max = self.medium_max or 8 * lanes
        stride = cfg.total_threads
        num_epochs = env.vertex_epochs()
        num_vertices = env.num_vertices
        # Global bucket lists (the scheme's 3|V| global memory).
        if "twc_buckets" not in env.regions:
            env.regions["twc_buckets"] = env.memory_map.alloc(
                "twc_buckets", 3 * max(1, num_vertices), 8
            )
        # Shared per-(core, launch-local epoch) registry, one per launch.
        shared: Dict[Tuple[int, int], Dict] = {}

        def factory(ctx):
            def kernel():
                for epoch in range(num_epochs):
                    key = (ctx.core_id, epoch)
                    entry = shared.setdefault(key, {"warps": {}})
                    vids = ctx.thread_ids + epoch * stride
                    vids = vids[vids < num_vertices]
                    starts, degrees = yield from inspect_topology(env, vids)
                    if vids.size:
                        # classify + atomic append into global buckets
                        yield alu(Phase.REGISTRATION, 2)
                        yield atomic(Phase.REGISTRATION,
                                     env.region("twc_buckets"), vids)
                    entry["warps"][ctx.warp_slot] = (vids, starts, degrees)
                    yield sync(Phase.REGISTRATION)

                    combined = entry.get("combined")
                    if combined is None:
                        combined = _bucketize(entry["warps"], small_max,
                                              medium_max)
                        entry["combined"] = combined
                    small, medium, large = combined

                    # --- small: thread-per-vertex (S_vm style) -------
                    s_vids, s_starts, s_degs = _my_slice(
                        small, ctx, warps, lanes, per="thread")
                    alive = np.nonzero(s_degs > 0)[0]
                    k = 0
                    while alive.size:
                        yield counter("warp_iterations")
                        yield from process_edge_batch(
                            env, s_vids[alive], s_starts[alive] + k,
                            accumulate="atomic",
                        )
                        k += 1
                        alive = alive[s_degs[alive] > k]

                    # --- medium: warp-per-vertex ---------------------
                    m_vids, m_starts, m_degs = _my_slice(
                        medium, ctx, warps, lanes, per="warp")
                    for v, s, d in zip(m_vids.tolist(), m_starts.tolist(),
                                       m_degs.tolist()):
                        # bucket-entry read before the cooperative walk
                        yield load(Phase.SCHEDULE,
                                   env.region("twc_buckets"), [v])
                        for off in range(0, d, lanes):
                            yield counter("warp_iterations")
                            eids = s + np.arange(off,
                                                 min(off + lanes, d))
                            yield from process_edge_batch(
                                env, np.full(eids.size, v), eids,
                                accumulate="atomic",
                            )

                    # --- large: block-per-vertex ---------------------
                    yield sync(Phase.SCHEDULE)
                    l_vids, l_starts, l_degs = large
                    block = warps * lanes
                    for v, s, d in zip(l_vids.tolist(), l_starts.tolist(),
                                       l_degs.tolist()):
                        rounds = -(-d // block)
                        for r in range(rounds):
                            yield counter("warp_iterations")
                            lo = s + r * block + ctx.warp_slot * lanes
                            hi = min(lo + lanes, s + d)
                            if lo >= s + d:
                                continue
                            eids = np.arange(lo, hi)
                            yield from process_edge_batch(
                                env, np.full(eids.size, v), eids,
                                accumulate="atomic",
                            )
                    yield sync(Phase.SCHEDULE)

            return kernel()

        return factory


def _bucketize(per_warp: Dict[int, Tuple], small_max: int,
               medium_max: int):
    """Split the core's registered vertices into three degree buckets."""
    vids_list, starts_list, degs_list = [], [], []
    for slot in sorted(per_warp):
        vids, starts, degs = per_warp[slot]
        vids_list.append(vids)
        starts_list.append(starts)
        degs_list.append(degs)
    vids = (np.concatenate(vids_list) if vids_list
            else np.zeros(0, np.int64))
    starts = (np.concatenate(starts_list) if starts_list
              else np.zeros(0, np.int64))
    degs = (np.concatenate(degs_list) if degs_list
            else np.zeros(0, np.int64))
    small = degs <= small_max
    large = degs > medium_max
    medium = ~small & ~large
    return (
        (vids[small], starts[small], degs[small]),
        (vids[medium], starts[medium], degs[medium]),
        (vids[large], starts[large], degs[large]),
    )


def _my_slice(bucket, ctx, warps: int, lanes: int, per: str):
    """The subset of a bucket this warp owns: round-robin by thread
    (small) or by warp (medium)."""
    vids, starts, degs = bucket
    if per == "thread":
        lo = ctx.warp_slot * lanes
        idx = np.arange(vids.size)
        mine = (idx % (warps * lanes) >= lo) & (
            idx % (warps * lanes) < lo + lanes)
    else:  # per warp
        idx = np.arange(vids.size)
        mine = idx % warps == ctx.warp_slot
    return vids[mine], starts[mine], degs[mine]
