"""S_vm — naive vertex mapping (Table I column 1).

Each thread owns a vertex and serially walks that vertex's neighbor
list. Lockstep execution makes every warp round last as long as its
highest-degree lane, which is the workload-imbalance pathology of
Fig. 1: warp rounds = sum over warps of max degree in the warp.

Upside: no extra synchronization, no shared memory, accumulators live
in registers (one store per vertex), edge memory traffic is the minimal
``2|V| + |E|``.
"""

from __future__ import annotations

import numpy as np

from repro.sched.base import KernelEnv, Schedule
from repro.sched.common import (
    check_early_exit,
    epoch_vertex_ids,
    inspect_topology,
    process_edge_batch,
    writeback_accumulators,
)
from repro.sim.instructions import counter


class VertexMapSchedule(Schedule):
    """One vertex per thread; per-thread serial edge walk."""

    name = "vertex_map"
    label = "S_vm"
    trace_safe = True

    def warp_factory(self, env: KernelEnv):
        num_epochs = env.vertex_epochs()
        stride = env.config.total_threads
        # Pull keeps each lane's sum in a register (one store at the
        # end); push scatters to the opposite endpoint and pays atomics
        # like everyone else.
        pull_local = env.algorithm.accumulate_target == "base"
        accumulate = "local" if pull_local else "atomic"

        def factory(ctx):
            if ctx.thread_ids[0] >= env.num_vertices:
                return None  # this warp never owns a vertex

            def kernel():
                for epoch in range(num_epochs):
                    vids = epoch_vertex_ids(ctx, env, epoch)
                    if vids.size == 0:
                        break
                    starts, degrees = yield from inspect_topology(env, vids)
                    alive = np.nonzero(degrees > 0)[0]
                    k = 0
                    while alive.size:
                        yield counter("warp_iterations")
                        bases = vids[alive]
                        eids = starts[alive] + k
                        yield from process_edge_batch(
                            env, bases, eids, accumulate=accumulate
                        )
                        k += 1
                        alive = alive[degrees[alive] > k]
                        if alive.size:
                            done = yield from check_early_exit(
                                env, vids[alive]
                            )
                            if done.any():
                                alive = alive[~done]
                    if pull_local:
                        touched = vids[degrees > 0]
                        yield from writeback_accumulators(env, touched)

            return kernel()

        _ = stride  # stride is implicit in epoch_vertex_ids
        return factory
