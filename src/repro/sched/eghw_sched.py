"""EGHW schedule — Case Study 1's edge-generating-hardware baseline.

The GPU stages active vertex ids into the unit's shared-memory buffer;
the unit itself reads graph topology *and* edge information from the
memory hierarchy on its serial private timeline and emits complete edge
records; warps block on ``EGHW_FETCH`` for each batch. The GPU only
performs the vertex-property gather on the records.

Contrast with SparseWeaver: the unit's own memory reads cannot be
hidden behind other warps, and the generated records cost extra
shared-memory traffic — the two overheads Fig. 18's breakdown shows.
"""

from __future__ import annotations

import numpy as np

from repro.core.eghw import EGHWUnit
from repro.errors import ScheduleError
from repro.sched.base import KernelEnv, Schedule
from repro.sched.common import epoch_vertex_ids, process_edge_batch
from repro.sim.instructions import (
    Phase,
    alu,
    counter,
    eghw_fetch,
    eghw_push,
    load,
    shmem_store,
    sync,
)


class EGHWSchedule(Schedule):
    """Offload topology + edge-info access wholesale to a unit."""

    name = "eghw"
    label = "EGHW"
    uses_hardware_unit = True

    def unit_factory(self, env: KernelEnv):
        if env.memory is None:
            raise ScheduleError(
                "EGHW needs env.memory bound to the GPU's hierarchy "
                "before launch"
            )
        graph = env.graph

        def build(core_id: int) -> EGHWUnit:
            return EGHWUnit(
                core_id,
                env.config,
                env.memory,
                env.region("row_ptr"),
                env.region("col_idx"),
                env.region("weights"),
                graph.row_ptr,
                graph.col_idx,
                graph.weights,
            )

        return build

    def warp_factory(self, env: KernelEnv):
        num_epochs = env.vertex_epochs()
        alg = env.algorithm

        def factory(ctx):
            def kernel():
                for epoch in range(num_epochs):
                    vids = epoch_vertex_ids(ctx, env, epoch)
                    if vids.size and alg.has_base_filter:
                        for name in alg.base_filter_arrays:
                            yield load(Phase.REGISTRATION,
                                       env.region(name), vids)
                        yield alu(Phase.REGISTRATION)
                        vids = vids[~alg.base_filter(env.state, vids)]
                    if vids.size:
                        # Stage vertex ids into the unit's input buffer.
                        yield shmem_store(Phase.REGISTRATION, 1)
                        yield eghw_push(Phase.REGISTRATION, vids.tolist())
                    yield sync(Phase.REGISTRATION)

                    while True:
                        yield counter("warp_iterations")
                        batch = yield eghw_fetch(Phase.SCHEDULE)
                        if batch.exhausted:
                            break
                        mask = batch.mask
                        # The unit already fetched endpoints + weights;
                        # the GPU only gathers vertex properties.
                        yield from process_edge_batch(
                            env, batch.vids[mask], batch.eids[mask],
                            accumulate="atomic", preloaded=True,
                            others=batch.others[mask],
                            weights=batch.weights[mask],
                        )
                    if epoch < num_epochs - 1:
                        yield sync(Phase.SCHEDULE)

            return kernel()

        return factory
