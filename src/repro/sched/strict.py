"""S_strict — kernel-level exact balancing (Davidson et al. [12]).

A grid-wide prefix sum over all vertex degrees (built by extra scan
kernels and parked in *global* memory — Table I's 3|V| global cost and
"17, 3, 0, 15" registration row) lets every thread claim an exact
contiguous slice of the edge ranks. Distribution needs no further
synchronization or atomically shared counters: each lane binary-
searches the *global* prefix array (log |V| global loads per edge
batch) to find its rank's owner. Perfect balance and high edge-access
locality, paid for in registration-stage kernels and global-memory
searches.
"""

from __future__ import annotations

import numpy as np

from repro.sched.base import KernelEnv, Schedule
from repro.sched.common import log2_ceil, process_edge_batch
from repro.sim.instructions import (
    Phase,
    alu,
    counter,
    load,
    store,
    sync,
)


class StrictSchedule(Schedule):
    """Grid-wide exact edge partitioning via a global degree scan."""

    name = "strict"
    label = "S_strict"
    trace_safe = True

    def warp_factory(self, env: KernelEnv):
        cfg = env.config
        lanes = env.lanes
        stride = cfg.total_threads
        graph = env.graph
        num_vertices = env.num_vertices
        alg = env.algorithm

        if "strict_prefix" not in env.regions:
            env.regions["strict_prefix"] = env.memory_map.alloc(
                "strict_prefix", max(1, 3 * num_vertices), 8
            )
        prefix_region = env.regions["strict_prefix"]
        log_v = log2_ceil(max(2, num_vertices))
        vertex_epochs = max(1, -(-num_vertices // stride))

        def factory(ctx):
            def kernel():
                # ---- registration: build the global degree prefix ----
                # (scan kernels: read topology, apply base filter, store
                # partials, rescan — modeled as three passes with
                # barriers, the "extra kernels" of Table I)
                for epoch in range(vertex_epochs):
                    vids = ctx.thread_ids + epoch * stride
                    vids = vids[vids < num_vertices]
                    if vids.size:
                        yield load(Phase.REGISTRATION,
                                   env.region("row_ptr"),
                                   np.concatenate([vids, vids + 1]))
                        yield alu(Phase.REGISTRATION)
                        starts = graph.row_ptr[vids]
                        degrees = graph.row_ptr[vids + 1] - starts
                        if alg.has_base_filter:
                            for name in alg.base_filter_arrays:
                                yield load(Phase.REGISTRATION,
                                           env.region(name), vids)
                            yield alu(Phase.REGISTRATION)
                            degrees = alg.filtered_degrees(
                                env.state, vids, degrees
                            )
                        yield store(Phase.REGISTRATION, prefix_region,
                                    vids)
                    yield sync(Phase.REGISTRATION)
                    # scan-kernel passes over the partials
                    yield load(Phase.REGISTRATION, prefix_region,
                               vids if vids.size else
                               np.zeros(0, np.int64))
                    yield alu(Phase.REGISTRATION, 2)
                    yield store(Phase.REGISTRATION, prefix_region,
                                vids if vids.size else
                                np.zeros(0, np.int64))
                    yield sync(Phase.REGISTRATION)

                # Functional prefix built once per launch per core 0
                # warp 0; all warps share the same numpy arrays below.
                starts_all, prefix, total = _global_prefix(
                    graph, alg, env.state
                )

                # ---- distribution: exact contiguous rank slices ------
                per_thread = -(-total // stride) if total else 0
                warp_lo = (ctx.global_warp_id * lanes) * per_thread
                for block in range(per_thread):
                    lo = warp_lo + block * lanes
                    if lo >= total:
                        break
                    ranks = np.arange(lo, min(lo + lanes, total),
                                      dtype=np.int64)
                    yield counter("warp_iterations")
                    # Per-lane binary search over the GLOBAL prefix:
                    # log|V| *dependent* probes, each a scattered
                    # global load (the scheme's distribution bill).
                    span = max(1, num_vertices)
                    probe = np.full(ranks.size, span // 2, dtype=np.int64)
                    for step in range(log_v):
                        yield load(Phase.SCHEDULE, prefix_region, probe)
                        yield alu(Phase.SCHEDULE)
                        shift = max(1, span >> (step + 2))
                        probe = (probe + ((ranks % 2) * 2 - 1)
                                 * shift) % span
                    owners = np.searchsorted(prefix, ranks, side="right")
                    prev = np.where(owners > 0, prefix[owners - 1], 0)
                    eids = starts_all[owners] + (ranks - prev)
                    bases = owners.astype(np.int64)
                    yield from process_edge_batch(
                        env, bases, eids, accumulate="atomic"
                    )

            return kernel()

        return factory


def _global_prefix(graph, alg, state):
    """Filtered degree prefix over every vertex (the scan's output)."""
    degrees = graph.degrees.astype(np.int64)
    if alg.has_base_filter:
        vids = np.arange(graph.num_vertices, dtype=np.int64)
        degrees = alg.filtered_degrees(state, vids, degrees)
    prefix = np.cumsum(degrees)
    total = int(prefix[-1]) if prefix.size else 0
    return graph.row_ptr[:-1], prefix, total
