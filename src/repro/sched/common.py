"""Shared kernel-emission helpers used by every schedule.

These sub-generators (driven with ``yield from``) emit the memory
traffic and ALU work of the two halves every scheme shares — inspecting
graph topology at registration time and processing a warp-wide batch of
edges at distribution time — while performing the *functional* update on
the numpy state arrays, so timing and correctness come from one code
path.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.sched.base import KernelEnv
from repro.sim.instructions import (
    Phase,
    alu,
    atomic,
    load,
    store,
)

_EMPTY = np.zeros(0, dtype=np.int64)


def inspect_topology(env: KernelEnv, vids: np.ndarray,
                     phase: Phase = Phase.REGISTRATION):
    """Emit the topology access of Fig. 9 lines 5-8; returns
    ``(starts, degrees)`` with the base filter already applied
    (filtered vertices get degree zero)."""
    g = env.graph
    alg = env.algorithm
    if vids.size == 0:
        return _EMPTY, _EMPTY
    yield load(phase, env.region("row_ptr"),
               np.concatenate([vids, vids + 1]))
    yield alu(phase)
    starts = g.row_ptr[vids]
    degrees = g.row_ptr[vids + 1] - starts
    if alg.has_base_filter:
        for name in alg.base_filter_arrays:
            yield load(phase, env.region(name), vids)
        yield alu(phase)
        degrees = alg.filtered_degrees(env.state, vids, degrees)
    return starts, degrees


def process_edge_batch(
    env: KernelEnv,
    bases: np.ndarray,
    eids: np.ndarray,
    accumulate: str = "atomic",
    edge_phase: Phase = Phase.EDGE_ACCESS,
    gather_phase: Phase = Phase.GATHER,
    preloaded: bool = False,
    others: np.ndarray = None,
    weights: np.ndarray = None,
) -> "np.ndarray":
    """Emit edge-information access + gather&sum for one warp batch.

    ``accumulate`` selects how the per-edge contribution lands in the
    accumulator array: ``"atomic"`` (lanes may share a base vertex, the
    scheme pays an atomic op) or ``"local"`` (each lane owns its base —
    vertex mapping — and writes back once at the end, charged by the
    caller). ``preloaded=True`` means a hardware unit (EGHW) already
    fetched the opposite endpoint and weight, so the kernel skips those
    loads and uses the supplied ``others``/``weights``.

    Returns the keep mask after the other-endpoint filter.
    """
    alg = env.algorithm
    state = env.state
    if bases.size == 0:
        return np.zeros(0, dtype=bool)
    if not preloaded:
        yield load(edge_phase, env.region("col_idx"), eids)
        others = env.graph.col_idx[eids]
        if alg.uses_weights:
            yield load(edge_phase, env.region("weights"), eids)
            weights = env.graph.weights[eids]
    if weights is None:
        weights = np.ones(bases.size)
    for name in alg.edge_value_arrays:
        yield load(gather_phase, env.region(name), others)
    if alg.has_other_filter:
        yield alu(gather_phase)
        keep = ~alg.other_filter(state, others)
    else:
        keep = np.ones(bases.size, dtype=bool)
    if keep.any():
        yield alu(gather_phase, alg.gather_alu)
        alg.edge_update(
            state, bases[keep], others[keep], weights[keep], eids[keep]
        )
        if accumulate == "atomic":
            targets = (bases if alg.accumulate_target == "base"
                       else others)
            yield atomic(gather_phase, env.region(alg.acc_array),
                         targets[keep])
    return keep


def writeback_accumulators(env: KernelEnv, bases: np.ndarray,
                           phase: Phase = Phase.GATHER):
    """Vertex-mapping epilogue: one coalesced accumulator store for the
    lanes that gathered anything (their sums lived in registers)."""
    if bases.size:
        yield store(phase, env.region(env.algorithm.acc_array), bases)


def epoch_vertex_ids(ctx, env: KernelEnv, epoch: int) -> np.ndarray:
    """Grid-stride vertex ids owned by this warp's lanes in ``epoch``
    (only the in-range ones)."""
    vids = ctx.thread_ids + epoch * env.config.total_threads
    return vids[vids < env.num_vertices]


def epoch_edge_ids(ctx, env: KernelEnv, epoch: int) -> np.ndarray:
    """Grid-stride edge ids owned by this warp's lanes in ``epoch``."""
    eids = ctx.thread_ids + epoch * env.config.total_threads
    return eids[eids < env.num_edges]


def log2_ceil(n: int) -> int:
    """Ceil of log2 for n >= 1 (scan/binary-search depth)."""
    return max(1, int(np.ceil(np.log2(max(n, 2)))))


def check_early_exit(env: KernelEnv, bases: np.ndarray):
    """Emit the early-exit test; returns the done mask (empty batches
    return an empty mask)."""
    alg = env.algorithm
    if not alg.has_early_exit or bases.size == 0:
        return np.zeros(bases.size, dtype=bool)
    yield alu(Phase.GATHER)
    return alg.early_exit(env.state, bases)
