"""Hybrid ELL + SparseWeaver schedule (Section III-D).

The dense ELL slab is processed with zero imbalance — every lane walks
exactly ``width`` column-major slots, loads fully coalesced — and only
the CSR residue (the hub tails that would have wrecked the slab) goes
through the Weaver. On skewed graphs this keeps the Weaver's tables and
decode traffic proportional to the tail instead of the whole edge set.
"""

from __future__ import annotations

import numpy as np

from repro.core.unit import WeaverUnit
from repro.graph.ell import to_hybrid_ell
from repro.sched.base import KernelEnv, Schedule
from repro.sim.instructions import (
    Phase,
    alu,
    atomic,
    counter,
    load,
    sync,
    weaver_dec_id,
    weaver_dec_loc,
    weaver_reg,
)


class HybridELLSchedule(Schedule):
    """ELL slab densely, CSR residue through the Weaver."""

    name = "hybrid_ell"
    label = "ELL+SW"
    uses_hardware_unit = True

    def __init__(self, width: int = None) -> None:
        self.width = width

    def unit_factory(self, env: KernelEnv):
        config = env.config
        return lambda core_id: WeaverUnit(config)

    def warp_factory(self, env: KernelEnv):
        cfg = env.config
        lanes = env.lanes
        stride = cfg.total_threads
        alg = env.algorithm
        state = env.state
        n = env.num_vertices

        hybrid = env.regions.get("_hybrid_ell_cache")
        if hybrid is None:
            hybrid = to_hybrid_ell(env.graph, self.width)
            env.regions["_hybrid_ell_cache"] = hybrid
            env.regions["ell_cols"] = env.memory_map.alloc(
                "ell_cols", hybrid.ell_cols.size, 8)
            env.regions["ell_weights"] = env.memory_map.alloc(
                "ell_weights", hybrid.ell_weights.size, 8)
            env.regions["res_row_ptr"] = env.memory_map.alloc(
                "res_row_ptr", hybrid.residue.row_ptr.size, 8)
            env.regions["res_col_idx"] = env.memory_map.alloc(
                "res_col_idx", max(1, hybrid.residue.num_edges), 8)
            env.regions["res_weights"] = env.memory_map.alloc(
                "res_weights", max(1, hybrid.residue.num_edges), 8)
        residue = hybrid.residue
        width = hybrid.width
        num_epochs = max(1, -(-n // stride))
        lane_ids = np.arange(lanes, dtype=np.int64)

        def process(bases, others, weights_arr, eids):
            """Shared functional + filter handling (timing emitted by
            the caller around it)."""
            if alg.has_other_filter:
                keep = ~alg.other_filter(state, others)
            else:
                keep = np.ones(bases.size, dtype=bool)
            if keep.any():
                alg.edge_update(state, bases[keep], others[keep],
                                weights_arr[keep], eids[keep])
            return keep

        def factory(ctx):
            def kernel():
                for epoch in range(num_epochs):
                    vids = ctx.thread_ids + epoch * stride
                    vids = vids[vids < n]
                    # ---- dense ELL slab: no imbalance by construction
                    if vids.size:
                        if alg.has_base_filter:
                            for name in alg.base_filter_arrays:
                                yield load(Phase.REGISTRATION,
                                           env.region(name), vids)
                            yield alu(Phase.REGISTRATION)
                            blocked = alg.base_filter(state, vids)
                        else:
                            blocked = np.zeros(vids.size, dtype=bool)
                        for j in range(width):
                            others = hybrid.ell_cols[j, vids]
                            active = (others >= 0) & ~blocked
                            if not active.any():
                                continue
                            yield counter("warp_iterations")
                            # column-major: lane-adjacent slots
                            yield load(Phase.EDGE_ACCESS,
                                       env.region("ell_cols"),
                                       j * n + vids[active])
                            if alg.uses_weights:
                                yield load(Phase.EDGE_ACCESS,
                                           env.region("ell_weights"),
                                           j * n + vids[active])
                            for name in alg.edge_value_arrays:
                                yield load(Phase.GATHER,
                                           env.region(name),
                                           others[active])
                            yield alu(Phase.GATHER, alg.gather_alu)
                            keep = process(
                                vids[active], others[active],
                                hybrid.ell_weights[j, vids[active]],
                                np.full(int(active.sum()), -1,
                                        dtype=np.int64),
                            )
                            targets = (vids[active] if
                                       alg.accumulate_target == "base"
                                       else others[active])
                            if keep.any():
                                yield atomic(Phase.GATHER,
                                             env.region(alg.acc_array),
                                             targets[keep])

                    # ---- residue: weave the hub tails ---------------
                    if vids.size:
                        yield load(Phase.REGISTRATION,
                                   env.region("res_row_ptr"),
                                   np.concatenate([vids, vids + 1]))
                        yield alu(Phase.REGISTRATION)
                        starts = residue.row_ptr[vids]
                        degrees = residue.row_ptr[vids + 1] - starts
                        if alg.has_base_filter:
                            degrees = alg.filtered_degrees(
                                state, vids, degrees)
                        entries = list(zip(
                            lane_ids[: vids.size].tolist(),
                            vids.tolist(), starts.tolist(),
                            degrees.tolist()))
                        yield weaver_reg(Phase.REGISTRATION, entries)
                    else:
                        yield weaver_reg(Phase.REGISTRATION, [])
                    yield sync(Phase.REGISTRATION)
                    while True:
                        yield counter("warp_iterations")
                        decoded = yield weaver_dec_id(Phase.SCHEDULE)
                        if decoded.exhausted:
                            break
                        eid_row = yield weaver_dec_loc(Phase.SCHEDULE)
                        mask = decoded.mask
                        bases = decoded.vids[mask]
                        eids = eid_row[mask]
                        yield load(Phase.EDGE_ACCESS,
                                   env.region("res_col_idx"), eids)
                        others = residue.col_idx[eids]
                        if alg.uses_weights:
                            yield load(Phase.EDGE_ACCESS,
                                       env.region("res_weights"), eids)
                        for name in alg.edge_value_arrays:
                            yield load(Phase.GATHER, env.region(name),
                                       others)
                        yield alu(Phase.GATHER, alg.gather_alu)
                        keep = process(bases, others,
                                       residue.weights[eids],
                                       np.full(bases.size, -1,
                                               dtype=np.int64))
                        targets = (bases if alg.accumulate_target ==
                                   "base" else others)
                        if keep.any():
                            yield atomic(Phase.GATHER,
                                         env.region(alg.acc_array),
                                         targets[keep])
                    if epoch < num_epochs - 1:
                        yield sync(Phase.SCHEDULE)

            return kernel()

        return factory
