"""The SparseWeaver schedule (Sections III-IV; kernel of Fig. 9).

Registration: each thread inspects its vertex's topology and issues
``WEAVER_REG(vid, start, degree)`` (filtered vertices register degree
zero). One barrier separates the stages. Distribution: warps loop on
``WEAVER_DEC_ID`` / ``WEAVER_DEC_LOC``, getting densely packed
(VID, EID) work across all lanes until the unit returns -1; algorithms
with early exit send ``WEAVER_SKIP`` for finished vertices.

Block-level balance comes for free (the per-core unit scans every
warp's registrations), work is handed out in request order (dynamic
distribution), and the only software overhead left is the single
barrier — the "low / low" complexity column of Table I.

When the vertex range exceeds one registration capacity, the kernel
runs multiple epochs; a trailing barrier protects the table reset
between epochs (the paper's single-epoch case keeps exactly one sync).
"""

from __future__ import annotations

import numpy as np

from repro.core.unit import WeaverUnit
from repro.sched.base import KernelEnv, Schedule
from repro.sched.common import (
    check_early_exit,
    inspect_topology,
    process_edge_batch,
)
from repro.sim.instructions import (
    Phase,
    counter,
    sync,
    weaver_dec_id,
    weaver_dec_loc,
    weaver_reg,
    weaver_skip,
)


class SparseWeaverSchedule(Schedule):
    """Hardware-woven dense work distribution.

    The constructor exposes the microarchitectural knobs the ablation
    benchmarks sweep: OD prefetch depth (decoupled scan), the zero-entry
    bitmap scan width (frontier-friendly skipping), and the DT
    write-buffer bypass. Defaults are the modeled hardware's.
    """

    name = "sparseweaver"
    label = "SW"
    uses_hardware_unit = True

    def __init__(
        self,
        prefetch_depth: int = 4,
        zero_skip_width: int = None,
        dt_bypass: bool = True,
    ) -> None:
        self.prefetch_depth = prefetch_depth
        self.zero_skip_width = zero_skip_width
        self.dt_bypass = dt_bypass

    def unit_factory(self, env: KernelEnv):
        config = env.config
        prefetch_depth = self.prefetch_depth
        zero_skip_width = self.zero_skip_width
        dt_bypass = self.dt_bypass

        def build(core_id: int) -> WeaverUnit:
            unit = WeaverUnit(config, prefetch_depth=prefetch_depth)
            if zero_skip_width is not None:
                unit.fsm.zero_skip_width = zero_skip_width
            if not dt_bypass:
                unit.DT_BYPASS_LATENCY = config.weaver_table_latency
            return unit

        return build

    def warp_factory(self, env: KernelEnv):
        cfg = env.config
        alg = env.algorithm
        lanes = env.lanes
        lane_ids = np.arange(lanes, dtype=np.int64)
        # Registration capacity per core: when the ST has fewer entries
        # than resident threads, only the first warps register each
        # epoch and the grid covers vertices in capacity-sized chunks.
        capacity = max(lanes,
                       min(cfg.weaver_entries, cfg.threads_per_core))
        capacity -= capacity % lanes
        reg_warps = capacity // lanes
        grid = cfg.num_cores * capacity
        num_vertices = env.num_vertices
        num_epochs = max(1, -(-num_vertices // grid))

        def factory(ctx):
            registers = ctx.warp_slot < reg_warps
            base = (ctx.core_id * capacity + ctx.warp_slot * lanes)

            def kernel():
                for epoch in range(num_epochs):
                    if registers:
                        vids = epoch * grid + base + lane_ids
                        vids = vids[vids < num_vertices]
                    else:
                        vids = lane_ids[:0]
                    if vids.size:
                        starts, degrees = yield from inspect_topology(
                            env, vids
                        )
                        entries = list(
                            zip(lane_ids[: vids.size].tolist(),
                                vids.tolist(),
                                starts.tolist(),
                                degrees.tolist())
                        )
                        yield weaver_reg(Phase.REGISTRATION, entries)
                    else:
                        yield weaver_reg(Phase.REGISTRATION, [])
                    yield sync(Phase.REGISTRATION)

                    while True:
                        yield counter("warp_iterations")
                        decoded = yield weaver_dec_id(Phase.SCHEDULE)
                        if decoded.exhausted:
                            break
                        eid_row = yield weaver_dec_loc(Phase.SCHEDULE)
                        mask = decoded.mask
                        bases = decoded.vids[mask]
                        eids = eid_row[mask]
                        yield from process_edge_batch(
                            env, bases, eids, accumulate="atomic"
                        )
                        done = yield from check_early_exit(env, bases)
                        if done.any():
                            for vid in np.unique(bases[done]).tolist():
                                yield weaver_skip(Phase.GATHER, int(vid))
                    if epoch < num_epochs - 1:
                        # Protect the ST/DT reset of the next epoch's
                        # registration from stragglers.
                        yield sync(Phase.SCHEDULE)

            return kernel()

        return factory
