"""S_wm — warp-level sharing (Meng et al. [33]; Table I column 3).

Registration: every lane inspects its vertex's topology and the warp
builds a prefix sum of degrees via shuffle-style exchanges, storing the
(vid, start, prefix) triples to shared memory — Table I's "3|B| shared
memory / 6 warp shuffles" costs.

Distribution: the warp's total degree is chopped into warp-wide rounds;
each lane binary-searches the shared prefix array (``O(log T)`` shared
reads per edge — Table I's "|E| binary search" complexity) to find the
vertex owning its rank, then processes one edge. Balance is per-warp:
a hub still serializes within its own warp's share.
"""

from __future__ import annotations

import numpy as np

from repro.sched.base import KernelEnv, Schedule
from repro.sched.common import (
    epoch_vertex_ids,
    inspect_topology,
    log2_ceil,
    process_edge_batch,
)
from repro.sim.instructions import (
    Phase,
    alu,
    counter,
    shmem_load,
    shmem_store,
)


class WarpMapSchedule(Schedule):
    """Warp-shared prefix sum + per-edge binary search."""

    name = "warp_map"
    label = "S_wm"
    trace_safe = True

    def warp_factory(self, env: KernelEnv):
        num_epochs = env.vertex_epochs()
        lanes = env.lanes
        log_t = log2_ceil(lanes)

        def factory(ctx):
            if ctx.thread_ids[0] >= env.num_vertices:
                return None

            def kernel():
                for epoch in range(num_epochs):
                    vids = epoch_vertex_ids(ctx, env, epoch)
                    if vids.size == 0:
                        break
                    starts, degrees = yield from inspect_topology(env, vids)
                    # Warp-wide inclusive scan of degrees (shuffles) and
                    # the triple store to shared memory.
                    yield alu(Phase.REGISTRATION, log_t)
                    yield shmem_store(Phase.REGISTRATION, 3)
                    prefix = np.cumsum(degrees)
                    total = int(prefix[-1]) if prefix.size else 0
                    for offset in range(0, total, lanes):
                        yield counter("warp_iterations")
                        ranks = offset + np.arange(
                            min(lanes, total - offset), dtype=np.int64
                        )
                        # Per-lane binary search over the shared prefix.
                        yield shmem_load(Phase.SCHEDULE, log_t)
                        yield alu(Phase.SCHEDULE, log_t)
                        owners = np.searchsorted(prefix, ranks, side="right")
                        prev = np.where(owners > 0, prefix[owners - 1], 0)
                        eids = starts[owners] + (ranks - prev)
                        bases = vids[owners]
                        yield from process_edge_batch(
                            env, bases, eids, accumulate="atomic"
                        )

            return kernel()

        return factory
