"""S_em — edge mapping (Table I column 2).

One edge per thread: perfectly balanced by construction (warp rounds =
|E| / warp width) but each thread must read *both* endpoints of its
edge because it has no base-vertex context — the ``2|E|`` edge-memory
column of Table I — and accumulation needs atomics since many lanes can
share a destination. On low-skew graphs that double edge read makes
S_em lose to S_vm; on highly skewed graphs balance wins (Fig. 11b).
"""

from __future__ import annotations

import numpy as np

from repro.sched.base import KernelEnv, Schedule
from repro.sched.common import epoch_edge_ids, process_edge_batch
from repro.sim.instructions import Phase, alu, counter, load


class EdgeMapSchedule(Schedule):
    """One edge per thread, grid-stride over the edge array."""

    name = "edge_map"
    label = "S_em"
    trace_safe = True

    def warp_factory(self, env: KernelEnv):
        num_epochs = env.edge_epochs()
        alg = env.algorithm
        edge_sources = env.graph.edge_sources()

        def factory(ctx):
            if ctx.thread_ids[0] >= env.num_edges:
                return None

            def kernel():
                for epoch in range(num_epochs):
                    eids = epoch_edge_ids(ctx, env, epoch)
                    if eids.size == 0:
                        break
                    yield counter("warp_iterations")
                    # Second endpoint read: the base vertex of each edge
                    # (this is the extra |E| read S_em pays).
                    yield load(Phase.EDGE_ACCESS, env.region("edge_src"),
                               eids)
                    bases = edge_sources[eids]
                    if alg.has_base_filter:
                        for name in alg.base_filter_arrays:
                            yield load(Phase.SCHEDULE, env.region(name),
                                       bases)
                        yield alu(Phase.SCHEDULE)
                        keep = ~alg.base_filter(env.state, bases)
                        bases = bases[keep]
                        eids = eids[keep]
                    yield from process_edge_batch(
                        env, bases, eids, accumulate="atomic"
                    )

            return kernel()

        return factory
