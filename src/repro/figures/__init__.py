"""Unified figure registry: every paper benchmark behind one API.

Each figure/table of the paper (plus the repo's own ablations and
calibration microbenchmarks) is a registered :class:`Figure` that
declares its simulation grid as :class:`~repro.runtime.jobspec.JobSpec`
data and folds engine summaries back into the rows/series the paper
reports.  One driver executes any subset through the
:class:`~repro.runtime.engine.BatchEngine` — parallel, cached,
telemetered — so ``repro bench --figures fig10,fig11 --jobs 8``
regenerates paper outputs incrementally (a second run is all cache
hits).

The ``benchmarks/bench_*.py`` pytest modules are thin wrappers over
this registry: they run the same figures at the default scale and
keep the paper-shape assertions.
"""

from repro.figures.registry import (
    DEFAULT_SCALE,
    SMOKE_SCALE,
    Figure,
    FigureContext,
    FigureOutput,
    figure_names,
    get_figure,
    list_figures,
    register,
    resolve_figures,
)
from repro.figures.driver import (
    FailureReport,
    JobFailure,
    ResultSet,
    expand_jobs,
    run_figure,
    run_figures,
    run_figures_report,
)

__all__ = [
    "DEFAULT_SCALE",
    "SMOKE_SCALE",
    "FailureReport",
    "Figure",
    "FigureContext",
    "FigureOutput",
    "JobFailure",
    "ResultSet",
    "expand_jobs",
    "figure_names",
    "get_figure",
    "list_figures",
    "register",
    "resolve_figures",
    "run_figure",
    "run_figures",
    "run_figures_report",
]
