"""Fig. 10 — the headline grids: 4 algorithms x 9 graphs x 5 schemes."""

from __future__ import annotations

from repro.bench import format_series
from repro.figures.defs.common import (bench_graph_specs,
                                       experiment_result, graph_names,
                                       grid)
from repro.figures.registry import Figure, register
from repro.runtime import AlgorithmSpec

SCHEDULES = ["vertex_map", "edge_map", "warp_map", "cta_map",
             "sparseweaver"]

ALGORITHMS = {
    "pagerank": AlgorithmSpec.of("pagerank", iterations=2),
    "bfs": AlgorithmSpec.of("bfs", source=0),
    "sssp": AlgorithmSpec.of("sssp", source=0),
    "cc": AlgorithmSpec.of("cc"),
}
ITER_CAPS = {"pagerank": 2, "bfs": 3, "sssp": 3, "cc": 3}


class Fig10(Figure):
    """One algorithm's dataset x schedule speedup grid."""

    paper = "Fig. 10"

    def __init__(self, alg_name: str) -> None:
        self.alg_name = alg_name
        self.name = f"fig10_{alg_name}"
        self.title = (f"Main comparison ({alg_name}): 9 datasets x "
                      "5 schemes, speedup over S_vm")

    def _cells(self, ctx):
        return grid(
            ALGORITHMS[self.alg_name], bench_graph_specs(ctx),
            SCHEDULES, config=ctx.gpu_config(),
            max_iterations=ITER_CAPS[self.alg_name],
        )

    def build_jobs(self, ctx):
        return list(self._cells(ctx).values())

    def summarize(self, ctx, results):
        cells = self._cells(ctx)
        result = experiment_result(results, cells)
        names = graph_names(cells)
        sp = result.speedups()
        gm = result.geomean_speedups()
        series = {
            s: [round(sp[g][s], 2) for g in names] + [round(gm[s], 2)]
            for s in SCHEDULES
        }
        block = format_series(
            "graph", names + ["geomean"], series,
            title=f"Fig 10 ({self.alg_name}): speedup over S_vm")
        return self.output(
            {self.name: block},
            cycles=result.cycles, speedups=sp, geomeans=gm,
            runs=result.runs,
        )


for _alg in ALGORITHMS:
    register(Fig10(_alg))
