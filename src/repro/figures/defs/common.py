"""Shared grid-building helpers for figure definitions."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.runner import ExperimentResult
from repro.figures.driver import ResultSet
from repro.figures.registry import FigureContext
from repro.graph import dataset_names
from repro.runtime import AlgorithmSpec, GraphSpec, JobSpec
from repro.sim.config import GPUConfig

#: (graph name, schedule) cell key used by grid figures.
Cell = Tuple[str, str]


def bench_graph_specs(
    ctx: FigureContext,
    names: Optional[Sequence[str]] = None,
    scale: float = 0.25,
    smoke_count: int = 3,
) -> Dict[str, GraphSpec]:
    """Dataset-analog graph specs at the context's scale.

    ``scale`` is the figure's literal scale at the default context
    (most figures use the benchmark's 0.25); smoke runs trim the
    dataset list to ``smoke_count`` entries.
    """
    names = list(names) if names is not None else dataset_names()
    names = ctx.trim(names, smoke_count)
    return {name: GraphSpec.from_dataset(name, scale=ctx.rescale(scale))
            for name in names}


def grid(
    algorithm: AlgorithmSpec,
    graphs: Dict[str, GraphSpec],
    schedules: Sequence[str],
    config: Optional[GPUConfig] = None,
    max_iterations: Optional[int] = None,
    symmetrize: bool = False,
) -> Dict[Cell, JobSpec]:
    """The Fig. 10-shaped grid: every schedule on every graph."""
    cells: Dict[Cell, JobSpec] = {}
    for graph_name, graph_spec in graphs.items():
        for sched in schedules:
            cells[(graph_name, sched)] = JobSpec(
                algorithm=algorithm,
                graph=graph_spec,
                schedule=sched,
                config=config,
                max_iterations=max_iterations,
                symmetrize=symmetrize,
            )
    return cells


def experiment_result(
    results: ResultSet, cells: Dict[Cell, JobSpec],
) -> ExperimentResult:
    """Fold grid cells back into an :class:`ExperimentResult` (same
    ``cycles``/``runs`` layout the serial runner produced)."""
    out = ExperimentResult()
    for (graph_name, sched), spec in cells.items():
        summary = results.summary(spec)
        out.cycles.setdefault(graph_name, {})[sched] = (
            summary.total_cycles)
        out.runs.setdefault(graph_name, {})[sched] = summary
    return out


def graph_names(cells: Dict[Cell, JobSpec]) -> List[str]:
    """Graph names of a grid, in insertion (declaration) order."""
    seen: Dict[str, None] = {}
    for graph_name, _sched in cells:
        seen.setdefault(graph_name)
    return list(seen)
