"""Tables I/III/IV/V and Fig. 16 — analytic and local-compute figures."""

from __future__ import annotations

from repro.bench import format_table
from repro.figures.registry import Figure, register


@register
class Table1(Figure):
    """Implementation-detail comparison of scheduling schemes."""

    name = "table1"
    paper = "Table I"
    title = "Scheduling-scheme characteristics matrix (analytic)"

    def summarize(self, ctx, results):
        from repro.graph import dataset
        from repro.sched import analytic
        from repro.sim import GPUConfig

        graph = dataset("graph500", scale=ctx.rescale(0.25))
        config = GPUConfig.vortex_paper()
        table = analytic.characteristics_table(graph, config)
        rows = {r.name: r
                for r in analytic.scheme_characteristics(graph, config)}
        return self.output({"table1_schemes": table}, rows=rows,
                           graph_edges=graph.num_edges)


@register
class Table3(Figure):
    """Dataset inventory: paper scale beside our analogs."""

    name = "table3"
    paper = "Table III"
    title = "Nine-dataset inventory (paper scale vs analog)"

    def summarize(self, ctx, results):
        from repro.graph import dataset, dataset_names
        from repro.graph.datasets import dataset_spec
        from repro.graph.metrics import average_degree, degree_skewness

        scale = ctx.rescale(0.25)
        names = ctx.trim(dataset_names(), 4)
        rows = []
        for name in names:
            spec = dataset_spec(name)
            g = dataset(name, scale=scale)
            rows.append([
                spec.paper_name,
                spec.paper_vertices,
                spec.paper_edges,
                g.num_vertices,
                g.num_edges,
                round(average_degree(g), 1),
                round(degree_skewness(g), 2),
            ])
        block = format_table(
            ["Graph (paper)", "|V| paper", "|E| paper",
             f"|V| analog (x{scale})", "|E| analog", "avg deg",
             "skewness"],
            rows, title="Table III: datasets (paper scale vs analog)")
        return self.output({"table3_datasets": block}, rows=rows)


@register
class Table4(Figure):
    """FPGA area overhead of SparseWeaver (analytic model)."""

    name = "table4"
    paper = "Table IV"
    title = "FPGA area overhead (1 and 16 cores)"

    def summarize(self, ctx, results):
        from repro.core import WeaverAreaModel

        model = WeaverAreaModel()
        rows = model.table_rows((1, 16))
        block = format_table(
            ["cores", "base ALMs", "w/ SparseWeaver", "ALM +%",
             "regs added", "reg +%", "blockmem +%", "RAM +%", "DSP +%"],
            [[r.num_cores, r.base_alms, r.sparseweaver_alms,
              round(r.alm_pct_increase, 2), r.registers_added,
              round(r.register_pct_increase, 3),
              r.block_memory_pct_increase, r.ram_pct_increase,
              r.dsp_pct_increase] for r in rows],
            title="Table IV: FPGA area overhead")
        return self.output({"table4_area": block}, rows=rows)


@register
class Fig16(Figure):
    """FPGA utilization summary + RTL line overhead."""

    name = "fig16"
    paper = "Fig. 16"
    title = "FPGA utilization summary"

    def summarize(self, ctx, results):
        from repro.core import WeaverAreaModel

        model = WeaverAreaModel()
        text = "\n".join(
            model.utilization_summary(n) for n in (1, 16)
        ) + f"\nRTL lines added: +{model.rtl_line_overhead():.3f}%"
        return self.output({"fig16_utilization": text}, text=text)


@register
class Table5(Figure):
    """Auto-tuner vs SparseWeaver (Case Study 3, local tuning loop)."""

    name = "table5"
    paper = "Table V"
    title = "Auto-tuner vs SparseWeaver (PR)"

    DATASETS = ["hollywood", "web-uk", "collab", "road-ca"]

    def summarize(self, ctx, results):
        from repro.algorithms import make_algorithm
        from repro.autotune import AutoTuner
        from repro.bench import run_single
        from repro.graph import dataset

        config = ctx.gpu_config()
        names = ctx.trim(self.DATASETS, 2)
        rows = []
        for name in names:
            graph = dataset(name, scale=ctx.rescale(0.25))
            tuner = AutoTuner(
                lambda: make_algorithm("pagerank", iterations=2),
                config=config,
            )
            report = tuner.tune(graph)
            sw = run_single(
                make_algorithm("pagerank", iterations=2), graph,
                "sparseweaver", config=config,
            ).stats.total_cycles
            rows.append([
                name,
                report.tuning_cycles,
                round(report.tuning_wall_seconds, 2),
                report.baseline_cycles,
                report.best_cycles,
                report.best_schedule,
                round(report.best_speedup, 2),
                sw,
                round(report.baseline_cycles / sw, 2),
            ])
        block = format_table(
            ["graph", "tuning cycles", "tuning sec", "S_vm cycles",
             "best cycles", "best schedule", "tuner speedup",
             "SW cycles", "SW speedup"],
            rows, title="Table V: auto-tuner vs SparseWeaver (PR)")
        return self.output({"table5_autotuner": block}, rows=rows)
