"""Figs. 11-15 — sensitivity studies: skewness, memory ratio, table
latency, cache hierarchy."""

from __future__ import annotations

from dataclasses import replace

from repro.bench import format_series, format_table
from repro.figures.defs.common import grid
from repro.figures.registry import Figure, register
from repro.graph import powerlaw_family
from repro.runtime import AlgorithmSpec, GraphSpec, JobSpec
from repro.sim import CacheConfig, GPUConfig
from repro.sim.config import KB

_PAGERANK1 = AlgorithmSpec.of("pagerank", iterations=1)
_PAGERANK2 = AlgorithmSpec.of("pagerank", iterations=2)

# Fig. 11 power-law family (scaled 10k..80k vertices, 1.9M edges).
VERTEX_COUNTS = [200, 240, 320, 400, 800, 1600]
FIXED_EDGES = 19000


def _fig11_counts(ctx):
    counts = ctx.trim(VERTEX_COUNTS, 3)
    factor = ctx.scale / 0.25
    return ([max(16, int(n * factor)) for n in counts],
            max(200, int(FIXED_EDGES * factor)))


def _fig11_family(ctx):
    counts, edges = _fig11_counts(ctx)
    family = powerlaw_family(counts, edges, exponent=2.1, seed=7)
    return {f"G{i + 1}": g for i, g in enumerate(family)}


def _fig11_config() -> GPUConfig:
    return GPUConfig(
        num_sockets=1, cores_per_socket=1, warps_per_core=4,
        l1=CacheConfig(4 * KB, ways=4),
        l2=CacheConfig(32 * KB, hit_latency=20),
    )


@register
class Fig11a(Figure):
    """Degree-distribution statistics of the G1..G6 family."""

    name = "fig11a"
    paper = "Fig. 11a"
    title = "G1..G6 power-law family degree distributions"

    def summarize(self, ctx, results):
        from repro.graph.metrics import (degree_skewness,
                                         edge_fraction_by_degree)

        rows = []
        for label, g in _fig11_family(ctx).items():
            degs, frac = edge_fraction_by_degree(g)
            rows.append([
                label, g.num_vertices, g.num_edges,
                int(g.degrees.max()),
                round(degree_skewness(g), 2),
                round(float(frac[-5:].sum()), 3),
            ])
        block = format_table(
            ["graph", "|V|", "|E|", "max deg", "skewness",
             "tail edge frac"],
            rows, title="Fig 11a: G1..G6 degree distributions")
        return self.output({"fig11a_degree_distribution": block},
                           rows=rows)


@register
class Fig11b(Figure):
    """PR speedup over S_vm as skewness rises across the family."""

    name = "fig11b"
    paper = "Fig. 11b"
    title = "PR speedup vs skewness (fixed |E|, growing |V|)"

    SCHEDULES = ["vertex_map", "edge_map", "sparseweaver"]

    def _cells(self, ctx):
        graphs = {
            label: GraphSpec.inline(g, name=label)
            for label, g in _fig11_family(ctx).items()
        }
        return grid(_PAGERANK1, graphs, self.SCHEDULES,
                    config=_fig11_config())

    def build_jobs(self, ctx):
        return list(self._cells(ctx).values())

    def summarize(self, ctx, results):
        cells = self._cells(ctx)
        labels = sorted({g for (g, _s) in cells},
                        key=lambda lbl: int(lbl[1:]))
        series = {"edge_map": [], "sparseweaver": []}
        for label in labels:
            base = results.cycles(cells[(label, "vertex_map")])
            for sched in series:
                c = results.cycles(cells[(label, sched)])
                series[sched].append(round(base / c, 2))
        block = format_series(
            "graph", labels, series,
            title="Fig 11b: PR speedup over S_vm vs skewness")
        return self.output({"fig11b_skewness_speedup": block},
                           series=series, labels=labels)


@register
class Fig12(Figure):
    """Execution cycles vs GPU:DRAM frequency ratio."""

    name = "fig12"
    paper = "Fig. 12"
    title = "Cycles vs GPU:DRAM frequency ratio (PR, graph500)"

    RATIOS = [1, 2, 3, 4, 5, 6]
    SCHEDULES = ["vertex_map", "edge_map", "sparseweaver"]

    def _cells(self, ctx):
        graph = GraphSpec.from_dataset("graph500",
                                       scale=ctx.rescale(0.25))
        cells = {}
        for ratio in ctx.trim(self.RATIOS, 3):
            cfg = replace(ctx.gpu_config(), mem_freq_ratio=ratio)
            for sched in self.SCHEDULES:
                cells[(ratio, sched)] = JobSpec(
                    algorithm=_PAGERANK2, graph=graph, schedule=sched,
                    config=cfg)
        return cells

    def build_jobs(self, ctx):
        return list(self._cells(ctx).values())

    def summarize(self, ctx, results):
        cells = self._cells(ctx)
        ratios = ctx.trim(self.RATIOS, 3)
        series = {
            s: [results.cycles(cells[(r, s)]) for r in ratios]
            for s in self.SCHEDULES
        }
        base = series["vertex_map"][0]
        normalized = {
            s: [round(c / base, 2) for c in cs]
            for s, cs in series.items()
        }
        block = format_series(
            "ratio", ratios, normalized,
            title="Fig 12: cycles vs GPU:DRAM ratio "
                  "(normalized to S_vm@1)")
        return self.output({"fig12_memory_ratio": block},
                           series=series, ratios=ratios)


@register
class Fig13(Figure):
    """Cycles vs ST/DT read overhead — the flatness claim."""

    name = "fig13"
    paper = "Fig. 13"
    title = "Cycles vs Weaver work-table read latency (PR, graph500)"

    LATENCIES = [10, 20, 40, 80, 160]

    def _cells(self, ctx):
        graph = GraphSpec.from_dataset("graph500",
                                       scale=ctx.rescale(0.25))
        wide = replace(ctx.gpu_config(), warps_per_core=16)
        return {
            lat: JobSpec(
                algorithm=_PAGERANK2, graph=graph,
                schedule="sparseweaver",
                config=replace(wide, weaver_table_latency=lat))
            for lat in ctx.trim(self.LATENCIES, 2)
        }

    def build_jobs(self, ctx):
        return list(self._cells(ctx).values())

    def summarize(self, ctx, results):
        cells = self._cells(ctx)
        latencies = list(cells)
        cycles = [results.cycles(cells[lat]) for lat in latencies]
        block = format_series(
            "table latency", latencies,
            {"sparseweaver": cycles,
             "normalized": [round(c / cycles[0], 3) for c in cycles]},
            title="Fig 13: cycles vs work-table read overhead")
        return self.output({"fig13_table_latency": block},
                           cycles=cycles, latencies=latencies)


@register
class Fig14(Figure):
    """Effect of adding an L3 cache level."""

    name = "fig14"
    paper = "Fig. 14"
    title = "L1&L2 vs L1&L2&L3 (PR, hollywood)"

    SCHEDULES = ["vertex_map", "sparseweaver"]

    def _cells(self, ctx):
        graph = GraphSpec.from_dataset("hollywood",
                                       scale=ctx.rescale(0.25))
        base_cfg = ctx.gpu_config()
        l3_cfg = replace(base_cfg,
                         l3=CacheConfig(64 * KB, hit_latency=40))
        cells = {}
        for sched in self.SCHEDULES:
            cells[(sched, "base")] = JobSpec(
                algorithm=_PAGERANK2, graph=graph, schedule=sched,
                config=base_cfg)
            cells[(sched, "l3")] = JobSpec(
                algorithm=_PAGERANK2, graph=graph, schedule=sched,
                config=l3_cfg)
        return cells

    def build_jobs(self, ctx):
        return list(self._cells(ctx).values())

    def summarize(self, ctx, results):
        cells = self._cells(ctx)
        outcomes = {
            sched: (results.cycles(cells[(sched, "base")]),
                    results.cycles(cells[(sched, "l3")]))
            for sched in self.SCHEDULES
        }
        rows = [
            [sched, base, l3, round(base / l3, 3)]
            for sched, (base, l3) in outcomes.items()
        ]
        block = format_table(
            ["schedule", "L1&L2 cycles", "L1&L2&L3 cycles", "speedup"],
            rows, title="Fig 14: effect of an L3 cache")
        return self.output({"fig14_l3_cache": block}, results=outcomes)


@register
class Fig15(Figure):
    """L1/L2 capacity sweep."""

    name = "fig15"
    paper = "Fig. 15"
    title = "L1/L2 capacity sweep (PR, sparseweaver)"

    L1_SIZES = [2 * KB, 4 * KB, 8 * KB]
    L2_SIZES = [8 * KB, 16 * KB, 32 * KB, 64 * KB, 128 * KB, 256 * KB]

    def _axes(self, ctx):
        graphs = {"D_hw": "hollywood", "D_g500": "graph500"}
        if ctx.smoke:
            graphs = {"D_hw": "hollywood"}
        return (graphs, ctx.trim(self.L1_SIZES, 1),
                ctx.trim(self.L2_SIZES, 2))

    def _cells(self, ctx):
        graphs, l1_sizes, l2_sizes = self._axes(ctx)
        cells = {}
        for gname, ds in graphs.items():
            graph = GraphSpec.from_dataset(ds, scale=ctx.rescale(0.25))
            for l1 in l1_sizes:
                for l2 in l2_sizes:
                    cfg = replace(
                        ctx.gpu_config(),
                        l1=CacheConfig(l1, ways=4),
                        l2=CacheConfig(l2, hit_latency=20),
                    )
                    cells[(gname, l1, l2)] = JobSpec(
                        algorithm=_PAGERANK1, graph=graph,
                        schedule="sparseweaver", config=cfg)
        return cells

    def build_jobs(self, ctx):
        return list(self._cells(ctx).values())

    def summarize(self, ctx, results):
        graphs, l1_sizes, l2_sizes = self._axes(ctx)
        cells = self._cells(ctx)
        values = {key: results.cycles(spec)
                  for key, spec in cells.items()}
        blocks = {}
        for gname in graphs:
            base = values[(gname, l1_sizes[0], l2_sizes[0])]
            series = {
                f"L1={l1 // KB}KB": [
                    round(values[(gname, l1, l2)] / base, 3)
                    for l2 in l2_sizes
                ]
                for l1 in l1_sizes
            }
            blocks[f"fig15_cache_sweep_{gname}"] = format_series(
                "L2 KB", [s // KB for s in l2_sizes], series,
                title=f"Fig 15 ({gname}): cycles normalized to "
                      "smallest config")
        return self.output(blocks, results=values,
                           l1_sizes=l1_sizes, l2_sizes=l2_sizes,
                           graphs=list(graphs))
