"""Simulator calibration microbenchmarks as local-compute figures.

Each figure isolates one model parameter (load latency, DRAM service
rate, issue width, warp-level latency hiding) and reports the measured
value beside the configured one, mirroring how GPU-simulator papers
validate their models.
"""

from __future__ import annotations

from repro.bench import format_table
from repro.figures.registry import Figure, register


def _one_warp_config():
    from repro.sim import GPUConfig

    return GPUConfig(
        num_sockets=1, cores_per_socket=1, warps_per_core=1,
        threads_per_warp=32,
    )


@register
class MicroPointerChase(Figure):
    """Dependent single-line loads measure pure load-to-use latency."""

    name = "micro_pointer_chase"
    paper = "calibration"
    title = "Microbenchmark: dependent-load latency"

    def summarize(self, ctx, results):
        import numpy as np

        from repro.sim import MemoryMap
        from repro.sim.engines import build_gpu
        from repro.sim.instructions import Phase, load

        cfg = _one_warp_config()
        gpu = build_gpu(cfg)
        mm = MemoryMap()
        region = mm.alloc("chase", 65536, 8)
        hops = 64

        def factory(ctx_):
            def kernel():
                for i in range(hops):
                    yield load(Phase.GATHER, region,
                               np.array([(i * 911) % 60000]))
            return kernel()

        stats = gpu.run_kernel(factory, flush_caches=True)
        per_hop = stats.total_cycles / hops
        block = format_table(
            ["hops", "cycles", "cycles/hop",
             "configured DRAM latency"],
            [[hops, stats.total_cycles, round(per_hop, 1),
              cfg.dram_latency_cycles]],
            title="Microbenchmark: dependent-load latency")
        return self.output({"micro_pointer_chase": block},
                           per_hop=per_hop,
                           dram_latency=cfg.dram_latency_cycles)


@register
class MicroStreamBandwidth(Figure):
    """Independent streaming warps converge to the DRAM service rate."""

    name = "micro_stream_bandwidth"
    paper = "calibration"
    title = "Microbenchmark: streaming bandwidth"

    def summarize(self, ctx, results):
        import numpy as np

        from repro.sim import GPUConfig, MemoryMap
        from repro.sim.engines import build_gpu
        from repro.sim.instructions import Phase, load

        cfg = GPUConfig(num_sockets=1, cores_per_socket=1,
                        warps_per_core=16, threads_per_warp=32)
        gpu = build_gpu(cfg)
        mm = MemoryMap()
        region = mm.alloc("stream", 1 << 20, 8)
        loads_per_warp = 64

        def factory(ctx_):
            def kernel():
                base = ctx_.warp_slot * loads_per_warp * 8
                for i in range(loads_per_warp):
                    idx = (base + i * 8) * 16 % (1 << 19)
                    yield load(Phase.GATHER, region,
                               np.arange(idx, idx + 8))
            return kernel()

        stats = gpu.run_kernel(factory, flush_caches=True)
        lines = stats.dram_accesses
        cycles_per_line = stats.total_cycles / max(1, lines)
        block = format_table(
            ["DRAM lines", "cycles", "cycles/line",
             "configured service"],
            [[lines, stats.total_cycles, round(cycles_per_line, 2),
              cfg.dram_service_cycles]],
            title="Microbenchmark: streaming bandwidth")
        return self.output(
            {"micro_stream_bandwidth": block},
            cycles_per_line=cycles_per_line,
            dram_latency=cfg.dram_latency_cycles,
            dram_service=cfg.dram_service_cycles,
        )


@register
class MicroIssueThroughput(Figure):
    """Back-to-back ALU work: one instruction per cycle per core."""

    name = "micro_issue_throughput"
    paper = "calibration"
    title = "Microbenchmark: issue throughput"

    def summarize(self, ctx, results):
        from repro.sim.engines import build_gpu
        from repro.sim.instructions import Phase, alu

        cfg = _one_warp_config()
        gpu = build_gpu(cfg)
        n = 2000

        def factory(ctx_):
            def kernel():
                for _ in range(n):
                    yield alu(Phase.GATHER)
            return kernel()

        stats = gpu.run_kernel(factory)
        block = format_table(
            ["instructions", "cycles", "IPC"],
            [[n, stats.total_cycles,
              round(n / stats.total_cycles, 3)]],
            title="Microbenchmark: issue throughput")
        return self.output({"micro_issue_throughput": block},
                           instructions=n, cycles=stats.total_cycles)


@register
class MicroLatencyHiding(Figure):
    """More resident warps hide more of a fixed memory latency."""

    name = "micro_latency_hiding"
    paper = "calibration"
    title = "Microbenchmark: warp-level latency hiding"

    def summarize(self, ctx, results):
        import numpy as np

        from repro.sim import GPUConfig, MemoryMap
        from repro.sim.engines import build_gpu
        from repro.sim.instructions import Phase, alu, load

        rows = []
        for warps in (1, 2, 4, 8, 16):
            cfg = GPUConfig(num_sockets=1, cores_per_socket=1,
                            warps_per_core=warps, threads_per_warp=32)
            gpu = build_gpu(cfg)
            mm = MemoryMap()
            region = mm.alloc("lat", 1 << 20, 8)

            def factory(ctx_, region=region):
                def kernel():
                    for i in range(16):
                        idx = ((ctx_.warp_slot * 7919 + i * 977)
                               % (1 << 17))
                        yield load(Phase.GATHER, region,
                                   np.array([idx]))
                        yield alu(Phase.GATHER, 4)
                return kernel()

            stats = gpu.run_kernel(factory, flush_caches=True)
            per_op = stats.total_cycles / (16 * warps)
            rows.append([warps, stats.total_cycles, round(per_op, 1)])
        block = format_table(
            ["warps", "cycles", "cycles per load+alu"],
            rows, title="Microbenchmark: warp-level latency hiding")
        return self.output({"micro_latency_hiding": block}, rows=rows)
