"""Figs. 17-19 — direction study, EGHW case study, GCN case study."""

from __future__ import annotations

from repro.bench import format_breakdown, format_series, geomean
from repro.figures.defs.common import bench_graph_specs
from repro.figures.registry import Figure, register
from repro.runtime import AlgorithmSpec, GraphSpec, JobSpec

_PAGERANK2 = AlgorithmSpec.of("pagerank", iterations=2)


@register
class Fig17(Figure):
    """Push vs pull execution-cycle breakdown (SparseWeaver, PR)."""

    name = "fig17"
    paper = "Fig. 17"
    title = "Push vs pull cycle breakdown (SparseWeaver, PR)"

    DATASETS = ["bio-human", "graph500", "web-uk", "web-wiki"]

    def _cells(self, ctx):
        names = ctx.trim(self.DATASETS, 2)
        cells = {}
        for name in names:
            graph = GraphSpec.from_dataset(name,
                                           scale=ctx.rescale(0.25))
            for direction in ("pull", "push"):
                cells[(name, direction)] = JobSpec(
                    algorithm=AlgorithmSpec.of(
                        "pagerank", iterations=2, direction=direction),
                    graph=graph, schedule="sparseweaver",
                    config=ctx.gpu_config())
        return cells

    def build_jobs(self, ctx):
        return list(self._cells(ctx).values())

    def summarize(self, ctx, results):
        cells = self._cells(ctx)
        stats = {f"{name}/{direction}": results.stats(spec)
                 for (name, direction), spec in cells.items()}
        block = format_breakdown(
            {k: dict(v.phase_breakdown()) for k, v in stats.items()},
            title="Fig 17: push vs pull cycle breakdown "
                  "(SparseWeaver, PR)")
        return self.output({"fig17_push_pull": block}, stats=stats,
                           datasets=ctx.trim(self.DATASETS, 2))


@register
class Fig18(Figure):
    """SparseWeaver vs edge-generating hardware (Case Study 1)."""

    name = "fig18"
    paper = "Fig. 18"
    title = "EGHW vs SparseWeaver cycle breakdown + geomean speedup"

    SCHEDULES = ["eghw", "sparseweaver"]

    def _cells(self, ctx):
        graphs = bench_graph_specs(ctx)
        return {
            (name, sched): JobSpec(
                algorithm=_PAGERANK2, graph=spec, schedule=sched,
                config=ctx.gpu_config())
            for name, spec in graphs.items()
            for sched in self.SCHEDULES
        }

    def build_jobs(self, ctx):
        return list(self._cells(ctx).values())

    def summarize(self, ctx, results):
        cells = self._cells(ctx)
        names = []
        for name, _sched in cells:
            if name not in names:
                names.append(name)
        stats = {key: results.stats(spec)
                 for key, spec in cells.items()}
        ratios = [
            stats[(n, "eghw")].total_cycles
            / stats[(n, "sparseweaver")].total_cycles
            for n in names
        ]
        gm = geomean(ratios)
        sample = {
            f"{n}/{s}": dict(stats[(n, s)].phase_breakdown())
            for n in names[:3] for s in self.SCHEDULES
        }
        text = format_breakdown(
            sample,
            title="Fig 18: EGHW vs SparseWeaver cycle breakdown")
        text += "\n\nEGHW/SparseWeaver cycle ratios: " + ", ".join(
            f"{n}={r:.2f}" for n, r in zip(names, ratios)
        ) + f"\ngeomean speedup of SparseWeaver over EGHW: {gm:.2f}x"
        return self.output({"fig18_eghw": text}, stats=stats,
                           names=names, ratios=ratios, geomean=gm)


@register
class Fig19(Figure):
    """GCN operators across weight-dimension sizes (local compute)."""

    name = "fig19"
    paper = "Fig. 19"
    title = "GCN SparseWeaver speedup over weight-parallel S_vm"

    WEIGHT_DIMS = list(range(1, 17))

    def summarize(self, ctx, results):
        import numpy as np

        from repro.algorithms.gcn import (gcn_reference,
                                          run_gcn_operator)
        from repro.graph import dataset

        graph = dataset("collab", scale=ctx.rescale(0.12))
        rng = np.random.default_rng(11)
        in_dim = 4
        features = rng.normal(size=(graph.num_vertices, in_dim))
        weight_dims = ctx.trim(self.WEIGHT_DIMS, 4)
        config = ctx.gpu_config()

        out = {}
        for dims in weight_dims:
            weight = rng.normal(size=(in_dim, dims))
            ref = gcn_reference(graph, features, weight)
            for strategy in ("vertex_map", "sparseweaver"):
                res = run_gcn_operator(graph, features, weight,
                                       strategy=strategy,
                                       config=config)
                np.testing.assert_allclose(res.features, ref,
                                           atol=1e-9)
                out[(dims, strategy)] = res

        speedups = [
            out[(d, "vertex_map")].stats.total_cycles
            / out[(d, "sparseweaver")].stats.total_cycles
            for d in weight_dims
        ]
        graphsum_speedups = [
            out[(d, "vertex_map")]
            .kernel_stats["graphsum"].total_cycles
            / out[(d, "sparseweaver")]
            .kernel_stats["graphsum"].total_cycles
            for d in weight_dims
        ]
        block = format_series(
            "weight dims", weight_dims,
            {"total speedup": [round(s, 2) for s in speedups],
             "graphsum speedup": [round(s, 2)
                                  for s in graphsum_speedups]},
            title="Fig 19: GCN SparseWeaver speedup over "
                  "weight-parallel S_vm")
        block += (f"\ngeomean total speedup: "
                  f"{geomean(speedups):.2f}x")
        return self.output(
            {"fig19_gcn": block},
            results=out, speedups=speedups,
            graphsum_speedups=graphsum_speedups,
            weight_dims=weight_dims,
        )
