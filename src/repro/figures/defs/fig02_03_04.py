"""Figs. 2-4 — motivation grids: warp iterations, Nvidia configs,
stall breakdowns."""

from __future__ import annotations

from repro.bench import format_breakdown, format_series
from repro.figures.defs.common import (experiment_result, grid)
from repro.figures.registry import Figure, register
from repro.runtime import AlgorithmSpec, GraphSpec
from repro.sim import GPUConfig

_PAGERANK2 = AlgorithmSpec.of("pagerank", iterations=2)


def _fig2_graph_specs(ctx):
    return {
        "D_bh": GraphSpec.from_dataset("bio-human",
                                       scale=ctx.rescale(0.25)),
        "D_g500": GraphSpec.from_dataset("graph500",
                                         scale=ctx.rescale(0.25)),
    }


@register
class Fig02a(Figure):
    """Closed-form expected warp-iteration counts (no simulation)."""

    name = "fig02a"
    paper = "Fig. 2a"
    title = "Expected warp iterations for S_vm/S_em/S_wm on D_bh/D_g500"

    def summarize(self, ctx, results):
        from repro.sched import analytic

        config = ctx.gpu_config()
        graphs = {name: spec.build()
                  for name, spec in _fig2_graph_specs(ctx).items()}
        series = {}
        for sched in ("vertex_map", "edge_map", "warp_map"):
            series[sched] = [
                analytic.expected_warp_iterations(g, sched, config)
                for g in graphs.values()
            ]
        block = format_series(
            "schedule", list(graphs), series,
            title="Fig 2a: expected warp iterations")
        return self.output({"fig02a_warp_iterations": block},
                           series=series, graphs=list(graphs))


@register
class Fig02b(Figure):
    """Measured PR speedups over S_vm on the two motivating datasets."""

    name = "fig02b"
    paper = "Fig. 2b"
    title = "PR speedup of S_em/S_wm over S_vm on D_bh/D_g500"

    SCHEDULES = ["vertex_map", "edge_map", "warp_map"]

    def _cells(self, ctx):
        return grid(_PAGERANK2, _fig2_graph_specs(ctx), self.SCHEDULES,
                    config=ctx.gpu_config())

    def build_jobs(self, ctx):
        return list(self._cells(ctx).values())

    def summarize(self, ctx, results):
        cells = self._cells(ctx)
        result = experiment_result(results, cells)
        sp = result.speedups()
        names = list(_fig2_graph_specs(ctx))
        block = format_series(
            "graph", names,
            {s: [sp[g][s] for g in names] for s in self.SCHEDULES},
            title="Fig 2b: PR speedup over S_vm")
        return self.output({"fig02b_speedup": block},
                           speedups=sp, cycles=result.cycles)


@register
class Fig03(Figure):
    """Software schemes on two "Nvidia" simulator presets."""

    name = "fig03"
    paper = "Fig. 3"
    title = "Software scheduling on ampere-like and ada-like presets"

    SCHEDULES = ["vertex_map", "edge_map", "warp_map", "cta_map", "twc"]

    def _graphs(self, ctx):
        return {
            "D_hw": GraphSpec.from_dataset("hollywood",
                                           scale=ctx.rescale(0.12)),
            "D_uk": GraphSpec.from_dataset("web-uk",
                                           scale=ctx.rescale(0.2)),
        }

    def _configs(self):
        return {
            "ampere_like": GPUConfig.ampere_like(),
            "ada_like": GPUConfig.ada_like(),
        }

    def _cells(self, ctx):
        graphs = self._graphs(ctx)
        schedules = ctx.trim(self.SCHEDULES, 3)
        return {
            cfg_name: grid(_PAGERANK2, graphs, schedules, config=cfg)
            for cfg_name, cfg in self._configs().items()
        }

    def build_jobs(self, ctx):
        return [spec
                for cells in self._cells(ctx).values()
                for spec in cells.values()]

    def summarize(self, ctx, results):
        graphs = list(self._graphs(ctx))
        schedules = ctx.trim(self.SCHEDULES, 3)
        blocks = {}
        speedups = {}
        for cfg_name, cells in self._cells(ctx).items():
            result = experiment_result(results, cells)
            per_graph = result.speedups()
            speedups[cfg_name] = per_graph
            blocks[f"fig03_{cfg_name}"] = format_series(
                "graph", graphs,
                {s: [per_graph[g][s] for g in graphs]
                 for s in schedules},
                title=f"Fig 3 ({cfg_name}): PR speedup over S_vm")
        return self.output(blocks, speedups=speedups,
                           schedules=schedules)


@register
class Fig04(Figure):
    """Stall breakdown + per-core attribution under every schedule."""

    name = "fig04"
    paper = "Fig. 4"
    title = "Stall cycles by category and per-core attribution (PR, D_hw)"

    SCHEDULES = ["vertex_map", "edge_map", "warp_map", "cta_map", "twc",
                 "sparseweaver"]

    def _cells(self, ctx):
        graphs = {"hollywood": GraphSpec.from_dataset(
            "hollywood", scale=ctx.rescale(0.12))}
        schedules = (["vertex_map", "warp_map", "sparseweaver"]
                     if ctx.smoke else self.SCHEDULES)
        return grid(_PAGERANK2, graphs, schedules,
                    config=GPUConfig.ampere_like())

    def build_jobs(self, ctx):
        return list(self._cells(ctx).values())

    def summarize(self, ctx, results):
        cells = self._cells(ctx)
        schedules = [s for (_g, s) in cells]
        rows = {}
        per_core_rows = {}
        stats_by_sched = {}
        for sched in schedules:
            stats = results.stats(cells[("hollywood", sched)])
            stats_by_sched[sched] = stats
            row = dict(stats.stall_breakdown())
            row["warp/instr"] = round(
                stats.total_cycles / max(stats.instructions, 1), 2)
            rows[sched] = row
            for core, cats in stats.stall_by_core().items():
                per_core_rows[f"{sched}/core{core}"] = {
                    cat.name: cycles
                    for cat, cycles in sorted(cats.items())
                }
        blocks = {
            "fig04_stall_breakdown": format_breakdown(
                rows,
                title="Fig 4: stall cycles by category (+ warp/instr)"),
            "fig04_stall_attribution": format_breakdown(
                per_core_rows,
                title="Fig 4 (attribution): stall cycles per core"),
        }
        return self.output(blocks, stats=stats_by_sched, rows=rows,
                           schedules=schedules)
