"""Figure definitions — importing this package registers every figure.

Each module mirrors one ``benchmarks/bench_*.py`` family; the pytest
modules are thin wrappers that run these figures through the engine.
"""

from repro.figures.defs import (  # noqa: F401
    ablations,
    fig02_03_04,
    fig10,
    fig17_18_19,
    microbench,
    misc,
    sensitivity,
    tables,
)
