"""Design-decision ablations (DESIGN.md) as registered figures.

Parametrized-schedule sweeps ride on ``JobSpec.schedule_params``;
config sweeps use ``dataclasses.replace`` on the context's GPU config.
"""

from __future__ import annotations

from dataclasses import replace

from repro.bench import format_series
from repro.figures.registry import Figure, register
from repro.runtime import AlgorithmSpec, GraphSpec, JobSpec

_PAGERANK2 = AlgorithmSpec.of("pagerank", iterations=2)


def _pr_spec(graph, schedule, config, schedule_params=()):
    return JobSpec(algorithm=_PAGERANK2, graph=graph,
                   schedule=schedule, config=config,
                   schedule_params=tuple(schedule_params))


@register
class AblationPrefetchDepth(Figure):
    """Decoupled OD prefetch: scan running ahead of requests."""

    name = "ablation_prefetch_depth"
    paper = "ablation"
    title = "Weaver OD prefetch depth (PR, graph500)"

    DEPTHS = [1, 2, 4, 8]

    def _cells(self, ctx):
        graph = GraphSpec.from_dataset("graph500",
                                       scale=ctx.rescale(0.25))
        return {
            d: _pr_spec(graph, "sparseweaver", ctx.gpu_config(),
                        (("prefetch_depth", d),))
            for d in ctx.trim(self.DEPTHS, 2)
        }

    def build_jobs(self, ctx):
        return list(self._cells(ctx).values())

    def summarize(self, ctx, results):
        cells = self._cells(ctx)
        depths = list(cells)
        cycles = [results.cycles(cells[d]) for d in depths]
        block = format_series(
            "prefetch depth", depths, {"cycles": cycles},
            title="Ablation: Weaver OD prefetch depth (PR, graph500)")
        return self.output({"ablation_prefetch_depth": block},
                           depths=depths, cycles=cycles)


@register
class AblationZeroSkipWidth(Figure):
    """Zero-entry bitmap skipping on frontier algorithms."""

    name = "ablation_zero_skip_width"
    paper = "ablation"
    title = "Zero-entry skip width (BFS, hollywood)"

    WIDTHS = [1, 4, 32]

    def _cells(self, ctx):
        graph = GraphSpec.from_dataset("hollywood",
                                       scale=ctx.rescale(0.25))
        bfs = AlgorithmSpec.of("bfs", source=0)
        return {
            w: JobSpec(algorithm=bfs, graph=graph,
                       schedule="sparseweaver",
                       schedule_params=(("zero_skip_width", w),),
                       config=ctx.gpu_config(), max_iterations=3)
            for w in ctx.trim(self.WIDTHS, 2)
        }

    def build_jobs(self, ctx):
        return list(self._cells(ctx).values())

    def summarize(self, ctx, results):
        cells = self._cells(ctx)
        widths = list(cells)
        cycles = [results.cycles(cells[w]) for w in widths]
        block = format_series(
            "bitmap width", widths, {"cycles": cycles},
            title="Ablation: zero-entry skip width (BFS, hollywood)")
        return self.output({"ablation_zero_skip_width": block},
                           widths=widths, cycles=cycles)


@register
class AblationDtBypass(Figure):
    """The DT write-buffer bypass behind Fig. 13's flatness."""

    name = "ablation_dt_bypass"
    paper = "ablation"
    title = "DT write-buffer bypass at table latency 80"

    def _cells(self, ctx):
        graph = GraphSpec.from_dataset("graph500",
                                       scale=ctx.rescale(0.25))
        lat = replace(ctx.gpu_config(), weaver_table_latency=80,
                      warps_per_core=16)
        return {
            flag: _pr_spec(graph, "sparseweaver", lat,
                           (("dt_bypass", flag),))
            for flag in (True, False)
        }

    def build_jobs(self, ctx):
        return list(self._cells(ctx).values())

    def summarize(self, ctx, results):
        cells = self._cells(ctx)
        with_bypass = results.cycles(cells[True])
        without = results.cycles(cells[False])
        block = format_series(
            "dt bypass", ["on", "off"],
            {"cycles": [with_bypass, without]},
            title="Ablation: DT write-buffer bypass at table "
                  "latency 80")
        return self.output({"ablation_dt_bypass": block},
                           with_bypass=with_bypass, without=without)


@register
class AblationWeaverCapacity(Figure):
    """Table capacity below residency forces extra epochs."""

    name = "ablation_weaver_capacity"
    paper = "ablation"
    title = "Weaver table capacity (PR, web-wiki)"

    CAPACITIES = [64, 128, 256, 512]

    def _cells(self, ctx):
        graph = GraphSpec.from_dataset("web-wiki",
                                       scale=ctx.rescale(0.25))
        return {
            c: _pr_spec(graph, "sparseweaver",
                        replace(ctx.gpu_config(), weaver_entries=c))
            for c in ctx.trim(self.CAPACITIES, 2)
        }

    def build_jobs(self, ctx):
        return list(self._cells(ctx).values())

    def summarize(self, ctx, results):
        cells = self._cells(ctx)
        capacities = list(cells)
        cycles = [results.cycles(cells[c]) for c in capacities]
        block = format_series(
            "ST/DT entries", capacities, {"cycles": cycles},
            title="Ablation: Weaver table capacity (PR, web-wiki)")
        return self.output({"ablation_weaver_capacity": block},
                           capacities=capacities, cycles=cycles)


@register
class AblationEghwMlp(Figure):
    """EGHW memory-level parallelism vs SparseWeaver."""

    name = "ablation_eghw_mlp"
    paper = "ablation"
    title = "EGHW in-flight memory requests vs SparseWeaver"

    MLPS = [1, 2, 4, 8, 16]

    def _cells(self, ctx):
        graph = GraphSpec.from_dataset("graph500",
                                       scale=ctx.rescale(0.25))
        cells = {
            m: _pr_spec(graph, "eghw",
                        replace(ctx.gpu_config(), eghw_mlp=m))
            for m in ctx.trim(self.MLPS, 3)
        }
        cells["sw"] = _pr_spec(graph, "sparseweaver", ctx.gpu_config())
        return cells

    def build_jobs(self, ctx):
        return list(self._cells(ctx).values())

    def summarize(self, ctx, results):
        cells = self._cells(ctx)
        mlps = [k for k in cells if k != "sw"]
        eghw = [results.cycles(cells[m]) for m in mlps]
        sw = results.cycles(cells["sw"])
        block = format_series(
            "EGHW MLP", mlps,
            {"eghw": eghw, "sparseweaver": [sw] * len(mlps)},
            title="Ablation: EGHW in-flight memory requests vs "
                  "SparseWeaver")
        return self.output({"ablation_eghw_mlp": block},
                           mlps=mlps, eghw=eghw, sparseweaver=sw)


@register
class AblationSplitVsWeaver(Figure):
    """Tigr-style static vertex splitting vs dynamic weaving."""

    name = "ablation_split_vs_weaver"
    paper = "ablation"
    title = "Static splits vs SparseWeaver (PR, hollywood)"

    WIDTHS = [4, 8, 16, 32]

    def _cells(self, ctx):
        graph = GraphSpec.from_dataset("hollywood",
                                       scale=ctx.rescale(0.25))
        cfg = ctx.gpu_config()
        cells = {
            ("split", w): _pr_spec(graph, "split_vertex_map", cfg,
                                   (("max_degree", w),))
            for w in ctx.trim(self.WIDTHS, 2)
        }
        cells[("vm", None)] = _pr_spec(graph, "vertex_map", cfg)
        cells[("sw", None)] = _pr_spec(graph, "sparseweaver", cfg)
        return cells

    def build_jobs(self, ctx):
        return list(self._cells(ctx).values())

    def summarize(self, ctx, results):
        cells = self._cells(ctx)
        widths = [w for (kind, w) in cells if kind == "split"]
        split = [results.cycles(cells[("split", w)]) for w in widths]
        vm = results.cycles(cells[("vm", None)])
        sw = results.cycles(cells[("sw", None)])
        block = format_series(
            "split max degree", widths,
            {"split_vertex_map": split,
             "vertex_map": [vm] * len(widths),
             "sparseweaver": [sw] * len(widths)},
            title="Ablation: Tigr-style static splits vs "
                  "SparseWeaver (PR)")
        return self.output({"ablation_split_vs_weaver": block},
                           widths=widths, split=split,
                           vertex_map=vm, sparseweaver=sw)


@register
class AblationCoreScaling(Figure):
    """Speedup over S_vm stays stable as cores grow."""

    name = "ablation_core_scaling"
    paper = "ablation"
    title = "Core scaling (PR, hollywood)"

    CORE_COUNTS = [1, 2, 4]

    def _cells(self, ctx):
        graph = GraphSpec.from_dataset("hollywood",
                                       scale=ctx.rescale(0.25))
        cells = {}
        for cores in ctx.trim(self.CORE_COUNTS, 2):
            cfg = replace(ctx.gpu_config(), num_sockets=1,
                          cores_per_socket=cores)
            cells[(cores, "vertex_map")] = _pr_spec(graph,
                                                    "vertex_map", cfg)
            cells[(cores, "sparseweaver")] = _pr_spec(
                graph, "sparseweaver", cfg)
        return cells

    def build_jobs(self, ctx):
        return list(self._cells(ctx).values())

    def summarize(self, ctx, results):
        cells = self._cells(ctx)
        core_counts = []
        for (cores, _s) in cells:
            if cores not in core_counts:
                core_counts.append(cores)
        rows = {
            c: (results.cycles(cells[(c, "vertex_map")]),
                results.cycles(cells[(c, "sparseweaver")]))
            for c in core_counts
        }
        block = format_series(
            "cores", core_counts,
            {"vertex_map": [rows[c][0] for c in core_counts],
             "sparseweaver": [rows[c][1] for c in core_counts],
             "speedup": [round(rows[c][0] / rows[c][1], 2)
                         for c in core_counts]},
            title="Ablation: core scaling (PR, hollywood)")
        return self.output({"ablation_core_scaling": block},
                           rows=rows, core_counts=core_counts)


@register
class AblationEnergy(Figure):
    """First-order energy view of the main comparison."""

    name = "ablation_energy"
    paper = "ablation"
    title = "First-order energy (PR, hollywood)"

    SCHEDULES = ["vertex_map", "edge_map", "cta_map", "sparseweaver",
                 "eghw"]

    def _cells(self, ctx):
        graph = GraphSpec.from_dataset("hollywood",
                                       scale=ctx.rescale(0.25))
        schedules = (["vertex_map", "sparseweaver", "eghw"]
                     if ctx.smoke else self.SCHEDULES)
        return {
            s: _pr_spec(graph, s, ctx.gpu_config())
            for s in schedules
        }

    def build_jobs(self, ctx):
        return list(self._cells(ctx).values())

    def summarize(self, ctx, results):
        from repro.sim.energy import estimate_energy

        cells = self._cells(ctx)
        schedules = list(cells)
        rows = {s: estimate_energy(results.stats(cells[s]))
                for s in schedules}
        block = format_series(
            "schedule", schedules,
            {"total nJ": [round(rows[s].total_nj, 1)
                          for s in schedules],
             "dram nJ": [round(rows[s].picojoules["dram"] / 1000, 1)
                         for s in schedules]},
            title="Ablation: first-order energy (PR, hollywood)")
        return self.output({"ablation_energy": block}, rows=rows,
                           schedules=schedules)


@register
class AblationReordering(Figure):
    """Vertex ordering vs locality on a community graph."""

    name = "ablation_reordering"
    paper = "ablation"
    title = "Vertex ordering vs locality (PR, community graph)"

    def _variants(self):
        from repro.graph import community_graph
        from repro.graph.reorder import (apply_permutation, bfs_order,
                                         random_order)

        base = community_graph(60, 100, 400, 1200, seed=5)
        shuffled = apply_permutation(base, random_order(base, seed=5))
        reordered = apply_permutation(shuffled, bfs_order(shuffled))
        return {"original": base, "shuffled": shuffled,
                "bfs-reordered": reordered}

    def _cells(self, ctx):
        return {
            name: _pr_spec(
                GraphSpec.inline(g, name=f"community-{name}"),
                "sparseweaver", ctx.gpu_config())
            for name, g in self._variants().items()
        }

    def build_jobs(self, ctx):
        return list(self._cells(ctx).values())

    def summarize(self, ctx, results):
        from repro.graph.reorder import locality_score

        variants = self._variants()
        cells = self._cells(ctx)
        rows = {
            name: (locality_score(variants[name]),
                   results.cycles(cells[name]))
            for name in variants
        }
        block = format_series(
            "layout", list(variants),
            {"locality score": [round(rows[n][0], 3)
                                for n in variants],
             "SW cycles": [rows[n][1] for n in variants]},
            title="Ablation: vertex ordering vs locality (PR, "
                  "community graph)")
        return self.output({"ablation_reordering": block}, rows=rows)
