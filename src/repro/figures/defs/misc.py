"""Repro-specific figures: paper-config headline, robustness,
extended ranking, runtime-engine throughput."""

from __future__ import annotations

from repro.bench import (format_bar_chart, format_series, format_table,
                         geomean)
from repro.figures.defs.common import bench_graph_specs
from repro.figures.registry import Figure, register
from repro.runtime import AlgorithmSpec, GraphSpec, JobSpec
from repro.sim import GPUConfig

_PAGERANK2 = AlgorithmSpec.of("pagerank", iterations=2)


@register
class PaperConfig(Figure):
    """Headline result at the paper's literal Vortex configuration."""

    name = "paper_config"
    paper = "Section V"
    title = "PR headline on the full paper Vortex machine"

    SCHEDULES = ["vertex_map", "edge_map", "cta_map", "sparseweaver"]

    def _cells(self, ctx):
        graph = GraphSpec.from_dataset("hollywood",
                                       scale=ctx.rescale(0.4))
        return {
            sched: JobSpec(algorithm=_PAGERANK2, graph=graph,
                           schedule=sched,
                           config=GPUConfig.vortex_paper())
            for sched in self.SCHEDULES
        }

    def build_jobs(self, ctx):
        return list(self._cells(ctx).values())

    def summarize(self, ctx, results):
        cells = self._cells(ctx)
        cycles = {s: results.cycles(spec)
                  for s, spec in cells.items()}
        base = cycles["vertex_map"]
        block = format_table(
            ["schedule", "cycles", "speedup over S_vm"],
            [[s, cycles[s], round(base / cycles[s], 2)]
             for s in self.SCHEDULES],
            title="PR on hollywood analog, paper Vortex config "
                  "(2x3 cores, 32 warps, 32 threads)")
        return self.output({"paper_config_headline": block},
                           cycles=cycles)


@register
class Robustness(Figure):
    """The headline geomean re-measured across analog scales."""

    name = "robustness"
    paper = "repro"
    title = "PR headline vs dataset analog scale"

    SCALES = [0.15, 0.25, 0.4]
    SCHEDULES = ["vertex_map", "sparseweaver"]

    def _scales(self, ctx):
        return ctx.trim(self.SCALES, 2)

    def _cells(self, ctx):
        cells = {}
        for scale in self._scales(ctx):
            graphs = bench_graph_specs(ctx, scale=scale)
            for name, spec in graphs.items():
                for sched in self.SCHEDULES:
                    cells[(scale, name, sched)] = JobSpec(
                        algorithm=_PAGERANK2, graph=spec,
                        schedule=sched, config=ctx.gpu_config(),
                        max_iterations=2)
        return cells

    def build_jobs(self, ctx):
        return list(self._cells(ctx).values())

    def summarize(self, ctx, results):
        cells = self._cells(ctx)
        scales = self._scales(ctx)
        names = []
        for (_scale, name, _sched) in cells:
            if name not in names:
                names.append(name)
        geomeans = []
        for scale in scales:
            ratios = [
                results.cycles(cells[(scale, n, "vertex_map")])
                / results.cycles(cells[(scale, n, "sparseweaver")])
                for n in names
            ]
            geomeans.append(geomean(ratios))
        block = format_series(
            "analog scale", scales,
            {"SW geomean speedup": [round(g, 2) for g in geomeans]},
            title="Robustness: PR headline vs dataset analog scale")
        return self.output({"robustness_scales": block},
                           geomeans=geomeans, scales=scales)


@register
class ExtendedRanking(Figure):
    """Every implemented schedule ranked on a skewed and a flat graph."""

    name = "extended_ranking"
    paper = "Table I (extended)"
    title = "Extended scheme ranking (PR, hollywood + road-ca)"

    GRAPHS = ["hollywood", "road-ca"]

    def _schedules(self, ctx):
        from repro.sched import EXTENDED_SCHEDULES

        if ctx.smoke:
            return ["vertex_map", "sparseweaver", "hybrid_ell"]
        return list(EXTENDED_SCHEDULES)

    def _cells(self, ctx):
        schedules = self._schedules(ctx)
        cells = {}
        for gname in self.GRAPHS:
            graph = GraphSpec.from_dataset(gname,
                                           scale=ctx.rescale(0.25))
            for sched in schedules:
                cells[(gname, sched)] = JobSpec(
                    algorithm=_PAGERANK2, graph=graph, schedule=sched,
                    config=ctx.gpu_config())
        return cells

    def build_jobs(self, ctx):
        return list(self._cells(ctx).values())

    def summarize(self, ctx, results):
        schedules = self._schedules(ctx)
        cells = self._cells(ctx)
        cycles = {key: results.cycles(spec)
                  for key, spec in cells.items()}
        blocks = {}
        for gname in self.GRAPHS:
            base = cycles[(gname, "vertex_map")]
            rows = sorted(
                ([s, cycles[(gname, s)],
                  round(base / cycles[(gname, s)], 2)]
                 for s in schedules),
                key=lambda r: r[1],
            )
            table = format_table(
                ["schedule", "cycles", "speedup over S_vm"], rows,
                title=f"Extended ranking (PR, {gname})")
            chart = format_bar_chart(
                {r[0]: r[1] for r in rows}, width=36, unit=" cycles")
            blocks[f"extended_ranking_{gname}"] = (table + "\n\n"
                                                   + chart)
        return self.output(blocks, cycles=cycles, schedules=schedules)


@register
class RuntimeEngine(Figure):
    """Serial vs parallel vs warm-cache wall time of the engine itself.

    Local-compute by design: the figure measures BatchEngine, so it
    drives its own engines rather than riding the driver's.
    """

    name = "runtime_engine"
    paper = "repro"
    title = "Runtime engine throughput (serial/parallel/warm)"

    def _grid_specs(self, ctx):
        from repro.sched import ALL_SCHEDULES

        graphs = bench_graph_specs(ctx)
        return [
            JobSpec(algorithm=_PAGERANK2, graph=spec, schedule=sched,
                    config=ctx.gpu_config(), max_iterations=2)
            for spec in graphs.values()
            for sched in ALL_SCHEDULES
        ]

    def summarize(self, ctx, results):
        import tempfile
        import time

        from repro.runtime import BatchEngine, ResultCache, Telemetry

        specs = self._grid_specs(ctx)
        cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")

        rows = []
        start = time.perf_counter()
        serial = BatchEngine(jobs=1).run(specs)
        rows.append(["serial (jobs=1)", len(specs),
                     round(time.perf_counter() - start, 3)])

        cache = ResultCache(cache_dir)
        par_tel = Telemetry()
        start = time.perf_counter()
        parallel = BatchEngine(jobs=4, cache=cache,
                               telemetry=par_tel).run(specs)
        rows.append(["parallel (jobs=4)", len(specs),
                     round(time.perf_counter() - start, 3)])

        warm_tel = Telemetry()
        start = time.perf_counter()
        warm = BatchEngine(jobs=4, cache=cache,
                           telemetry=warm_tel).run(specs)
        rows.append(["warm cache", len(specs),
                     round(time.perf_counter() - start, 3)])

        cycles = {
            "serial": [o.summary.total_cycles for o in serial],
            "parallel": [o.summary.total_cycles for o in parallel],
            "warm": [o.summary.total_cycles for o in warm],
        }
        block = format_table(
            ["pass", "jobs in grid", "wall sec"], rows,
            title="Runtime engine: PageRank x 9 datasets x 5 "
                  "schedules") + "\n" + warm_tel.format_summary(cache)
        return self.output(
            {"runtime_engine": block},
            cycles=cycles, rows=rows,
            warm_started=warm_tel.count("started"),
            warm_cached=warm_tel.count("cached"),
            grid_size=len(specs),
        )
