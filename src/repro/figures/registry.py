"""The figure registry: every paper figure/table as declarative data.

A :class:`Figure` names one regenerable paper artifact and declares

* :meth:`Figure.build_jobs` — the simulation grid as a list of
  :class:`~repro.runtime.jobspec.JobSpec` (possibly empty for analytic
  or model-only figures), and
* :meth:`Figure.summarize` — the fold from engine summaries back into
  the formatted rows/series the paper reports.

Declaring grids as data (instead of re-coding the loop per benchmark)
is what lets one driver execute any subset of figures through the
:class:`~repro.runtime.engine.BatchEngine` with a shared result cache
and telemetry — the GraphIt-style "schedules are data" discipline
applied to the experiment harness itself.

Figures register at import of :mod:`repro.figures.defs`; the registry
loads lazily so ``import repro`` stays light.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.sim.config import GPUConfig

#: The dataset-analog scale every benchmark default assumes; a
#: context's ``scale`` rescales relative to this (see
#: :meth:`FigureContext.rescale`).
DEFAULT_SCALE = 0.25

#: Scale used by ``--smoke`` runs (CI health checks, registry tests).
SMOKE_SCALE = 0.05


@dataclass
class FigureContext:
    """Execution-wide knobs shared by every figure in a run.

    ``scale`` is the base dataset-analog scale (figures that use a
    non-default scale express theirs *relative* to it through
    :meth:`rescale`, so one knob shrinks every grid coherently).
    ``smoke`` asks figures to trim sweeps to a representative handful
    of points — CI uses it for a fast end-to-end pass whose outputs
    are health checks, not paper shapes.  ``config`` overrides the
    benchmark GPU preset for figures that do not pin their own.
    """

    scale: float = DEFAULT_SCALE
    smoke: bool = False
    config: Optional[GPUConfig] = None

    @classmethod
    def smoke_context(cls, scale: float = SMOKE_SCALE) -> "FigureContext":
        """The tiny-scale context ``repro bench --smoke`` runs under."""
        return cls(scale=scale, smoke=True)

    def gpu_config(self) -> GPUConfig:
        """The default GPU preset for figures without their own."""
        return self.config or GPUConfig.vortex_bench()

    def rescale(self, scale: float) -> float:
        """Map a figure's literal scale onto this context's base.

        At the default context this is the identity, so figure grids
        are bit-identical to the pre-registry benchmark scripts; a
        smoke context shrinks every dataset proportionally.
        """
        return scale * (self.scale / DEFAULT_SCALE)

    def trim(self, values: Sequence, smoke_count: int) -> List:
        """Full sweep normally; the first ``smoke_count`` points under
        ``smoke`` (sweeps stay representative but cheap)."""
        values = list(values)
        if self.smoke:
            return values[:max(1, smoke_count)]
        return values


@dataclass
class FigureOutput:
    """What regenerating one figure produces.

    ``blocks`` maps artifact name -> formatted text — exactly the
    ``benchmarks/results/<name>.txt`` files the benchmark suite has
    always written.  ``data`` carries the structured values (cycles,
    speedups, stats objects) the pytest shape gates assert on.
    """

    name: str
    blocks: Dict[str, str] = field(default_factory=dict)
    data: Dict[str, Any] = field(default_factory=dict)


class Figure:
    """One registered paper figure/table.

    Subclasses (or instances) set ``name`` (registry key, also the
    prefix the CLI matches), ``title`` (one-line description) and
    ``paper`` (the paper artifact it regenerates, e.g. ``"Fig. 10"``).

    ``build_jobs`` must be deterministic for a given context — the
    driver relies on rebuilt specs hashing to the same content
    addresses in :meth:`summarize` lookups, and the result cache keys
    on them across processes and runs.
    """

    name: str = ""
    title: str = ""
    paper: str = ""

    def build_jobs(self, ctx: FigureContext):
        """The figure's simulation grid; [] for model-only figures."""
        return []

    def summarize(self, ctx: FigureContext, results) -> FigureOutput:
        """Fold engine results into formatted blocks + assertable data.

        ``results`` is a :class:`~repro.figures.driver.ResultSet`
        answering spec -> :class:`~repro.runtime.cache.RunSummary`;
        figures look their cells up by rebuilding the same specs.
        Model-only figures compute everything here.
        """
        raise NotImplementedError

    def output(self, blocks: Dict[str, str], **data) -> FigureOutput:
        """Convenience constructor for :class:`FigureOutput`."""
        return FigureOutput(self.name, dict(blocks), data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Figure {self.name!r} ({self.paper})>"


# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Figure] = {}
_LOADED = False


def register(figure) -> Figure:
    """Add a figure to the registry (import-time side effect of
    :mod:`repro.figures.defs`); names must be unique.

    Usable as a class decorator (the class is instantiated with no
    arguments) or called with a prebuilt instance; returns whatever it
    was given so decorated names stay bound to the class.
    """
    instance = figure() if isinstance(figure, type) else figure
    if not instance.name:
        raise ReproError("figures must set a non-empty name")
    if instance.name in _REGISTRY:
        raise ReproError(f"duplicate figure name {instance.name!r}")
    _REGISTRY[instance.name] = instance
    return figure


def _ensure_loaded() -> None:
    global _LOADED
    if not _LOADED:
        _LOADED = True
        import repro.figures.defs  # noqa: F401 - registration side effect


def figure_names() -> List[str]:
    """Every registered figure name, sorted."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def list_figures() -> List[Figure]:
    """Every registered figure, sorted by name."""
    _ensure_loaded()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def get_figure(name: str) -> Figure:
    """Look one figure up by exact name."""
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ReproError(
            f"unknown figure {name!r}; run `repro bench --list` or see "
            f"repro.figures.figure_names()"
        ) from None


def resolve_figures(patterns: Sequence[str]) -> List[Figure]:
    """Expand CLI-style patterns into figures.

    Each pattern matches exactly, or as a name prefix (``fig10`` ->
    all four ``fig10_*`` grids; ``ablation`` -> every ablation).
    Unknown patterns raise; duplicates collapse; the result is sorted
    by figure name.
    """
    _ensure_loaded()
    picked: Dict[str, Figure] = {}
    for pattern in patterns:
        if pattern in _REGISTRY:
            picked[pattern] = _REGISTRY[pattern]
            continue
        hits = {name: fig for name, fig in _REGISTRY.items()
                if name.startswith(pattern)}
        if not hits:
            raise ReproError(
                f"no figure matches {pattern!r}; known: "
                + ", ".join(sorted(_REGISTRY)))
        picked.update(hits)
    return [picked[name] for name in sorted(picked)]
