"""Execute registered figures through the batch engine.

The driver is the one loop the 21 benchmark scripts used to re-code:
collect every selected figure's grid, deduplicate cells shared between
figures, submit the whole batch through one
:class:`~repro.runtime.engine.BatchEngine` (parallel workers, shared
:class:`~repro.runtime.cache.ResultCache`, one telemetry stream), then
hand each figure its results to summarize.

Grid expansion order is *deterministic*: the merged batch is sorted by
:meth:`JobSpec.content_hash` — never by dict/registration order — so
cache keys, telemetry streams and emitted result rows are stable
across runs and across ``--jobs`` values.  Figures look results up by
spec, not by index, so the global ordering is invisible to them.

Failure handling comes in two shapes: :func:`run_figures` raises on
the first report of failed jobs (every figure or nothing), while
:func:`run_figures_report` degrades gracefully — it returns the
figures whose jobs all completed plus a structured
:class:`FailureReport` naming every failed job and every figure
skipped because of one, so a long batch with one bad cell still
yields the other N-1 figures and a resumable journal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from dataclasses import replace as dc_replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigError, ReproError
from repro.figures.registry import (Figure, FigureContext, FigureOutput,
                                    get_figure, resolve_figures)
from repro.runtime.cache import ResultCache, RunSummary
from repro.runtime.engine import (BatchEngine, JobOutcome,
                                  raise_on_failures)
from repro.runtime.jobspec import JobSpec
from repro.runtime.telemetry import Telemetry
from repro.sim.stats import KernelStats


class ResultSet:
    """Engine outcomes indexed by job spec.

    Figures rebuild their specs in ``summarize`` and look summaries up
    here — content-equal specs hash equal, so the lookup works across
    the build/summarize boundary regardless of batch order.
    """

    def __init__(self, outcomes: Iterable) -> None:
        self._by_spec = {o.spec: o for o in outcomes}

    def __len__(self) -> int:
        return len(self._by_spec)

    def __contains__(self, spec: JobSpec) -> bool:
        return spec in self._by_spec

    def outcome(self, spec: JobSpec) -> Optional[JobOutcome]:
        """The raw engine outcome for ``spec`` (``None`` if unknown)."""
        return self._by_spec.get(spec)

    def ok(self, spec: JobSpec) -> bool:
        """Whether ``spec`` ran and carries a usable summary."""
        outcome = self._by_spec.get(spec)
        return outcome is not None and outcome.ok

    def summary(self, spec: JobSpec) -> RunSummary:
        """The run summary for ``spec`` (raises on unknown/failed)."""
        outcome = self._by_spec.get(spec)
        if outcome is None:
            raise ReproError(
                f"no result for job {spec.label!r} "
                f"({spec.content_hash()[:12]}); was it in build_jobs()?"
            )
        if outcome.summary is None:
            raise ReproError(
                f"job {spec.label!r} failed: {outcome.error}")
        return outcome.summary

    def __getitem__(self, spec: JobSpec) -> RunSummary:
        return self.summary(spec)

    def cycles(self, spec: JobSpec) -> int:
        """Total simulated cycles of ``spec``'s run."""
        return self.summary(spec).total_cycles

    def stats(self, spec: JobSpec) -> KernelStats:
        """The full (round-tripped) kernel stats of ``spec``'s run."""
        return self.summary(spec).stats

    def digest_ledger(self, spec: JobSpec):
        """The provenance digest ledger of ``spec``'s run, or ``None``.

        Populated only on ``REPRO_DIGEST=1`` runs — see
        :mod:`repro.obs.provenance` and ``repro diff``.
        """
        return self.summary(spec).digest_ledger


def expand_jobs(
    figures: Sequence[Figure], ctx: FigureContext,
) -> Tuple[List[JobSpec], Dict[str, List[JobSpec]]]:
    """Collect every figure's grid into one deterministic batch.

    Returns the merged batch — deduplicated, sorted by content hash —
    plus the per-figure job lists (for reporting).
    """
    per_figure: Dict[str, List[JobSpec]] = {}
    merged: Dict[str, JobSpec] = {}
    for figure in figures:
        jobs = list(figure.build_jobs(ctx))
        per_figure[figure.name] = jobs
        for spec in jobs:
            merged[spec.content_hash()] = spec
    batch = [merged[h] for h in sorted(merged)]
    return batch, per_figure


def _apply_sim_engine(batch: List[JobSpec],
                      sim_engine: Optional[str]) -> List[JobSpec]:
    """Stamp a simulator engine onto every spec in a batch.

    ``JobSpec.engine`` is excluded from equality and content hashing,
    so the stamped specs keep their cache addresses and still match
    the engine-less specs figures rebuild in ``summarize``.
    """
    if sim_engine is None:
        return batch
    return [dc_replace(spec, engine=sim_engine) for spec in batch]


@dataclass
class JobFailure:
    """One failed (or skipped) job in a figure batch."""

    label: str
    job: str  # short content hash
    status: str  # "failed" | "skipped"
    error: str
    attempts: int


@dataclass
class FailureReport:
    """Structured account of what a figure batch did not finish.

    ``failures`` lists every failed/skipped job; ``skipped_figures``
    names the figures that could not summarize because one of their
    jobs is in ``failures``.  An empty report (``ok``) means the batch
    completed fully.
    """

    total_jobs: int = 0
    completed_jobs: int = 0
    failures: List[JobFailure] = field(default_factory=list)
    skipped_figures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    @classmethod
    def from_outcomes(cls, outcomes: Sequence[JobOutcome]
                      ) -> "FailureReport":
        report = cls(total_jobs=len(outcomes))
        for outcome in outcomes:
            if outcome.ok:
                report.completed_jobs += 1
            else:
                report.failures.append(JobFailure(
                    label=outcome.spec.label,
                    job=outcome.spec.content_hash()[:12],
                    status=outcome.status,
                    error=outcome.error or "",
                    attempts=outcome.attempts,
                ))
        return report

    def format(self) -> str:
        """Human-readable failure table (for stderr)."""
        lines = [
            f"{len(self.failures)} of {self.total_jobs} job(s) did not "
            f"complete ({self.completed_jobs} ok):"
        ]
        for f in self.failures:
            lines.append(f"  {f.status:<7} {f.label} [{f.job}] "
                         f"(attempt {f.attempts}): {f.error}")
        if self.skipped_figures:
            lines.append("figures skipped: "
                         + ", ".join(self.skipped_figures))
        return "\n".join(lines)


def _resolve_figure_list(
    figures: Union[Sequence[str], Sequence[Figure]],
) -> List[Figure]:
    """Names/prefixes/instances -> deduplicated, sorted Figure list."""
    resolved: List[Figure] = []
    names: List[str] = []
    for entry in figures:
        if isinstance(entry, Figure):
            resolved.append(entry)
        else:
            names.append(entry)
    if names:
        resolved.extend(resolve_figures(names))
    # De-duplicate while preserving a deterministic (sorted) order.
    unique = {fig.name: fig for fig in resolved}
    return [unique[name] for name in sorted(unique)]


def run_figures_report(
    figures: Union[Sequence[str], Sequence[Figure]],
    ctx: Optional[FigureContext] = None,
    *,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    telemetry: Optional[Telemetry] = None,
    engine: Optional[BatchEngine] = None,
    journal=None,
    timeout: Optional[float] = None,
    policy: str = "keep_going",
    faults=None,
    dist: Optional[str] = None,
    dist_options: Optional[Dict] = None,
    sim_engine: Optional[str] = None,
) -> Tuple[Dict[str, FigureOutput], FailureReport]:
    """Regenerate figures with graceful degradation.

    Like :func:`run_figures`, but failed jobs do not raise: the
    figures whose jobs all completed are summarized and returned, the
    rest are named in the accompanying :class:`FailureReport`.
    ``policy`` is ``"keep_going"`` (default: run everything, report
    failures at the end) or ``"fail_fast"`` (stop scheduling at the
    first failure; unreached jobs come back ``"skipped"``).
    ``journal`` takes a :class:`~repro.runtime.journal.RunJournal` for
    resumable runs — already-journaled jobs are restored without
    re-simulation and new completions are appended as they finish.
    ``dist`` takes a ``host:port`` bind address and runs the batch
    through a :class:`repro.dist.Coordinator` instead of a local
    engine — ``repro work host:port`` processes then pull the jobs;
    ``dist_options`` forwards extra coordinator keywords
    (``lease_seconds``...).  Because the batch is sorted by content
    hash and outcomes are indexed by spec, fleet artifacts are
    byte-identical to local ones.
    ``sim_engine`` stamps a simulator engine name (``reference`` /
    ``fast`` / ``auto``) onto every job; engines are bit-identical, so
    it changes wall-clock speed only, never results or cache keys.
    """
    if policy not in ("keep_going", "fail_fast"):
        raise ConfigError(
            f"unknown failure policy {policy!r}; expected 'keep_going' "
            f"or 'fail_fast'")
    ctx = ctx or FigureContext()
    ordered = _resolve_figure_list(figures)

    batch, per_figure = expand_jobs(ordered, ctx)
    batch = _apply_sim_engine(batch, sim_engine)
    coordinator = None
    if dist is not None:
        if engine is not None:
            raise ReproError(
                "pass either a prebuilt engine or dist=, not both")
        from repro.dist import Coordinator

        engine = coordinator = Coordinator(
            dist, cache=cache, telemetry=telemetry, journal=journal,
            timeout=timeout, faults=faults,
            fail_fast=(policy == "fail_fast"),
            **(dist_options or {}))
        coordinator.start()
        # Announce before blocking so workers can be pointed at us.
        print(f"coordinator serving {len(batch)} job(s) at "
              f"{coordinator.address}", flush=True)
    elif engine is None:
        engine = BatchEngine(jobs=jobs, cache=cache, telemetry=telemetry,
                             timeout=timeout, journal=journal,
                             faults=faults,
                             fail_fast=(policy == "fail_fast"))
    elif (jobs is not None or cache is not None or telemetry is not None
          or journal is not None or timeout is not None
          or faults is not None):
        raise ReproError(
            "pass either a prebuilt engine or jobs=/cache=/telemetry=/"
            "journal=/timeout=/faults=, not both")
    try:
        outcomes = engine.run(batch)
    finally:
        if coordinator is not None:
            coordinator.close()
    results = ResultSet(outcomes)
    report = FailureReport.from_outcomes(outcomes)

    outputs: Dict[str, FigureOutput] = {}
    for fig in ordered:
        if all(results.ok(spec) for spec in per_figure[fig.name]):
            outputs[fig.name] = fig.summarize(ctx, results)
        else:
            report.skipped_figures.append(fig.name)
    return outputs, report


def run_figures(
    figures: Union[Sequence[str], Sequence[Figure]],
    ctx: Optional[FigureContext] = None,
    *,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    telemetry: Optional[Telemetry] = None,
    engine: Optional[BatchEngine] = None,
    sim_engine: Optional[str] = None,
) -> Dict[str, FigureOutput]:
    """Regenerate a set of figures; returns name -> output.

    ``figures`` may be Figure objects or names/prefixes (resolved via
    :func:`~repro.figures.registry.resolve_figures`).  ``jobs`` /
    ``cache`` / ``telemetry`` configure the shared engine (or pass a
    prebuilt ``engine``); a warm cache turns the whole batch into
    lookups — a second identical run simulates nothing.  Any failed
    job raises; use :func:`run_figures_report` to degrade gracefully
    instead.
    """
    ctx = ctx or FigureContext()
    ordered = _resolve_figure_list(figures)

    batch, _per_figure = expand_jobs(ordered, ctx)
    batch = _apply_sim_engine(batch, sim_engine)
    if engine is None:
        engine = BatchEngine(jobs=jobs, cache=cache, telemetry=telemetry)
    elif jobs is not None or cache is not None or telemetry is not None:
        raise ReproError(
            "pass either a prebuilt engine or jobs=/cache=/telemetry=, "
            "not both")
    outcomes = engine.run(batch)
    raise_on_failures(outcomes)
    results = ResultSet(outcomes)

    return {fig.name: fig.summarize(ctx, results) for fig in ordered}


def run_figure(
    name: Union[str, Figure],
    ctx: Optional[FigureContext] = None,
    *,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    telemetry: Optional[Telemetry] = None,
    engine: Optional[BatchEngine] = None,
    sim_engine: Optional[str] = None,
) -> FigureOutput:
    """Regenerate one figure (name, prefix-unique name, or instance)."""
    figure = name if isinstance(name, Figure) else get_figure(name)
    outputs = run_figures([figure], ctx, jobs=jobs, cache=cache,
                          telemetry=telemetry, engine=engine,
                          sim_engine=sim_engine)
    return outputs[figure.name]
