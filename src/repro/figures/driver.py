"""Execute registered figures through the batch engine.

The driver is the one loop the 21 benchmark scripts used to re-code:
collect every selected figure's grid, deduplicate cells shared between
figures, submit the whole batch through one
:class:`~repro.runtime.engine.BatchEngine` (parallel workers, shared
:class:`~repro.runtime.cache.ResultCache`, one telemetry stream), then
hand each figure its results to summarize.

Grid expansion order is *deterministic*: the merged batch is sorted by
:meth:`JobSpec.content_hash` — never by dict/registration order — so
cache keys, telemetry streams and emitted result rows are stable
across runs and across ``--jobs`` values.  Figures look results up by
spec, not by index, so the global ordering is invisible to them.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import ReproError
from repro.figures.registry import (Figure, FigureContext, FigureOutput,
                                    get_figure, resolve_figures)
from repro.runtime.cache import ResultCache, RunSummary
from repro.runtime.engine import BatchEngine, raise_on_failures
from repro.runtime.jobspec import JobSpec
from repro.runtime.telemetry import Telemetry
from repro.sim.stats import KernelStats


class ResultSet:
    """Engine outcomes indexed by job spec.

    Figures rebuild their specs in ``summarize`` and look summaries up
    here — content-equal specs hash equal, so the lookup works across
    the build/summarize boundary regardless of batch order.
    """

    def __init__(self, outcomes: Iterable) -> None:
        self._by_spec = {o.spec: o for o in outcomes}

    def __len__(self) -> int:
        return len(self._by_spec)

    def __contains__(self, spec: JobSpec) -> bool:
        return spec in self._by_spec

    def summary(self, spec: JobSpec) -> RunSummary:
        """The run summary for ``spec`` (raises on unknown/failed)."""
        outcome = self._by_spec.get(spec)
        if outcome is None:
            raise ReproError(
                f"no result for job {spec.label!r} "
                f"({spec.content_hash()[:12]}); was it in build_jobs()?"
            )
        if outcome.summary is None:
            raise ReproError(
                f"job {spec.label!r} failed: {outcome.error}")
        return outcome.summary

    def __getitem__(self, spec: JobSpec) -> RunSummary:
        return self.summary(spec)

    def cycles(self, spec: JobSpec) -> int:
        """Total simulated cycles of ``spec``'s run."""
        return self.summary(spec).total_cycles

    def stats(self, spec: JobSpec) -> KernelStats:
        """The full (round-tripped) kernel stats of ``spec``'s run."""
        return self.summary(spec).stats


def expand_jobs(
    figures: Sequence[Figure], ctx: FigureContext,
) -> Tuple[List[JobSpec], Dict[str, List[JobSpec]]]:
    """Collect every figure's grid into one deterministic batch.

    Returns the merged batch — deduplicated, sorted by content hash —
    plus the per-figure job lists (for reporting).
    """
    per_figure: Dict[str, List[JobSpec]] = {}
    merged: Dict[str, JobSpec] = {}
    for figure in figures:
        jobs = list(figure.build_jobs(ctx))
        per_figure[figure.name] = jobs
        for spec in jobs:
            merged[spec.content_hash()] = spec
    batch = [merged[h] for h in sorted(merged)]
    return batch, per_figure


def run_figures(
    figures: Union[Sequence[str], Sequence[Figure]],
    ctx: Optional[FigureContext] = None,
    *,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    telemetry: Optional[Telemetry] = None,
    engine: Optional[BatchEngine] = None,
) -> Dict[str, FigureOutput]:
    """Regenerate a set of figures; returns name -> output.

    ``figures`` may be Figure objects or names/prefixes (resolved via
    :func:`~repro.figures.registry.resolve_figures`).  ``jobs`` /
    ``cache`` / ``telemetry`` configure the shared engine (or pass a
    prebuilt ``engine``); a warm cache turns the whole batch into
    lookups — a second identical run simulates nothing.
    """
    ctx = ctx or FigureContext()
    resolved: List[Figure] = []
    names: List[str] = []
    for entry in figures:
        if isinstance(entry, Figure):
            resolved.append(entry)
        else:
            names.append(entry)
    if names:
        resolved.extend(resolve_figures(names))
    # De-duplicate while preserving a deterministic (sorted) order.
    unique = {fig.name: fig for fig in resolved}
    ordered = [unique[name] for name in sorted(unique)]

    batch, _per_figure = expand_jobs(ordered, ctx)
    if engine is None:
        engine = BatchEngine(jobs=jobs, cache=cache, telemetry=telemetry)
    elif jobs is not None or cache is not None or telemetry is not None:
        raise ReproError(
            "pass either a prebuilt engine or jobs=/cache=/telemetry=, "
            "not both")
    outcomes = engine.run(batch)
    raise_on_failures(outcomes)
    results = ResultSet(outcomes)

    return {fig.name: fig.summarize(ctx, results) for fig in ordered}


def run_figure(
    name: Union[str, Figure],
    ctx: Optional[FigureContext] = None,
    *,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    telemetry: Optional[Telemetry] = None,
    engine: Optional[BatchEngine] = None,
) -> FigureOutput:
    """Regenerate one figure (name, prefix-unique name, or instance)."""
    figure = name if isinstance(name, Figure) else get_figure(name)
    outputs = run_figures([figure], ctx, jobs=jobs, cache=cache,
                          telemetry=telemetry, engine=engine)
    return outputs[figure.name]
