"""repro.dist — distributed, journal-aware fan-out simulation.

A :class:`Coordinator` serves a batch of job specs to any number of
:class:`Worker` processes over a line-delimited-JSON TCP protocol
(:mod:`repro.dist.protocol`).  The coordinator *is* a batch engine —
same cache/journal/telemetry/fault plumbing, same outcomes — so fleet
runs are drop-in (and bit-identical) replacements for pool runs.  See
``docs/distributed.md`` for the protocol, lease lifecycle and failure
matrix.
"""

from repro.dist.coordinator import (DEFAULT_LEASE_SECONDS, Coordinator)
from repro.dist.protocol import (DEFAULT_HOST, PROTOCOL_VERSION,
                                 ProtocolError, format_address,
                                 parse_address)
from repro.dist.resilience import (AdmissionGate, CircuitBreaker,
                                   ReconnectPolicy)
from repro.dist.worker import Worker, default_worker_id

__all__ = [
    "Coordinator",
    "Worker",
    "ProtocolError",
    "PROTOCOL_VERSION",
    "DEFAULT_HOST",
    "DEFAULT_LEASE_SECONDS",
    "parse_address",
    "format_address",
    "default_worker_id",
    "AdmissionGate",
    "CircuitBreaker",
    "ReconnectPolicy",
]
