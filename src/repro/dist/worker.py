"""The fleet worker: pull leases, simulate, stream results home.

A :class:`Worker` is a thin pump around the engine's single remote
execution path, :func:`repro.runtime.engine._worker_entry` — the same
function a ``ProcessPoolExecutor`` worker runs — so a job simulated by
the fleet is bit-identical to one simulated by the in-process pool.
Everything else here is plumbing: connect (with retry, so workers can
start before their coordinator), handshake, heartbeat while a job
runs, and convert exceptions into structured ``result`` messages the
coordinator folds through its normal retry/failure machinery.

Workers hold no durable state.  A worker that crashes mid-job simply
disconnects; the coordinator reclaims the lease and retries it
elsewhere.  Injected faults arrive *in the lease* (the coordinator
consults its :class:`~repro.runtime.faults.FaultPlan`), so a chaos run
needs no environment coordination across hosts — except *network*
fault kinds (``net_drop`` / ``net_delay`` / ``net_partition``), which
by nature live on the worker's side of the wire and are resolved from
the worker's own ``REPRO_FAULTS``.

Resilience (``max_reconnects > 0``): a lost session — coordinator
restart, partition, injected ``net_partition`` — is re-dialed with
jittered exponential backoff instead of ending the worker.  The worker
presents the same ``(worker_id, session)`` identity on reconnect, so
the coordinator supersedes the zombie connection rather than rejecting
the id as a duplicate.  A guard policy (``REPRO_GUARD`` or ``guard=``)
adds the memory watchdog: soft RSS limit → finish the current job,
sign off, refuse further leases; hard limit → immediate self-eviction
(exit :data:`~repro.runtime.guard.EVICT_EXIT_CODE`) the coordinator
reclaims like a crash.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from typing import Any, Dict, Optional

from repro.dist import protocol
from repro.dist.protocol import (MessageStream, ProtocolError, expect,
                                 parse_address)
from repro.dist.resilience import ReconnectPolicy
from repro.errors import ReproError, TransientError
from repro.runtime.engine import _worker_entry
from repro.runtime.faults import NET_KINDS, get_active_plan
from repro.runtime.guard import EVICT_EXIT_CODE, get_active_guard
from repro.runtime.jobspec import JobSpec
from repro.sim import SIMULATOR_VERSION


class _HandshakeRetry(Exception):
    """A ``reject`` carrying ``retry=True``: dial again, don't die."""


def default_worker_id() -> str:
    """``hostname-pid``: unique per process, readable in dashboards."""
    return f"{socket.gethostname()}-{os.getpid()}"


def default_session_token() -> str:
    """Random per-process token proving a reconnect is *this* worker."""
    return os.urandom(8).hex()


class Worker:
    """One lease-pulling simulation worker.

    ``address`` is the coordinator's ``host:port``.  ``max_jobs``
    bounds how many leases this worker will run before signing off
    (``None`` = until drained); ``connect_timeout`` bounds how long
    each dial keeps retrying, so a fleet can be launched workers-first.
    ``max_reconnects`` bounds *consecutive* lost sessions the worker
    survives (0 = exit on the first loss, the pre-resilience
    behavior); a successful handshake resets the count.  ``guard`` is
    a :class:`~repro.runtime.guard.GuardPolicy` for the memory
    watchdog (``None`` resolves ``REPRO_GUARD``); ``faults`` overrides
    the ``REPRO_FAULTS`` plan whose network rules this worker's
    streams apply.
    """

    def __init__(self, address: str, *,
                 worker_id: Optional[str] = None,
                 connect_timeout: float = 10.0,
                 max_jobs: Optional[int] = None,
                 max_reconnects: int = 0,
                 reconnect_base: float = 0.2,
                 guard=None, faults=None) -> None:
        self.address = parse_address(address)
        self.worker_id = worker_id or default_worker_id()
        self.session = default_session_token()
        self.connect_timeout = float(connect_timeout)
        self.max_jobs = max_jobs
        self.max_reconnects = max(0, int(max_reconnects))
        self.jobs_done = 0
        self.jobs_failed = 0
        self.reconnects = 0
        self.stop_reason = ""
        self._heartbeat_seconds = 1.0
        self._stream: Optional[MessageStream] = None
        self._policy = ReconnectPolicy(
            base=reconnect_base, max_retries=self.max_reconnects,
            key=self.worker_id)
        self.guard = guard if guard is not None else get_active_guard()
        self.memory = (self.guard.memory_guard()
                       if self.guard is not None else None)
        faults = faults if faults is not None else get_active_plan()
        #: Only a plan with network rules is worth a per-send lookup.
        self._net_faults = (
            faults if faults is not None and any(
                rule.kind in NET_KINDS for rule in faults.rules)
            else None)
        #: Outbound message counter, shared across reconnected streams
        #: so an indexed net rule fires once per worker lifetime.
        self._net_state = [0]

    # ------------------------------------------------------------------
    def _connect(self) -> MessageStream:
        """Dial the coordinator, retrying until ``connect_timeout``."""
        deadline = time.monotonic() + self.connect_timeout
        delay = 0.05
        while True:
            try:
                sock = socket.create_connection(self.address, timeout=10.0)
                sock.settimeout(None)
                return MessageStream(sock, faults=self._net_faults,
                                     fault_state=self._net_state)
            except OSError as exc:
                if time.monotonic() >= deadline:
                    raise ReproError(
                        f"could not reach coordinator at "
                        f"{protocol.format_address(self.address)} within "
                        f"{self.connect_timeout}s: {exc}") from exc
                time.sleep(delay)
                delay = min(delay * 2, 1.0)

    def _handshake(self, stream: MessageStream) -> Dict[str, Any]:
        stream.send(protocol.hello(self.worker_id, SIMULATOR_VERSION,
                                   os.getpid(), session=self.session))
        reply = expect(stream.recv(), "welcome", "reject")
        if reply["type"] == "reject":
            if reply.get("retry"):
                # A transient refusal (coordinator mid-shutdown in a
                # rolling restart): back off and dial again.
                raise _HandshakeRetry(reply.get("reason", ""))
            raise ReproError(
                f"coordinator rejected worker {self.worker_id!r}: "
                f"{reply.get('reason', 'no reason given')}")
        self._heartbeat_seconds = float(
            reply.get("heartbeat_seconds", 1.0))
        return reply

    # ------------------------------------------------------------------
    def run(self) -> int:
        """Serve leases until drained (or ``max_jobs``); returns jobs run.

        A lost session (coordinator restart, partition, socket error)
        is re-dialed with jittered exponential backoff while
        ``max_reconnects`` consecutive losses remain;
        :attr:`stop_reason` records why the worker finally stopped
        (``drained`` / ``max_jobs`` / ``memory_soft`` / ``lost`` /
        ``rejected``).
        """
        losses = 0
        while True:
            try:
                stream = self._connect()
            except ReproError:
                losses += 1
                if losses > self.max_reconnects:
                    if self.reconnects:
                        # Had a live session once; going quiet matches
                        # the old worker's exit-on-EOF contract.
                        self.stop_reason = "lost"
                        return self.jobs_done
                    raise
                time.sleep(self._policy.delay(losses))
                continue
            self._stream = stream
            reason = "lost"
            try:
                self._handshake(stream)
                losses = 0
                reason = self._serve(stream)
            except (OSError, ProtocolError, _HandshakeRetry):
                reason = "lost"
            except ReproError:
                # A handshake rejection is fatal on a fresh worker
                # (duplicate id, version skew) but a clean stop once a
                # session existed — e.g. the reconnect raced a
                # coordinator that is shutting down.
                if not self.reconnects and not self.jobs_done:
                    raise
                reason = "rejected"
            finally:
                self._stream = None
                stream.close()
            if reason != "lost":
                self.stop_reason = reason
                return self.jobs_done
            losses += 1
            if losses > self.max_reconnects:
                self.stop_reason = "lost"
                return self.jobs_done
            self.reconnects += 1
            time.sleep(self._policy.delay(losses))

    def _serve(self, stream: MessageStream) -> str:
        """One connected session's request/lease pump."""
        while True:
            if (self.max_jobs is not None
                    and self.jobs_done + self.jobs_failed
                    >= self.max_jobs):
                stream.send(protocol.goodbye(self.worker_id,
                                             self.jobs_done))
                return "max_jobs"
            if self.memory is not None:
                level = self.memory.check()
                if level == "hard":
                    self._hard_evict(stream)
                    return "memory_hard"
                if level == "soft":
                    # Degrade, don't die: nothing in flight, so sign
                    # off cleanly and let a peer take the remainder.
                    stream.send(protocol.goodbye(
                        self.worker_id, self.jobs_done,
                        reason="memory_soft"))
                    return "memory_soft"
            stream.send(protocol.request(self.worker_id))
            message = stream.recv()
            if message is None:
                return "lost"  # coordinator went away
            kind = message["type"]
            if kind == "lease":
                self._run_lease(stream, message)
            elif kind == "wait":
                time.sleep(max(0.0, float(
                    message.get("seconds", 0.1))))
            elif kind == "drain":
                try:
                    stream.send(protocol.goodbye(self.worker_id,
                                                 self.jobs_done))
                except OSError:
                    pass  # coordinator already gone; drained either way
                return "drained"
            else:
                raise ProtocolError(
                    f"unexpected reply {kind!r} to a request")

    def _hard_evict(self, stream: MessageStream) -> None:
        """Hard RSS limit: release everything *now*.

        Dropping the socket makes the coordinator reclaim any held
        lease exactly like a crash; exiting is the only way to
        actually return the memory.  Overridable in tests (which
        cannot ``os._exit`` the test process).
        """
        print(f"worker {self.worker_id} self-evicting: rss "
              f"{self.memory.last_rss} >= hard limit "
              f"{self.memory.hard_bytes}", flush=True)
        stream.close()
        os._exit(EVICT_EXIT_CODE)

    # ------------------------------------------------------------------
    def _run_lease(self, stream: MessageStream,
                   lease: Dict[str, Any]) -> None:
        """Execute one lease and send exactly one ``result``."""
        spec_hash = str(lease["hash"])
        attempt = int(lease.get("attempt", 1))
        start = time.perf_counter()
        try:
            spec = JobSpec.from_dict(lease["spec"])
        except Exception as exc:  # noqa: BLE001 - structured reply
            self.jobs_failed += 1
            stream.send(protocol.result(
                self.worker_id, spec_hash, attempt, "failed",
                time.perf_counter() - start,
                error=f"undecodable spec: {type(exc).__name__}: {exc}"))
            expect(stream.recv(), "ack")
            return
        derived = spec.content_hash()
        if derived != spec_hash:
            # The spec was corrupted (or tampered with) in flight; the
            # hash is the job's identity, so refuse to run an imposter.
            self.jobs_failed += 1
            stream.send(protocol.result(
                self.worker_id, spec_hash, attempt, "failed",
                time.perf_counter() - start,
                error=f"spec hash mismatch: wire says {spec_hash[:12]}, "
                      f"decoded spec hashes to {derived[:12]}"))
            expect(stream.recv(), "ack")
            return

        stop = threading.Event()
        beats = threading.Thread(
            target=self._heartbeat_loop, args=(stream, spec_hash, stop),
            name="dist-heartbeat", daemon=True)
        beats.start()
        try:
            fault = lease.get("fault")
            data = _worker_entry(spec, tuple(fault) if fault else None)
            metrics = data.pop("_metrics", None)
            profile = data.pop("_profile", None)
            # Anything else _worker_entry attached stays in the summary
            # payload — in particular the optional ``digest_ledger``
            # (REPRO_DIGEST runs), so fleet ledgers are comparable
            # one-for-one with serial ones via ``repro diff``.
            message = protocol.result(
                self.worker_id, spec_hash, attempt, "ok",
                time.perf_counter() - start, summary=data,
                metrics=metrics, profile=profile)
            self.jobs_done += 1
        except TransientError as exc:
            self.jobs_failed += 1
            message = protocol.result(
                self.worker_id, spec_hash, attempt, "failed",
                time.perf_counter() - start,
                error=f"{type(exc).__name__}: {exc}", transient=True)
        except Exception as exc:  # noqa: BLE001 - deterministic failure
            self.jobs_failed += 1
            message = protocol.result(
                self.worker_id, spec_hash, attempt, "failed",
                time.perf_counter() - start,
                error=f"{type(exc).__name__}: {exc}")
        finally:
            stop.set()
            beats.join(timeout=2.0)
        stream.send(message)
        expect(stream.recv(), "ack")

    def _heartbeat_loop(self, stream: MessageStream, spec_hash: str,
                        stop: threading.Event) -> None:
        """Ping liveness until the job finishes (writes are locked).

        Doubles as the in-job memory watchdog: a hard-limit reading
        between beats evicts immediately instead of waiting for the
        job — the kernel OOM-killer would not wait either.
        """
        while not stop.wait(self._heartbeat_seconds):
            if (self.memory is not None
                    and self.memory.check() == "hard"):
                self._hard_evict(stream)
                return
            try:
                stream.send(protocol.heartbeat(self.worker_id,
                                               spec_hash))
            except OSError:
                return  # the main loop will notice the dead socket
