"""The fleet worker: pull leases, simulate, stream results home.

A :class:`Worker` is a thin pump around the engine's single remote
execution path, :func:`repro.runtime.engine._worker_entry` — the same
function a ``ProcessPoolExecutor`` worker runs — so a job simulated by
the fleet is bit-identical to one simulated by the in-process pool.
Everything else here is plumbing: connect (with retry, so workers can
start before their coordinator), handshake, heartbeat while a job
runs, and convert exceptions into structured ``result`` messages the
coordinator folds through its normal retry/failure machinery.

Workers hold no durable state.  A worker that crashes mid-job simply
disconnects; the coordinator reclaims the lease and retries it
elsewhere.  Injected faults arrive *in the lease* (the coordinator
consults its :class:`~repro.runtime.faults.FaultPlan`), so a chaos run
needs no environment coordination across hosts.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from typing import Any, Dict, Optional

from repro.dist import protocol
from repro.dist.protocol import (MessageStream, ProtocolError, expect,
                                 parse_address)
from repro.errors import ReproError, TransientError
from repro.runtime.engine import _worker_entry
from repro.runtime.jobspec import JobSpec
from repro.sim import SIMULATOR_VERSION


def default_worker_id() -> str:
    """``hostname-pid``: unique per process, readable in dashboards."""
    return f"{socket.gethostname()}-{os.getpid()}"


class Worker:
    """One lease-pulling simulation worker.

    ``address`` is the coordinator's ``host:port``.  ``max_jobs``
    bounds how many leases this worker will run before signing off
    (``None`` = until drained); ``connect_timeout`` bounds how long
    :meth:`run` keeps retrying the initial connect, so a fleet can be
    launched workers-first.
    """

    def __init__(self, address: str, *,
                 worker_id: Optional[str] = None,
                 connect_timeout: float = 10.0,
                 max_jobs: Optional[int] = None) -> None:
        self.address = parse_address(address)
        self.worker_id = worker_id or default_worker_id()
        self.connect_timeout = float(connect_timeout)
        self.max_jobs = max_jobs
        self.jobs_done = 0
        self.jobs_failed = 0
        self._heartbeat_seconds = 1.0
        self._stream: Optional[MessageStream] = None

    # ------------------------------------------------------------------
    def _connect(self) -> MessageStream:
        """Dial the coordinator, retrying until ``connect_timeout``."""
        deadline = time.monotonic() + self.connect_timeout
        delay = 0.05
        while True:
            try:
                sock = socket.create_connection(self.address, timeout=10.0)
                sock.settimeout(None)
                return MessageStream(sock)
            except OSError as exc:
                if time.monotonic() >= deadline:
                    raise ReproError(
                        f"could not reach coordinator at "
                        f"{protocol.format_address(self.address)} within "
                        f"{self.connect_timeout}s: {exc}") from exc
                time.sleep(delay)
                delay = min(delay * 2, 1.0)

    def _handshake(self, stream: MessageStream) -> Dict[str, Any]:
        stream.send(protocol.hello(self.worker_id, SIMULATOR_VERSION,
                                   os.getpid()))
        reply = expect(stream.recv(), "welcome", "reject")
        if reply["type"] == "reject":
            raise ReproError(
                f"coordinator rejected worker {self.worker_id!r}: "
                f"{reply.get('reason', 'no reason given')}")
        self._heartbeat_seconds = float(
            reply.get("heartbeat_seconds", 1.0))
        return reply

    # ------------------------------------------------------------------
    def run(self) -> int:
        """Serve leases until drained (or ``max_jobs``); returns jobs run."""
        stream = self._connect()
        self._stream = stream
        try:
            self._handshake(stream)
            while True:
                if (self.max_jobs is not None
                        and self.jobs_done + self.jobs_failed
                        >= self.max_jobs):
                    stream.send(protocol.goodbye(self.worker_id,
                                                 self.jobs_done))
                    return self.jobs_done
                stream.send(protocol.request(self.worker_id))
                message = stream.recv()
                if message is None:
                    return self.jobs_done  # coordinator went away
                kind = message["type"]
                if kind == "lease":
                    self._run_lease(stream, message)
                elif kind == "wait":
                    time.sleep(max(0.0, float(
                        message.get("seconds", 0.1))))
                elif kind == "drain":
                    stream.send(protocol.goodbye(self.worker_id,
                                                 self.jobs_done))
                    return self.jobs_done
                else:
                    raise ProtocolError(
                        f"unexpected reply {kind!r} to a request")
        finally:
            self._stream = None
            stream.close()

    # ------------------------------------------------------------------
    def _run_lease(self, stream: MessageStream,
                   lease: Dict[str, Any]) -> None:
        """Execute one lease and send exactly one ``result``."""
        spec_hash = str(lease["hash"])
        attempt = int(lease.get("attempt", 1))
        start = time.perf_counter()
        try:
            spec = JobSpec.from_dict(lease["spec"])
        except Exception as exc:  # noqa: BLE001 - structured reply
            self.jobs_failed += 1
            stream.send(protocol.result(
                self.worker_id, spec_hash, attempt, "failed",
                time.perf_counter() - start,
                error=f"undecodable spec: {type(exc).__name__}: {exc}"))
            expect(stream.recv(), "ack")
            return
        derived = spec.content_hash()
        if derived != spec_hash:
            # The spec was corrupted (or tampered with) in flight; the
            # hash is the job's identity, so refuse to run an imposter.
            self.jobs_failed += 1
            stream.send(protocol.result(
                self.worker_id, spec_hash, attempt, "failed",
                time.perf_counter() - start,
                error=f"spec hash mismatch: wire says {spec_hash[:12]}, "
                      f"decoded spec hashes to {derived[:12]}"))
            expect(stream.recv(), "ack")
            return

        stop = threading.Event()
        beats = threading.Thread(
            target=self._heartbeat_loop, args=(stream, spec_hash, stop),
            name="dist-heartbeat", daemon=True)
        beats.start()
        try:
            fault = lease.get("fault")
            data = _worker_entry(spec, tuple(fault) if fault else None)
            metrics = data.pop("_metrics", None)
            profile = data.pop("_profile", None)
            # Anything else _worker_entry attached stays in the summary
            # payload — in particular the optional ``digest_ledger``
            # (REPRO_DIGEST runs), so fleet ledgers are comparable
            # one-for-one with serial ones via ``repro diff``.
            message = protocol.result(
                self.worker_id, spec_hash, attempt, "ok",
                time.perf_counter() - start, summary=data,
                metrics=metrics, profile=profile)
            self.jobs_done += 1
        except TransientError as exc:
            self.jobs_failed += 1
            message = protocol.result(
                self.worker_id, spec_hash, attempt, "failed",
                time.perf_counter() - start,
                error=f"{type(exc).__name__}: {exc}", transient=True)
        except Exception as exc:  # noqa: BLE001 - deterministic failure
            self.jobs_failed += 1
            message = protocol.result(
                self.worker_id, spec_hash, attempt, "failed",
                time.perf_counter() - start,
                error=f"{type(exc).__name__}: {exc}")
        finally:
            stop.set()
            beats.join(timeout=2.0)
        stream.send(message)
        expect(stream.recv(), "ack")

    def _heartbeat_loop(self, stream: MessageStream, spec_hash: str,
                        stop: threading.Event) -> None:
        """Ping liveness until the job finishes (writes are locked)."""
        while not stop.wait(self._heartbeat_seconds):
            try:
                stream.send(protocol.heartbeat(self.worker_id,
                                               spec_hash))
            except OSError:
                return  # the main loop will notice the dead socket
