"""The fleet coordinator: lease jobs out, fold results back in.

A :class:`Coordinator` **is** a :class:`~repro.runtime.engine.BatchEngine`
— same constructor knobs (cache, telemetry, journal, faults, retries,
timeout, fail-fast), same journal/cache pre-pass, same
:class:`~repro.runtime.engine.JobOutcome` bookkeeping, same metrics —
whose execution backend is a TCP server instead of a process pool.
``run(specs)`` therefore slots anywhere an engine does (the figures
driver takes one via ``engine=`` / ``dist=``), and a fleet run is
telemetry-compatible with a pool run: the same ``started`` /
``finished`` / ``retried`` event stream, plus fleet events
(``worker_joined`` / ``worker_left`` / ``lease_result`` /
``lease_expired`` / ``lease_reclaimed``) the dashboard folds into its
fleet view.

Lease lifecycle::

    pending --grant--> leased --result(ok)------> done (journaled)
                        |  \\--result(transient)-> pending (retry) or failed
                        |--expiry---------------> pending (retry),
                        |                         or failed when the
                        |                         per-job timeout is hit
                        \\--worker disconnect----> pending (retry) or failed

Every transition is durable: grants append ``lease`` records to the
run journal, take-backs append ``reclaim`` records, completions append
the ordinary completion record — so killing the coordinator at any
instant leaves a ledger a ``--resume`` run restores bit-identically,
with zero re-simulation of completed jobs.

Concurrency model: one daemon thread accepts connections, one handler
thread per worker folds that worker's messages in arrival order, and
the thread that called ``run()`` sweeps expired leases.  All shared
state mutates under one lock; socket reads happen outside it.
"""

from __future__ import annotations

import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.dist import protocol
from repro.dist.protocol import (MessageStream, ProtocolError,
                                 format_address, parse_address)
from repro.dist.resilience import CircuitBreaker, resolve_gate
from repro.errors import ConfigError
from repro.obs.metrics import get_registry
from repro.obs.profile import get_profiler
from repro.runtime.cache import RunSummary
from repro.runtime.engine import BatchEngine
from repro.runtime.jobspec import JobSpec
from repro.sim import SIMULATOR_VERSION

#: Default seconds a lease stays valid without a heartbeat.
DEFAULT_LEASE_SECONDS = 30.0

#: Seconds an idle worker is told to wait before asking again.
DEFAULT_WAIT_SECONDS = 0.2


@dataclass
class _Lease:
    """One outstanding grant."""

    index: int
    spec: JobSpec
    attempt: int
    worker: str
    started: float
    deadline: float
    hard_deadline: Optional[float] = None


@dataclass
class _WorkerInfo:
    """What the coordinator knows about one connected worker."""

    worker: str
    addr: str
    joined: float
    alive: bool = True
    jobs_ok: int = 0
    jobs_failed: int = 0
    last_seen: float = field(default=0.0)
    #: Random per-process token from ``hello``; a reconnect presenting
    #: the same (worker, session) supersedes the zombie connection.
    session: str = ""
    #: Bumped on every supersede; a stale handler thread whose
    #: generation no longer matches must not reclaim the successor's
    #: leases on its way out.
    generation: int = 0
    reconnects: int = 0
    last_goodbye: str = ""


class Coordinator(BatchEngine):
    """A batch engine whose workers arrive over TCP.

    ``bind`` is ``"host:port"`` (port 0 picks an ephemeral port; read
    it back from :attr:`address` / :attr:`port`).  ``lease_seconds``
    is the heartbeat-refreshed lease lifetime; a worker that stops
    heartbeating loses its lease after at most that long.  The
    engine's ``timeout`` becomes a *hard* per-job deadline heartbeats
    cannot extend, mirroring the pool path's per-job timeout.

    The constructor accepts every :class:`BatchEngine` keyword; the
    ``jobs`` count is meaningless here (parallelism is however many
    workers connect) and is pinned to 1.

    Guardrails: ``max_inflight`` bounds outstanding leases — further
    requests get ``wait(reason="backpressure")`` instead of a grant.
    ``breaker_threshold`` arms a per-worker circuit breaker: that many
    *consecutive* failures quarantine the worker for
    ``breaker_cooldown`` seconds (``wait(reason="quarantined")``), so
    a poisoned host stops eating retries.  The engine's ``deadline``
    budget sheds not-yet-granted work as ``skipped{reason=deadline}``
    once exhausted — journaled deferrals a ``--resume`` run completes,
    never altered results.
    """

    def __init__(self, bind: str = "127.0.0.1:0", *,
                 lease_seconds: float = DEFAULT_LEASE_SECONDS,
                 heartbeat_seconds: Optional[float] = None,
                 poll_seconds: float = 0.05,
                 name: str = "coordinator",
                 max_inflight: Optional[int] = None,
                 breaker_threshold: Optional[int] = None,
                 breaker_cooldown: float = 30.0,
                 **engine_kwargs) -> None:
        engine_kwargs.pop("jobs", None)
        super().__init__(jobs=1, **engine_kwargs)
        self.bind = parse_address(bind)
        self.lease_seconds = float(lease_seconds)
        self.heartbeat_seconds = (
            float(heartbeat_seconds) if heartbeat_seconds is not None
            else max(self.lease_seconds / 3.0, 0.02))
        self.poll_seconds = float(poll_seconds)
        self.name = name

        self._lock = threading.RLock()
        self._pending: deque = deque()  # (index, spec, attempt)
        self._leases: Dict[str, _Lease] = {}
        self._jobs: Dict[str, Tuple[int, JobSpec]] = {}  # hash -> job
        self._outcomes: Optional[Dict[int, Any]] = None
        self._open = 0  # jobs not yet finally resolved
        self._abort = False
        self._batch_active = False
        self._batches_done = 0
        self.stale_results = 0
        #: Admission gate: bounded in-flight leases with
        #: reject-and-retry-after backpressure (``None`` = unbounded).
        self._gate = resolve_gate(max_inflight)
        #: Per-worker circuit breaker: ``breaker_threshold``
        #: consecutive failures quarantine the worker for
        #: ``breaker_cooldown`` seconds (``None`` = disabled).
        self._breaker = (CircuitBreaker(threshold=breaker_threshold,
                                        cooldown=breaker_cooldown)
                         if breaker_threshold else None)
        #: Non-empty once :meth:`request_shutdown` ran; the fleet loop
        #: and :meth:`_grant` then shed instead of granting.
        self._shutdown_reason = ""
        self.jobs_shed = 0

        self._server_sock: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._streams: List[MessageStream] = []
        self._workers: Dict[str, _WorkerInfo] = {}
        self._closing = False

    # ------------------------------------------------------------------
    # server lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> str:
        """The bound ``host:port`` (valid after :meth:`start`)."""
        return format_address(self.bind)

    @property
    def host(self) -> str:
        return self.bind[0]

    @property
    def port(self) -> int:
        return self.bind[1]

    def start(self) -> "Coordinator":
        """Bind, listen and start accepting workers (idempotent)."""
        with self._lock:
            if self._server_sock is not None:
                return self
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind(self.bind)
            sock.listen(64)
            self._server_sock = sock
            self.bind = sock.getsockname()[:2]
            self._closing = False
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="dist-accept", daemon=True)
            self._accept_thread.start()
        return self

    def close(self, drain: bool = True) -> None:
        """Stop accepting and drop every connection (idempotent).

        ``drain=False`` drops connections without the courtesy drain
        message — an in-process stand-in for a coordinator crash, used
        by restart tests (reconnect-capable workers then treat the cut
        as a partition and re-dial).
        """
        with self._lock:
            self._closing = True
            sock, self._server_sock = self._server_sock, None
            streams, self._streams = self._streams, []
        if sock is not None:
            try:
                # shutdown() wakes a concurrently-blocked accept();
                # close() alone leaves it holding the listening socket,
                # which would keep the port busy (EADDRINUSE) for a
                # same-port restart.
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        for stream in streams:
            # Best-effort drain so reconnect-capable workers exit
            # instead of treating the dropped socket as a partition
            # and re-dialing a coordinator that will never return.
            if drain:
                try:
                    stream.send(protocol.drain("coordinator closing"))
                except OSError:
                    pass
            stream.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
            self._accept_thread = None

    def __enter__(self) -> "Coordinator":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.close()

    def _accept_loop(self) -> None:
        while True:
            with self._lock:
                sock = self._server_sock
            if sock is None:
                return
            try:
                conn, addr = sock.accept()
            except OSError:
                return  # closed underneath us
            threading.Thread(
                target=self._handle_connection, args=(conn, addr),
                name=f"dist-conn-{addr[1]}", daemon=True).start()

    # ------------------------------------------------------------------
    # engine integration
    # ------------------------------------------------------------------
    def run(self, specs) -> List[Any]:
        """Pre-pass (journal, cache) then serve the rest to the fleet."""
        for spec in specs:
            if spec.graph.kind == "inline":
                raise ConfigError(
                    f"job {spec.label!r} wraps an inline graph; only "
                    "dataset/generator specs can cross the wire "
                    "(inline payloads are not JSON-rebuildable)")
        self.start()
        return super().run(specs)

    # Both engine execution backends route to the fleet: the pre-pass
    # and outcome bookkeeping in BatchEngine.run stay untouched.
    def _run_serial(self, pending, outcomes) -> None:
        self._run_fleet(pending, outcomes)

    def _run_parallel(self, pending, outcomes) -> None:
        self._run_fleet(pending, outcomes)

    def _run_fleet(self, pending, outcomes) -> None:
        with self._lock:
            self._outcomes = outcomes
            self._pending.clear()
            self._leases.clear()
            self._jobs.clear()
            for index, spec in pending:
                self._pending.append((index, spec, 1))
                self._jobs[spec.content_hash()] = (index, spec)
            self._open = len(pending)
            self._abort = False
            self._batch_active = True
        try:
            while True:
                with self._lock:
                    if self._open <= 0:
                        break
                    if self._abort and not self._leases:
                        self._drain_pending_as_skipped()
                        break
                if self._shutdown_reason:
                    self._shed_remaining(self._shutdown_reason)
                elif (self._deadline is not None
                        and self._deadline.expired()):
                    self._shed_remaining("deadline")
                self._reclaim_expired()
                time.sleep(self.poll_seconds)
        finally:
            with self._lock:
                self._batch_active = False
                self._batches_done += 1
                self._outcomes = None

    def _drain_pending_as_skipped(self) -> None:
        """fail_fast abort: everything still queued is abandoned."""
        while self._pending:
            index, spec, _attempt = self._pending.popleft()
            self._record_skipped(index, spec, self._outcomes)
            self._open -= 1

    def _shed_remaining(self, reason: str) -> None:
        """Graceful degradation: defer every unresolved job.

        Queued jobs become ``skipped{reason}`` outcomes; outstanding
        leases are journaled as reclaims *and* skipped, so the ledger
        records exactly which jobs were deferred and a ``--resume``
        run re-simulates them — degradation sheds work, it never
        invents results.  Idempotent; safe from a signal handler (the
        lock is reentrant).
        """
        with self._lock:
            if self._outcomes is None or not self._batch_active:
                return
            while self._pending:
                index, spec, _attempt = self._pending.popleft()
                self._record_skipped(index, spec, self._outcomes,
                                     reason=reason)
                self._open -= 1
                self.jobs_shed += 1
            for spec_hash in list(self._leases):
                lease = self._leases.pop(spec_hash)
                if self.journal is not None:
                    self.journal.record_reclaim(spec_hash, lease.worker,
                                                reason)
                self.telemetry.emit("lease_reclaimed", lease.spec,
                                    worker=lease.worker, reason=reason)
                self._count_lease("reclaimed")
                # The grant entered the in-flight gauge; the skip path
                # never decrements it (skips normally never started).
                get_registry().gauge(
                    "engine_jobs_in_flight",
                    "Jobs started but not finished").inc(-1)
                self._record_skipped(lease.index, lease.spec,
                                     self._outcomes, reason=reason)
                self._open -= 1
                self.jobs_shed += 1

    def request_shutdown(self, reason: str = "shutdown") -> None:
        """Begin graceful shutdown: shed all unresolved work.

        Called from the CLI's SIGTERM handler and ``--max-runtime``
        guard.  Journals every outstanding lease (as a reclaim) and
        every shed job (as ``skipped``) before ``run()`` returns, so
        the operator gets a complete ledger and ``--resume`` picks up
        exactly where the fleet stopped.
        """
        with self._lock:
            self._shutdown_reason = reason
        self._shed_remaining(reason)

    # ------------------------------------------------------------------
    # lease table transitions (all under self._lock)
    # ------------------------------------------------------------------
    def _count_lease(self, event: str) -> None:
        get_registry().counter(
            "dist_leases_total", "Fleet leases by lifecycle event"
        ).inc(event=event)

    def _breaker_note(self, worker: str, ok: bool) -> None:
        """Feed one lease outcome to the circuit breaker (lock held)."""
        if self._breaker is None:
            return
        if ok:
            self._breaker.record_success(worker)
            return
        if self._breaker.record_failure(worker):
            get_registry().counter(
                "dist_breaker_trips_total",
                "Workers quarantined by the circuit breaker"
            ).inc(worker=worker)
            self.telemetry.emit(
                "worker_quarantined", None, worker=worker,
                cooldown=self._breaker.cooldown)

    def _grant(self, stream: MessageStream, worker: str) -> None:
        with self._lock:
            if not self._batch_active:
                if self._batches_done and not self._closing:
                    stream.send(protocol.drain())
                    return
                stream.send(protocol.wait(DEFAULT_WAIT_SECONDS))
                return
            if not self._pending or self._abort:
                stream.send(protocol.wait(
                    min(DEFAULT_WAIT_SECONDS, self.poll_seconds * 4)))
                return
            if self._shutdown_reason or (
                    self._deadline is not None
                    and self._deadline.expired()):
                # Deadline/shutdown: never grant past the budget; the
                # fleet loop sheds the queue on its next sweep.
                stream.send(protocol.wait(DEFAULT_WAIT_SECONDS,
                                          reason="deadline"))
                return
            if self._breaker is not None:
                blocked = self._breaker.blocked_seconds(worker)
                if blocked > 0:
                    stream.send(protocol.wait(min(blocked, 1.0),
                                              reason="quarantined"))
                    return
            if (self._gate is not None
                    and not self._gate.admit(len(self._leases))):
                get_registry().counter(
                    "dist_backpressure_total",
                    "Lease requests rejected by the admission gate"
                ).inc()
                stream.send(protocol.wait(self._gate.retry_after,
                                          reason="backpressure"))
                return
            index, spec, attempt = self._pending.popleft()
            spec_hash = spec.content_hash()
            now = time.time()
            hard = (now + self.timeout
                    if self.timeout is not None else None)
            deadline = now + self.lease_seconds
            if hard is not None:
                deadline = min(deadline, hard)
            self._leases[spec_hash] = _Lease(
                index=index, spec=spec, attempt=attempt, worker=worker,
                started=now, deadline=deadline, hard_deadline=hard)
            fault = (self.faults.worker_fault(index, attempt)
                     if self.faults is not None else None)
            if self.journal is not None:
                self.journal.record_lease(spec_hash, worker,
                                          self.lease_seconds, attempt)
            self.telemetry.emit("started", spec, attempt=attempt,
                                worker=worker)
            self._job_started()
            self._count_lease("granted")
            info = self._workers.get(worker)
            if info is not None:
                info.last_seen = now
        spec_dict = spec.to_dict()
        if spec.engine is not None:
            # Execution metadata rides the lease message but never the
            # content hash: from_dict honors the key, to_dict never
            # emits it back, so job identity is engine-free while a
            # stamped batch still forces the engine fleet-wide.
            spec_dict["engine"] = spec.engine
        stream.send(protocol.lease(
            spec_hash, spec_dict, index, attempt,
            self.lease_seconds, fault=fault))

    def _heartbeat(self, worker: str, spec_hash: Optional[str]) -> None:
        with self._lock:
            now = time.time()
            info = self._workers.get(worker)
            if info is not None:
                info.last_seen = now
            held = self._leases.get(spec_hash or "")
            if held is not None and held.worker == worker:
                held.deadline = now + self.lease_seconds
                if held.hard_deadline is not None:
                    held.deadline = min(held.deadline,
                                        held.hard_deadline)

    def _take_back(self, lease: _Lease, reason: str) -> None:
        """Reclaim one removed lease: journal + telemetry + retry/fail.

        Caller holds the lock and has already popped the lease.
        """
        if reason != "reconnect":
            # A supersede reclaim is the *partition's* fault, not the
            # worker's — charging it to the breaker would quarantine
            # exactly the workers that reconnect correctly.
            self._breaker_note(lease.worker, ok=False)
        spec_hash = lease.spec.content_hash()
        if self.journal is not None:
            self.journal.record_reclaim(spec_hash, lease.worker, reason)
        self.telemetry.emit(
            "lease_expired" if reason == "expired" else "lease_reclaimed",
            lease.spec, worker=lease.worker, reason=reason)
        self._count_lease("expired" if reason == "expired"
                          else "reclaimed")
        if reason != "transient" and self._take_retry(lease.attempt):
            self._note_retry(lease.spec, lease.attempt, "crash")
            self._pending.append(
                (lease.index, lease.spec, lease.attempt + 1))
        elif reason == "transient" and self._take_retry(lease.attempt):
            self._note_retry(lease.spec, lease.attempt, "transient")
            self._pending.append(
                (lease.index, lease.spec, lease.attempt + 1))
        else:
            self._fail_lease(
                lease, f"worker {lease.worker} lost the job ({reason}) "
                       "and no retries remain")

    def _fail_lease(self, lease: _Lease, error: str) -> None:
        self._record_failure(
            lease.index, lease.spec, error, lease.attempt,
            time.time() - lease.started, self._outcomes)
        self._open -= 1
        if self.fail_fast:
            self._abort = True

    def _reclaim_expired(self) -> None:
        now = time.time()
        with self._lock:
            if not self._batch_active:
                return
            for spec_hash in [h for h, l in self._leases.items()
                              if l.deadline <= now]:
                lease = self._leases.pop(spec_hash)
                if (lease.hard_deadline is not None
                        and now >= lease.hard_deadline):
                    # The engine's per-job timeout semantics: a hung
                    # job is a structured failure, not a retry.
                    self.telemetry.emit("lease_expired", lease.spec,
                                        worker=lease.worker,
                                        reason="timeout")
                    self._count_lease("expired")
                    if self.journal is not None:
                        self.journal.record_reclaim(
                            spec_hash, lease.worker, "timeout")
                    self._breaker_note(lease.worker, ok=False)
                    self._fail_lease(
                        lease, f"timed out after {self.timeout}s")
                else:
                    self._take_back(lease, "expired")

    # ------------------------------------------------------------------
    # per-connection protocol
    # ------------------------------------------------------------------
    def _handle_connection(self, conn: socket.socket, addr) -> None:
        stream = MessageStream(conn)
        worker: Optional[str] = None
        generation = 0
        try:
            opening = stream.recv()
            admitted = self._admit(stream, opening, addr)
            if admitted is None:
                return
            worker, generation = admitted
            while True:
                message = stream.recv()
                if message is None:
                    return
                kind = message["type"]
                if kind == "request":
                    self._grant(stream, worker)
                elif kind == "heartbeat":
                    self._heartbeat(worker, message.get("hash"))
                elif kind == "result":
                    self._fold_result(worker, message)
                    stream.send(protocol.ack())
                elif kind == "goodbye":
                    self._note_goodbye(
                        worker, str(message.get("reason", "")))
                    return
                else:
                    raise ProtocolError(
                        f"unexpected message type {kind!r}")
        except (OSError, ProtocolError, KeyError, TypeError,
                ValueError):
            pass  # a broken worker is handled like a dead one
        finally:
            self._depart(worker, generation)
            stream.close()

    def _note_goodbye(self, worker: str, reason: str) -> None:
        """A clean sign-off carried a reason (e.g. ``memory_soft``)."""
        if not reason:
            return
        with self._lock:
            info = self._workers.get(worker)
            if info is not None:
                info.last_goodbye = reason
        get_registry().counter(
            "dist_worker_goodbyes_total",
            "Worker sign-offs by degradation reason").inc(reason=reason)
        self.telemetry.emit("worker_goodbye", None, worker=worker,
                            reason=reason)

    def _admit(self, stream: MessageStream, opening,
               addr) -> Optional[Tuple[str, int]]:
        """Validate a ``hello``; returns ``(worker, generation)``.

        A reconnecting worker presents the same ``(worker, session)``
        pair it first joined with; the coordinator then *supersedes*
        the zombie connection — its leases are reclaimed (retried) and
        its handler thread, now a stale generation, departs without
        touching the successor.  A duplicate id with a different (or
        no) session token is still rejected outright.
        """
        if opening is None or opening.get("type") != "hello":
            stream.send(protocol.reject("expected hello"))
            return None
        if opening.get("protocol") != protocol.PROTOCOL_VERSION:
            stream.send(protocol.reject(
                f"protocol {opening.get('protocol')!r} != "
                f"{protocol.PROTOCOL_VERSION}"))
            return None
        if opening.get("sim") != SIMULATOR_VERSION:
            stream.send(protocol.reject(
                f"simulator version {opening.get('sim')!r} != "
                f"{SIMULATOR_VERSION!r}; results would not be "
                "bit-identical"))
            return None
        worker = str(opening.get("worker") or "")
        if not worker:
            stream.send(protocol.reject("empty worker id"))
            return None
        session = str(opening.get("session") or "")
        now = time.time()
        with self._lock:
            if self._closing:
                # A dial that raced close(): its stream would land in
                # the post-swap list and never be dropped, leaving the
                # worker blocked on a welcome that cannot come.
                stream.send(protocol.reject(
                    "coordinator is shutting down", retry=True))
                stream.close()
                return None
            existing = self._workers.get(worker)
            if existing is not None and existing.alive:
                if not (session and session == existing.session):
                    stream.send(protocol.reject(
                        f"worker id {worker!r} already connected"))
                    return None
                # Same identity token: the old connection is a zombie
                # (partition, coordinator never saw the close).  Take
                # its leases back for retry and let the reconnect win.
                held = [self._leases.pop(h) for h, l in list(
                    self._leases.items()) if l.worker == worker]
                for lease in held:
                    self._take_back(lease, "reconnect")
            reconnect = (existing is not None and bool(session)
                         and session == existing.session)
            info = _WorkerInfo(
                worker=worker, addr=format_address(addr), joined=now,
                last_seen=now, session=session)
            if existing is not None:
                info.generation = existing.generation + 1
                if reconnect:
                    # Cumulative stats survive the new connection; the
                    # breaker state is keyed by worker id and survives
                    # regardless (a reconnect does not reset quarantine).
                    info.jobs_ok = existing.jobs_ok
                    info.jobs_failed = existing.jobs_failed
                    info.reconnects = existing.reconnects + 1
                    info.last_goodbye = existing.last_goodbye
            self._workers[worker] = info
            generation = info.generation
            self._streams.append(stream)
        stream.send(protocol.welcome(self.name, self.lease_seconds,
                                     self.heartbeat_seconds))
        self.telemetry.emit("worker_joined", None, worker=worker,
                            addr=format_address(addr),
                            reconnect=reconnect)
        get_registry().counter(
            "dist_workers_total", "Fleet workers by lifecycle event"
        ).inc(event="rejoined" if reconnect else "joined")
        return worker, generation

    def _depart(self, worker: Optional[str],
                generation: int = 0) -> None:
        """A connection ended: reclaim the worker's leases.

        ``generation`` guards the supersede race: when a reconnect
        already replaced this connection, the zombie handler's
        generation is stale and it must not mark the successor dead or
        steal its leases.
        """
        if worker is None:
            return
        with self._lock:
            info = self._workers.get(worker)
            if info is None or not info.alive:
                return
            if info.generation != generation:
                return  # superseded by a reconnect; nothing is ours
            info.alive = False
            held = [self._leases.pop(h) for h, l in list(
                self._leases.items()) if l.worker == worker]
            for lease in held:
                self._take_back(lease, "disconnect")
            jobs_done = info.jobs_ok
        self.telemetry.emit("worker_left", None, worker=worker,
                            jobs=jobs_done)
        get_registry().counter(
            "dist_workers_total", "Fleet workers by lifecycle event"
        ).inc(event="left")

    def _fold_result(self, worker: str, message: Dict[str, Any]) -> None:
        spec_hash = str(message.get("hash", ""))
        status = message.get("status")
        wall = float(message.get("wall", 0.0))
        with self._lock:
            lease = self._leases.get(spec_hash)
            if (lease is None or lease.worker != worker
                    or not self._batch_active):
                # A result for a lease we already reclaimed (slow
                # worker raced the expiry sweeper) — drop it; the
                # retry owns the job now.
                self.stale_results += 1
                self._count_lease("stale")
                self.telemetry.emit("lease_result", None,
                                    worker=worker, status="stale",
                                    job_hash=spec_hash[:12])
                return
            del self._leases[spec_hash]
            info = self._workers.get(worker)
            extra: Dict[str, Any] = {}
            if status == "ok" and isinstance(message.get("summary"),
                                             dict):
                cycles = message["summary"].get("total_cycles")
                if cycles is not None:
                    # Per-worker simulated throughput for the fleet
                    # dashboard's host-profile view.
                    extra["cycles"] = int(cycles)
                ledger = message["summary"].get("digest_ledger")
                if ledger:
                    # Provenance ledgers ride inside the summary; the
                    # count makes digest-enabled fleet runs visible in
                    # telemetry without re-shipping the records.
                    extra["digests"] = len(ledger)
            self.telemetry.emit("lease_result", lease.spec,
                                worker=worker, status=status,
                                wall=round(wall, 6), **extra)
            if status == "ok":
                try:
                    summary = RunSummary.from_dict(message["summary"])
                except (KeyError, ValueError, TypeError) as exc:
                    self._breaker_note(worker, ok=False)
                    self._fail_lease(
                        lease, "worker returned an undecodable "
                               f"summary: {exc}")
                    if info is not None:
                        info.jobs_failed += 1
                    return
                if message.get("metrics"):
                    get_registry().merge_snapshot(message["metrics"])
                if message.get("profile"):
                    get_profiler().merge_snapshot(message["profile"])
                if info is not None:
                    info.jobs_ok += 1
                self._breaker_note(worker, ok=True)
                get_registry().counter(
                    "dist_jobs_completed_total",
                    "Fleet jobs completed per worker"
                ).inc(worker=worker)
                self._count_lease("completed")
                self._record_success(lease.index, lease.spec, summary,
                                     lease.attempt, wall,
                                     self._outcomes)
                self._open -= 1
            elif message.get("transient"):
                if info is not None:
                    info.jobs_failed += 1
                self._take_back(lease, "transient")
            else:
                if info is not None:
                    info.jobs_failed += 1
                self._breaker_note(worker, ok=False)
                self._fail_lease(
                    lease, str(message.get("error", "worker failure")))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def fleet_stats(self) -> Dict[str, Any]:
        """Scriptable snapshot of the fleet (for ``--json`` output)."""
        with self._lock:
            quarantined = (self._breaker.quarantined()
                           if self._breaker is not None else [])
            workers = {}
            for info in self._workers.values():
                entry = {
                    "addr": info.addr,
                    "alive": info.alive,
                    "jobs_ok": info.jobs_ok,
                    "jobs_failed": info.jobs_failed,
                    "reconnects": info.reconnects,
                }
                if info.last_goodbye:
                    entry["goodbye"] = info.last_goodbye
                if self._breaker is not None:
                    entry["quarantined"] = info.worker in quarantined
                    entry["consecutive_failures"] = (
                        self._breaker.failures(info.worker))
                workers[info.worker] = entry
            stats = {
                "address": self.address,
                "lease_seconds": self.lease_seconds,
                "workers": workers,
                "workers_alive": sum(
                    1 for i in self._workers.values() if i.alive),
                "leases_held": len(self._leases),
                "pending": len(self._pending),
                "stale_results": self.stale_results,
                "batches_done": self._batches_done,
                "jobs_shed": self.jobs_shed,
            }
            if self._shutdown_reason:
                stats["shutdown"] = self._shutdown_reason
            if self._gate is not None:
                stats["admission"] = self._gate.stats()
            if self._breaker is not None:
                stats["breaker"] = self._breaker.stats()
                stats["quarantined"] = quarantined
            return stats
