"""Wire protocol of the distributed fleet: line-delimited JSON on TCP.

One message is one JSON object on one ``\\n``-terminated line — the
same framing as every other byte this project persists (journals,
telemetry sinks), so a captured conversation is greppable, diffable
and replayable with a text editor.  The protocol is deliberately
**pickle-free**: job specs travel as their canonical
:meth:`~repro.runtime.jobspec.JobSpec.to_dict` form *plus* their
content hash, and the worker re-derives the hash from the decoded
spec before running — a spec corrupted or tampered with in flight is
rejected, and heterogeneous hosts never unpickle each other's bytes.

Message flow (worker-initiated; the coordinator only ever replies)::

    worker                      coordinator
    ------                      -----------
    hello          ->
                   <-           welcome | reject
    request        ->
                   <-           lease | wait | drain
    heartbeat      ->                        (one-way, while running)
    result         ->
                   <-           ack
    goodbye        ->

``hello`` pins the protocol and simulator versions — a worker built
from different simulator code would journal summaries that are not
bit-identical, so the coordinator rejects it instead of accepting
poisoned results.
"""

from __future__ import annotations

import json
import re
import socket
import threading
import time
from typing import Any, Dict, Optional, Tuple

from repro.errors import ConfigError, ReproError

#: Bump on any incompatible message change; pinned in ``hello``.
PROTOCOL_VERSION = 1

#: Hard bound on one framed message (a lease carrying a full GPUConfig
#: spec is ~2 KB; summaries with stall matrices a few hundred KB).
MAX_LINE_BYTES = 32 * 1024 * 1024

#: Default coordinator bind when none is given.
DEFAULT_HOST = "127.0.0.1"


class ProtocolError(ReproError):
    """A malformed, oversized or out-of-order protocol message."""


_TYPE_PEEK_RE = re.compile(rb'"type"\s*:\s*"([a-zA-Z_]+)"')


def _peek_type(line: bytes) -> str:
    """Best-effort message kind from a (possibly truncated) frame.

    Keys are emitted sorted, so ``"type"`` may sit past the truncation
    point of an oversized frame; ``"unknown"`` then — the size is
    still named in the error.
    """
    match = _TYPE_PEEK_RE.search(line)
    return match.group(1).decode("ascii") if match else "unknown"


def parse_address(address: str) -> Tuple[str, int]:
    """``"host:port"`` -> ``(host, port)`` (host may be omitted)."""
    text = str(address).strip()
    host, sep, port = text.rpartition(":")
    if not sep:
        host, port = DEFAULT_HOST, text
    host = host or DEFAULT_HOST
    try:
        port_no = int(port)
    except ValueError:
        raise ConfigError(
            f"malformed address {address!r}; expected HOST:PORT"
        ) from None
    if not 0 <= port_no <= 65535:
        raise ConfigError(f"port {port_no} out of range in {address!r}")
    return host, port_no


def format_address(address: Tuple[str, int]) -> str:
    """Inverse of :func:`parse_address`."""
    return f"{address[0]}:{address[1]}"


class MessageStream:
    """Framed JSON messages over one connected socket.

    Writes are serialized behind a lock so a worker's heartbeat thread
    and its main loop never interleave bytes on the wire; each message
    goes out as a single ``sendall``.  :meth:`recv` returns ``None``
    on a clean EOF (the peer closed) and raises
    :class:`ProtocolError` on garbage, so callers distinguish "worker
    left" from "worker is speaking nonsense".

    ``faults`` attaches a :class:`~repro.runtime.faults.FaultPlan`
    whose network rules (``net_drop``, ``net_delay:p``,
    ``net_partition``) are consulted per outbound message;
    ``fault_state`` is a shared one-element message counter so the
    index survives reconnects (``None`` starts a fresh counter).  The
    default path (``faults=None``) costs one ``is None`` test.
    """

    def __init__(self, sock: socket.socket, faults=None,
                 fault_state: Optional[list] = None) -> None:
        self.sock = sock
        self._reader = sock.makefile("rb")
        self._wlock = threading.Lock()
        self._faults = faults
        self._fault_state = (fault_state if fault_state is not None
                             else [0])

    def _inject_net_fault(self, message: Dict[str, Any]) -> bool:
        """Apply any network fault due now; ``True`` = swallow the send."""
        index = self._fault_state[0]
        self._fault_state[0] = index + 1
        fault = self._faults.net_fault(index)
        if fault is None:
            return False
        kind, param = fault
        if kind == "net_delay":
            time.sleep(param if param is not None else 0.05)
            return False
        if kind == "net_drop":
            return True
        # net_partition: the link dies under the caller, exactly as a
        # mid-conversation peer loss looks — reconnect logic takes over.
        self.close()
        raise OSError(
            f"injected net_partition before outbound message "
            f"{index} ({message.get('type', 'unknown')})")

    def send(self, message: Dict[str, Any]) -> None:
        """Frame and send one message (thread-safe)."""
        if self._faults is not None and self._inject_net_fault(message):
            return
        data = (json.dumps(message, sort_keys=True) + "\n").encode("utf-8")
        if len(data) > MAX_LINE_BYTES:
            raise ProtocolError(
                f"refusing to send a {len(data)}-byte "
                f"{message.get('type', 'unknown')!r} message "
                f"(max {MAX_LINE_BYTES} bytes)")
        with self._wlock:
            self.sock.sendall(data)

    def recv(self) -> Optional[Dict[str, Any]]:
        """Read one message; ``None`` on clean EOF."""
        line = self._reader.readline(MAX_LINE_BYTES + 1)
        if not line:
            return None
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError(
                f"inbound {_peek_type(line)!r} message exceeds "
                f"{MAX_LINE_BYTES} bytes (received at least "
                f"{len(line)})")
        if not line.endswith(b"\n"):
            return None  # torn tail: the peer died mid-send
        try:
            message = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"undecodable message: {exc}") from exc
        if not isinstance(message, dict) or not isinstance(
                message.get("type"), str):
            raise ProtocolError("messages must be objects with a "
                                "string 'type'")
        return message

    def close(self) -> None:
        """Close the underlying socket (never raises).

        ``shutdown`` first: a thread blocked in :meth:`recv` holds the
        buffered reader's lock, so closing the reader object here would
        deadlock — waking the read with a shutdown and closing only the
        raw socket lets that thread see EOF and release the lock.
        """
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


def expect(message: Optional[Dict[str, Any]],
           *types: str) -> Dict[str, Any]:
    """Assert a reply arrived and is one of ``types``."""
    if message is None:
        raise ProtocolError("connection closed mid-conversation")
    if message["type"] not in types:
        raise ProtocolError(
            f"expected {' or '.join(types)}, got {message['type']!r}")
    return message


# ----------------------------------------------------------------------
# Message constructors — one tiny function per type keeps every field
# name in exactly one place.
# ----------------------------------------------------------------------
def hello(worker: str, sim: str, pid: int,
          session: str = "") -> Dict[str, Any]:
    """Worker's opening message: identity + version pins.

    ``session`` is a per-process random token: a reconnecting worker
    presents the same (worker, session) pair, which lets the
    coordinator *supersede* the zombie connection instead of rejecting
    the id as a duplicate.  An empty session keeps the strict
    duplicate-id rejection (imposters cannot steal an id by guessing
    it without the token).
    """
    message = {"type": "hello", "protocol": PROTOCOL_VERSION,
               "sim": sim, "worker": worker, "pid": pid}
    if session:
        message["session"] = session
    return message


def welcome(coordinator: str, lease_seconds: float,
            heartbeat_seconds: float) -> Dict[str, Any]:
    """Coordinator's acceptance: lease and heartbeat cadence."""
    return {"type": "welcome", "coordinator": coordinator,
            "lease_seconds": lease_seconds,
            "heartbeat_seconds": heartbeat_seconds}


def reject(reason: str, retry: bool = False) -> Dict[str, Any]:
    """Coordinator's refusal (version mismatch, duplicate id...).

    ``retry=True`` marks a transient refusal — the condition (e.g. a
    coordinator mid-shutdown during a rolling restart) may clear, so a
    reconnecting worker should back off and dial again rather than
    treat the rejection as fatal.
    """
    message = {"type": "reject", "reason": reason}
    if retry:
        message["retry"] = True
    return message


def request(worker: str) -> Dict[str, Any]:
    """Worker asks for one lease."""
    return {"type": "request", "worker": worker}


def lease(spec_hash: str, spec_dict: Dict[str, Any], index: int,
          attempt: int, lease_seconds: float,
          fault=None) -> Dict[str, Any]:
    """One job handed out: hash-addressed spec + fault directive."""
    message = {"type": "lease", "hash": spec_hash, "spec": spec_dict,
               "index": index, "attempt": attempt,
               "lease_seconds": lease_seconds}
    if fault is not None:
        message["fault"] = list(fault)
    return message


def wait(seconds: float, reason: str = "") -> Dict[str, Any]:
    """Nothing grantable right now; ask again after ``seconds``.

    ``reason`` distinguishes idle waits from backpressure
    (``"backpressure"``) and circuit-breaker quarantine
    (``"quarantined"``) in captured conversations.
    """
    message = {"type": "wait", "seconds": seconds}
    if reason:
        message["reason"] = reason
    return message


def drain(reason: str = "batch complete") -> Dict[str, Any]:
    """No more work will ever come; the worker should exit."""
    return {"type": "drain", "reason": reason}


def heartbeat(worker: str, spec_hash: str) -> Dict[str, Any]:
    """Liveness ping while a lease is running (one-way)."""
    return {"type": "heartbeat", "worker": worker, "hash": spec_hash}


def result(worker: str, spec_hash: str, attempt: int, status: str,
           wall: float, summary: Optional[Dict[str, Any]] = None,
           metrics: Optional[Dict[str, Any]] = None,
           profile: Optional[Dict[str, Any]] = None,
           error: str = "", transient: bool = False) -> Dict[str, Any]:
    """A finished lease: summary dict on success, error otherwise.

    ``metrics`` and ``profile`` are the worker-side registry and
    host-profiler snapshots (shipped only when those layers are
    enabled on the worker); the coordinator folds them into its own.
    ``summary`` is the job's :class:`~repro.runtime.cache.RunSummary`
    dict verbatim — including the optional ``digest_ledger`` field on
    ``REPRO_DIGEST`` runs, which crosses the wire untouched so fleet
    provenance diffs clean against serial runs.
    """
    message = {"type": "result", "worker": worker, "hash": spec_hash,
               "attempt": attempt, "status": status,
               "wall": round(wall, 6)}
    if summary is not None:
        message["summary"] = summary
    if metrics is not None:
        message["metrics"] = metrics
    if profile is not None:
        message["profile"] = profile
    if error:
        message["error"] = error
    if transient:
        message["transient"] = True
    return message


def ack() -> Dict[str, Any]:
    """Coordinator's receipt of a result."""
    return {"type": "ack"}


def goodbye(worker: str, jobs_done: int,
            reason: str = "") -> Dict[str, Any]:
    """Worker's clean sign-off.

    ``reason`` marks degradations (``"memory_soft"`` — the worker's
    soft RSS limit tripped and it refuses further leases) so the
    coordinator can count them apart from ordinary drains.
    """
    message = {"type": "goodbye", "worker": worker,
               "jobs_done": jobs_done}
    if reason:
        message["reason"] = reason
    return message
