"""Fleet resilience primitives: reconnects, circuit breaking, admission.

Three small, independently testable policies the fleet composes:

* :class:`ReconnectPolicy` — jittered exponential backoff for a worker
  that lost its coordinator (restart, partition, injected
  ``net_partition``).  Jitter is *deterministic* per (worker id,
  attempt) — the same hash device the fault plan uses — so a chaos
  test can predict a worker's exact reconnect schedule.
* :class:`CircuitBreaker` — per-key consecutive-failure counting; a
  key that fails ``threshold`` times in a row is quarantined for
  ``cooldown`` seconds.  The coordinator keys it by worker id so a
  poisoned host (bad disk, broken venv) stops burning retry budget on
  every job in the batch.
* :class:`AdmissionGate` — bounded in-flight admission.  The
  coordinator rejects lease requests beyond ``max_inflight`` with a
  retry-after backpressure reply instead of overcommitting leases it
  cannot supervise.

None of these alter results: a reconnected worker re-runs work under a
fresh lease, a quarantined worker's jobs go to its peers, a rejected
request is retried after a delay.  Cycle counts stay bit-identical.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigError
from repro.runtime.guard import reconnect_jitter

__all__ = ["AdmissionGate", "CircuitBreaker", "ReconnectPolicy"]


class ReconnectPolicy:
    """Jittered exponential backoff schedule for session re-dials.

    ``delay(attempt)`` (attempts count from 1) grows from ``base``
    doubling up to ``cap``, then shrinks by up to ``jitter`` fraction
    using a deterministic hash of ``(key, attempt)`` so simultaneous
    workers never thunder in lockstep yet tests stay reproducible.
    ``max_retries`` bounds *consecutive* failed sessions; a successful
    handshake resets the count.
    """

    def __init__(self, base: float = 0.2, cap: float = 5.0,
                 jitter: float = 0.5, max_retries: int = 5,
                 key: str = "") -> None:
        if not 0.0 <= jitter <= 1.0:
            raise ConfigError(
                f"reconnect jitter must be within [0, 1], got {jitter}")
        self.base = float(base)
        self.cap = float(cap)
        self.jitter = float(jitter)
        self.max_retries = int(max_retries)
        self.key = key

    def delay(self, attempt: int) -> float:
        """Backoff before reconnect ``attempt`` (1-based)."""
        raw = min(self.cap, self.base * (2.0 ** (max(1, attempt) - 1)))
        if self.jitter <= 0:
            return raw
        frac = reconnect_jitter(self.key, attempt)
        return raw * (1.0 - self.jitter * frac)

    def should_retry(self, attempt: int) -> bool:
        """Whether reconnect ``attempt`` (1-based) is within budget."""
        return attempt <= self.max_retries


class CircuitBreaker:
    """Per-key consecutive-failure quarantine.

    ``record_failure`` returns ``True`` when that failure *trips* the
    breaker (crossed ``threshold``); the key then reports a positive
    :meth:`blocked_seconds` until ``cooldown`` elapses.  A success —
    or the cooldown expiring — closes the circuit and resets the
    count.
    """

    def __init__(self, threshold: int = 3, cooldown: float = 30.0,
                 clock: Callable[[], float] = time.time) -> None:
        if threshold < 1:
            raise ConfigError(
                f"breaker threshold must be >= 1, got {threshold}")
        self.threshold = int(threshold)
        self.cooldown = float(cooldown)
        self._clock = clock
        self.trips = 0
        #: key -> [consecutive_failures, open_until]
        self._state: Dict[str, List[float]] = {}

    def record_failure(self, key: str) -> bool:
        cell = self._state.setdefault(key, [0, 0.0])
        cell[0] += 1
        if cell[0] >= self.threshold and cell[1] <= self._clock():
            cell[1] = self._clock() + self.cooldown
            cell[0] = 0
            self.trips += 1
            return True
        return False

    def record_success(self, key: str) -> None:
        cell = self._state.get(key)
        if cell is not None:
            cell[0] = 0
            cell[1] = 0.0

    def blocked_seconds(self, key: str) -> float:
        """Seconds until ``key`` may lease again (0 = circuit closed)."""
        cell = self._state.get(key)
        if cell is None:
            return 0.0
        return max(0.0, cell[1] - self._clock())

    def failures(self, key: str) -> int:
        cell = self._state.get(key)
        return int(cell[0]) if cell is not None else 0

    def quarantined(self) -> List[str]:
        """Keys currently held out of leasing."""
        now = self._clock()
        return sorted(k for k, cell in self._state.items()
                      if cell[1] > now)

    def stats(self) -> Dict[str, object]:
        return {
            "threshold": self.threshold,
            "cooldown_seconds": self.cooldown,
            "trips": self.trips,
            "quarantined": self.quarantined(),
        }


class AdmissionGate:
    """Bounded in-flight admission with reject-and-retry-after.

    ``admit(inflight)`` answers whether one more lease may go out;
    every refusal is counted and carries a suggested
    :attr:`retry_after` the coordinator ships in its ``wait`` reply.
    """

    def __init__(self, max_inflight: int,
                 retry_after: float = 0.2) -> None:
        if max_inflight < 1:
            raise ConfigError(
                f"max_inflight must be >= 1, got {max_inflight}")
        self.max_inflight = int(max_inflight)
        self.retry_after = float(retry_after)
        self.rejects = 0

    def admit(self, inflight: int) -> bool:
        if inflight >= self.max_inflight:
            self.rejects += 1
            return False
        return True

    def stats(self) -> Dict[str, object]:
        return {
            "max_inflight": self.max_inflight,
            "rejects": self.rejects,
        }


def resolve_gate(max_inflight: Optional[int],
                 retry_after: float = 0.2) -> Optional[AdmissionGate]:
    """``None``-propagating :class:`AdmissionGate` constructor."""
    if max_inflight is None:
        return None
    return AdmissionGate(max_inflight, retry_after=retry_after)
