"""Exception hierarchy for the SparseWeaver reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one type at an API boundary. Subclasses mark which layer
failed: graph construction, simulator configuration, kernel execution, or
the Weaver unit itself.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class TransientError(ReproError):
    """A failure that is worth retrying.

    Raised (or classified) for conditions outside the job's control —
    a worker process dying, flaky I/O, an injected chaos fault — where
    a fresh attempt has a real chance of succeeding.  The batch engine
    retries transient failures with exponential backoff; everything
    else fails fast, because a deterministic simulation error would
    only reproduce itself.
    """


class FatalError(ReproError):
    """A deterministic failure; retrying would reproduce it.

    The explicit counterpart of :class:`TransientError` for callers
    (and the fault-injection harness) that want to mark a failure as
    not-retryable regardless of the batch retry policy.
    """


class GraphError(ReproError):
    """Invalid graph structure or construction input."""


class ConfigError(ReproError):
    """Invalid simulator or hardware configuration."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state while running a kernel."""


class WeaverError(ReproError):
    """Weaver unit protocol violation (e.g. decode before registration)."""


class ScheduleError(ReproError):
    """Unknown schedule name or a schedule misused for a workload."""


class AlgorithmError(ReproError):
    """Unknown algorithm name or invalid algorithm specification."""
