"""Structured run telemetry.

Every job moving through the batch engine emits events —
``submitted`` / ``started`` / ``cached`` / ``resumed`` / ``finished``
/ ``failed`` / ``retried`` / ``backoff`` — carrying the job's short
content hash, its label, a wall timestamp and free-form payload
(cycles, wall seconds, attempt number).  Events accumulate in memory
and, when a sink path is given, stream to a JSONL file one object per
line; :meth:`Telemetry.summary` folds them into the batch-end report
(job counts, wall time, simulated cycles, cache counters).

Sink appends are *crash-safe*: each line goes out as one unbuffered
``os.write`` on an ``O_APPEND`` descriptor
(:func:`~repro.runtime.journal.append_jsonl`), so a worker or driver
killed at any instant never leaves a torn half-line for a follower
(:class:`~repro.obs.dashboard.JSONLFollower`) to buffer forever.

Every emit also counts into the process metrics registry
(``telemetry_events_total{kind=...}``,
``engine_simulated_cycles_total``), so engine counters, result-cache
counters and simulator stats share one export path
(:meth:`repro.obs.metrics.MetricsRegistry.snapshot`) when observability
is enabled.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.obs.metrics import get_registry
from repro.runtime.journal import append_jsonl


@dataclass
class RunEvent:
    """One telemetry event."""

    kind: str
    job: str
    label: str
    time: float
    payload: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSONL record form."""
        record = {
            "kind": self.kind,
            "job": self.job,
            "label": self.label,
            "time": round(self.time, 6),
        }
        record.update(self.payload)
        return record


class Telemetry:
    """Event collector with an optional JSONL sink.

    ``faults`` accepts a :class:`~repro.runtime.faults.FaultPlan`
    whose ``slow_io`` rules stall the Nth sink append; it defaults to
    the ``REPRO_FAULTS`` environment plan and is ``None`` (zero
    overhead) otherwise.
    """

    def __init__(self, path=None, faults=None) -> None:
        from repro.runtime.faults import get_active_plan

        self.path = Path(path) if path else None
        self.events: List[RunEvent] = []
        self.counts: Dict[str, int] = {}
        self._faults = faults if faults is not None else get_active_plan()
        self._append_seq = 0
        if self.path:
            self.path.parent.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def emit(self, kind: str, spec=None, **payload) -> RunEvent:
        """Record one event (and append it to the sink, if any)."""
        event = RunEvent(
            kind=kind,
            job=spec.content_hash()[:12] if spec is not None else "",
            label=spec.label if spec is not None else "",
            time=time.time(),
            payload=payload,
        )
        self.events.append(event)
        self.counts[kind] = self.counts.get(kind, 0) + 1
        registry = get_registry()
        registry.counter("telemetry_events_total",
                         "Run telemetry events by kind").inc(kind=kind)
        if kind in ("finished", "cached", "resumed") and "cycles" in payload:
            registry.counter(
                "engine_simulated_cycles_total",
                "Simulated cycles of completed jobs"
            ).inc(payload["cycles"], source=kind)
        if self.path:
            if self._faults is not None:
                delay = self._faults.io_fault(self._append_seq)
                self._append_seq += 1
                if delay:
                    time.sleep(delay)
            append_jsonl(self.path, event.to_dict())
        return event

    def count(self, kind: str) -> int:
        """How many events of ``kind`` were emitted."""
        return self.counts.get(kind, 0)

    # ------------------------------------------------------------------
    def summary(self, cache=None) -> Dict[str, Any]:
        """Batch-end rollup of everything emitted so far."""
        cycles = sum(
            e.payload.get("cycles", 0)
            for e in self.events
            if e.kind in ("finished", "cached", "resumed")
        )
        wall = 0.0
        if self.events:
            wall = max(e.time for e in self.events) - min(
                e.time for e in self.events
            )
        out: Dict[str, Any] = {
            "submitted": self.count("submitted"),
            "started": self.count("started"),
            "cached": self.count("cached"),
            "resumed": self.count("resumed"),
            "finished": self.count("finished"),
            "failed": self.count("failed"),
            "retried": self.count("retried"),
            "backoffs": self.count("backoff"),
            "simulated_cycles": cycles,
            "wall_seconds": round(wall, 6),
        }
        if cache is not None:
            out["cache"] = cache.stats()
        return out

    def format_summary(self, cache=None) -> str:
        """Human-readable batch summary block."""
        data = self.summary(cache=cache)
        jobs_line = (f"  jobs: {data['submitted']} submitted, "
                     f"{data['started']} simulated, "
                     f"{data['cached']} cached, "
                     f"{data['failed']} failed, "
                     f"{data['retried']} retried")
        if data["resumed"]:
            jobs_line += f", {data['resumed']} resumed"
        lines = [
            "batch summary:",
            jobs_line,
            f"  simulated cycles: {data['simulated_cycles']:,}",
            f"  wall seconds: {data['wall_seconds']:.3f}",
        ]
        if "cache" in data:
            cs = data["cache"]
            cache_line = (
                f"  cache: {cs['hits']} hits, {cs['misses']} misses, "
                f"{cs['stores']} stores, {cs['evictions']} evictions, "
                f"{cs['entries']} entries at {cs['dir']}"
            )
            if cs.get("quarantined"):
                cache_line += f", {cs['quarantined']} quarantined"
            lines.append(cache_line)
        return "\n".join(lines)

    def emit_batch_summary(self, cache=None) -> RunEvent:
        """Emit the rollup itself as a ``batch_summary`` event."""
        return self.emit("batch_summary", None, **self.summary(cache=cache))
