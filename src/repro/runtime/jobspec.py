"""Frozen, serializable experiment job specifications.

A :class:`JobSpec` names everything one simulation needs — algorithm +
factory params, graph, schedule, GPU configuration, iteration cap — as
plain data, so a job can be (a) hashed into a stable content address
for the result cache, (b) pickled to a worker process, and (c) written
to / read from a JSON batch file.  Graphs enter a spec through
:class:`GraphSpec`, which either *names* a reproducible recipe (dataset
analog or generator call) or wraps an in-memory :class:`CSRGraph`
whose arrays are digested into the content hash.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.errors import ConfigError, ReproError
from repro.graph.csr import CSRGraph
from repro.sim.config import CacheConfig, GPUConfig

#: Key/value pairs in canonical (sorted) order — the hashable stand-in
#: for a params dict inside a frozen dataclass.
Params = Tuple[Tuple[str, Any], ...]


def _freeze_params(params: Dict[str, Any]) -> Params:
    """Sort a params dict into a hashable, deterministic tuple."""
    for key, value in params.items():
        if not isinstance(value, (bool, int, float, str, type(None))):
            raise ConfigError(
                f"job parameter {key!r} must be a JSON scalar, got "
                f"{type(value).__name__}"
            )
    return tuple(sorted(params.items()))


def _canonical_json(data: Dict[str, Any]) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace drift)."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def graph_digest(graph: CSRGraph) -> str:
    """Content digest of a CSR graph's arrays.

    Non-unit weights participate.  Unit weights — whether absent,
    lazily materialized, or passed explicitly — hash as a marker, so a
    graph's digest is stable across ``graph.weights`` being touched
    (simulation runs materialize it as a side effect).
    """
    import numpy as np

    h = hashlib.sha256()
    h.update(b"row_ptr")
    h.update(graph.row_ptr.tobytes())
    h.update(b"col_idx")
    h.update(graph.col_idx.tobytes())
    if graph.has_weights and not np.all(graph.weights == 1.0):
        h.update(b"weights")
        h.update(graph.weights.tobytes())
    else:
        h.update(b"unit-weights")
    return h.hexdigest()


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AlgorithmSpec:
    """An algorithm as registry name + factory parameters.

    Instances are *callable* and return a fresh
    :class:`~repro.frontend.udf.Algorithm`, so an ``AlgorithmSpec``
    drops in anywhere an ``algorithm_factory`` is expected — while
    remaining picklable and hashable, which plain lambdas are not.
    """

    name: str
    params: Params = ()

    @classmethod
    def of(cls, name: str, **params) -> "AlgorithmSpec":
        """Build a spec from keyword factory parameters."""
        return cls(name, _freeze_params(params))

    def build(self):
        """Instantiate a fresh Algorithm from the registry."""
        from repro.algorithms import make_algorithm

        return make_algorithm(self.name, **dict(self.params))

    def __call__(self):
        """Factory-protocol alias for :meth:`build`."""
        return self.build()

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form."""
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AlgorithmSpec":
        """Inverse of :meth:`to_dict`."""
        return cls.of(data["name"], **data.get("params", {}))


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GraphSpec:
    """A graph as a reproducible recipe or an inline payload.

    ``kind`` is one of:

    * ``"dataset"`` — a Table III analog: ``name`` is the dataset key,
      ``params`` carries ``scale``.
    * ``"generator"`` — a :mod:`repro.graph.generators` function by
      name with its keyword arguments.
    * ``"inline"`` — an in-memory :class:`CSRGraph`; the arrays travel
      with the spec (pickle) and only their ``digest`` enters the
      content hash and JSON forms.
    """

    kind: str
    name: str
    params: Params = ()
    digest: str = ""
    payload: Optional[CSRGraph] = field(
        default=None, compare=False, repr=False
    )

    @classmethod
    def from_dataset(cls, name: str, scale: float = 1.0) -> "GraphSpec":
        """Reference a dataset analog by key."""
        return cls("dataset", name, _freeze_params({"scale": scale}))

    @classmethod
    def from_generator(cls, name: str, **params) -> "GraphSpec":
        """Reference a ``repro.graph.generators`` function by name."""
        return cls("generator", name, _freeze_params(params))

    @classmethod
    def inline(cls, graph: CSRGraph, name: str = "inline") -> "GraphSpec":
        """Wrap an in-memory graph, digesting its arrays."""
        return cls("inline", name, (), graph_digest(graph), graph)

    def build(self) -> CSRGraph:
        """Materialize the graph this spec describes."""
        if self.kind == "inline":
            if self.payload is None:
                raise ReproError(
                    f"inline graph spec {self.name!r} lost its payload "
                    "(inline specs cannot be rebuilt from JSON)"
                )
            return self.payload
        params = dict(self.params)
        if self.kind == "dataset":
            from repro.graph.datasets import dataset

            return dataset(self.name, **params)
        if self.kind == "generator":
            from repro.graph import generators

            fn = getattr(generators, self.name, None)
            if fn is None or not callable(fn):
                raise ReproError(
                    f"unknown graph generator {self.name!r} in "
                    "repro.graph.generators"
                )
            return fn(**params)
        raise ReproError(f"unknown graph spec kind {self.kind!r}")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form (inline payloads reduce to their digest)."""
        return {
            "kind": self.kind,
            "name": self.name,
            "params": dict(self.params),
            "digest": self.digest,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "GraphSpec":
        """Inverse of :meth:`to_dict` for rebuildable kinds."""
        kind = data["kind"]
        if kind == "inline":
            raise ReproError(
                "inline graph specs cannot be loaded from JSON; use a "
                "dataset or generator spec in batch files"
            )
        return cls(kind, data["name"],
                   _freeze_params(data.get("params", {})))


# ----------------------------------------------------------------------
def _config_to_dict(config: GPUConfig) -> Dict[str, Any]:
    """GPUConfig (with nested CacheConfigs) as a plain dict."""
    return asdict(config)


def _config_from_dict(data: Dict[str, Any]) -> GPUConfig:
    """Inverse of :func:`_config_to_dict`."""
    kwargs = dict(data)
    for level in ("l1", "l2", "l3"):
        if kwargs.get(level) is not None:
            kwargs[level] = CacheConfig(**kwargs[level])
    return GPUConfig(**kwargs)


@dataclass(frozen=True)
class JobSpec:
    """One fully-specified simulation job.

    ``config=None`` means the benchmark preset
    (:meth:`GPUConfig.vortex_bench`); it is normalized before hashing
    so an explicit preset and the default produce the same address.
    ``seed`` is reserved for future stochastic workloads and
    participates in the hash.
    """

    algorithm: AlgorithmSpec
    graph: GraphSpec
    schedule: str
    config: Optional[GPUConfig] = None
    max_iterations: Optional[int] = None
    symmetrize: bool = False
    seed: int = 0
    schedule_params: Params = ()
    #: Simulator execution engine (``reference``/``fast``/``auto``;
    #: ``None`` resolves via ``REPRO_ENGINE``).  Excluded from equality,
    #: hashing, ``to_dict`` and the content hash: every engine must
    #: produce bit-identical results, so the engine is an execution
    #: detail — same cycles, same cache address, same journal identity.
    #: Telemetry and run metadata record which engine actually ran.
    engine: Optional[str] = field(default=None, compare=False)

    @classmethod
    def create(
        cls,
        algorithm: AlgorithmSpec,
        graph,
        schedule: str,
        config: Optional[GPUConfig] = None,
        max_iterations: Optional[int] = None,
        symmetrize: bool = False,
        seed: int = 0,
        graph_name: str = "inline",
        schedule_params: Optional[Dict[str, Any]] = None,
        engine: Optional[str] = None,
    ) -> "JobSpec":
        """Build a spec, coercing a raw :class:`CSRGraph` to inline."""
        if isinstance(graph, CSRGraph):
            graph = GraphSpec.inline(graph, name=graph_name)
        return cls(algorithm, graph, schedule, config, max_iterations,
                   symmetrize, seed,
                   _freeze_params(schedule_params or {}), engine)

    # ------------------------------------------------------------------
    def effective_config(self) -> GPUConfig:
        """The configuration actually simulated."""
        return self.config or GPUConfig.vortex_bench()

    @property
    def label(self) -> str:
        """Short human-readable job name for telemetry and tables."""
        sched = self.schedule
        if self.schedule_params:
            sched += "[" + ",".join(
                f"{k}={v}" for k, v in self.schedule_params) + "]"
        return f"{self.algorithm.name}/{self.graph.name}/{sched}"

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-able form (also the hash input).

        ``schedule_params`` only appears when non-empty, so specs
        without schedule knobs keep the content hash they had before
        the field existed (no gratuitous cache invalidation).
        """
        out = {
            "algorithm": self.algorithm.to_dict(),
            "graph": self.graph.to_dict(),
            "schedule": self.schedule,
            "config": _config_to_dict(self.effective_config()),
            "max_iterations": self.max_iterations,
            "symmetrize": self.symmetrize,
            "seed": self.seed,
        }
        if self.schedule_params:
            out["schedule_params"] = dict(self.schedule_params)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobSpec":
        """Inverse of :meth:`to_dict`.

        A stray ``engine`` key (older batch files that serialized one)
        is honored but never round-trips back out — engines are not
        part of job identity.
        """
        config = data.get("config")
        return cls(
            algorithm=AlgorithmSpec.from_dict(data["algorithm"]),
            graph=GraphSpec.from_dict(data["graph"]),
            schedule=data["schedule"],
            config=_config_from_dict(config) if config else None,
            max_iterations=data.get("max_iterations"),
            symmetrize=bool(data.get("symmetrize", False)),
            seed=int(data.get("seed", 0)),
            schedule_params=_freeze_params(
                data.get("schedule_params", {})),
            engine=data.get("engine"),
        )

    def content_hash(self) -> str:
        """Deterministic content address of this job.

        Every field change — including any single ``GPUConfig`` field —
        produces a different hash; an inline graph contributes its
        array digest.  Simulator and cache-schema versions are *not*
        part of this hash; the cache layers them on top.  Specs are
        frozen, so the digest is computed once and memoized (telemetry
        hashes every event's spec).
        """
        cached = getattr(self, "_content_hash", None)
        if cached is None:
            cached = hashlib.sha256(
                _canonical_json(self.to_dict()).encode("utf-8")
            ).hexdigest()
            object.__setattr__(self, "_content_hash", cached)
        return cached

    # ------------------------------------------------------------------
    def execute(self):
        """Run this job in-process and return the full ``RunResult``.

        This is the single execution path shared by the serial
        fallback and the engine's worker processes, so parallel runs
        cannot drift from serial ones.
        """
        from repro.bench.runner import run_single
        from repro.sched import make_schedule

        schedule = (make_schedule(self.schedule,
                                  **dict(self.schedule_params))
                    if self.schedule_params else self.schedule)
        return run_single(
            self.algorithm.build(),
            self.graph.build(),
            schedule,
            config=self.effective_config(),
            max_iterations=self.max_iterations,
            symmetrize=self.symmetrize,
            engine=self.engine,
        )
