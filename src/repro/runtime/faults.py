"""Deterministic fault injection for the runtime layer.

Recovery code that cannot be provoked is recovery code that does not
work.  This module gives the batch engine, the result cache and the
telemetry sink one shared, *seeded* plan of faults to consult, so
every failure path — worker crashes, hangs (→ per-job timeout),
transient and fatal exceptions, torn/corrupt cache writes, slow I/O —
is exercisable deterministically in tests and CI chaos runs.

A plan is parsed from the ``REPRO_FAULTS`` environment variable (or
passed explicitly as a ``faults=`` argument) as a comma-separated rule
list::

    REPRO_FAULTS="crash@1,hang@2:30,transient@0+3,corrupt@0,seed=7"

Each rule is ``kind`` plus optional target/repeat/parameter suffixes,
in this order:

* ``@i+j+k`` — fire at these indices (what an index counts depends on
  the site: batch submission order for worker faults, store order for
  cache faults, append order for I/O faults);
* ``~rate`` — fire probabilistically instead, decided by a
  deterministic hash of ``(seed, kind, index)`` so the same plan
  always injects the same faults, in every process;
* ``xN`` — keep firing for the first ``N`` attempts of a job (default
  1, i.e. the retry of a crashed job succeeds — set ``x99`` to test
  retry exhaustion);
* ``:p`` — a float parameter (sleep seconds for ``hang``/``slow_io``).

Fault kinds by site:

======== ============ ====================================================
kind      site         effect
======== ============ ====================================================
crash     worker       pool worker calls ``os._exit`` (→ ``BrokenProcessPool``);
                       serial path raises :class:`TransientError`
hang      worker       worker sleeps ``:p`` seconds (→ per-job timeout);
                       serial path raises :class:`TransientError`
transient worker       raises :class:`TransientError` (retried with backoff)
fatal     worker       raises :class:`FatalError` (never retried)
torn      cache        ``ResultCache.put`` leaves a truncated entry file
corrupt   cache        ``ResultCache.put`` leaves a garbled entry file
slow_io   telemetry    sink append sleeps ``:p`` seconds first
net_drop  stream       the Nth outbound message is silently swallowed
net_delay stream       the Nth outbound message is delayed ``:p`` seconds
net_partition stream   the socket is shut down at the Nth message
                       (the peer sees a disconnect; reconnect logic
                       takes over)
======== ============ ====================================================

Network kinds index *outbound messages on one side's streams* (the
worker applies them; the counter spans reconnects so a
``net_partition@i`` rule fires once, not on every fresh session).

When ``REPRO_FAULTS`` is unset, :func:`get_active_plan` returns
``None`` and every hook site short-circuits on an ``is None`` check —
the default path stays a zero-overhead no-op.
"""

from __future__ import annotations

import hashlib
import os
import re
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import ConfigError, FatalError, TransientError
from repro.obs.metrics import get_registry

#: Fault kinds grouped by the site that consults them.
WORKER_KINDS = ("crash", "hang", "transient", "fatal")
CACHE_KINDS = ("torn", "corrupt")
IO_KINDS = ("slow_io",)
NET_KINDS = ("net_drop", "net_delay", "net_partition")
ALL_KINDS = WORKER_KINDS + CACHE_KINDS + IO_KINDS + NET_KINDS

#: A network fault directive as applied at the message-stream layer.
NetFault = Tuple[str, Optional[float]]

#: A worker fault directive as shipped to (and applied in) a worker.
WorkerFault = Tuple[str, Optional[float]]

#: Exit code used by injected worker crashes (recognizable in logs).
CRASH_EXIT_CODE = 86

#: Default sleep for ``hang`` rules without a ``:p`` parameter.  Long
#: enough to trip any realistic per-job timeout, short enough that a
#: leaked sleeping worker cannot wedge a CI job forever.
DEFAULT_HANG_SECONDS = 60.0

_RULE_RE = re.compile(
    r"^(?P<kind>[a-z_]+)"
    r"(?:@(?P<indices>\d+(?:\+\d+)*))?"
    r"(?:~(?P<rate>\d*\.?\d+))?"
    r"(?:x(?P<attempts>\d+))?"
    r"(?::(?P<param>\d*\.?\d+))?$"
)


@dataclass(frozen=True)
class FaultRule:
    """One parsed fault rule.

    ``indices`` empty + ``rate`` 0.0 means "every index" (useful for
    ``slow_io`` applied to the whole run).
    """

    kind: str
    indices: Tuple[int, ...] = ()
    rate: float = 0.0
    max_attempts: int = 1
    param: Optional[float] = None

    def spec(self) -> str:
        """Canonical textual form (inverse of parsing)."""
        out = self.kind
        if self.indices:
            out += "@" + "+".join(str(i) for i in self.indices)
        if self.rate:
            out += f"~{self.rate:g}"
        if self.max_attempts != 1:
            out += f"x{self.max_attempts}"
        if self.param is not None:
            out += f":{self.param:g}"
        return out


def _parse_rule(token: str) -> FaultRule:
    match = _RULE_RE.match(token)
    if match is None:
        raise ConfigError(
            f"malformed fault rule {token!r}; expected "
            f"kind[@i+j|~rate][xN][:param]"
        )
    kind = match.group("kind")
    if kind not in ALL_KINDS:
        raise ConfigError(
            f"unknown fault kind {kind!r}; known: {', '.join(ALL_KINDS)}"
        )
    indices = match.group("indices")
    rate = match.group("rate")
    if indices is not None and rate is not None:
        raise ConfigError(
            f"fault rule {token!r} mixes explicit indices (@) with a "
            f"rate (~); pick one targeting mode"
        )
    rate_value = float(rate) if rate is not None else 0.0
    if not 0.0 <= rate_value <= 1.0:
        raise ConfigError(
            f"fault rate in {token!r} must be within [0, 1]")
    return FaultRule(
        kind=kind,
        indices=tuple(int(i) for i in indices.split("+")) if indices
        else (),
        rate=rate_value,
        max_attempts=int(match.group("attempts") or 1),
        param=float(match.group("param"))
        if match.group("param") is not None else None,
    )


class FaultPlan:
    """A seeded, deterministic schedule of injected faults.

    The plan is consulted parent-side: the engine asks
    :meth:`worker_fault` per (submission index, attempt) and ships the
    directive to the worker, the cache asks :meth:`cache_fault` per
    store, the telemetry sink asks :meth:`io_fault` per append.  Every
    fired injection is counted locally (:attr:`injected`, for test
    assertions) and into the metrics registry
    (``fault_injections_total{kind=...}``) when that is enabled.
    """

    def __init__(self, rules=(), seed: int = 0) -> None:
        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        self.seed = seed
        self.injected: Dict[str, int] = {}

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse a ``REPRO_FAULTS``-style rule list."""
        rules = []
        seed = 0
        for token in text.split(","):
            token = token.strip()
            if not token:
                continue
            if token.startswith("seed="):
                try:
                    seed = int(token[5:])
                except ValueError:
                    raise ConfigError(
                        f"fault plan seed must be an integer, got "
                        f"{token[5:]!r}") from None
                continue
            rules.append(_parse_rule(token))
        if not rules:
            raise ConfigError(
                f"fault plan {text!r} contains no fault rules")
        return cls(rules, seed=seed)

    def spec(self) -> str:
        """Canonical textual form of the whole plan."""
        out = ",".join(rule.spec() for rule in self.rules)
        if self.seed:
            out += f",seed={self.seed}"
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultPlan {self.spec()!r}>"

    # ------------------------------------------------------------------
    def _rate_fires(self, rule: FaultRule, index: int) -> bool:
        """Seed-deterministic Bernoulli draw for a rate rule.

        Hash-based (no RNG state), so the decision for ``(kind, index)``
        is identical in every process and across plan re-parses.
        """
        raw = f"{self.seed}:{rule.kind}:{index}".encode("utf-8")
        draw = int.from_bytes(hashlib.sha256(raw).digest()[:8], "big")
        return draw / 2.0 ** 64 < rule.rate

    def _matches(self, rule: FaultRule, index: int, attempt: int) -> bool:
        if attempt > rule.max_attempts:
            return False
        if rule.indices:
            return index in rule.indices
        if rule.rate:
            return self._rate_fires(rule, index)
        return True  # untargeted rule: every index

    def _fired(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1
        get_registry().counter(
            "fault_injections_total", "Injected faults by kind"
        ).inc(kind=kind)

    def _lookup(self, kinds, index: int, attempt: int = 1):
        for rule in self.rules:
            if rule.kind in kinds and self._matches(rule, index, attempt):
                self._fired(rule.kind)
                return rule
        return None

    # ------------------------------------------------------------------
    def worker_fault(self, index: int,
                     attempt: int = 1) -> Optional[WorkerFault]:
        """The fault directive for job ``index`` on ``attempt``, if any.

        ``index`` is the job's batch submission index; cached and
        resumed jobs consume indices without ever asking.
        """
        rule = self._lookup(WORKER_KINDS, index, attempt)
        return (rule.kind, rule.param) if rule is not None else None

    def cache_fault(self, store_index: int) -> Optional[str]:
        """The write fault for the ``store_index``-th cache store."""
        rule = self._lookup(CACHE_KINDS, store_index)
        return rule.kind if rule is not None else None

    def io_fault(self, append_index: int) -> Optional[float]:
        """Sleep seconds to inject before the Nth sink append."""
        rule = self._lookup(IO_KINDS, append_index)
        if rule is None:
            return None
        return rule.param if rule.param is not None else 0.05

    def net_fault(self, message_index: int) -> Optional[NetFault]:
        """The network fault for outbound message ``message_index``.

        Consulted by :class:`repro.dist.protocol.MessageStream` per
        ``send`` when a plan is attached; the index is the stream
        owner's lifetime outbound message count, so targeted rules
        (``net_partition@6``) hit one deterministic point in the
        conversation.
        """
        rule = self._lookup(NET_KINDS, message_index)
        return (rule.kind, rule.param) if rule is not None else None

    def count(self, kind: str) -> int:
        """How many times ``kind`` has fired through this plan."""
        return self.injected.get(kind, 0)


# ----------------------------------------------------------------------
def apply_worker_fault(fault: Optional[WorkerFault]) -> None:
    """Execute a directive inside a pool worker (may not return).

    ``crash`` kills the worker process outright so the parent sees a
    ``BrokenProcessPool``; ``hang`` sleeps past any reasonable per-job
    timeout; the exception kinds raise and pickle back to the parent.
    """
    if fault is None:
        return
    kind, param = fault
    if kind == "crash":
        os._exit(CRASH_EXIT_CODE)
    if kind == "hang":
        time.sleep(param if param is not None else DEFAULT_HANG_SECONDS)
        return
    if kind == "transient":
        raise TransientError("injected transient fault")
    if kind == "fatal":
        raise FatalError("injected fatal fault")
    raise ConfigError(f"unknown worker fault kind {kind!r}")


def apply_serial_fault(fault: Optional[WorkerFault]) -> None:
    """Execute a directive on the serial (in-process) path.

    There is no worker to kill and no pool timeout to trip, so
    ``crash`` and ``hang`` degrade to :class:`TransientError` — the
    serial engine still exercises its retry/backoff machinery on them.
    """
    if fault is None:
        return
    kind, _param = fault
    if kind == "crash":
        raise TransientError("injected worker crash (serial)")
    if kind == "hang":
        raise TransientError("injected hang (serial)")
    apply_worker_fault(fault)


# ----------------------------------------------------------------------
# Environment-resolved plan (memoized on the raw env value, so tests
# that monkeypatch REPRO_FAULTS see their change immediately).
# ----------------------------------------------------------------------
_ENV_RAW: Optional[str] = None
_ENV_PLAN: Optional[FaultPlan] = None


def get_active_plan() -> Optional[FaultPlan]:
    """The plan described by ``REPRO_FAULTS``, or ``None`` when unset."""
    global _ENV_RAW, _ENV_PLAN
    raw = os.environ.get("REPRO_FAULTS", "").strip()
    if not raw:
        return None
    if raw != _ENV_RAW:
        _ENV_RAW = raw
        _ENV_PLAN = FaultPlan.parse(raw)
    return _ENV_PLAN
