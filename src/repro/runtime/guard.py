"""Resource guardrails: batch deadline budgets and memory watchdogs.

Degradation policy for long-running batches and fleet workers.  A
guard never changes *what* a job computes — cycle counts stay
bit-identical — it only decides whether a job runs **now**, runs
**later** (a resumable ``--resume`` run picks it up), or whether a
worker should stop taking work before the kernel OOM-killer makes the
decision for it.

Two guardrails:

* **Deadline budget** — a batch-level wall-clock allowance.  The
  engine checks the budget between jobs (and folds it into per-job
  timeouts on the pool path); once exhausted, remaining jobs are
  *shed* as ``skipped`` with reason ``deadline`` — journaled so a
  resume run completes them — instead of the batch overrunning its
  slot.
* **Memory guard** — soft and hard RSS limits a worker checks between
  jobs and from its heartbeat thread.  Soft: finish the current job,
  refuse new leases, sign off cleanly.  Hard: self-evict immediately
  (exit :data:`EVICT_EXIT_CODE`); the coordinator reclaims the lease
  exactly like a crash.  Every pressure event counts into
  ``guard_memory_pressure_total{level=...}``.

Configuration comes from the ``REPRO_GUARD`` environment variable (or
an explicit :class:`GuardPolicy`), a comma-separated key=value list::

    REPRO_GUARD="deadline=120,rss_soft=512M,rss_hard=1G"

When ``REPRO_GUARD`` is unset, :func:`get_active_guard` returns
``None`` and every hook site short-circuits on an ``is None`` check —
the default path stays a zero-overhead no-op, mirroring
:func:`repro.runtime.faults.get_active_plan`.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import ConfigError
from repro.obs.metrics import get_registry
from repro.obs.profile import peak_rss_bytes, read_rss_bytes

__all__ = [
    "DeadlineBudget",
    "EVICT_EXIT_CODE",
    "GUARD_ENV",
    "GuardPolicy",
    "MemoryGuard",
    "format_size",
    "get_active_guard",
    "parse_size",
    "peak_rss_bytes",
    "read_rss_bytes",
]

#: Environment variable holding the active guard policy.
GUARD_ENV = "REPRO_GUARD"

#: Exit code of a worker self-evicting on its hard memory limit
#: (recognizable in logs, distinct from the injected-crash code 86).
EVICT_EXIT_CODE = 87

_SIZE_UNITS = {
    "": 1,
    "b": 1,
    "k": 1024,
    "m": 1024 ** 2,
    "g": 1024 ** 3,
    "t": 1024 ** 4,
}


def parse_size(text) -> int:
    """``"512M"`` / ``"1G"`` / ``"65536"`` -> bytes.

    Suffixes are binary (K=1024) and case-insensitive; a bare number
    is bytes.
    """
    if isinstance(text, (int, float)):
        return int(text)
    raw = str(text).strip().lower()
    if raw.endswith("ib") and len(raw) > 2:
        raw = raw[:-2]  # "512mib" -> "512m"
    unit = raw[-1] if raw and raw[-1] in _SIZE_UNITS else ""
    number = raw[: len(raw) - len(unit)] if unit else raw
    try:
        value = float(number)
    except ValueError:
        raise ConfigError(
            f"malformed size {text!r}; expected e.g. 512M or 1G"
        ) from None
    if value < 0:
        raise ConfigError(f"size {text!r} must be non-negative")
    return int(value * _SIZE_UNITS[unit])


def format_size(n: int) -> str:
    """Bytes -> the shortest exact K/M/G form (inverse of parsing)."""
    for suffix, unit in (("G", 1024 ** 3), ("M", 1024 ** 2),
                         ("K", 1024)):
        if n >= unit and n % unit == 0:
            return f"{n // unit}{suffix}"
    return str(int(n))


class DeadlineBudget:
    """A wall-clock allowance for one batch, started at construction.

    ``clock`` is injectable for tests; the default is monotonic so a
    stepped system clock cannot shed (or extend) a batch.
    """

    def __init__(self, seconds: float,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if seconds < 0:
            # Zero is a legal degenerate budget ("already exhausted"),
            # handy for shed-everything tests and drain-only resumes.
            raise ConfigError(
                f"deadline budget must be >= 0, got {seconds!r}")
        self.seconds = float(seconds)
        self._clock = clock
        self.started = clock()

    def elapsed(self) -> float:
        return self._clock() - self.started

    def remaining(self) -> float:
        """Seconds left (never negative)."""
        return max(0.0, self.seconds - self.elapsed())

    def expired(self) -> bool:
        return self.elapsed() >= self.seconds

    def clamp(self, timeout: Optional[float]) -> Optional[float]:
        """Fold the budget into a per-job timeout (min of both)."""
        remaining = self.remaining()
        if timeout is None:
            return remaining
        return min(timeout, remaining)


class MemoryGuard:
    """Soft/hard RSS watchdog with an injectable reader for tests.

    :meth:`check` returns ``"ok"``, ``"soft"`` or ``"hard"`` and
    counts every non-ok reading into
    ``guard_memory_pressure_total{level=...}``.
    """

    def __init__(self, soft_bytes: Optional[int] = None,
                 hard_bytes: Optional[int] = None,
                 reader: Optional[Callable[[], int]] = None) -> None:
        if soft_bytes is None and hard_bytes is None:
            raise ConfigError("a memory guard needs at least one limit")
        if (soft_bytes is not None and hard_bytes is not None
                and soft_bytes > hard_bytes):
            raise ConfigError(
                f"soft limit {soft_bytes} exceeds hard limit "
                f"{hard_bytes}")
        self.soft_bytes = soft_bytes
        self.hard_bytes = hard_bytes
        self._read = reader if reader is not None else read_rss_bytes
        self.soft_trips = 0
        self.hard_trips = 0
        self.last_rss = 0

    def check(self) -> str:
        """Sample RSS and classify it against the limits."""
        rss = self._read()
        self.last_rss = rss
        if self.hard_bytes is not None and rss >= self.hard_bytes:
            self.hard_trips += 1
            self._count("hard")
            return "hard"
        if self.soft_bytes is not None and rss >= self.soft_bytes:
            self.soft_trips += 1
            self._count("soft")
            return "soft"
        return "ok"

    @staticmethod
    def _count(level: str) -> None:
        get_registry().counter(
            "guard_memory_pressure_total",
            "Memory-guard pressure readings by level"
        ).inc(level=level)

    def stats(self) -> dict:
        return {
            "soft_bytes": self.soft_bytes,
            "hard_bytes": self.hard_bytes,
            "soft_trips": self.soft_trips,
            "hard_trips": self.hard_trips,
            "last_rss_bytes": self.last_rss,
        }


@dataclass(frozen=True)
class GuardPolicy:
    """Parsed guardrail configuration (one ``REPRO_GUARD`` value)."""

    deadline_seconds: Optional[float] = None
    rss_soft_bytes: Optional[int] = None
    rss_hard_bytes: Optional[int] = None

    @classmethod
    def parse(cls, text: str) -> Optional["GuardPolicy"]:
        """Parse ``"deadline=120,rss_soft=512M,rss_hard=1G"``.

        An empty spec means "no guardrails" and parses to ``None``
        (mirroring an unset ``REPRO_GUARD``); a non-empty spec that
        nets zero limits is a configuration mistake and raises.
        """
        if not str(text).strip():
            return None
        deadline = soft = hard = None
        for token in str(text).split(","):
            token = token.strip()
            if not token:
                continue
            key, sep, value = token.partition("=")
            if not sep:
                raise ConfigError(
                    f"malformed guard token {token!r}; expected "
                    f"key=value")
            key = key.strip()
            value = value.strip()
            if key == "deadline":
                try:
                    deadline = float(value)
                except ValueError:
                    raise ConfigError(
                        f"guard deadline must be seconds, got "
                        f"{value!r}") from None
                if deadline <= 0:
                    raise ConfigError(
                        f"guard deadline must be positive, got "
                        f"{value!r}")
            elif key == "rss_soft":
                soft = parse_size(value)
            elif key == "rss_hard":
                hard = parse_size(value)
            else:
                raise ConfigError(
                    f"unknown guard key {key!r}; known: deadline, "
                    f"rss_soft, rss_hard")
        if deadline is None and soft is None and hard is None:
            raise ConfigError(
                f"guard policy {text!r} sets no limits")
        if soft is not None and hard is not None and soft > hard:
            raise ConfigError(
                f"rss_soft ({format_size(soft)}) exceeds rss_hard "
                f"({format_size(hard)})")
        return cls(deadline_seconds=deadline, rss_soft_bytes=soft,
                   rss_hard_bytes=hard)

    def spec(self) -> str:
        """Canonical textual form (inverse of parsing)."""
        parts = []
        if self.deadline_seconds is not None:
            parts.append(f"deadline={self.deadline_seconds:g}")
        if self.rss_soft_bytes is not None:
            parts.append(f"rss_soft={format_size(self.rss_soft_bytes)}")
        if self.rss_hard_bytes is not None:
            parts.append(f"rss_hard={format_size(self.rss_hard_bytes)}")
        return ",".join(parts)

    def deadline_budget(self) -> Optional[DeadlineBudget]:
        """A fresh budget for one batch, or ``None`` (no deadline)."""
        if self.deadline_seconds is None:
            return None
        return DeadlineBudget(self.deadline_seconds)

    def memory_guard(self, reader=None) -> Optional[MemoryGuard]:
        """A watchdog over the RSS limits, or ``None`` (no limits)."""
        if self.rss_soft_bytes is None and self.rss_hard_bytes is None:
            return None
        return MemoryGuard(self.rss_soft_bytes, self.rss_hard_bytes,
                           reader=reader)


# ----------------------------------------------------------------------
# Environment-resolved policy (memoized on the raw env value, so tests
# that monkeypatch REPRO_GUARD see their change immediately).
# ----------------------------------------------------------------------
_ENV_RAW: Optional[str] = None
_ENV_POLICY: Optional[GuardPolicy] = None


def get_active_guard() -> Optional[GuardPolicy]:
    """The policy described by ``REPRO_GUARD``, or ``None`` when unset."""
    global _ENV_RAW, _ENV_POLICY
    raw = os.environ.get(GUARD_ENV, "").strip()
    if not raw:
        return None
    if raw != _ENV_RAW:
        _ENV_RAW = raw
        _ENV_POLICY = GuardPolicy.parse(raw)
    return _ENV_POLICY


def reconnect_jitter(key: str, attempt: int) -> float:
    """Deterministic jitter fraction in ``[0, 1)`` for backoff delays.

    Hash-based (no RNG state) so tests can predict a worker's exact
    reconnect schedule from its id, the same device the fault plan
    uses for rate rules.
    """
    raw = f"{key}:{attempt}".encode("utf-8")
    draw = int.from_bytes(hashlib.sha256(raw).digest()[:8], "big")
    return draw / 2.0 ** 64
