"""Parallel experiment runtime.

The layer between "one simulation" (:mod:`repro.frontend`) and "a
paper figure" (:mod:`repro.bench`): frozen job specifications with
content hashes (:mod:`~repro.runtime.jobspec`), an on-disk
content-addressed result cache (:mod:`~repro.runtime.cache`), a
process-pool batch engine with crash retry and deterministic ordering
(:mod:`~repro.runtime.engine`), and structured run telemetry with a
JSONL sink (:mod:`~repro.runtime.telemetry`).

Opt in from the bench harness with ``jobs=`` / ``cache=`` or the
``REPRO_JOBS`` environment variable; drive grids directly with
``python -m repro batch`` and inspect the store with
``python -m repro cache``.
"""

from repro.runtime.jobspec import (
    AlgorithmSpec,
    GraphSpec,
    JobSpec,
    graph_digest,
)
from repro.runtime.cache import (
    ResultCache,
    RunSummary,
    SCHEMA_VERSION,
    default_cache_dir,
    values_digest,
)
from repro.runtime.engine import (
    BatchEngine,
    JobOutcome,
    raise_on_failures,
    resolve_jobs,
    run_specs,
)
from repro.runtime.telemetry import RunEvent, Telemetry

__all__ = [
    "AlgorithmSpec",
    "GraphSpec",
    "JobSpec",
    "graph_digest",
    "ResultCache",
    "RunSummary",
    "SCHEMA_VERSION",
    "default_cache_dir",
    "values_digest",
    "BatchEngine",
    "JobOutcome",
    "raise_on_failures",
    "resolve_jobs",
    "run_specs",
    "RunEvent",
    "Telemetry",
]
