"""Parallel experiment runtime.

The layer between "one simulation" (:mod:`repro.frontend`) and "a
paper figure" (:mod:`repro.bench`): frozen job specifications with
content hashes (:mod:`~repro.runtime.jobspec`), an on-disk
content-addressed, self-healing result cache
(:mod:`~repro.runtime.cache`), a process-pool batch engine with
crash retry, backoff and fail-fast/keep-going policies
(:mod:`~repro.runtime.engine`), an append-only run journal for
resumable batches (:mod:`~repro.runtime.journal`), structured run
telemetry with a crash-safe JSONL sink
(:mod:`~repro.runtime.telemetry`), and a deterministic fault-injection
harness that exercises all of the above
(:mod:`~repro.runtime.faults`).

Opt in from the bench harness with ``jobs=`` / ``cache=`` or the
``REPRO_JOBS`` environment variable; drive grids directly with
``python -m repro batch`` and inspect the store with
``python -m repro cache``; interrupt any journaled run and continue it
with ``--resume``.
"""

from repro.runtime.jobspec import (
    AlgorithmSpec,
    GraphSpec,
    JobSpec,
    graph_digest,
)
from repro.runtime.cache import (
    ResultCache,
    RunSummary,
    SCHEMA_VERSION,
    default_cache_dir,
    summary_checksum,
    values_digest,
)
from repro.runtime.engine import (
    BatchEngine,
    JobOutcome,
    raise_on_failures,
    resolve_jobs,
    run_specs,
)
from repro.runtime.faults import FaultPlan, FaultRule, get_active_plan
from repro.runtime.guard import (
    EVICT_EXIT_CODE,
    DeadlineBudget,
    GuardPolicy,
    MemoryGuard,
    get_active_guard,
    parse_size,
)
from repro.runtime.journal import RunJournal, append_jsonl
from repro.runtime.telemetry import RunEvent, Telemetry

__all__ = [
    "AlgorithmSpec",
    "GraphSpec",
    "JobSpec",
    "graph_digest",
    "ResultCache",
    "RunSummary",
    "SCHEMA_VERSION",
    "default_cache_dir",
    "summary_checksum",
    "values_digest",
    "BatchEngine",
    "JobOutcome",
    "raise_on_failures",
    "resolve_jobs",
    "run_specs",
    "FaultPlan",
    "FaultRule",
    "get_active_plan",
    "DeadlineBudget",
    "EVICT_EXIT_CODE",
    "GuardPolicy",
    "MemoryGuard",
    "get_active_guard",
    "parse_size",
    "RunJournal",
    "append_jsonl",
    "RunEvent",
    "Telemetry",
]
