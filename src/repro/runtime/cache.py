"""On-disk content-addressed result cache.

Simulations are deterministic functions of their :class:`JobSpec`, so
a finished job's summary can be memoized under the spec's content
hash.  Entries are one JSON file each under a cache directory
(``REPRO_CACHE_DIR`` or ``~/.cache/repro``), keyed by
``sha256(spec_hash · schema_version · simulator_version)`` — bumping
:data:`repro.sim.SIMULATOR_VERSION` therefore invalidates every entry
at once without touching the files.

Only *summaries* are cached (cycles, stall/phase breakdowns, a digest
of the result values) — not the value arrays themselves — which keeps
entries small and makes a cache hit equivalent to a worker round-trip.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional

import numpy as np

from repro.sim import SIMULATOR_VERSION
from repro.sim.stats import KernelStats
from repro.runtime.jobspec import JobSpec

#: Bump when the entry file layout changes.
SCHEMA_VERSION = 1


def default_cache_dir() -> Path:
    """Resolve the cache directory (env override, else XDG-ish)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def values_digest(values: np.ndarray) -> str:
    """Correctness digest of a result array (order-sensitive)."""
    return hashlib.sha256(
        np.ascontiguousarray(values).tobytes()
    ).hexdigest()


# ----------------------------------------------------------------------
@dataclass
class RunSummary:
    """Picklable summary of one run — what crosses process and cache
    boundaries in place of a full ``RunResult``.

    ``stats`` is a real :class:`KernelStats`, so consumers can keep
    calling ``summary.stats.total_cycles`` / ``stall_breakdown()``
    exactly as they would on a ``RunResult``.
    """

    total_cycles: int
    iterations: int
    stats: KernelStats
    values_digest: str
    from_cache: bool = False

    @classmethod
    def from_run_result(cls, result) -> "RunSummary":
        """Summarize a full ``RunResult``."""
        return cls(
            total_cycles=result.stats.total_cycles,
            iterations=result.iterations,
            stats=result.stats,
            values_digest=values_digest(result.values),
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form."""
        return {
            "total_cycles": self.total_cycles,
            "iterations": self.iterations,
            "stats": self.stats.to_summary_dict(),
            "values_digest": self.values_digest,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any],
                  from_cache: bool = False) -> "RunSummary":
        """Inverse of :meth:`to_dict`."""
        return cls(
            total_cycles=int(data["total_cycles"]),
            iterations=int(data["iterations"]),
            stats=KernelStats.from_summary_dict(data["stats"]),
            values_digest=data["values_digest"],
            from_cache=from_cache,
        )


# ----------------------------------------------------------------------
class ResultCache:
    """Content-addressed store of :class:`RunSummary` entries.

    Tracks ``hits`` / ``misses`` / ``stores`` / ``evictions`` counters
    for the telemetry batch summary.  ``max_entries`` bounds the store;
    overflow evicts the oldest files (by mtime).
    """

    def __init__(self, cache_dir=None, max_entries: int = 4096) -> None:
        self.dir = Path(cache_dir) if cache_dir else default_cache_dir()
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def key(self, spec: JobSpec) -> str:
        """Cache key: spec hash layered with schema + simulator versions."""
        raw = (f"{spec.content_hash()}:schema={SCHEMA_VERSION}"
               f":sim={SIMULATOR_VERSION}")
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self.dir / f"{key}.json"

    # ------------------------------------------------------------------
    def get(self, spec: JobSpec) -> Optional[RunSummary]:
        """Look up a memoized summary; ``None`` (and a miss) otherwise."""
        path = self._path(self.key(spec))
        if not path.exists():
            self.misses += 1
            return None
        try:
            entry = json.loads(path.read_text())
            if (entry.get("schema") != SCHEMA_VERSION
                    or entry.get("simulator_version") != SIMULATOR_VERSION):
                raise ValueError("stale cache entry version")
            summary = RunSummary.from_dict(entry["summary"],
                                           from_cache=True)
        except (ValueError, KeyError, TypeError):
            # Corrupt or stale entry: drop it and treat as a miss.
            path.unlink(missing_ok=True)
            self.misses += 1
            return None
        self.hits += 1
        return summary

    def put(self, spec: JobSpec, summary: RunSummary) -> None:
        """Store a summary under the spec's content address."""
        self.dir.mkdir(parents=True, exist_ok=True)
        path = self._path(self.key(spec))
        entry = {
            "schema": SCHEMA_VERSION,
            "simulator_version": SIMULATOR_VERSION,
            "spec": spec.to_dict(),
            "label": spec.label,
            "summary": summary.to_dict(),
        }
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(entry, sort_keys=True, indent=1))
        os.replace(tmp, path)
        self.stores += 1
        self._evict_overflow()

    def _evict_overflow(self) -> None:
        entries = sorted(self.dir.glob("*.json"),
                         key=lambda p: p.stat().st_mtime)
        excess = len(entries) - self.max_entries
        for path in entries[:max(0, excess)]:
            path.unlink(missing_ok=True)
            self.evictions += 1

    # ------------------------------------------------------------------
    def entries(self) -> int:
        """Number of entry files currently on disk."""
        if not self.dir.exists():
            return 0
        return sum(1 for _ in self.dir.glob("*.json"))

    def stats(self) -> Dict[str, Any]:
        """Counter snapshot for telemetry and the CLI."""
        return {
            "dir": str(self.dir),
            "entries": self.entries(),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "schema": SCHEMA_VERSION,
            "simulator_version": SIMULATOR_VERSION,
        }

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if self.dir.exists():
            for path in self.dir.glob("*.json"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed
