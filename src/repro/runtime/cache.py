"""On-disk content-addressed result cache.

Simulations are deterministic functions of their :class:`JobSpec`, so
a finished job's summary can be memoized under the spec's content
hash.  Entries are one JSON file each under a cache directory
(``REPRO_CACHE_DIR`` or ``~/.cache/repro``), keyed by
``sha256(spec_hash · schema_version · simulator_version)`` — bumping
:data:`repro.sim.SIMULATOR_VERSION` therefore invalidates every entry
at once without touching the files.

Only *summaries* are cached (cycles, stall/phase breakdowns, a digest
of the result values) — not the value arrays themselves — which keeps
entries small and makes a cache hit equivalent to a worker round-trip.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional

import numpy as np

from repro.obs.metrics import get_registry
from repro.sim import SIMULATOR_VERSION
from repro.sim.stats import KernelStats
from repro.runtime.jobspec import JobSpec

log = logging.getLogger("repro.runtime.cache")

#: Bump when the entry file layout changes (2: per-entry checksum).
SCHEMA_VERSION = 2

#: Subdirectory corrupt entries are moved into instead of deleted.
QUARANTINE_DIR = "quarantine"


def default_cache_dir() -> Path:
    """Resolve the cache directory (env override, else XDG-ish)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def values_digest(values: np.ndarray) -> str:
    """Correctness digest of a result array (order-sensitive)."""
    return hashlib.sha256(
        np.ascontiguousarray(values).tobytes()
    ).hexdigest()


def summary_checksum(summary_dict: Dict[str, Any]) -> str:
    """Integrity checksum stored alongside (and verified against) the
    summary payload of an entry, so bit rot, torn writes and hand
    edits are detected instead of deserialized."""
    raw = json.dumps(summary_dict, sort_keys=True,
                     separators=(",", ":"))
    return hashlib.sha256(raw.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
@dataclass
class RunSummary:
    """Picklable summary of one run — what crosses process and cache
    boundaries in place of a full ``RunResult``.

    ``stats`` is a real :class:`KernelStats`, so consumers can keep
    calling ``summary.stats.total_cycles`` / ``stall_breakdown()``
    exactly as they would on a ``RunResult``.
    """

    total_cycles: int
    iterations: int
    stats: KernelStats
    values_digest: str
    from_cache: bool = False
    #: Provenance digest ledger (``REPRO_DIGEST=1`` runs only):
    #: ordered ``[kernel, interval, core, warp, digest, events]``
    #: records — see :mod:`repro.obs.provenance`.  ``None`` (the
    #: default) keeps :meth:`to_dict` byte-identical to summaries
    #: produced before the field existed, so journal/cache schemas and
    #: checksums need no version bump.
    digest_ledger: Optional[Any] = None
    #: Which simulator engine produced this summary (in-memory only —
    #: deliberately absent from :meth:`to_dict`: engines are
    #: bit-identical, so a summary's cache/journal identity must not
    #: depend on which one ran; ``""`` when unknown, e.g. cache hits).
    engine: str = ""

    @classmethod
    def from_run_result(cls, result) -> "RunSummary":
        """Summarize a full ``RunResult``."""
        return cls(
            total_cycles=result.stats.total_cycles,
            iterations=result.iterations,
            stats=result.stats,
            values_digest=values_digest(result.values),
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form."""
        out = {
            "total_cycles": self.total_cycles,
            "iterations": self.iterations,
            "stats": self.stats.to_summary_dict(),
            "values_digest": self.values_digest,
        }
        if self.digest_ledger is not None:
            out["digest_ledger"] = self.digest_ledger
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any],
                  from_cache: bool = False) -> "RunSummary":
        """Inverse of :meth:`to_dict`."""
        return cls(
            total_cycles=int(data["total_cycles"]),
            iterations=int(data["iterations"]),
            stats=KernelStats.from_summary_dict(data["stats"]),
            values_digest=data["values_digest"],
            from_cache=from_cache,
            digest_ledger=data.get("digest_ledger"),
        )


# ----------------------------------------------------------------------
class ResultCache:
    """Content-addressed store of :class:`RunSummary` entries.

    Tracks ``hits`` / ``misses`` / ``stores`` / ``evictions`` counters
    for the telemetry batch summary, and mirrors them into the process
    metrics registry (``result_cache_events_total{event=...}``,
    ``result_cache_evictions_total{reason=...}``) when that is enabled.

    Three eviction policies compose (each counted under its reason):

    * ``max_entries`` — LRU-by-mtime entry-count bound (``capacity``);
    * ``max_bytes`` — total on-disk byte budget, oldest entries evicted
      until the store fits (``bytes``);
    * ``ttl_seconds`` — entries older than the TTL are dropped on sweep
      or lookup (``ttl``).

    Corrupt entries self-heal: a file that fails to decode, fails its
    stored checksum, or is structurally wrong is *quarantined* (moved
    to ``<cache>/quarantine/``) and counted as a miss — a bad cache
    file can degrade a batch to a re-simulation, never crash it.
    Entries from an older schema or simulator version are simply
    dropped (expected churn, not corruption).

    ``faults`` accepts a :class:`~repro.runtime.faults.FaultPlan`
    whose ``torn``/``corrupt`` rules sabotage the Nth store, for
    deterministic recovery tests; it defaults to the ``REPRO_FAULTS``
    environment plan and is ``None`` (zero overhead) otherwise.
    """

    def __init__(self, cache_dir=None, max_entries: int = 4096,
                 max_bytes: Optional[int] = None,
                 ttl_seconds: Optional[float] = None,
                 faults=None) -> None:
        from repro.runtime.faults import get_active_plan

        self.dir = Path(cache_dir) if cache_dir else default_cache_dir()
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.ttl_seconds = ttl_seconds
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.quarantined = 0
        self.evictions_by_reason: Dict[str, int] = {
            "capacity": 0, "bytes": 0, "ttl": 0,
        }
        self._faults = faults if faults is not None else get_active_plan()
        self._store_seq = 0
        self._warned_quarantine = False

    # ------------------------------------------------------------------
    def _count_event(self, event: str) -> None:
        get_registry().counter(
            "result_cache_events_total", "Result-cache lookups and stores"
        ).inc(event=event)

    def _evict(self, path: Path, reason: str) -> None:
        path.unlink(missing_ok=True)
        self.evictions += 1
        self.evictions_by_reason[reason] += 1
        get_registry().counter(
            "result_cache_evictions_total", "Result-cache evictions"
        ).inc(reason=reason)

    def _expired(self, mtime: float, now: float) -> bool:
        return (self.ttl_seconds is not None
                and now - mtime > self.ttl_seconds)

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a corrupt entry aside (never raises; falls back to
        deletion if the move itself fails)."""
        dest_dir = self.dir / QUARANTINE_DIR
        try:
            dest_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, dest_dir / path.name)
        except OSError:
            path.unlink(missing_ok=True)
        self.quarantined += 1
        get_registry().counter(
            "result_cache_quarantined_total",
            "Corrupt cache entries moved to quarantine"
        ).inc(reason=reason)
        # Warn once per cache instance; repeats go to debug so a batch
        # over a mangled store does not spam one line per lookup.
        if not self._warned_quarantine:
            self._warned_quarantine = True
            log.warning(
                "quarantined corrupt result-cache entry %s (%s); "
                "treated as a miss — see %s", path.name, reason,
                dest_dir)
        else:
            log.debug("quarantined corrupt result-cache entry %s (%s)",
                      path.name, reason)

    # ------------------------------------------------------------------
    def key(self, spec: JobSpec) -> str:
        """Cache key: spec hash layered with schema + simulator versions."""
        raw = (f"{spec.content_hash()}:schema={SCHEMA_VERSION}"
               f":sim={SIMULATOR_VERSION}")
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self.dir / f"{key}.json"

    # ------------------------------------------------------------------
    def get(self, spec: JobSpec) -> Optional[RunSummary]:
        """Look up a memoized summary; ``None`` (and a miss) otherwise.

        Never raises on a bad entry file: undecodable, truncated,
        checksum-failing or structurally wrong entries are quarantined
        and reported as misses; stale-version entries are dropped.
        """
        path = self._path(self.key(spec))
        summary = None
        try:
            stat = path.stat()
        except OSError:
            stat = None
        if stat is not None:
            if self._expired(stat.st_mtime, time.time()):
                self._evict(path, "ttl")
            else:
                summary = self._load_entry(path)
        if summary is None:
            self.misses += 1
            self._count_event("miss")
            return None
        self.hits += 1
        self._count_event("hit")
        return summary

    def _load_entry(self, path: Path) -> Optional[RunSummary]:
        """Decode + verify one entry file; quarantine on corruption."""
        try:
            text = path.read_text()
        except OSError:
            return None  # raced with eviction, or unreadable: a miss
        try:
            entry = json.loads(text)
        except json.JSONDecodeError:
            self._quarantine(path, "undecodable")
            return None
        if not isinstance(entry, dict):
            self._quarantine(path, "malformed")
            return None
        if (entry.get("schema") != SCHEMA_VERSION
                or entry.get("simulator_version") != SIMULATOR_VERSION):
            # Expected churn after a version bump — drop, don't hoard.
            path.unlink(missing_ok=True)
            return None
        try:
            if entry["checksum"] != summary_checksum(entry["summary"]):
                self._quarantine(path, "checksum")
                return None
            return RunSummary.from_dict(entry["summary"],
                                        from_cache=True)
        except (ValueError, KeyError, TypeError):
            self._quarantine(path, "malformed")
            return None

    def put(self, spec: JobSpec, summary: RunSummary) -> None:
        """Store a summary under the spec's content address."""
        self.dir.mkdir(parents=True, exist_ok=True)
        path = self._path(self.key(spec))
        summary_dict = summary.to_dict()
        entry = {
            "schema": SCHEMA_VERSION,
            "simulator_version": SIMULATOR_VERSION,
            "spec": spec.to_dict(),
            "label": spec.label,
            "summary": summary_dict,
            "checksum": summary_checksum(summary_dict),
        }
        text = json.dumps(entry, sort_keys=True, indent=1)
        if self._faults is not None:
            fault = self._faults.cache_fault(self._store_seq)
            self._store_seq += 1
            if fault is not None:
                text = self._sabotage(text, fault)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(text)
        os.replace(tmp, path)
        self.stores += 1
        self._count_event("store")
        self._evict_overflow()

    @staticmethod
    def _sabotage(text: str, fault: str) -> str:
        """Deterministically damage an entry body (fault injection)."""
        if fault == "torn":  # writer died mid-write: truncated JSON
            return text[:max(1, len(text) // 2)]
        # "corrupt": complete file, garbled interior (fails checksum
        # or decode depending on where the damage lands).
        mid = len(text) // 2
        return text[:mid] + "\x00###\x00" + text[mid + 5:]

    def _evict_overflow(self) -> None:
        """Apply TTL, byte-budget and entry-count policies, in order."""
        now = time.time()
        entries = []
        for path in self.dir.glob("*.json"):
            try:
                stat = path.stat()
            except OSError:  # raced with another process's eviction
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort()

        if self.ttl_seconds is not None:
            live = []
            for mtime, size, path in entries:
                if self._expired(mtime, now):
                    self._evict(path, "ttl")
                else:
                    live.append((mtime, size, path))
            entries = live

        if self.max_bytes is not None:
            total = sum(size for _mtime, size, _path in entries)
            while entries and total > self.max_bytes:
                _mtime, size, path = entries.pop(0)
                self._evict(path, "bytes")
                total -= size

        excess = len(entries) - self.max_entries
        for _mtime, _size, path in entries[:max(0, excess)]:
            self._evict(path, "capacity")

    # ------------------------------------------------------------------
    def entries(self) -> int:
        """Number of entry files currently on disk."""
        if not self.dir.exists():
            return 0
        return sum(1 for _ in self.dir.glob("*.json"))

    def bytes_used(self) -> int:
        """Total size of entry files currently on disk."""
        if not self.dir.exists():
            return 0
        total = 0
        for path in self.dir.glob("*.json"):
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def quarantined_entries(self) -> int:
        """Number of files currently sitting in quarantine."""
        dest = self.dir / QUARANTINE_DIR
        if not dest.exists():
            return 0
        return sum(1 for _ in dest.glob("*.json"))

    def stats(self) -> Dict[str, Any]:
        """Counter snapshot for telemetry and the CLI."""
        return {
            "dir": str(self.dir),
            "entries": self.entries(),
            "bytes": self.bytes_used(),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "quarantined": self.quarantined,
            "quarantined_entries": self.quarantined_entries(),
            "evictions_by_reason": dict(self.evictions_by_reason),
            "max_entries": self.max_entries,
            "max_bytes": self.max_bytes,
            "ttl_seconds": self.ttl_seconds,
            "schema": SCHEMA_VERSION,
            "simulator_version": SIMULATOR_VERSION,
        }

    def clear(self) -> int:
        """Delete every entry (and quarantined file); returns how many
        were removed."""
        removed = 0
        if self.dir.exists():
            for path in self.dir.glob("*.json"):
                path.unlink(missing_ok=True)
                removed += 1
            for path in (self.dir / QUARANTINE_DIR).glob("*.json"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed
